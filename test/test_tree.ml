module G = Mcgraph.Graph
module T = Mcgraph.Tree

(* fixed tree:       0
                    / \
                   1   2
                  / \    \
                 3   4    5
                /
               6            *)
let fixture () =
  let g = G.of_edges ~n:7 [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (3, 6) ] in
  (g, T.of_edges g ~root:0 [ 0; 1; 2; 3; 4; 5 ])

let test_structure () =
  let _, t = fixture () in
  Alcotest.(check int) "root" 0 (T.root t);
  Alcotest.(check int) "size" 7 (T.size t);
  Alcotest.(check int) "depth 6" 3 (T.depth t 6);
  Alcotest.(check int) "parent 6" 3 (T.parent t 6);
  Alcotest.(check int) "parent root" (-1) (T.parent t 0);
  Alcotest.(check (list int)) "children of 1" [ 3; 4 ] (List.sort compare (T.children t 1));
  Alcotest.(check (list int)) "leaves" [ 4; 5; 6 ] (List.sort compare (T.leaves t))

let test_lca () =
  let _, t = fixture () in
  Alcotest.(check int) "siblings" 1 (T.lca t 3 4);
  Alcotest.(check int) "cross" 0 (T.lca t 6 5);
  Alcotest.(check int) "ancestor" 1 (T.lca t 1 6);
  Alcotest.(check int) "self" 4 (T.lca t 4 4);
  Alcotest.(check int) "many" 1 (T.lca_many t [ 3; 4; 6 ]);
  Alcotest.(check int) "many cross" 0 (T.lca_many t [ 4; 5 ])

let test_paths () =
  let _, t = fixture () in
  Alcotest.(check (list int)) "path up" [ 5; 2; 0 ] (T.path_up t 6 ~ancestor:0);
  Alcotest.(check (list int)) "path up to mid" [ 5; 2 ] (T.path_up t 6 ~ancestor:1);
  Alcotest.(check (list int)) "between siblings" [ 2; 3 ] (T.path_between t 3 4);
  Alcotest.(check (list int)) "between self" [] (T.path_between t 4 4)

let test_subtree () =
  let _, t = fixture () in
  Alcotest.(check bool) "6 under 1" true (T.in_subtree t ~root_of_subtree:1 6);
  Alcotest.(check bool) "5 not under 1" false (T.in_subtree t ~root_of_subtree:1 5);
  Alcotest.(check bool) "ancestor" true (T.is_ancestor t 0 ~descendant:6);
  Alcotest.(check bool) "not ancestor" false (T.is_ancestor t 2 ~descendant:6)

let test_not_in_tree () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let t = T.of_edges g ~root:0 [ 0 ] in
  Alcotest.(check bool) "mem in" true (T.mem t 1);
  Alcotest.(check bool) "mem out" false (T.mem t 2);
  Alcotest.check_raises "depth outside"
    (Invalid_argument "Tree.depth: node not in tree") (fun () ->
      ignore (T.depth t 2))

let test_cycle_rejected () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Tree.of_edges: cycle in edge set")
    (fun () -> ignore (T.of_edges g ~root:0 [ 0; 1; 2 ]))

let test_disconnected_rejected () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Tree.of_edges: edge set not connected to root") (fun () ->
      ignore (T.of_edges g ~root:0 [ 0; 1 ]))

let test_repeated_edge_rejected () =
  let g = G.of_edges ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "repeat" (Invalid_argument "Tree.of_edges: repeated edge")
    (fun () -> ignore (T.of_edges g ~root:0 [ 0; 0 ]))

(* ---- properties against a naive LCA ---- *)

let random_tree seed =
  let rng = Topology.Rng.create seed in
  let n = 2 + Topology.Rng.int rng 40 in
  let g = G.create n in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := G.add_edge g v (Topology.Rng.int rng v) :: !edges
  done;
  (g, T.of_edges g ~root:0 !edges, rng, n)

let naive_lca t a b =
  let rec ancestors v acc =
    if v = T.root t then v :: acc else ancestors (T.parent t v) (v :: acc)
  in
  let pa = ancestors a [] and pb = ancestors b [] in
  let rec common last = function
    | x :: xs, y :: ys when x = y -> common x (xs, ys)
    | _ -> last
  in
  common (T.root t) (pa, pb)

let prop_lca_naive =
  Tutil.qtest ~count:200 "lca = naive ancestor intersection"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, t, rng, n = random_tree seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let a = Topology.Rng.int rng n and b = Topology.Rng.int rng n in
        if T.lca t a b <> naive_lca t a b then ok := false
      done;
      !ok)

let prop_path_between_depth =
  Tutil.qtest ~count:200 "path_between length = depth sum - 2·lca depth"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, t, rng, n = random_tree seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let a = Topology.Rng.int rng n and b = Topology.Rng.int rng n in
        let u = T.lca t a b in
        let expect = T.depth t a + T.depth t b - (2 * T.depth t u) in
        if List.length (T.path_between t a b) <> expect then ok := false
      done;
      !ok)

let prop_bfs_orders_nodes =
  Tutil.qtest ~count:100 "nodes are listed in non-decreasing depth"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, t, _, _ = random_tree seed in
      let depths = List.map (T.depth t) (T.nodes t) in
      List.sort compare depths = depths)

let () =
  Alcotest.run "tree"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "lca" `Quick test_lca;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "subtree" `Quick test_subtree;
          Alcotest.test_case "non-tree nodes" `Quick test_not_in_tree;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "disconnected rejected" `Quick test_disconnected_rejected;
          Alcotest.test_case "repeated edge rejected" `Quick test_repeated_edge_rejected;
        ] );
      ("property", [ prop_lca_naive; prop_path_between_depth; prop_bfs_orders_nodes ]);
    ]
