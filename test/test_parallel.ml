(* The parallel figure harness's contract: running a figure with N worker
   domains produces the same bytes as running it sequentially, and worker
   telemetry folds back into the global registry without loss.

   Every figure family is rendered (table + CSV) under jobs = 1 and
   jobs = 4 with the same seed and compared for byte equality. The fake
   clock replaces [Sys.time] so the timing columns are a deterministic
   function of the work done, not of scheduling. *)

module E = Experiments.Exp_common
module Pool = Experiments.Pool
module Obs = Nfv_obs.Obs

let () = E.install_fake_clock ()

(* render every figure of a family into one string: the tables exactly as
   the bench prints them, then each figure's CSV *)
let render_family figs =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  E.render_all ppf figs;
  Format.pp_print_flush ppf ();
  List.iter (fun f -> Buffer.add_string buf (E.to_csv f)) figs;
  Buffer.contents buf

let with_jobs n f =
  let old = Pool.get_jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs old) f

(* small configurations: every family exercises > 1 pool point but stays
   fast enough for CI *)
let families =
  [
    ("fig5", fun () -> Experiments.Fig5.run ~seed:3 ~requests:2 ~sizes:[ 30; 50 ] ());
    ("fig6", fun () -> Experiments.Fig6.run ~seed:3 ~requests:2 ());
    ("fig7", fun () -> Experiments.Fig7.run ~seed:3 ~requests:10 ~sizes:[ 30; 50 ] ());
    ("fig8", fun () -> Experiments.Fig8.run ~seed:3 ~requests:30 ~sizes:[ 30; 50 ] ());
    ("fig9", fun () -> Experiments.Fig9.run ~seed:3 ~requests:60 ());
    ("ablation", fun () -> Experiments.Ablation.run ~seed:3 ~requests:12 ());
    ("dynamic", fun () -> Experiments.Dynamic_load.run ~seed:3 ~n:40 ~arrivals:40 ());
    ("batch", fun () -> Experiments.Batch_order.run ~seed:3 ~n:30 ~sizes:[ 15; 30 ] ());
    ("delay", fun () -> Experiments.Delay_exp.run ~seed:3 ~n:40 ~requests:20 ());
    ("tables", fun () -> Experiments.Table_exp.run ~seed:3 ~n:40 ~requests:20 ());
  ]

let test_family_identical name run () =
  let seq = with_jobs 1 (fun () -> render_family (run ())) in
  let par = with_jobs 4 (fun () -> render_family (run ())) in
  Alcotest.(check string) (name ^ " bytes jobs=1 vs jobs=4") seq par

(* --- telemetry under parallelism --- *)

(* integer skeleton of a snapshot: counter values, timer counts and
   histogram counts/buckets are scheduling-independent; float sums are
   not (addition order differs across jobs settings) and gauges are
   last-write-wins, so both are excluded from the equality *)
let int_skeleton snap =
  List.filter_map
    (fun m ->
      match m with
      | Obs.Export.Counter (name, v) -> Some (Printf.sprintf "c:%s=%d" name v)
      | Obs.Export.Gauge _ -> None
      | Obs.Export.Timer { name; count; _ } ->
        Some (Printf.sprintf "t:%s=%d" name count)
      | Obs.Export.Histogram { name; count; buckets; _ } ->
        Some
          (Printf.sprintf "h:%s=%d[%s]" name count
             (String.concat ";" (Array.to_list (Array.map string_of_int buckets)))))
    snap

let test_telemetry_identical () =
  let capture jobs =
    with_jobs jobs (fun () ->
        Obs.reset_all ();
        Obs.enabled := true;
        Fun.protect
          ~finally:(fun () -> Obs.enabled := false)
          (fun () ->
            ignore (Experiments.Fig5.run ~seed:3 ~requests:2 ~sizes:[ 30; 50 ] ());
            int_skeleton (Obs.Export.snapshot ())))
  in
  let seq = capture 1 and par = capture 4 in
  Alcotest.(check (list string)) "integer telemetry jobs=1 vs jobs=4" seq par;
  Alcotest.(check bool) "telemetry non-empty" true (seq <> [])

(* --- Sharding unit tests (raw Domain.spawn, no pool) --- *)

let test_merge_counters () =
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let c = Obs.Counter.make "tpar.counter" in
  Obs.Counter.add c 5;
  let shard =
    Domain.join
      (Domain.spawn (fun () ->
           let c' = Obs.Counter.make "tpar.counter" in
           Obs.Counter.add c' 7;
           (* the worker sees only its own contribution... *)
           Alcotest.(check int) "worker-local view" 7 (Obs.Counter.value c');
           Obs.Sharding.take ()))
  in
  (* ...and the global registry is untouched until the merge *)
  Alcotest.(check int) "pre-merge global" 5 (Obs.Counter.value c);
  Obs.Sharding.merge shard;
  Alcotest.(check int) "post-merge sum" 12 (Obs.Counter.value c)

let test_merge_timers () =
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let t = Obs.Timer.make "tpar.timer" in
  Obs.Timer.add t 1.0;
  Obs.Timer.add t 2.0;
  let shard =
    Domain.join
      (Domain.spawn (fun () ->
           Obs.Timer.add (Obs.Timer.make "tpar.timer") 4.0;
           Obs.Sharding.take ()))
  in
  Obs.Sharding.merge shard;
  Alcotest.(check int) "count sums" 3 (Obs.Timer.count t);
  Alcotest.check Tutil.check_float "total sums" 7.0 (Obs.Timer.total t)

let test_merge_histograms () =
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let bounds = [| 1.0; 2.0; 4.0 |] in
  let h = Obs.Histogram.make ~bounds "tpar.hist" in
  Obs.Histogram.observe h 0.5;
  Obs.Histogram.observe h 3.0;
  let shard =
    Domain.join
      (Domain.spawn (fun () ->
           let h' = Obs.Histogram.make ~bounds "tpar.hist" in
           Obs.Histogram.observe h' 0.5;
           Obs.Histogram.observe h' 100.0;
           Obs.Sharding.take ()))
  in
  Obs.Sharding.merge shard;
  Alcotest.(check int) "count sums" 4 (Obs.Histogram.count h);
  Alcotest.(check (array int)) "buckets add bucket-wise" [| 2; 0; 1; 1 |]
    (Obs.Histogram.buckets h)

let test_merge_worker_created () =
  (* an instrument first seen inside a worker appears in the global
     registry after the merge — Span.run creates histograms dynamically,
     so this is the path every instrumented span in a worker takes *)
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let name = "tpar.worker_only" in
  let shard =
    Domain.join
      (Domain.spawn (fun () ->
           Obs.Counter.add (Obs.Counter.make name) 3;
           Obs.Sharding.take ()))
  in
  Obs.Sharding.merge shard;
  Alcotest.(check int) "registered at merge" 3
    (Obs.Counter.value (Obs.Counter.make name))

let test_merge_gauges_last_write () =
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let g = Obs.Gauge.make "tpar.gauge" in
  Obs.Gauge.set g 1.0;
  let worker v () =
    Obs.Gauge.set (Obs.Gauge.make "tpar.gauge") v;
    Obs.Sharding.take ()
  in
  let d1 = Domain.spawn (worker 2.0) in
  let d2 = Domain.spawn (worker 3.0) in
  let s1 = Domain.join d1 and s2 = Domain.join d2 in
  Obs.Sharding.merge s1;
  Obs.Sharding.merge s2;
  (* merge order (spawn order), not completion order, decides *)
  Alcotest.check Tutil.check_float "last merge wins" 3.0 (Obs.Gauge.value g)

let test_disabled_noop () =
  Obs.reset_all ();
  Alcotest.(check bool) "recording off" false !Obs.enabled;
  let c = Obs.Counter.make "tpar.disabled" in
  Obs.Counter.add c 5;
  let shard =
    Domain.join
      (Domain.spawn (fun () ->
           Obs.Counter.add (Obs.Counter.make "tpar.disabled") 7;
           Obs.Sharding.take ()))
  in
  Obs.Sharding.merge shard;
  Alcotest.(check int) "nothing recorded anywhere" 0 (Obs.Counter.value c)

(* --- pool mechanics --- *)

let test_point_seed_distinct () =
  (* different figures/indices/seeds give different streams; same triple
     gives the same stream *)
  let s1 = Pool.point_seed ~figure:"fig5" ~index:0 ~seed:1 in
  let s2 = Pool.point_seed ~figure:"fig5" ~index:1 ~seed:1 in
  let s3 = Pool.point_seed ~figure:"fig6" ~index:0 ~seed:1 in
  let s4 = Pool.point_seed ~figure:"fig5" ~index:0 ~seed:2 in
  Alcotest.(check bool) "index matters" true (s1 <> s2);
  Alcotest.(check bool) "figure matters" true (s1 <> s3);
  Alcotest.(check bool) "seed matters" true (s1 <> s4);
  Alcotest.(check int) "deterministic" s1
    (Pool.point_seed ~figure:"fig5" ~index:0 ~seed:1);
  Alcotest.(check bool) "non-negative" true (s1 >= 0)

let test_map_order_and_exceptions () =
  let r =
    Pool.map ~jobs:4 ~figure:"tpar" ~seed:1 7 (fun ~rng:_ i -> i * i)
  in
  Alcotest.(check (list int)) "results in point order" [ 0; 1; 4; 9; 16; 25; 36 ] r;
  Alcotest.(check int) "empty map" 0 (List.length (Pool.map ~jobs:4 ~figure:"tpar" ~seed:1 0 (fun ~rng:_ i -> i)));
  match
    Pool.map ~jobs:4 ~figure:"tpar" ~seed:1 5 (fun ~rng:_ i ->
        if i = 3 then failwith "boom" else i)
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

let test_set_jobs_validation () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.set_jobs: negative job count") (fun () ->
      Pool.set_jobs (-1));
  Alcotest.(check bool) "auto >= 1" true (Pool.default_jobs () >= 1)

let () =
  Alcotest.run "parallel"
    [
      ( "byte-identity",
        List.map
          (fun (name, run) ->
            Alcotest.test_case name `Slow (test_family_identical name run))
          families );
      ( "telemetry",
        [
          Alcotest.test_case "integer telemetry identical" `Slow
            test_telemetry_identical;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "counters sum" `Quick test_merge_counters;
          Alcotest.test_case "timers sum" `Quick test_merge_timers;
          Alcotest.test_case "histograms add" `Quick test_merge_histograms;
          Alcotest.test_case "worker-created instrument" `Quick
            test_merge_worker_created;
          Alcotest.test_case "gauges last-write" `Quick
            test_merge_gauges_last_write;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        ] );
      ( "pool",
        [
          Alcotest.test_case "point seeds" `Quick test_point_seed_distinct;
          Alcotest.test_case "map order and exceptions" `Quick
            test_map_order_and_exceptions;
          Alcotest.test_case "set_jobs validation" `Quick
            test_set_jobs_validation;
        ] );
    ]
