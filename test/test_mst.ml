module G = Mcgraph.Graph
module Mst = Mcgraph.Mst

let test_kruskal_known () =
  (* square with a costly diagonal *)
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let w = [| 1.0; 2.0; 3.0; 4.0; 10.0 |] in
  let tree = Mst.kruskal g ~weight:(Tutil.weight_fn w) in
  Alcotest.(check int) "spanning size" 3 (List.length tree);
  Alcotest.check Tutil.check_float "weight" 6.0
    (Mst.weight_of ~weight:(Tutil.weight_fn w) tree);
  Alcotest.(check bool) "is a tree" true (Tutil.is_tree g tree)

let test_prim_known () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let w = [| 1.0; 2.0; 3.0; 4.0; 10.0 |] in
  let tree = Mst.prim g ~weight:(Tutil.weight_fn w) ~root:2 in
  Alcotest.check Tutil.check_float "weight" 6.0
    (Mst.weight_of ~weight:(Tutil.weight_fn w) tree)

let test_forest_on_disconnected () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let tree = Mst.kruskal g ~weight:(fun _ -> 1.0) in
  Alcotest.(check int) "forest" 2 (List.length tree)

let test_prim_component_only () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let tree = Mst.prim g ~weight:(fun _ -> 1.0) ~root:0 in
  Alcotest.(check (list int)) "only local component" [ 0 ] tree

let test_kruskal_subset () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let w = [| 1.0; 1.0; 1.0 |] in
  let tree =
    Mst.kruskal_subset g ~weight:(Tutil.weight_fn w) ~edges:[ 0; 2 ]
  in
  Alcotest.(check (list int)) "restricted choice" [ 0; 2 ] (List.sort compare tree)

let test_kruskal_ignores_infinite () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let w e = if e = 1 then infinity else 1.0 in
  let tree = Mst.kruskal g ~weight:w in
  Alcotest.(check bool) "edge 1 skipped" true (not (List.mem 1 tree));
  Alcotest.(check int) "spans what it can" 2 (List.length tree)

let test_prim_metric_line () =
  let points = [| 10; 20; 30 |] in
  let dist a b = Float.abs (float_of_int (a - b)) in
  match Mst.prim_metric ~points ~dist with
  | None -> Alcotest.fail "should connect"
  | Some edges ->
    Alcotest.(check int) "two edges" 2 (List.length edges);
    let total =
      List.fold_left (fun acc (a, b) -> acc +. dist a b) 0.0 edges
    in
    Alcotest.check Tutil.check_float "chain weight" 20.0 total

let test_prim_metric_disconnected () =
  let points = [| 0; 1 |] in
  let dist _ _ = infinity in
  Alcotest.(check bool) "none" true (Mst.prim_metric ~points ~dist = None)

let test_prim_metric_trivial () =
  Alcotest.(check (option (list (pair int int)))) "empty" (Some [])
    (Mst.prim_metric ~points:[||] ~dist:(fun _ _ -> 0.0));
  Alcotest.(check (option (list (pair int int)))) "singleton" (Some [])
    (Mst.prim_metric ~points:[| 7 |] ~dist:(fun _ _ -> 0.0))

(* ---- properties ---- *)

let with_instance seed f =
  let g, rng = Tutil.random_connected_graph seed ~lo:2 ~hi:40 in
  let w = Tutil.random_weights rng g in
  f g (Tutil.weight_fn w) rng

let prop_prim_equals_kruskal =
  Tutil.qtest ~count:150 "prim weight = kruskal weight"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g weight _ ->
          let k = Mst.kruskal g ~weight in
          let p = Mst.prim g ~weight ~root:0 in
          Float.abs (Mst.weight_of ~weight k -. Mst.weight_of ~weight p) < 1e-6))

let prop_spanning_tree =
  Tutil.qtest ~count:150 "kruskal result is a spanning tree"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g weight _ ->
          let k = Mst.kruskal g ~weight in
          List.length k = G.n g - 1 && Tutil.is_tree g k))

(* cut property spot check: the globally lightest edge is always in some MST;
   with distinct weights it is in every MST *)
let prop_lightest_edge =
  Tutil.qtest ~count:100 "lightest (unique) edge belongs to the MST"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g _ rng ->
          (* re-draw strictly distinct weights *)
          let m = G.m g in
          let w =
            Array.init m (fun i ->
                (float_of_int i /. float_of_int m *. 0.001)
                +. Topology.Rng.float_range rng 1.0 2.0)
          in
          let lightest = ref 0 in
          Array.iteri (fun e x -> if x < w.(!lightest) then lightest := e) w;
          let k = Mst.kruskal g ~weight:(Tutil.weight_fn w) in
          List.mem !lightest k))

let prop_prim_metric_matches_kruskal_on_complete =
  Tutil.qtest ~count:80 "prim_metric = kruskal on materialised complete graph"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Topology.Rng.create seed in
      let t = 2 + Topology.Rng.int rng 12 in
      let coords =
        Array.init t (fun _ ->
            (Topology.Rng.float rng 10.0, Topology.Rng.float rng 10.0))
      in
      let dist a b =
        let xa, ya = coords.(a) and xb, yb = coords.(b) in
        sqrt (((xa -. xb) ** 2.0) +. ((ya -. yb) ** 2.0))
      in
      let points = Array.init t Fun.id in
      match Mst.prim_metric ~points ~dist with
      | None -> false
      | Some edges ->
        let total = List.fold_left (fun acc (a, b) -> acc +. dist a b) 0.0 edges in
        (* materialise the complete graph and run kruskal *)
        let g = G.create t in
        let w = ref [] in
        for i = 0 to t - 1 do
          for j = i + 1 to t - 1 do
            ignore (G.add_edge g i j);
            w := dist i j :: !w
          done
        done;
        let warr = Array.of_list (List.rev !w) in
        let k = Mst.kruskal g ~weight:(Tutil.weight_fn warr) in
        let ktotal = Mst.weight_of ~weight:(Tutil.weight_fn warr) k in
        Float.abs (total -. ktotal) < 1e-6)

let () =
  Alcotest.run "mst"
    [
      ( "unit",
        [
          Alcotest.test_case "kruskal known" `Quick test_kruskal_known;
          Alcotest.test_case "prim known" `Quick test_prim_known;
          Alcotest.test_case "forest" `Quick test_forest_on_disconnected;
          Alcotest.test_case "prim stays in component" `Quick test_prim_component_only;
          Alcotest.test_case "kruskal_subset" `Quick test_kruskal_subset;
          Alcotest.test_case "infinite weight skipped" `Quick
            test_kruskal_ignores_infinite;
          Alcotest.test_case "prim_metric line" `Quick test_prim_metric_line;
          Alcotest.test_case "prim_metric disconnected" `Quick
            test_prim_metric_disconnected;
          Alcotest.test_case "prim_metric trivial" `Quick test_prim_metric_trivial;
        ] );
      ( "property",
        [
          prop_prim_equals_kruskal;
          prop_spanning_tree;
          prop_lightest_edge;
          prop_prim_metric_matches_kruskal_on_complete;
        ] );
    ]
