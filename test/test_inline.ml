module I = Nfv_multicast.Inline_tree
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

(* Fig. 3's shape: a tree where the server sits on one branch and a
   destination on another, forcing the processed copy to backtrack. *)
let fig3_like () =
  let rng = Rng.create 1 in
  (* 0 (source) - 1 (branch point); 1-2 server side; 1-3 dest side *)
  let g = Mcgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (1, 3) ] in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
      ~rng ~servers:[ 2 ]
      (Topology.Topo.make ~name:"fig3" g)
  in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  (net, req)

let test_derive_backtrack () =
  let net, req = fig3_like () in
  match I.derive net req ~tree:[ 0; 1; 2 ] ~servers:[ 2 ] with
  | Error e -> Alcotest.failf "derive: %s" e
  | Ok pt ->
    (match Pt.validate net pt with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e);
    (* edge 1 (branch→server) carries unprocessed down and processed back *)
    Alcotest.(check (option int)) "backtrack doubles edge 1" (Some 2)
      (List.assoc_opt 1 pt.Pt.edge_uses);
    (* cost: edges 0,2 once + edge 1 twice = 4 traversals ×10 + chain 25 *)
    Tutil.assert_close "cost" 65.0 (Pt.cost net pt);
    (match Nfv_multicast.Flow_rules.verify net pt with
    | Ok () -> ()
    | Error e -> Alcotest.failf "data plane: %s" e)

let test_derive_rejects_off_tree_server () =
  let net, req = fig3_like () in
  match I.derive net req ~tree:[ 0; 2 ] ~servers:[ 2 ] with
  | Ok _ -> Alcotest.fail "destination 3 is off the tree"
  | Error _ -> ()

let test_solve_fig3 () =
  let net, req = fig3_like () in
  match I.solve net req with
  | Error e -> Alcotest.failf "solve: %s" e
  | Ok res ->
    Alcotest.(check (list int)) "server" [ 2 ] res.I.servers;
    Tutil.assert_close "same as manual derivation" 65.0 res.I.cost

let test_solve_attaches_off_tree_server () =
  (* server hangs off the source-destination path: 0-1-2 path, server 3
     attached to 1 *)
  let rng = Rng.create 1 in
  let g = Mcgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (1, 3) ] in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
      ~rng ~servers:[ 3 ]
      (Topology.Topo.make ~name:"offtree" g)
  in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 2 ] ~bandwidth:10.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  match I.solve net req with
  | Error e -> Alcotest.failf "solve: %s" e
  | Ok res ->
    Alcotest.(check (list int)) "attached server" [ 3 ] res.I.servers;
    (match Pt.validate net res.I.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e);
    (* detour into the stub and back: edge (1,3) twice *)
    Alcotest.(check (option int)) "stub doubled" (Some 2)
      (List.assoc_opt 2 res.I.tree.Pt.edge_uses)

let prop_inline_valid =
  Tutil.qtest ~count:120 "inline solutions validate on both planes"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:6 ~hi:25 in
      let req = Tutil.random_request rng net ~id:0 in
      match I.solve ~k:2 net req with
      | Error _ -> true
      | Ok res -> (
        (match Pt.validate net res.I.tree with Ok () -> true | Error _ -> false)
        &&
        match Nfv_multicast.Flow_rules.verify net res.I.tree with
        | Ok () -> true
        | Error _ -> false))

let prop_appro_not_worse_than_inline =
  Tutil.qtest ~count:60 "appro ≤ inline on average instance"
    QCheck.(int_bound 100_000)
    (fun seed ->
      (* not a per-instance theorem (different heuristics), so compare
         totals over a small batch to keep the check meaningful *)
      let net, rng = Tutil.random_network seed ~lo:10 ~hi:25 in
      let total_a = ref 0.0 and total_i = ref 0.0 and n = ref 0 in
      for id = 0 to 4 do
        let req = Tutil.random_request rng net ~id in
        match (Nfv_multicast.Appro_multi.solve ~k:2 net req, I.solve ~k:2 net req)
        with
        | Ok a, Ok i ->
          incr n;
          total_a := !total_a +. a.Nfv_multicast.Appro_multi.cost;
          total_i := !total_i +. i.I.cost
        | _ -> ()
      done;
      !n = 0 || !total_a <= !total_i *. 1.15)

let () =
  Alcotest.run "inline"
    [
      ( "unit",
        [
          Alcotest.test_case "derive with backtrack" `Quick test_derive_backtrack;
          Alcotest.test_case "derive rejects off-tree destination" `Quick
            test_derive_rejects_off_tree_server;
          Alcotest.test_case "solve fig3" `Quick test_solve_fig3;
          Alcotest.test_case "solve attaches off-tree server" `Quick
            test_solve_attaches_off_tree_server;
        ] );
      ("property", [ prop_inline_valid; prop_appro_not_worse_than_inline ]);
    ]
