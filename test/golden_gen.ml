(* Regenerates the golden figure CSVs under test/golden/ — the fixtures
   test_specs.ml compares against byte for byte.

   Run after an intentional output change:

     dune exec test/golden_gen.exe -- test/golden

   The configurations here MUST stay in sync with [Golden.families] in
   test_specs.ml: same seeds, sizes and request counts, fake clock,
   sequential pool. Timing columns are deterministic under the fake
   clock (dyadic tick, histogram sums of exact multiples), so the full
   CSV bytes are reproducible on any machine. *)

let families =
  [
    ("fig5", fun () -> Experiments.Fig5.run ~seed:3 ~requests:2 ~sizes:[ 30; 50 ] ());
    ("fig6", fun () -> Experiments.Fig6.run ~seed:3 ~requests:2 ());
    ("fig7", fun () -> Experiments.Fig7.run ~seed:3 ~requests:10 ~sizes:[ 30; 50 ] ());
    ("fig8", fun () -> Experiments.Fig8.run ~seed:3 ~requests:30 ~sizes:[ 30; 50 ] ());
    ("fig9", fun () -> Experiments.Fig9.run ~seed:3 ~requests:60 ());
    ("ablation", fun () -> Experiments.Ablation.run ~seed:3 ~requests:12 ());
    ("dynamic", fun () -> Experiments.Dynamic_load.run ~seed:3 ~n:40 ~arrivals:40 ());
    ("batch", fun () -> Experiments.Batch_order.run ~seed:3 ~n:30 ~sizes:[ 15; 30 ] ());
    ("delay", fun () -> Experiments.Delay_exp.run ~seed:3 ~n:40 ~requests:20 ());
    ("tables", fun () -> Experiments.Table_exp.run ~seed:3 ~n:40 ~requests:20 ());
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  Experiments.Exp_common.install_fake_clock ();
  Experiments.Pool.set_jobs 1;
  List.iter
    (fun (name, run) ->
      let figs = run () in
      List.iter
        (fun f ->
          let path = Experiments.Exp_common.write_csv ~dir f in
          Printf.printf "%-10s wrote %s\n%!" name path)
        figs)
    families
