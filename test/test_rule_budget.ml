module Rb = Nfv_multicast.Rule_budget
module Fr = Nfv_multicast.Flow_rules
module Adm = Nfv_multicast.Admission
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

let fixture () =
  let rng = Rng.create 1 in
  let topo =
    Topology.Topo.make ~name:"path"
      (Mcgraph.Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ])
  in
  N.make
    ~profile:(N.uniform_profile ~link_capacity:10_000.0 ~server_capacity:8000.0)
    ~rng ~servers:[ 2 ] topo

let request id =
  Sdn.Request.make ~id ~source:0 ~destinations:[ 4 ] ~bandwidth:10.0
    ~chain:[ Sdn.Vnf.Nat ]

let rules_of net =
  let req = request 0 in
  let pt =
    Pt.make ~request:req ~servers:[ 2 ]
      ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
      ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 2; 3 ] }) ]
  in
  Fr.of_pseudo_tree net pt

let test_install_uninstall () =
  let net = fixture () in
  let b = Rb.create net ~capacity:4 in
  let rules = rules_of net in
  Alcotest.(check bool) "fits" true (Rb.fits b rules);
  (match Rb.install b rules with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install: %s" e);
  Alcotest.(check int) "server switch holds 2" 2 (Rb.used b 2);
  Alcotest.(check int) "total" (Fr.total_rules rules) (Rb.total_used b);
  Rb.uninstall b rules;
  Alcotest.(check int) "empty again" 0 (Rb.total_used b)

let test_overflow_rejected () =
  let net = fixture () in
  let b = Rb.create net ~capacity:1 in
  let rules = rules_of net in
  Alcotest.(check bool) "does not fit" false (Rb.fits b rules);
  match Rb.install b rules with
  | Ok () -> Alcotest.fail "should overflow"
  | Error _ -> Alcotest.(check int) "atomic: nothing charged" 0 (Rb.total_used b)

let test_over_release () =
  let net = fixture () in
  let b = Rb.create net ~capacity:10 in
  Alcotest.check_raises "double free"
    (Invalid_argument "Rule_budget.uninstall: over-release") (fun () ->
      Rb.uninstall b (rules_of net))

let test_admit_rolls_back_resources () =
  let net = fixture () in
  let b = Rb.create net ~capacity:1 in
  (match Rb.admit b net Adm.Sp (request 0) with
  | Ok _ -> Alcotest.fail "should reject on tables"
  | Error e ->
    Alcotest.(check bool) "reason names tables" true
      (String.length e > 0 && String.sub e 0 10 = "forwarding"));
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "bandwidth rolled back" (N.link_capacity net e)
      (N.link_residual net e)
  done

let test_admit_accepts_and_charges () =
  let net = fixture () in
  let b = Rb.create net ~capacity:10 in
  match Rb.admit b net Adm.Sp (request 0) with
  | Error e -> Alcotest.failf "admit: %s" e
  | Ok (_, rules) ->
    Alcotest.(check bool) "tables charged" true (Rb.total_used b > 0);
    Alcotest.(check int) "matches compiled size" (Fr.total_rules rules)
      (Rb.total_used b)

let test_create_validation () =
  let net = fixture () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Rule_budget.create: negative capacity") (fun () ->
      ignore (Rb.create net ~capacity:(-1)))

let prop_budget_invariant =
  Tutil.qtest ~count:30 "per-switch usage never exceeds capacity"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:10 ~hi:25 in
      let budget = Rb.create net ~capacity:8 in
      let reqs = Workload.Gen.sequence rng net ~count:40 in
      List.iter
        (fun r -> ignore (Rb.admit budget net Adm.Online_cp_no_threshold r))
        reqs;
      let ok = ref true in
      for v = 0 to N.n net - 1 do
        if Rb.used budget v > Rb.capacity budget then ok := false
      done;
      !ok)

let prop_churn_restores_tables =
  Tutil.qtest ~count:20 "install/uninstall round-trips under churn"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:10 ~hi:25 in
      let budget = Rb.create net ~capacity:50 in
      let reqs = Workload.Gen.sequence rng net ~count:20 in
      let installed =
        List.filter_map
          (fun r ->
            match Rb.admit budget net Adm.Sp r with
            | Ok (tree, rules) -> Some (tree, rules)
            | Error _ -> None)
          reqs
      in
      List.iter
        (fun (tree, rules) ->
          Rb.uninstall budget rules;
          N.release net (Pt.allocation tree))
        installed;
      Rb.total_used budget = 0)

let () =
  Alcotest.run "rule_budget"
    [
      ( "unit",
        [
          Alcotest.test_case "install/uninstall" `Quick test_install_uninstall;
          Alcotest.test_case "overflow rejected atomically" `Quick
            test_overflow_rejected;
          Alcotest.test_case "over-release" `Quick test_over_release;
          Alcotest.test_case "admit rolls back" `Quick test_admit_rolls_back_resources;
          Alcotest.test_case "admit charges" `Quick test_admit_accepts_and_charges;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ("property", [ prop_budget_invariant; prop_churn_restores_tables ]);
    ]
