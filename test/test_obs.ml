(* Nfv_obs: instrument arithmetic, the disabled-mode no-op guarantee
   the figure reproductions rely on, and exact export round-trips. All
   instruments are process-global, so every test starts from
   [reset_all] and restores [enabled := false] on exit. *)

module Obs = Nfv_obs.Obs

let with_enabled f =
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

(* --- counters, gauges, timers ------------------------------------------ *)

let test_counter_arithmetic () =
  with_enabled @@ fun () ->
  let c = Obs.Counter.make "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Counter.add c 40;
  Alcotest.(check int) "2 incr + add 40" 42 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.counter" (Obs.Counter.name c)

let test_counter_idempotent_make () =
  with_enabled @@ fun () ->
  let a = Obs.Counter.make "test.shared" in
  let b = Obs.Counter.make "test.shared" in
  Obs.Counter.incr a;
  Alcotest.(check int) "same instrument via both handles" 1
    (Obs.Counter.value b)

let test_bad_name_rejected () =
  Alcotest.check_raises "space in name"
    (Invalid_argument "Obs: invalid instrument name: bad name")
    (fun () -> ignore (Obs.Counter.make "bad name"))

let test_gauge_last_write_wins () =
  with_enabled @@ fun () ->
  let g = Obs.Gauge.make "test.gauge" in
  Alcotest.(check (float 0.0)) "default" 0.0 (Obs.Gauge.value g);
  Obs.Gauge.set g 1.5;
  Obs.Gauge.set g 0.25;
  Alcotest.(check (float 0.0)) "last write wins" 0.25 (Obs.Gauge.value g)

let test_timer_with_fake_clock () =
  with_enabled @@ fun () ->
  let t = Obs.Timer.make "test.timer" in
  let now = ref 0.0 in
  let saved = !Obs.clock in
  Obs.clock := (fun () -> !now);
  Fun.protect ~finally:(fun () -> Obs.clock := saved) @@ fun () ->
  let r = Obs.Timer.time t (fun () -> now := !now +. 2.0; "done") in
  Alcotest.(check string) "result threaded through" "done" r;
  Obs.Timer.add t 0.5;
  Alcotest.(check int) "two observations" 2 (Obs.Timer.count t);
  Alcotest.(check (float 1e-9)) "total = 2.0 + 0.5" 2.5 (Obs.Timer.total t);
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Obs.Timer.add: negative duration") (fun () ->
      Obs.Timer.add t (-1.0))

(* --- histograms -------------------------------------------------------- *)

let test_histogram_bucketing () =
  with_enabled @@ fun () ->
  let h = Obs.Histogram.make ~bounds:[| 1.0; 10.0; 100.0 |] "test.hist" in
  (* one per bucket: <=1, <=10, <=100, overflow; boundary goes low *)
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.0; 10.0; 99.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1110.5 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 222.1 (Obs.Histogram.mean h);
  Alcotest.(check (array (float 0.0))) "bounds preserved"
    [| 1.0; 10.0; 100.0 |]
    (Obs.Histogram.bounds h);
  Alcotest.(check (array int)) "buckets: boundary lands low, tail overflows"
    [| 2; 1; 1; 1 |]
    (Obs.Histogram.buckets h)

let test_histogram_quantile () =
  with_enabled @@ fun () ->
  let h = Obs.Histogram.make ~bounds:[| 1.0; 2.0; 4.0 |] "test.hist.q" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  for _ = 1 to 90 do Obs.Histogram.observe h 0.5 done;
  for _ = 1 to 9 do Obs.Histogram.observe h 1.5 done;
  Obs.Histogram.observe h 100.0;
  Alcotest.(check (float 0.0)) "p50 in first bucket" 1.0
    (Obs.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p95 in second bucket" 2.0
    (Obs.Histogram.quantile h 0.95);
  Alcotest.(check (float 0.0)) "p100 overflows" infinity
    (Obs.Histogram.quantile h 1.0)

let test_histogram_bad_bounds () =
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Obs.Histogram.make: bounds not strictly increasing")
    (fun () ->
      ignore (Obs.Histogram.make ~bounds:[| 2.0; 1.0 |] "test.hist.bad"))

(* --- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  with_enabled @@ fun () ->
  let now = ref 0.0 in
  let saved = !Obs.clock in
  Obs.clock := (fun () -> !now);
  Fun.protect ~finally:(fun () -> Obs.clock := saved) @@ fun () ->
  Alcotest.(check (option string)) "no open span" None (Obs.Span.current ());
  Obs.Span.run "outer" (fun () ->
      Alcotest.(check (option string)) "outer open" (Some "outer")
        (Obs.Span.current ());
      now := !now +. 1.0;
      Obs.Span.run "inner" (fun () ->
          Alcotest.(check (option string)) "paths join with /"
            (Some "outer/inner") (Obs.Span.current ());
          now := !now +. 2.0));
  Alcotest.(check (option string)) "popped" None (Obs.Span.current ());
  (* outer span: 3 s total; inner: 2 s — each into its own histogram *)
  let outer = Obs.Histogram.make "outer" in
  let inner = Obs.Histogram.make "outer/inner" in
  Alcotest.(check int) "outer recorded once" 1 (Obs.Histogram.count outer);
  Alcotest.(check (float 1e-9)) "outer duration" 3.0 (Obs.Histogram.sum outer);
  Alcotest.(check (float 1e-9)) "inner duration" 2.0 (Obs.Histogram.sum inner)

let test_span_pops_on_raise () =
  with_enabled @@ fun () ->
  (try Obs.Span.run "raises" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check (option string)) "span popped after raise" None
    (Obs.Span.current ());
  Alcotest.(check int) "duration still recorded" 1
    (Obs.Histogram.count (Obs.Histogram.make "raises"))

(* --- disabled mode is a no-op ------------------------------------------ *)

let test_disabled_is_noop () =
  Obs.reset_all ();
  Obs.enabled := false;
  let c = Obs.Counter.make "test.off.counter" in
  let g = Obs.Gauge.make "test.off.gauge" in
  let t = Obs.Timer.make "test.off.timer" in
  let h = Obs.Histogram.make "test.off.hist" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Gauge.set g 3.0;
  Obs.Timer.add t 1.0;
  let r = Obs.Timer.time t (fun () -> 17) in
  Obs.Histogram.observe h 0.5;
  Obs.Span.run "test.off.span" (fun () ->
      Alcotest.(check (option string)) "spans not tracked when disabled" None
        (Obs.Span.current ()));
  Alcotest.(check int) "time still runs f" 17 r;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.Gauge.value g);
  Alcotest.(check int) "timer untouched" 0 (Obs.Timer.count t);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Histogram.count h)

let test_reset_all () =
  with_enabled @@ fun () ->
  let c = Obs.Counter.make "test.reset.counter" in
  let h = Obs.Histogram.make "test.reset.hist" in
  Obs.Counter.add c 5;
  Obs.Histogram.observe h 0.5;
  Obs.reset_all ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h);
  Alcotest.(check (array int)) "buckets zeroed"
    (Array.make (Array.length (Obs.Histogram.bounds h) + 1) 0)
    (Obs.Histogram.buckets h)

(* --- export round-trips ------------------------------------------------ *)

(* A snapshot with every metric kind and awkward floats (negative,
   subnormal-ish, many digits) to exercise round-trip precision. *)
let populate () =
  with_enabled @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "rt.counter") 12345;
  Obs.Gauge.set (Obs.Gauge.make "rt.gauge") 0.30000000000000004;
  let t = Obs.Timer.make "rt.timer" in
  Obs.Timer.add t 0.1;
  Obs.Timer.add t 0.2;
  let h = Obs.Histogram.make ~bounds:[| 1e-6; 0.125; 3.0 |] "rt.hist" in
  Obs.Histogram.observe h 1e-7;
  Obs.Histogram.observe h 0.1;
  Obs.Histogram.observe h 7.5;
  Obs.Export.snapshot ()

let check_roundtrip which encode decode =
  let snap = populate () in
  let back = decode (encode snap) in
  if back <> snap then
    Alcotest.failf "%s round-trip changed the snapshot" which

let test_csv_roundtrip () =
  check_roundtrip "CSV" Obs.Export.to_csv Obs.Export.of_csv

let test_json_roundtrip () =
  check_roundtrip "JSON" Obs.Export.to_json Obs.Export.of_json

let test_csv_shape () =
  Obs.reset_all ();
  let rows = String.split_on_char '\n' (Obs.Export.to_csv (populate ())) in
  let find prefix =
    match List.find_opt (fun r -> String.length r >= String.length prefix
                                  && String.sub r 0 (String.length prefix) = prefix) rows with
    | Some r -> r
    | None -> Alcotest.failf "no row starting with %s" prefix
  in
  Alcotest.(check string) "counter row" "counter,rt.counter,12345"
    (find "counter,rt.counter");
  Alcotest.(check string) "timer row"
    (Printf.sprintf "timer,rt.timer,2,%.17g" 0.30000000000000004)
    (find "timer,rt.timer")

let test_of_csv_rejects_garbage () =
  match Obs.Export.of_csv "nonsense,row" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "of_csv accepted a malformed row"

let test_of_json_rejects_garbage () =
  match Obs.Export.of_json "{\"counters\":" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "of_json accepted truncated input"

let () =
  Alcotest.run "obs"
    [
      ( "scalars",
        [
          Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
          Alcotest.test_case "make is idempotent" `Quick
            test_counter_idempotent_make;
          Alcotest.test_case "bad names rejected" `Quick test_bad_name_rejected;
          Alcotest.test_case "gauge last-write-wins" `Quick
            test_gauge_last_write_wins;
          Alcotest.test_case "timer with fake clock" `Quick
            test_timer_with_fake_clock;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantile;
          Alcotest.test_case "bad bounds rejected" `Quick
            test_histogram_bad_bounds;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and durations" `Quick test_span_nesting;
          Alcotest.test_case "pops on raise" `Quick test_span_pops_on_raise;
        ] );
      ( "switch",
        [
          Alcotest.test_case "disabled mode is a no-op" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "reset_all zeroes" `Quick test_reset_all;
        ] );
      ( "export",
        [
          Alcotest.test_case "CSV round-trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "CSV row shape" `Quick test_csv_shape;
          Alcotest.test_case "of_csv rejects garbage" `Quick
            test_of_csv_rejects_garbage;
          Alcotest.test_case "of_json rejects garbage" `Quick
            test_of_json_rejects_garbage;
        ] );
    ]
