module N = Sdn.Network
module Pt = Nfv_multicast.Pseudo_tree
module Vnf = Sdn.Vnf
module Rng = Topology.Rng

(* a 5-node path network 0-1-2-3-4 with a server at 2, unit costs *)
let fixture () =
  let rng = Rng.create 1 in
  let topo =
    Topology.Topo.make ~name:"path"
      (Mcgraph.Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ])
  in
  N.make
    ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
    ~rng ~servers:[ 2 ] topo

let request () =
  Sdn.Request.make ~id:7 ~source:0 ~destinations:[ 4 ] ~bandwidth:10.0
    ~chain:[ Vnf.Nat ]

let simple_tree () =
  let req = request () in
  Pt.make ~request:req ~servers:[ 2 ]
    ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
    ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 2; 3 ] }) ]

let test_cost () =
  let net = fixture () in
  let t = simple_tree () in
  (* 4 edges × b=10 × unit cost 1 + chain NAT 25 MHz × unit cost 1 *)
  Alcotest.check Tutil.check_float "bandwidth" 40.0 (Pt.bandwidth_cost net t);
  Alcotest.check Tutil.check_float "computing" 25.0 (Pt.computing_cost net t);
  Alcotest.check Tutil.check_float "total" 65.0 (Pt.cost net t);
  Alcotest.(check int) "traversals" 4 (Pt.total_edge_traversals t);
  Alcotest.(check int) "servers" 1 (Pt.server_count t)

let test_validate_ok () =
  let net = fixture () in
  match Pt.validate net (simple_tree ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %s" e

let test_validate_detects_wrong_server () =
  let net = fixture () in
  let req = request () in
  let t =
    Pt.make ~request:req ~servers:[ 2 ]
      ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
      (* route claims processing at node 3, which is not a placement *)
      ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 3; onward = [ 2; 3 ] }) ]
  in
  match Pt.validate net t with
  | Ok () -> Alcotest.fail "should reject: unplaced server"
  | Error _ -> ()

let test_validate_detects_broken_walk () =
  let net = fixture () in
  let req = request () in
  let t =
    Pt.make ~request:req ~servers:[ 2 ]
      ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
      (* to_server skips edge 1, so the walk breaks at node 1 *)
      ~routes:[ (4, { Pt.to_server = [ 0 ]; server = 2; onward = [ 2; 3 ] }) ]
  in
  match Pt.validate net t with
  | Ok () -> Alcotest.fail "should reject: broken walk"
  | Error _ -> ()

let test_validate_detects_missing_route () =
  let net = fixture () in
  let req = request () in
  let t = Pt.make ~request:req ~servers:[ 2 ] ~edge_uses:[ (0, 1) ] ~routes:[] in
  match Pt.validate net t with
  | Ok () -> Alcotest.fail "should reject: no witness"
  | Error _ -> ()

let test_validate_detects_out_of_support () =
  let net = fixture () in
  let req = request () in
  let t =
    Pt.make ~request:req ~servers:[ 2 ]
      ~edge_uses:[ (0, 1); (1, 1) ] (* onward edges 2,3 missing from support *)
      ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 2; 3 ] }) ]
  in
  match Pt.validate net t with
  | Ok () -> Alcotest.fail "should reject: support"
  | Error _ -> ()

let test_edge_uses_of_list () =
  Alcotest.(check (list (pair int int))) "multiset" [ (1, 2); (3, 1); (7, 3) ]
    (Pt.edge_uses_of_list [ 7; 1; 3; 7; 1; 7 ])

let test_make_merges_repeats () =
  let req = request () in
  let t =
    Pt.make ~request:req ~servers:[ 2 ] ~edge_uses:[ (0, 1); (0, 2); (1, 1) ]
      ~routes:[]
  in
  Alcotest.(check (list (pair int int))) "merged" [ (0, 3); (1, 1) ] t.Pt.edge_uses

let test_make_validation () =
  let req = request () in
  Alcotest.check_raises "no servers" (Invalid_argument "Pseudo_tree.make: no servers")
    (fun () -> ignore (Pt.make ~request:req ~servers:[] ~edge_uses:[] ~routes:[]));
  Alcotest.check_raises "bad multiplicity"
    (Invalid_argument "Pseudo_tree.make: non-positive multiplicity") (fun () ->
      ignore (Pt.make ~request:req ~servers:[ 2 ] ~edge_uses:[ (0, 0) ] ~routes:[]))

let test_allocation () =
  let t = simple_tree () in
  let alloc = Pt.allocation t in
  Alcotest.(check int) "link entries" 4 (List.length alloc.N.links);
  List.iter
    (fun (_, amt) -> Alcotest.check Tutil.check_float "b per use" 10.0 amt)
    alloc.N.links;
  Alcotest.(check (list (pair int (float 1e-6)))) "node demand" [ (2, 25.0) ]
    alloc.N.nodes

let test_double_traversal_allocation () =
  let req = request () in
  let t = Pt.make ~request:req ~servers:[ 2 ] ~edge_uses:[ (0, 2) ] ~routes:[] in
  let alloc = Pt.allocation t in
  Alcotest.(check (list (pair int (float 1e-6)))) "2b on double use" [ (0, 20.0) ]
    alloc.N.links

let () =
  Alcotest.run "pseudo_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "cost decomposition" `Quick test_cost;
          Alcotest.test_case "validate accepts" `Quick test_validate_ok;
          Alcotest.test_case "rejects unplaced server" `Quick
            test_validate_detects_wrong_server;
          Alcotest.test_case "rejects broken walk" `Quick
            test_validate_detects_broken_walk;
          Alcotest.test_case "rejects missing witness" `Quick
            test_validate_detects_missing_route;
          Alcotest.test_case "rejects out-of-support witness" `Quick
            test_validate_detects_out_of_support;
          Alcotest.test_case "edge_uses_of_list" `Quick test_edge_uses_of_list;
          Alcotest.test_case "make merges repeats" `Quick test_make_merges_repeats;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "allocation" `Quick test_allocation;
          Alcotest.test_case "double traversal allocation" `Quick
            test_double_traversal_allocation;
        ] );
    ]
