module Heap = Mcgraph.Heap

let test_empty () =
  let h = Heap.create 10 in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check (option (pair int (float 0.0)))) "pop" None (Heap.pop_min h)

let test_singleton () =
  let h = Heap.create 4 in
  Heap.insert h ~key:2 5.0;
  Alcotest.(check bool) "mem" true (Heap.mem h 2);
  Alcotest.(check bool) "not mem" false (Heap.mem h 1);
  Alcotest.(check (option (float 0.0))) "priority" (Some 5.0) (Heap.priority h 2);
  Alcotest.(check (option (pair int (float 0.0)))) "pop" (Some (2, 5.0)) (Heap.pop_min h);
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_ordering () =
  let h = Heap.create 8 in
  List.iter (fun (k, p) -> Heap.insert h ~key:k p)
    [ (0, 3.0); (1, 1.0); (2, 2.0); (3, 0.5); (4, 9.0) ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _) ->
      order := k :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending priority order" [ 3; 1; 2; 0; 4 ]
    (List.rev !order)

let test_decrease () =
  let h = Heap.create 4 in
  Heap.insert h ~key:0 10.0;
  Heap.insert h ~key:1 5.0;
  Heap.decrease h ~key:0 1.0;
  Alcotest.(check (option (pair int (float 0.0)))) "decreased wins" (Some (0, 1.0))
    (Heap.pop_min h)

let test_decrease_increase_rejected () =
  let h = Heap.create 4 in
  Heap.insert h ~key:0 1.0;
  Alcotest.check_raises "increase rejected"
    (Invalid_argument "Heap.decrease: priority increase") (fun () ->
      Heap.decrease h ~key:0 2.0)

let test_insert_duplicate_rejected () =
  let h = Heap.create 4 in
  Heap.insert h ~key:0 1.0;
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Heap.insert: key already present") (fun () ->
      Heap.insert h ~key:0 2.0)

let test_out_of_range () =
  let h = Heap.create 4 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Heap.insert: key out of range") (fun () ->
      Heap.insert h ~key:4 1.0)

let test_insert_or_decrease () =
  let h = Heap.create 4 in
  Heap.insert_or_decrease h ~key:1 5.0;
  Heap.insert_or_decrease h ~key:1 3.0;
  Heap.insert_or_decrease h ~key:1 7.0;
  Alcotest.(check (option (float 0.0))) "kept min" (Some 3.0) (Heap.priority h 1)

let test_clear () =
  let h = Heap.create 4 in
  Heap.insert h ~key:0 1.0;
  Heap.insert h ~key:1 2.0;
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "key cleared" false (Heap.mem h 0);
  Heap.insert h ~key:0 3.0;
  Alcotest.(check (option (float 0.0))) "reusable" (Some 3.0) (Heap.priority h 0)

let test_negative_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Heap.create: negative capacity") (fun () ->
      ignore (Heap.create (-1)))

(* qcheck: popping everything yields priorities in sorted order *)
let prop_heapsort =
  Tutil.qtest "heap drains in sorted order"
    QCheck.(list_of_size (Gen.int_range 0 200) (float_range 0.0 100.0))
    (fun prios ->
      let n = List.length prios in
      let h = Heap.create (max n 1) in
      List.iteri (fun i p -> Heap.insert h ~key:i p) prios;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (_, p) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

(* qcheck: insert_or_decrease tracks the running minimum per key *)
let prop_running_min =
  Tutil.qtest "insert_or_decrease keeps per-key minimum"
    QCheck.(
      list_of_size (Gen.int_range 1 200)
        (pair (int_bound 19) (float_range 0.0 100.0)))
    (fun updates ->
      let h = Heap.create 20 in
      let best = Hashtbl.create 16 in
      List.iter
        (fun (k, p) ->
          Heap.insert_or_decrease h ~key:k p;
          let cur = Option.value (Hashtbl.find_opt best k) ~default:infinity in
          Hashtbl.replace best k (Float.min cur p))
        updates;
      Hashtbl.fold
        (fun k expect ok -> ok && Heap.priority h k = Some expect)
        best true)

(* qcheck: mixed pops and inserts never violate the order invariant *)
let prop_mixed_ops =
  Tutil.qtest "interleaved pops return non-decreasing values vs remaining"
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 0.0 50.0))
    (fun prios ->
      let n = List.length prios in
      let h = Heap.create (2 * n) in
      let ok = ref true in
      List.iteri
        (fun i p ->
          Heap.insert h ~key:i p;
          if i mod 3 = 2 then begin
            match Heap.pop_min h with
            | None -> ()
            | Some (_, popped) ->
              (* popped must be <= every remaining priority *)
              for k = 0 to (2 * n) - 1 do
                match Heap.priority h k with
                | Some q when q < popped -. 1e-12 -> ok := false
                | _ -> ()
              done
          end)
        prios;
      !ok)

let () =
  Alcotest.run "heap"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "decrease-key" `Quick test_decrease;
          Alcotest.test_case "decrease rejects increase" `Quick
            test_decrease_increase_rejected;
          Alcotest.test_case "duplicate insert rejected" `Quick
            test_insert_duplicate_rejected;
          Alcotest.test_case "key out of range" `Quick test_out_of_range;
          Alcotest.test_case "insert_or_decrease" `Quick test_insert_or_decrease;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "negative capacity" `Quick test_negative_capacity;
        ] );
      ("property", [ prop_heapsort; prop_running_min; prop_mixed_ops ]);
    ]
