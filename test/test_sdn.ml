module N = Sdn.Network
module Vnf = Sdn.Vnf
module Rng = Topology.Rng
module Cm = Nfv_multicast.Cost_model

let mk_net ?(seed = 1) ?(n = 20) () =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.5 ~beta:0.4 rng ~n in
  N.make_random_servers ~rng topo

(* --- vnf --- *)

let test_vnf_catalog () =
  Alcotest.(check int) "five kinds" 5 (Array.length Vnf.all_kinds);
  Array.iter
    (fun k ->
      Alcotest.(check bool) "positive demand" true (Vnf.demand_mhz k > 0.0);
      Alcotest.(check (option bool)) "round-trip" (Some true)
        (Option.map (fun k' -> k' = k) (Vnf.kind_of_string (Vnf.kind_to_string k))))
    Vnf.all_kinds;
  Alcotest.(check (option bool)) "unknown kind" None
    (Option.map (fun _ -> true) (Vnf.kind_of_string "quic-proxy"))

let test_chain_demand () =
  let c = [ Vnf.Nat; Vnf.Firewall; Vnf.Ids ] in
  Alcotest.check Tutil.check_float "sums" 145.0 (Vnf.chain_demand_mhz c);
  Alcotest.(check string) "render" "<NAT, Firewall, IDS>" (Vnf.chain_to_string c);
  Alcotest.check_raises "empty" (Invalid_argument "Vnf.chain_demand_mhz: empty chain")
    (fun () -> ignore (Vnf.chain_demand_mhz []))

let test_random_chain () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let c = Vnf.random_chain rng in
    let len = List.length c in
    Alcotest.(check bool) "length 1-3" true (len >= 1 && len <= 3);
    Alcotest.(check int) "distinct" len (List.length (List.sort_uniq compare c))
  done

(* --- request --- *)

let test_request_validation () =
  let ok =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 1; 2 ] ~bandwidth:100.0
      ~chain:[ Vnf.Nat ]
  in
  Alcotest.(check int) "terminals" 2 (Sdn.Request.terminal_count ok);
  Alcotest.check Tutil.check_float "demand" 25.0 (Sdn.Request.demand_mhz ok);
  Alcotest.check_raises "no dest" (Invalid_argument "Request.make: no destinations")
    (fun () ->
      ignore
        (Sdn.Request.make ~id:0 ~source:0 ~destinations:[] ~bandwidth:1.0
           ~chain:[ Vnf.Nat ]));
  Alcotest.check_raises "dup dest"
    (Invalid_argument "Request.make: duplicate destinations") (fun () ->
      ignore
        (Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 1; 1 ] ~bandwidth:1.0
           ~chain:[ Vnf.Nat ]));
  Alcotest.check_raises "source in dests"
    (Invalid_argument "Request.make: source among destinations") (fun () ->
      ignore
        (Sdn.Request.make ~id:0 ~source:1 ~destinations:[ 1 ] ~bandwidth:1.0
           ~chain:[ Vnf.Nat ]));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Request.make: non-positive bandwidth") (fun () ->
      ignore
        (Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 1 ] ~bandwidth:0.0
           ~chain:[ Vnf.Nat ]));
  Alcotest.check_raises "empty chain"
    (Invalid_argument "Request.make: empty service chain") (fun () ->
      ignore
        (Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 1 ] ~bandwidth:1.0 ~chain:[]))

(* --- network --- *)

let test_network_construction () =
  let net = mk_net () in
  Alcotest.(check int) "n" 20 (N.n net);
  Alcotest.(check int) "servers = 10%" 2 (N.server_count net);
  List.iter
    (fun v ->
      Alcotest.(check bool) "flag" true (N.is_server net v);
      Alcotest.(check bool) "capacity range" true
        (N.server_capacity net v >= 4000.0 && N.server_capacity net v <= 12000.0);
      Alcotest.check Tutil.check_float "fresh residual" (N.server_capacity net v)
        (N.server_residual net v))
    (N.servers net);
  for e = 0 to N.m net - 1 do
    if N.link_capacity net e < 1000.0 || N.link_capacity net e > 10000.0 then
      Alcotest.fail "link capacity out of paper range"
  done

let test_network_validation () =
  let rng = Rng.create 1 in
  let topo = Topology.Waxman.generate rng ~n:10 in
  Alcotest.check_raises "empty servers" (Invalid_argument "Network.make: no servers")
    (fun () -> ignore (N.make ~rng ~servers:[] topo));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Network.make: duplicate servers") (fun () ->
      ignore (N.make ~rng ~servers:[ 1; 1 ] topo));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Network.make: server out of range") (fun () ->
      ignore (N.make ~rng ~servers:[ 10 ] topo))

let test_non_server_access_rejected () =
  let net = mk_net () in
  let non_server =
    let rec find v = if N.is_server net v then find (v + 1) else v in
    find 0
  in
  Alcotest.check_raises "capacity of non-server"
    (Invalid_argument "Network.server_capacity: not a server") (fun () ->
      ignore (N.server_capacity net non_server))

let test_allocation_roundtrip () =
  let net = mk_net () in
  let v = List.hd (N.servers net) in
  let alloc = { N.links = [ (0, 100.0); (1, 50.0) ]; nodes = [ (v, 500.0) ] } in
  Alcotest.(check bool) "can" true (N.can_allocate net alloc);
  (match N.allocate net alloc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocate: %s" e);
  Alcotest.check Tutil.check_float "link drained" (N.link_capacity net 0 -. 100.0)
    (N.link_residual net 0);
  Alcotest.check Tutil.check_float "server drained" (N.server_capacity net v -. 500.0)
    (N.server_residual net v);
  N.release net alloc;
  Alcotest.check Tutil.check_float "restored" (N.link_capacity net 0)
    (N.link_residual net 0);
  Alcotest.check Tutil.check_float "server restored" (N.server_capacity net v)
    (N.server_residual net v)

let test_allocation_atomic () =
  let net = mk_net () in
  let v = List.hd (N.servers net) in
  let too_much = N.link_capacity net 1 +. 1.0 in
  let alloc =
    { N.links = [ (0, 10.0); (1, too_much) ]; nodes = [ (v, 10.0) ] }
  in
  (match N.allocate net alloc with
  | Ok () -> Alcotest.fail "should fail"
  | Error _ -> ());
  (* nothing was drained *)
  Alcotest.check Tutil.check_float "edge 0 untouched" (N.link_capacity net 0)
    (N.link_residual net 0);
  Alcotest.check Tutil.check_float "server untouched" (N.server_capacity net v)
    (N.server_residual net v)

let test_allocation_aggregates_repeats () =
  let net = mk_net () in
  let cap = N.link_capacity net 0 in
  let half = (cap /. 2.0) +. 1.0 in
  (* two repeats exceed capacity together even though each alone fits *)
  let alloc = { N.links = [ (0, half); (0, half) ]; nodes = [] } in
  Alcotest.(check bool) "rejected" false (N.can_allocate net alloc)

let test_over_release_rejected () =
  let net = mk_net () in
  Alcotest.check_raises "double free"
    (Invalid_argument "Network.release: link over-release") (fun () ->
      N.release net { N.links = [ (0, 1.0) ]; nodes = [] })

let test_reset () =
  let net = mk_net () in
  (match N.allocate net { N.links = [ (0, 100.0) ]; nodes = [] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocate: %s" e);
  N.reset net;
  Alcotest.check Tutil.check_float "reset" (N.link_capacity net 0)
    (N.link_residual net 0)

let test_utilization_metrics () =
  let net = mk_net () in
  Alcotest.check Tutil.check_float "idle mean" 0.0 (N.mean_link_utilization net);
  Alcotest.check Tutil.check_float "idle jain" 1.0 (N.jain_fairness net);
  let cap = N.link_capacity net 0 in
  (match N.allocate net { N.links = [ (0, cap) ]; nodes = [] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocate: %s" e);
  Alcotest.check Tutil.check_float "max util" 1.0 (N.max_link_utilization net);
  Alcotest.(check bool) "jain drops under imbalance" true (N.jain_fairness net < 1.0)

let test_uniform_profile () =
  let rng = Rng.create 1 in
  let topo = Topology.Waxman.generate rng ~n:10 in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
      ~rng ~servers:[ 0; 1 ] topo
  in
  for e = 0 to N.m net - 1 do
    Alcotest.check Tutil.check_float "uniform link" 1000.0 (N.link_capacity net e);
    Alcotest.check Tutil.check_float "unit cost" 1.0 (N.link_unit_cost net e)
  done;
  Alcotest.check Tutil.check_float "chain cost is demand" 145.0
    (N.chain_cost net 0 [ Vnf.Nat; Vnf.Firewall; Vnf.Ids ])

(* --- cost model --- *)

let test_cost_model_bounds () =
  Alcotest.check Tutil.check_float "idle" 0.0
    (Cm.normalized_weight ~capacity:100.0 ~residual:100.0 ~base:50.0);
  Alcotest.check Tutil.check_float "full" 49.0
    (Cm.normalized_weight ~capacity:100.0 ~residual:0.0 ~base:50.0);
  Alcotest.check Tutil.check_float "raw scales" 4900.0
    (Cm.exponential_cost ~capacity:100.0 ~residual:0.0 ~base:50.0)

let test_cost_model_monotone () =
  let prev = ref (-1.0) in
  for i = 0 to 10 do
    let r = 100.0 -. (10.0 *. float_of_int i) in
    let w = Cm.normalized_weight ~capacity:100.0 ~residual:r ~base:50.0 in
    Alcotest.(check bool) "monotone in utilisation" true (w > !prev);
    prev := w
  done

let test_cost_model_validation () =
  Alcotest.check_raises "base" (Invalid_argument "Cost_model: base must exceed 1")
    (fun () ->
      ignore (Cm.normalized_weight ~capacity:1.0 ~residual:1.0 ~base:1.0));
  Alcotest.check_raises "residual"
    (Invalid_argument "Cost_model: residual outside [0, capacity]") (fun () ->
      ignore (Cm.normalized_weight ~capacity:1.0 ~residual:2.0 ~base:2.0))

let test_cost_model_defaults () =
  let net = mk_net () in
  Alcotest.check Tutil.check_float "alpha = 2|V|" 40.0 (Cm.default_base net);
  Alcotest.check Tutil.check_float "sigma = |V|-1" 19.0 (Cm.default_sigma net)

(* property: exponential link cost grows with each allocation *)
let prop_link_weight_grows =
  Tutil.qtest ~count:60 "link weight strictly grows with allocations"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net = mk_net ~seed:(seed + 1) () in
      let base = Cm.default_base net in
      let ok = ref true in
      let w0 = ref (Cm.link_weight net ~base 0) in
      for _ = 1 to 5 do
        let amount = N.link_residual net 0 /. 4.0 in
        if amount > 1.0 then begin
          (match N.allocate net { N.links = [ (0, amount) ]; nodes = [] } with
          | Ok () -> ()
          | Error _ -> ok := false);
          let w1 = Cm.link_weight net ~base 0 in
          if w1 <= !w0 then ok := false;
          w0 := w1
        end
      done;
      !ok)

let () =
  Alcotest.run "sdn"
    [
      ( "vnf",
        [
          Alcotest.test_case "catalog" `Quick test_vnf_catalog;
          Alcotest.test_case "chain demand" `Quick test_chain_demand;
          Alcotest.test_case "random chain" `Quick test_random_chain;
        ] );
      ("request", [ Alcotest.test_case "validation" `Quick test_request_validation ]);
      ( "network",
        [
          Alcotest.test_case "construction" `Quick test_network_construction;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "non-server access" `Quick test_non_server_access_rejected;
          Alcotest.test_case "alloc/release round-trip" `Quick test_allocation_roundtrip;
          Alcotest.test_case "atomic failure" `Quick test_allocation_atomic;
          Alcotest.test_case "repeat aggregation" `Quick
            test_allocation_aggregates_repeats;
          Alcotest.test_case "over-release" `Quick test_over_release_rejected;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "utilisation metrics" `Quick test_utilization_metrics;
          Alcotest.test_case "uniform profile" `Quick test_uniform_profile;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "bounds" `Quick test_cost_model_bounds;
          Alcotest.test_case "monotone" `Quick test_cost_model_monotone;
          Alcotest.test_case "validation" `Quick test_cost_model_validation;
          Alcotest.test_case "paper defaults" `Quick test_cost_model_defaults;
        ] );
      ("property", [ prop_link_weight_grows ]);
    ]
