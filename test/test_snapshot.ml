module S = Sdn.Snapshot
module N = Sdn.Network
module Rng = Topology.Rng

let networks_equal a b =
  let ga = N.graph a and gb = N.graph b in
  Mcgraph.Graph.n ga = Mcgraph.Graph.n gb
  && Mcgraph.Graph.edge_list ga = Mcgraph.Graph.edge_list gb
  && N.servers a = N.servers b
  && List.for_all
       (fun v ->
         N.server_capacity a v = N.server_capacity b v
         && N.server_unit_cost a v = N.server_unit_cost b v
         && N.server_residual a v = N.server_residual b v)
       (N.servers a)
  && List.init (N.m a) Fun.id
     |> List.for_all (fun e ->
            N.link_capacity a e = N.link_capacity b e
            && N.link_unit_cost a e = N.link_unit_cost b e
            && N.link_residual a e = N.link_residual b e)

let test_network_roundtrip () =
  let rng = Rng.create 3 in
  let topo = Topology.Waxman.generate rng ~n:25 in
  let net = N.make_random_servers ~rng topo in
  match S.network_of_string (S.network_to_string net) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok net' -> Alcotest.(check bool) "round trip" true (networks_equal net net')

let test_residuals_roundtrip () =
  let rng = Rng.create 4 in
  let topo = Topology.Waxman.generate rng ~n:15 in
  let net = N.make_random_servers ~rng topo in
  let v = List.hd (N.servers net) in
  (match N.allocate net { N.links = [ (0, 123.5) ]; nodes = [ (v, 55.0) ] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "alloc: %s" e);
  match S.network_of_string (S.network_to_string net) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok net' ->
    Tutil.assert_close "link residual survives" (N.link_residual net 0)
      (N.link_residual net' 0);
    Tutil.assert_close "server residual survives" (N.server_residual net v)
      (N.server_residual net' v)

let test_geant_roundtrip_names () =
  let rng = Rng.create 5 in
  let net = N.make ~rng ~servers:Topology.Geant.default_servers (Topology.Geant.topology ()) in
  match S.network_of_string (S.network_to_string net) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok net' ->
    Alcotest.(check string) "city names survive" "Amsterdam"
      (Topology.Topo.node_name (N.topology net') 0);
    Alcotest.(check bool) "equal" true (networks_equal net net')

let test_requests_roundtrip () =
  let rng = Rng.create 6 in
  let topo = Topology.Waxman.generate rng ~n:30 in
  let net = N.make_random_servers ~rng topo in
  let reqs = Workload.Gen.sequence rng net ~count:20 in
  match S.requests_of_string (S.requests_to_string reqs) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok reqs' ->
    Alcotest.(check int) "count" 20 (List.length reqs');
    List.iter2
      (fun (a : Sdn.Request.t) (b : Sdn.Request.t) ->
        Alcotest.(check int) "id" a.Sdn.Request.id b.Sdn.Request.id;
        Alcotest.(check int) "source" a.Sdn.Request.source b.Sdn.Request.source;
        Alcotest.(check (list int)) "dests" a.Sdn.Request.destinations
          b.Sdn.Request.destinations;
        Alcotest.check Tutil.check_float "bandwidth" a.Sdn.Request.bandwidth
          b.Sdn.Request.bandwidth;
        Alcotest.(check bool) "chain" true
          (a.Sdn.Request.chain = b.Sdn.Request.chain))
      reqs reqs'

let test_scenario_roundtrip () =
  let rng = Rng.create 7 in
  let topo = Topology.Waxman.generate rng ~n:20 in
  let net = N.make_random_servers ~rng topo in
  let reqs = Workload.Gen.sequence rng net ~count:5 in
  match S.scenario_of_string (S.scenario_to_string net reqs) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (net', reqs') ->
    Alcotest.(check bool) "network" true (networks_equal net net');
    Alcotest.(check int) "requests" 5 (List.length reqs')

let test_scenario_solves_identically () =
  (* the real point of snapshots: the reloaded scenario reproduces the
     original run bit-for-bit *)
  let rng = Rng.create 8 in
  let topo = Topology.Waxman.generate rng ~n:25 in
  let net = N.make_random_servers ~rng topo in
  let reqs = Workload.Gen.sequence rng net ~count:10 in
  let text = S.scenario_to_string net reqs in
  match S.scenario_of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (net', reqs') ->
    List.iter2
      (fun r r' ->
        match
          (Nfv_multicast.Appro_multi.solve ~k:2 net r,
           Nfv_multicast.Appro_multi.solve ~k:2 net' r')
        with
        | Ok a, Ok b ->
          Tutil.assert_close "identical cost" a.Nfv_multicast.Appro_multi.cost
            b.Nfv_multicast.Appro_multi.cost
        | Error _, Error _ -> ()
        | _ -> Alcotest.fail "divergent feasibility")
      reqs reqs'

let test_parse_errors () =
  (match S.network_of_string "gibberish" with
  | Ok _ -> Alcotest.fail "should fail"
  | Error _ -> ());
  (match S.network_of_string "nfvm-snapshot 2\n" with
  | Ok _ -> Alcotest.fail "should reject version"
  | Error _ -> ());
  (match S.network_of_string "nfvm-snapshot 1\n" with
  | Ok _ -> Alcotest.fail "should need topology"
  | Error _ -> ());
  match S.network_of_string "nfvm-snapshot 1\ntopology \"x\" 3 1\nedge 0 99\n" with
  | Ok _ -> Alcotest.fail "should reject bad edge"
  | Error _ -> ()

let test_file_io () =
  let rng = Rng.create 9 in
  let topo = Topology.Waxman.generate rng ~n:10 in
  let net = N.make_random_servers ~rng topo in
  let path = Filename.temp_file "nfvm" ".snap" in
  S.save path (S.network_to_string net);
  (match S.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok text -> (
    match S.network_of_string text with
    | Ok net' -> Alcotest.(check bool) "file round trip" true (networks_equal net net')
    | Error e -> Alcotest.failf "parse: %s" e));
  Sys.remove path;
  match S.load path with
  | Ok _ -> Alcotest.fail "missing file should fail"
  | Error _ -> ()

let prop_roundtrip =
  Tutil.qtest ~count:60 "network snapshots round-trip"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, _ = Tutil.random_network seed ~lo:4 ~hi:30 in
      match S.network_of_string (S.network_to_string net) with
      | Ok net' -> networks_equal net net'
      | Error _ -> false)

let () =
  Alcotest.run "snapshot"
    [
      ( "unit",
        [
          Alcotest.test_case "network round-trip" `Quick test_network_roundtrip;
          Alcotest.test_case "residuals round-trip" `Quick test_residuals_roundtrip;
          Alcotest.test_case "GEANT names round-trip" `Quick test_geant_roundtrip_names;
          Alcotest.test_case "requests round-trip" `Quick test_requests_roundtrip;
          Alcotest.test_case "scenario round-trip" `Quick test_scenario_roundtrip;
          Alcotest.test_case "reloaded scenario solves identically" `Quick
            test_scenario_solves_identically;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "file io" `Quick test_file_io;
        ] );
      ("property", [ prop_roundtrip ]);
    ]
