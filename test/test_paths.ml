module G = Mcgraph.Graph
module P = Mcgraph.Paths

let path_graph n = G.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let unit_weight _ = 1.0

let test_dijkstra_path () =
  let g = path_graph 5 in
  let spt = P.dijkstra g ~weight:unit_weight ~source:0 in
  Alcotest.check Tutil.check_float "distance" 4.0 spt.P.dist.(4);
  Alcotest.(check (option (list int))) "edge path" (Some [ 0; 1; 2; 3 ])
    (P.path_edges g spt 4);
  Alcotest.(check (option (list int))) "node path" (Some [ 0; 1; 2; 3; 4 ])
    (P.path_nodes g spt 4)

let test_dijkstra_picks_cheaper () =
  (* 0-1 direct cost 10; 0-2-1 cost 2 *)
  let g = G.of_edges ~n:3 [ (0, 1); (0, 2); (2, 1) ] in
  let w = [| 10.0; 1.0; 1.0 |] in
  let spt = P.dijkstra g ~weight:(Tutil.weight_fn w) ~source:0 in
  Alcotest.check Tutil.check_float "cheap route" 2.0 spt.P.dist.(1);
  Alcotest.(check (option (list int))) "via node 2" (Some [ 1; 2 ])
    (P.path_edges g spt 1)

let test_dijkstra_unreachable () =
  let g = G.of_edges ~n:3 [ (0, 1) ] in
  let spt = P.dijkstra g ~weight:unit_weight ~source:0 in
  Alcotest.(check bool) "infinite" true (spt.P.dist.(2) = infinity);
  Alcotest.(check (option (list int))) "no path" None (P.path_edges g spt 2)

let test_dijkstra_infinite_edge_pruned () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let w e = if e = 1 then infinity else 1.0 in
  let spt = P.dijkstra g ~weight:w ~source:0 in
  Alcotest.(check bool) "pruned" true (spt.P.dist.(2) = infinity)

let test_dijkstra_negative_rejected () =
  let g = G.of_edges ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Paths.dijkstra: negative weight") (fun () ->
      ignore (P.dijkstra g ~weight:(fun _ -> -1.0) ~source:0))

let test_source_path () =
  let g = path_graph 3 in
  let spt = P.dijkstra g ~weight:unit_weight ~source:1 in
  Alcotest.(check (option (list int))) "empty at source" (Some []) (P.path_edges g spt 1)

let test_zero_weight_edges () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let spt = P.dijkstra g ~weight:(fun _ -> 0.0) ~source:0 in
  Alcotest.check Tutil.check_float "all zero" 0.0 spt.P.dist.(3);
  match P.path_edges g spt 3 with
  | Some edges -> Alcotest.(check int) "still a real path" 3 (List.length edges)
  | None -> Alcotest.fail "unreachable"

let test_apsp () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let w = [| 1.0; 1.0; 1.0; 10.0 |] in
  let a = P.all_pairs g ~weight:(Tutil.weight_fn w) in
  Alcotest.check Tutil.check_float "0->3 via chain" 3.0 (P.apsp_dist a 0 3);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2 ]) (P.apsp_path a 0 3);
  Alcotest.check Tutil.check_float "symmetric" (P.apsp_dist a 3 0) (P.apsp_dist a 0 3)

let test_path_cost () =
  let w = [| 1.5; 2.5; 3.0 |] in
  Alcotest.check Tutil.check_float "sum" 7.0
    (P.path_cost ~weight:(Tutil.weight_fn w) [ 0; 1; 2 ])

(* ---- properties ---- *)

let with_random_instance seed f =
  let g, rng = Tutil.random_connected_graph seed ~lo:2 ~hi:35 in
  let w = Tutil.random_weights rng g in
  f g (Tutil.weight_fn w) rng

(* dijkstra agrees with the Bellman–Ford oracle *)
let prop_vs_bellman_ford =
  Tutil.qtest ~count:150 "dijkstra = bellman-ford"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_random_instance seed (fun g weight rng ->
          let s = Topology.Rng.int rng (G.n g) in
          let d1 = (P.dijkstra g ~weight ~source:s).P.dist in
          let d2 = (P.bellman_ford g ~weight ~source:s).P.dist in
          Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) d1 d2))

(* extracted paths are walks whose cost equals the reported distance *)
let prop_path_consistency =
  Tutil.qtest ~count:150 "path cost = distance and path is a walk"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_random_instance seed (fun g weight rng ->
          let s = Topology.Rng.int rng (G.n g) in
          let spt = P.dijkstra g ~weight ~source:s in
          let ok = ref true in
          for t = 0 to G.n g - 1 do
            match P.path_edges g spt t with
            | None -> if spt.P.dist.(t) < infinity then ok := false
            | Some edges ->
              let cost = P.path_cost ~weight edges in
              if Float.abs (cost -. spt.P.dist.(t)) > 1e-6 then ok := false;
              (* walk check *)
              let rec walk node = function
                | [] -> node = t
                | e :: rest ->
                  let u, v = G.endpoints g e in
                  if u = node then walk v rest
                  else if v = node then walk u rest
                  else false
              in
              if not (walk s edges) then ok := false
          done;
          !ok))

(* triangle inequality over the APSP metric *)
let prop_apsp_triangle =
  Tutil.qtest ~count:60 "apsp satisfies the triangle inequality"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_random_instance seed (fun g weight _rng ->
          let a = P.all_pairs g ~weight in
          let n = G.n g in
          let ok = ref true in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              for k = 0 to n - 1 do
                if P.apsp_dist a i j > P.apsp_dist a i k +. P.apsp_dist a k j +. 1e-6
                then ok := false
              done
            done
          done;
          !ok))

(* apsp rows equal fresh single-source runs *)
let prop_apsp_rows =
  Tutil.qtest ~count:60 "apsp rows = dijkstra"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_random_instance seed (fun g weight _ ->
          let a = P.all_pairs g ~weight in
          let ok = ref true in
          for s = 0 to G.n g - 1 do
            let d = (P.dijkstra g ~weight ~source:s).P.dist in
            for t = 0 to G.n g - 1 do
              if Float.abs (d.(t) -. P.apsp_dist a s t) > 1e-6 then ok := false
            done
          done;
          !ok))

let () =
  Alcotest.run "paths"
    [
      ( "unit",
        [
          Alcotest.test_case "simple path" `Quick test_dijkstra_path;
          Alcotest.test_case "cheaper detour" `Quick test_dijkstra_picks_cheaper;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "infinity prunes" `Quick test_dijkstra_infinite_edge_pruned;
          Alcotest.test_case "negative rejected" `Quick test_dijkstra_negative_rejected;
          Alcotest.test_case "source path empty" `Quick test_source_path;
          Alcotest.test_case "zero weights" `Quick test_zero_weight_edges;
          Alcotest.test_case "apsp" `Quick test_apsp;
          Alcotest.test_case "path cost" `Quick test_path_cost;
        ] );
      ( "property",
        [
          prop_vs_bellman_ford;
          prop_path_consistency;
          prop_apsp_triangle;
          prop_apsp_rows;
        ] );
    ]
