module Fr = Nfv_multicast.Flow_rules
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

(* path network 0-1-2-3-4, server at 2 (same fixture as test_pseudo_tree) *)
let fixture () =
  let rng = Rng.create 1 in
  let topo =
    Topology.Topo.make ~name:"path"
      (Mcgraph.Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ])
  in
  N.make
    ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
    ~rng ~servers:[ 2 ] topo

let request () =
  Sdn.Request.make ~id:7 ~source:0 ~destinations:[ 4 ] ~bandwidth:10.0
    ~chain:[ Sdn.Vnf.Nat ]

let simple_tree () =
  let req = request () in
  Pt.make ~request:req ~servers:[ 2 ]
    ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
    ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 2; 3 ] }) ]

let test_compile_path () =
  let net = fixture () in
  let rules = Fr.of_pseudo_tree net (simple_tree ()) in
  (* 0,1 forward untagged; 2 has To_vm + tagged injection; 3 forwards
     tagged; 4 delivers *)
  Alcotest.(check (list int)) "state at every hop" [ 0; 1; 2; 3; 4 ]
    (Fr.switches_with_state rules);
  Alcotest.(check int) "server holds two rules" 2 (Fr.table_size rules 2);
  Alcotest.(check int) "total rules" 6 (Fr.total_rules rules)

let test_simulation_delivers () =
  let net = fixture () in
  let rules = Fr.of_pseudo_tree net (simple_tree ()) in
  let d = Fr.simulate net rules ~source:0 in
  Alcotest.(check (list int)) "delivered" [ 4 ] d.Fr.delivered;
  Alcotest.(check (list int)) "processed at server" [ 2 ] d.Fr.processed_at;
  Alcotest.(check (list (pair int int))) "each link once"
    [ (0, 1); (1, 1); (2, 1); (3, 1) ]
    d.Fr.link_loads

let test_verify_ok () =
  let net = fixture () in
  match Fr.verify net (simple_tree ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" e

let test_verify_rejects_missing_route () =
  let net = fixture () in
  let req = request () in
  (* witness that stops short of the destination *)
  let bad =
    Pt.make ~request:req ~servers:[ 2 ]
      ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
      ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 2 ] }) ]
  in
  match Fr.verify net bad with
  | Ok () -> Alcotest.fail "should reject short route"
  | Error _ -> ()

let test_backtrack_structure () =
  (* Y shape: 0-1 (trunk), 1-2 (to server), 1-3 (to dest). The processed
     packet backtracks from server 2 over edge 1 before descending to 3;
     edge 1 must carry two traversals. *)
  let rng = Rng.create 1 in
  let topo =
    Topology.Topo.make ~name:"Y"
      (Mcgraph.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (1, 3) ])
  in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
      ~rng ~servers:[ 2 ] topo
  in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  let pt =
    Pt.make ~request:req ~servers:[ 2 ]
      ~edge_uses:[ (0, 1); (1, 2); (2, 1) ]
      ~routes:[ (3, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 1; 2 ] }) ]
  in
  (match Fr.verify net pt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" e);
  let rules = Fr.of_pseudo_tree net pt in
  let d = Fr.simulate net rules ~source:0 in
  Alcotest.(check (list int)) "delivered" [ 3 ] d.Fr.delivered;
  (* edge 1 carries the packet up and back *)
  Alcotest.(check (option int)) "edge 1 twice" (Some 2)
    (List.assoc_opt 1 d.Fr.link_loads)

let test_multi_server_sharing () =
  (* two servers, two destinations; merged untagged rules fan out at the
     source *)
  let rng = Rng.create 1 in
  let g =
    Mcgraph.Graph.of_edges ~n:7
      [ (0, 1); (1, 5); (5, 2); (0, 3); (3, 6); (6, 4) ]
  in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:10_000.0 ~server_capacity:8000.0)
      ~rng ~servers:[ 5; 6 ]
      (Topology.Topo.make ~name:"two-cluster" g)
  in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 2; 4 ] ~bandwidth:100.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  match Nfv_multicast.Appro_multi.solve ~k:2 net req with
  | Error e -> Alcotest.failf "solve: %s" e
  | Ok res ->
    (match Fr.verify net res.Nfv_multicast.Appro_multi.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "verify: %s" e);
    let rules = Fr.of_pseudo_tree net res.Nfv_multicast.Appro_multi.tree in
    let d = Fr.simulate net rules ~source:0 in
    Alcotest.(check (list int)) "both delivered" [ 2; 4 ] d.Fr.delivered;
    Alcotest.(check (list int)) "both VMs used" [ 5; 6 ] d.Fr.processed_at

(* every solver's output passes the independent data-plane check *)
let prop_appro_verifies =
  Tutil.qtest ~count:80 "Appro_Multi output passes data-plane verification"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:6 ~hi:25 in
      let req = Tutil.random_request rng net ~id:0 in
      match Nfv_multicast.Appro_multi.solve ~k:3 net req with
      | Error _ -> true
      | Ok res -> (
        match Fr.verify net res.Nfv_multicast.Appro_multi.tree with
        | Ok () -> true
        | Error _ -> false))

let prop_one_server_verifies =
  Tutil.qtest ~count:80 "Alg_One_Server output passes data-plane verification"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:6 ~hi:25 in
      let req = Tutil.random_request rng net ~id:0 in
      match Nfv_multicast.One_server.solve net req with
      | Error _ -> true
      | Ok res -> (
        match Fr.verify net res.Nfv_multicast.One_server.tree with
        | Ok () -> true
        | Error _ -> false))

let prop_online_cp_verifies =
  Tutil.qtest ~count:40 "Online_CP admissions pass data-plane verification"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:8 ~hi:20 in
      let reqs = Workload.Gen.sequence rng net ~count:25 in
      List.for_all
        (fun r ->
          match Nfv_multicast.Online_cp.admit net r with
          | Nfv_multicast.Online_cp.Admitted a -> (
            match Fr.verify net a.Nfv_multicast.Online_cp.tree with
            | Ok () -> true
            | Error _ -> false)
          | Nfv_multicast.Online_cp.Rejected _ -> true)
        reqs)

let prop_sp_verifies =
  Tutil.qtest ~count:40 "SP admissions pass data-plane verification"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:8 ~hi:20 in
      let reqs = Workload.Gen.sequence rng net ~count:25 in
      List.for_all
        (fun r ->
          match Nfv_multicast.Online_sp.admit net r with
          | Nfv_multicast.Online_sp.Admitted a -> (
            match Fr.verify net a.Nfv_multicast.Online_sp.tree with
            | Ok () -> true
            | Error _ -> false)
          | Nfv_multicast.Online_sp.Rejected _ -> true)
        reqs)

let prop_loads_within_reservation =
  Tutil.qtest ~count:60 "simulated loads never exceed reservations"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:6 ~hi:25 in
      let req = Tutil.random_request rng net ~id:0 in
      match Nfv_multicast.Exact.optimal ~k:2 net req with
      | Error _ -> true
      | exception Invalid_argument _ -> true
      | Ok opt ->
        let pt = opt.Nfv_multicast.Exact.mtree in
        let rules = Fr.of_pseudo_tree net pt in
        let d = Fr.simulate net rules ~source:req.Sdn.Request.source in
        List.for_all
          (fun (e, load) ->
            match List.assoc_opt e pt.Pt.edge_uses with
            | Some uses -> load <= uses
            | None -> false)
          d.Fr.link_loads)

let () =
  Alcotest.run "flow_rules"
    [
      ( "unit",
        [
          Alcotest.test_case "compile path" `Quick test_compile_path;
          Alcotest.test_case "simulate delivers" `Quick test_simulation_delivers;
          Alcotest.test_case "verify ok" `Quick test_verify_ok;
          Alcotest.test_case "verify rejects short route" `Quick
            test_verify_rejects_missing_route;
          Alcotest.test_case "backtrack double traversal" `Quick
            test_backtrack_structure;
          Alcotest.test_case "multi-server sharing" `Quick test_multi_server_sharing;
        ] );
      ( "property",
        [
          prop_appro_verifies;
          prop_one_server_verifies;
          prop_online_cp_verifies;
          prop_sp_verifies;
          prop_loads_within_reservation;
        ] );
    ]
