module Uf = Mcgraph.Union_find

let test_initial () =
  let t = Uf.create 5 in
  Alcotest.(check int) "count" 5 (Uf.count t);
  for i = 0 to 4 do
    Alcotest.(check int) "self root" i (Uf.find t i);
    Alcotest.(check int) "singleton" 1 (Uf.size t i)
  done

let test_union () =
  let t = Uf.create 4 in
  Alcotest.(check bool) "merge" true (Uf.union t 0 1);
  Alcotest.(check bool) "redundant" false (Uf.union t 0 1);
  Alcotest.(check bool) "same" true (Uf.same t 0 1);
  Alcotest.(check bool) "different" false (Uf.same t 0 2);
  Alcotest.(check int) "count" 3 (Uf.count t);
  Alcotest.(check int) "size" 2 (Uf.size t 1)

let test_chain () =
  let t = Uf.create 100 in
  for i = 0 to 98 do
    ignore (Uf.union t i (i + 1))
  done;
  Alcotest.(check int) "one set" 1 (Uf.count t);
  Alcotest.(check int) "full size" 100 (Uf.size t 50);
  Alcotest.(check bool) "ends joined" true (Uf.same t 0 99)

let test_empty () =
  let t = Uf.create 0 in
  Alcotest.(check int) "count" 0 (Uf.count t)

let test_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Union_find.create: negative size") (fun () ->
      ignore (Uf.create (-3)))

(* qcheck: union-find agrees with a naive partition refinement *)
let prop_vs_naive =
  Tutil.qtest "matches naive partition"
    QCheck.(list_of_size (Gen.int_range 0 150) (pair (int_bound 29) (int_bound 29)))
    (fun unions ->
      let t = Uf.create 30 in
      let label = Array.init 30 Fun.id in
      let naive_union a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then
          Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Uf.union t a b);
          naive_union a b)
        unions;
      let ok = ref true in
      for i = 0 to 29 do
        for j = 0 to 29 do
          if Uf.same t i j <> (label.(i) = label.(j)) then ok := false
        done
      done;
      !ok)

(* qcheck: count + total size invariants *)
let prop_sizes =
  Tutil.qtest "sizes partition the universe"
    QCheck.(list_of_size (Gen.int_range 0 100) (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let t = Uf.create 20 in
      List.iter (fun (a, b) -> ignore (Uf.union t a b)) unions;
      (* every element's set size sums over distinct roots to 20 *)
      let roots = Hashtbl.create 16 in
      for i = 0 to 19 do
        Hashtbl.replace roots (Uf.find t i) (Uf.size t i)
      done;
      let total = Hashtbl.fold (fun _ s acc -> acc + s) roots 0 in
      total = 20 && Hashtbl.length roots = Uf.count t)

let () =
  Alcotest.run "union_find"
    [
      ( "unit",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "negative size" `Quick test_negative;
        ] );
      ("property", [ prop_vs_naive; prop_sizes ]);
    ]
