(* The failure-aware dynamic simulator: a designed trace pinning the
   exact merged event order (arrival / departure / fault / heal /
   restoration) with its tier counters, the capacity-conservation
   property after EVERY merged event, bit-identity of fault-free runs
   with the pre-fault simulator, the [~reset:false] contract, and the
   SRLG generator. *)

module G = Mcgraph.Graph
module N = Sdn.Network
module Fault = Sdn.Fault
module Adm = Nfv_multicast.Admission
module Dyn = Nfv_multicast.Dynamic
module Pt = Nfv_multicast.Pseudo_tree
module Repair = Nfv_multicast.Repair
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

let with_obs f =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

let counters names () =
  List.map (fun n -> Obs.Counter.value (Obs.Counter.make n)) names

let repair_counters =
  counters
    [
      "repair.attempted"; "repair.patched"; "repair.migrated";
      "repair.readmitted"; "repair.dropped";
    ]

let restoration_counters =
  counters [ "restoration.attempted"; "restoration.restored"; "restoration.failed" ]

let deltas before after = List.map2 (fun a b -> b - a) before after

let mk_request ~id ~source ~destinations ~bandwidth =
  Sdn.Request.make ~id ~source ~destinations ~bandwidth
    ~chain:[ Sdn.Vnf.Firewall ]

(* ---- the designed 6-node trace -----------------------------------------
       0 --e0-- 1 --e1-- 2(srv)
                |         |
                e3       e2
                |         |
                4 --e4-- 3(dest)
                |
                e5
                |
                5
   Two identical sessions 0 -> 3 through server 2. The timeline cuts
   e2 (both patched through 4), then kills the only server (session 0,
   still live, is dropped into the backlog), then heals the link (the
   restoration pass runs and fails — server still down) and finally the
   server (session 0 is restored). *)

let designed_net () =
  let g = G.create 6 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 1 2 in
  let e2 = G.add_edge g 2 3 in
  let e3 = G.add_edge g 1 4 in
  let e4 = G.add_edge g 4 3 in
  let e5 = G.add_edge g 4 5 in
  ignore (e0, e1, e3, e4, e5);
  let topo = Topology.Topo.make ~name:"churn-net" g in
  let net =
    N.make_explicit ~topology:topo
      ~servers:[ (2, 1000.0, 1.0) ]
      ~link_capacities:(Array.make (G.m g) 100.0)
      ~link_unit_costs:(Array.make (G.m g) 1.0) ()
  in
  (net, e2)

let designed_trace () =
  [
    {
      Dyn.at = 1.0;
      holding = 100.0;
      request = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
    };
    {
      Dyn.at = 2.0;
      holding = 3.0;
      request = mk_request ~id:1 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
    };
  ]

let designed_timeline e2 =
  [
    { Fault.at = 4.0; event = Fault.Link_down e2 };
    { Fault.at = 6.0; event = Fault.Server_down 2 };
    { Fault.at = 8.0; event = Fault.Link_up e2 };
    { Fault.at = 9.0; event = Fault.Server_up 2 };
  ]

let event_name = function
  | Fault.Link_down e -> Printf.sprintf "link_down:%d" e
  | Fault.Link_up e -> Printf.sprintf "link_up:%d" e
  | Fault.Server_down v -> Printf.sprintf "server_down:%d" v
  | Fault.Server_up v -> Printf.sprintf "server_up:%d" v
  | Fault.Degrade_link (e, f) -> Printf.sprintf "degrade_link:%d:%g" e f
  | Fault.Degrade_server (v, f) -> Printf.sprintf "degrade_server:%d:%g" v f

let describe (t, h) =
  match h with
  | Dyn.Arrived { id; tree } ->
    Printf.sprintf "%g arrived %d %s" t id
      (match tree with Some _ -> "admitted" | None -> "rejected")
  | Dyn.Departed { id; released } ->
    Printf.sprintf "%g departed %d %s" t id
      (if released then "released" else "noop")
  | Dyn.Fault_fired { event; victims } ->
    Printf.sprintf "%g fault %s victims=[%s]" t (event_name event)
      (String.concat ";" (List.map string_of_int victims))
  | Dyn.Repaired { id; tier; _ } ->
    Printf.sprintf "%g repaired %d %s" t id (Repair.tier_to_string tier)
  | Dyn.Dropped { id } -> Printf.sprintf "%g dropped %d" t id
  | Dyn.Restored { id; _ } -> Printf.sprintf "%g restored %d" t id

let test_designed_trace () =
  with_obs @@ fun () ->
  let net, e2 = designed_net () in
  let rep0 = repair_counters () and res0 = restoration_counters () in
  let seen = ref [] in
  let observe t h = seen := (t, h) :: !seen in
  let s =
    Dyn.run
      ~faults:(Dyn.make_faults (designed_timeline e2))
      ~observe net Adm.Online_cp (designed_trace ())
  in
  Alcotest.(check (list string))
    "the exact merged event order"
    [
      "1 arrived 0 admitted";
      "2 arrived 1 admitted";
      "4 fault link_down:2 victims=[0;1]";
      "4 repaired 0 patched";
      "4 repaired 1 patched";
      "5 departed 1 released";
      "6 fault server_down:2 victims=[0]";
      "6 dropped 0";
      "8 fault link_up:2 victims=[]";
      "9 fault server_up:2 victims=[]";
      "9 restored 0";
      "101 departed 0 released";
    ]
    (List.rev_map describe !seen);
  Alcotest.(check int) "arrivals" 2 s.Dyn.arrivals;
  Alcotest.(check int) "admitted" 2 s.Dyn.admitted;
  Alcotest.(check int) "completed" 2 s.Dyn.completed;
  Alcotest.(check int) "evicted" 3 s.Dyn.evicted;
  Alcotest.(check int) "repaired" 2 s.Dyn.repaired;
  Alcotest.(check int) "dropped" 1 s.Dyn.dropped;
  Alcotest.(check int) "restored" 1 s.Dyn.restored;
  Alcotest.(check int) "peak" 2 s.Dyn.peak_concurrent;
  Alcotest.(check (list int))
    "repair counter deltas (attempted/patched/migrated/readmitted/dropped)"
    [ 3; 2; 0; 0; 1 ]
    (deltas rep0 (repair_counters ()));
  Alcotest.(check (list int))
    "restoration counter deltas (attempted/restored/failed)" [ 2; 1; 1 ]
    (deltas res0 (restoration_counters ()));
  (* every session ended (departed or never restored): the heals returned
     every confiscation, so the network is whole again *)
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "link residual back to capacity" (N.link_capacity net e)
      (N.link_residual net e)
  done;
  Tutil.assert_close "server residual back to capacity"
    (N.server_capacity net 2) (N.server_residual net 2)

(* the double-release hazard: with restoration disabled, session 0 is
   dropped at the server failure and its departure at t=101 must be a
   no-op — the buggy behaviour (releasing the eviction-released tree
   again) would push residuals over capacity *)
let test_dropped_session_departure_is_noop () =
  let net, e2 = designed_net () in
  let seen = ref [] in
  let observe t h = seen := (t, h) :: !seen in
  let s =
    Dyn.run
      ~faults:(Dyn.make_faults ~restore:None (designed_timeline e2))
      ~observe net Adm.Online_cp (designed_trace ())
  in
  Alcotest.(check int) "nothing restored" 0 s.Dyn.restored;
  Alcotest.(check int) "only session 1 completed" 1 s.Dyn.completed;
  Alcotest.(check string) "the last event is the no-op departure"
    "101 departed 0 noop"
    (describe (List.hd !seen));
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "no double release: residual equals capacity"
      (N.link_capacity net e) (N.link_residual net e)
  done;
  Tutil.assert_close "server residual exact" (N.server_capacity net 2)
    (N.server_residual net 2)

(* ---- restoration order is deterministic under ties ----------------------
   Two identical sessions (equal Smallest_first footprint) are both
   dropped by a server failure; the heal's restoration pass must
   re-admit them in request-id order. The backlog lives in a hashtable,
   so without the explicit pre-sort before [Batch.reorder] the fold
   order (hence the tie order the stable sort preserves) would be
   whatever the table's bucket layout happens to be. *)
let test_restoration_order_on_ties () =
  let net, _ = designed_net () in
  let trace =
    [
      {
        Dyn.at = 1.0;
        holding = 100.0;
        request = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
      {
        Dyn.at = 2.0;
        holding = 100.0;
        request = mk_request ~id:1 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
    ]
  in
  let timeline =
    [
      { Fault.at = 4.0; event = Fault.Server_down 2 };
      { Fault.at = 6.0; event = Fault.Server_up 2 };
    ]
  in
  let seen = ref [] in
  let observe t h = seen := (t, h) :: !seen in
  let s =
    Dyn.run ~faults:(Dyn.make_faults timeline) ~observe net Adm.Online_cp trace
  in
  Alcotest.(check (list string))
    "tied backlog entries restore in request-id order"
    [
      "1 arrived 0 admitted";
      "2 arrived 1 admitted";
      "4 fault server_down:2 victims=[0;1]";
      "4 dropped 0";
      "4 dropped 1";
      "6 fault server_up:2 victims=[]";
      "6 restored 0";
      "6 restored 1";
      "101 departed 0 released";
      "102 departed 1 released";
    ]
    (List.rev_map describe !seen);
  Alcotest.(check int) "both dropped" 2 s.Dyn.dropped;
  Alcotest.(check int) "both restored" 2 s.Dyn.restored;
  Alcotest.(check int) "both completed" 2 s.Dyn.completed

(* ---- fault-free bit-identity -------------------------------------------
   Without faults the simulator must report exactly what the pre-fault
   simulator did: same queue construction, same admissions, same
   time-averaged integrals. Pinned against values recorded from the
   pre-change seed on this (seed, trace) pair, and cross-checked
   against a run with an EMPTY timeline (the fault plumbing engaged but
   never firing), which must match field for field. *)

let mk_random_net seed =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.4 ~beta:0.3 rng ~n:30 in
  (N.make_random_servers ~fraction:0.2 ~rng topo, rng)

let test_fault_free_regression () =
  let net, rng = mk_random_net 3 in
  let trace = Dyn.poisson_trace rng net ~rate:1.0 ~mean_holding:5.0 ~count:150 in
  let s = Dyn.run net Adm.Online_cp_no_threshold trace in
  Alcotest.(check int) "arrivals" 150 s.Dyn.arrivals;
  Alcotest.(check int) "admitted" 150 s.Dyn.admitted;
  Alcotest.(check int) "rejected" 0 s.Dyn.rejected;
  Alcotest.(check int) "completed" 150 s.Dyn.completed;
  Alcotest.(check int) "peak_concurrent" 13 s.Dyn.peak_concurrent;
  Alcotest.(check (float 1e-12)) "acceptance_ratio" 1.0 s.Dyn.acceptance_ratio;
  Alcotest.(check (float 1e-12)) "mean_concurrent" 5.1931939958136484
    s.Dyn.mean_concurrent;
  Alcotest.(check (float 1e-12)) "mean_utilization" 0.022334650899745515
    s.Dyn.mean_utilization;
  Alcotest.(check (float 1e-12)) "horizon" 162.28070351053435 s.Dyn.horizon;
  Alcotest.(check int) "evicted" 0 s.Dyn.evicted;
  Alcotest.(check int) "repaired" 0 s.Dyn.repaired;
  Alcotest.(check int) "dropped" 0 s.Dyn.dropped;
  Alcotest.(check int) "restored" 0 s.Dyn.restored;
  (* an empty timeline engages the fault machinery but never fires:
     every field must be identical *)
  let net2, rng2 = mk_random_net 3 in
  let trace2 =
    Dyn.poisson_trace rng2 net2 ~rate:1.0 ~mean_holding:5.0 ~count:150
  in
  let s2 =
    Dyn.run ~faults:(Dyn.make_faults []) net2 Adm.Online_cp_no_threshold trace2
  in
  Alcotest.(check bool) "empty timeline is bit-identical" true (s = s2)

(* ---- the reset:false contract ------------------------------------------ *)

let test_reset_false_keeps_caller_state () =
  let net, _ = designed_net () in
  let pre = mk_request ~id:99 ~source:0 ~destinations:[ 3 ] ~bandwidth:25.0 in
  (match Adm.admit_tree net Adm.Online_cp pre with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pre-allocation failed: %s" e);
  let before_links = Array.init (N.m net) (N.link_residual net) in
  let before_server = N.server_residual net 2 in
  Alcotest.(check bool) "pre-allocation holds capacity" true
    (before_links.(0) < 100.0);
  (* a short session arrives and departs on top of the caller's state *)
  let trace =
    [
      {
        Dyn.at = 1.0;
        holding = 2.0;
        request = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
    ]
  in
  let s = Dyn.run ~reset:false net Adm.Online_cp trace in
  Alcotest.(check int) "session admitted on residual capacity" 1 s.Dyn.admitted;
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "reset:false ends on the caller's residuals"
      before_links.(e) (N.link_residual net e)
  done;
  Tutil.assert_close "server residual preserved" before_server
    (N.server_residual net 2);
  (* the default wipes the caller's state *)
  let s' = Dyn.run net Adm.Online_cp trace in
  Alcotest.(check int) "admitted after reset" 1 s'.Dyn.admitted;
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "reset:true returns to full capacity"
      (N.link_capacity net e) (N.link_residual net e)
  done

(* ---- SRLG generator ----------------------------------------------------- *)

let test_srlg_partition_geant () =
  let rng = Rng.create 11 in
  let net = Sdn.Network.make_random_servers ~fraction:0.2 ~rng (Topology.Geant.topology ()) in
  let m = N.m net in
  let groups = Fault.srlg_partition ~groups:8 ~rng net in
  Alcotest.(check bool) "at most 8 groups" true (Array.length groups <= 8);
  Array.iter
    (fun g ->
      Alcotest.(check bool) "no empty group" true (g <> []);
      Alcotest.(check (list int)) "members ascend" (List.sort compare g) g)
    groups;
  let all = Array.to_list groups |> List.concat |> List.sort compare in
  Alcotest.(check (list int)) "groups partition every edge"
    (List.init m Fun.id) all;
  (* deterministic: an equal-seed draw reproduces the partition *)
  let rng2 = Rng.create 11 in
  let net2 =
    Sdn.Network.make_random_servers ~fraction:0.2 ~rng:rng2 (Topology.Geant.topology ())
  in
  let groups2 = Fault.srlg_partition ~groups:8 ~rng:rng2 net2 in
  Alcotest.(check bool) "same seed, same partition" true (groups = groups2)

(* edge cases of the partition generator: more groups than links, a
   single group, a two-link network, an edgeless network — none may
   produce an empty group or raise past the documented
   [Invalid_argument] on [groups <= 0] *)
let two_link_net () =
  let g = G.create 3 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 1 2 in
  ignore (e0, e1);
  let topo = Topology.Topo.make ~name:"two-link" g in
  N.make_explicit ~topology:topo
    ~servers:[ (1, 100.0, 1.0) ]
    ~link_capacities:(Array.make (G.m g) 100.0)
    ~link_unit_costs:(Array.make (G.m g) 1.0) ()

let check_partition ~m groups =
  Array.iter
    (fun g -> Alcotest.(check bool) "no empty group" true (g <> []))
    groups;
  let all = Array.to_list groups |> List.concat |> List.sort compare in
  Alcotest.(check (list int)) "partition covers every edge exactly once"
    (List.init m Fun.id) all

let test_srlg_partition_edge_cases () =
  (* round-robin branch (no coordinates): groups > |E| clamps to |E| *)
  let net = two_link_net () in
  let groups = Fault.srlg_partition ~groups:5 ~rng:(Rng.create 1) net in
  Alcotest.(check int) "two links, five requested: two groups" 2
    (Array.length groups);
  check_partition ~m:2 groups;
  (* a single group holds every edge *)
  let one = Fault.srlg_partition ~groups:1 ~rng:(Rng.create 1) net in
  Alcotest.(check int) "one group" 1 (Array.length one);
  Alcotest.(check (list int)) "the group is all edges" [ 0; 1 ] one.(0);
  (* geometric branch (GEANT coordinates): groups > |E| clamps too *)
  let rng = Rng.create 11 in
  let gnet =
    Sdn.Network.make_random_servers ~fraction:0.2 ~rng
      (Topology.Geant.topology ())
  in
  let m = N.m gnet in
  let big = Fault.srlg_partition ~groups:(m + 10) ~rng gnet in
  Alcotest.(check bool) "at most |E| groups" true (Array.length big <= m);
  check_partition ~m big;
  (* an edgeless network partitions into nothing *)
  let g0 = G.create 1 in
  let empty_net =
    N.make_explicit
      ~topology:(Topology.Topo.make ~name:"edgeless" g0)
      ~servers:[ (0, 1.0, 1.0) ]
      ~link_capacities:[||] ~link_unit_costs:[||] ()
  in
  Alcotest.(check int) "edgeless network: no groups" 0
    (Array.length (Fault.srlg_partition ~groups:4 ~rng:(Rng.create 1) empty_net));
  (* the documented failure mode, and the only one *)
  Alcotest.(check bool) "groups <= 0 raises Invalid_argument" true
    (try
       ignore (Fault.srlg_partition ~groups:0 ~rng:(Rng.create 1) net);
       false
     with Invalid_argument _ -> true)

let test_srlg_timeline_shape () =
  let rng = Rng.create 5 in
  let groups = [| [ 0; 1 ]; [ 2 ]; [ 3; 4; 5 ] |] in
  let tl = Fault.srlg_timeline ~heal_after:2.0 ~rng ~horizon:10.0 ~events:4 groups in
  (* every cut emits one Link_down per member and a matching heal 2.0
     later; the whole timeline is time-sorted *)
  let downs =
    List.filter (fun (s : Fault.stamped) ->
        match s.Fault.event with Fault.Link_down _ -> true | _ -> false)
      tl
  in
  let ups =
    List.filter (fun (s : Fault.stamped) ->
        match s.Fault.event with Fault.Link_up _ -> true | _ -> false)
      tl
  in
  Alcotest.(check int) "as many heals as cuts" (List.length downs)
    (List.length ups);
  let rec sorted = function
    | (a : Fault.stamped) :: (b :: _ as rest) ->
      a.Fault.at <= b.Fault.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by time" true (sorted tl);
  List.iter
    (fun (s : Fault.stamped) ->
      match s.Fault.event with
      | Fault.Link_down e ->
        let healed =
          List.exists
            (fun (u : Fault.stamped) ->
              u.Fault.event = Fault.Link_up e
              && Float.abs (u.Fault.at -. (s.Fault.at +. 2.0)) < 1e-9)
            ups
        in
        Alcotest.(check bool) "each cut heals exactly heal_after later" true
          healed
      | _ -> ())
    downs;
  (* singleton groups: one link per cut — the matched independent baseline *)
  let rng' = Rng.create 5 in
  let singles = Array.init 6 (fun e -> [ e ]) in
  let tl' =
    Fault.srlg_timeline ~heal_after:2.0 ~rng:rng' ~horizon:10.0 ~events:4 singles
  in
  Alcotest.(check int) "4 cuts + 4 heals" 8 (List.length tl');
  Alcotest.(check bool) "timeline validation" true
    (try
       ignore (Fault.srlg_timeline ~rng ~horizon:10.0 ~events:1 [||]);
       false
     with Invalid_argument _ -> true)

(* ---- conservation after every merged event ------------------------------
   capacity(r) = residual(r) + confiscated(r) + Σ live allocations on r,
   checked after EVERY observed event: the new surface is departures and
   restorations interleaved with confiscation. The shadow live set is
   maintained purely from the [happened] stream. *)

let sum_allocs shadow =
  let links = Hashtbl.create 32 and nodes = Hashtbl.create 32 in
  let bump tbl k v =
    Hashtbl.replace tbl k
      (v +. Option.value (Hashtbl.find_opt tbl k) ~default:0.0)
  in
  Hashtbl.iter
    (fun _ tree ->
      let a = Pt.allocation tree in
      List.iter (fun (e, amt) -> bump links e amt) a.N.links;
      List.iter (fun (v, amt) -> bump nodes v amt) a.N.nodes)
    shadow;
  (links, nodes)

let check_conservation ~ctx net fault shadow =
  let links, nodes = sum_allocs shadow in
  let held tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0.0 in
  for e = 0 to N.m net - 1 do
    let lhs = N.link_capacity net e -. N.link_residual net e in
    let rhs = Fault.confiscated_link fault e +. held links e in
    if Float.abs (lhs -. rhs) > 1e-6 then
      QCheck.Test.fail_reportf
        "%s: link %d allocated %.9g but confiscated+held = %.9g" ctx e lhs rhs
  done;
  List.iter
    (fun v ->
      let lhs = N.server_capacity net v -. N.server_residual net v in
      let rhs = Fault.confiscated_server fault v +. held nodes v in
      if Float.abs (lhs -. rhs) > 1e-6 then
        QCheck.Test.fail_reportf
          "%s: server %d allocated %.9g but confiscated+held = %.9g" ctx v lhs
          rhs)
    (N.servers net)

let conservation_property seed =
  with_obs @@ fun () ->
  let net, rng = Tutil.random_network seed ~lo:12 ~hi:24 in
  let trace = Dyn.poisson_trace rng net ~rate:3.0 ~mean_holding:6.0 ~count:24 in
  let horizon =
    List.fold_left (fun acc a -> Float.max acc a.Dyn.at) 1.0 trace *. 1.25
  in
  let timeline =
    Fault.random_timeline ~heal_after:(horizon /. 5.0) ~rng ~horizon ~events:8
      net
  in
  let fault = Fault.create net in
  let shadow : (int, Pt.t) Hashtbl.t = Hashtbl.create 16 in
  let rep0 = repair_counters () and res0 = restoration_counters () in
  let observe _t h =
    (match h with
    | Dyn.Arrived { id; tree = Some t } -> Hashtbl.replace shadow id t
    | Dyn.Arrived { tree = None; _ } -> ()
    | Dyn.Departed { id; released = true } -> Hashtbl.remove shadow id
    | Dyn.Departed { released = false; _ } -> ()
    | Dyn.Fault_fired { victims; _ } ->
      List.iter (Hashtbl.remove shadow) victims
    | Dyn.Repaired { id; tree; _ } -> Hashtbl.replace shadow id tree
    | Dyn.Dropped _ -> ()
    | Dyn.Restored { id; tree } -> Hashtbl.replace shadow id tree);
    check_conservation ~ctx:(describe (_t, h)) net fault shadow
  in
  let s =
    Dyn.run
      ~faults:(Dyn.make_faults ~controller:fault timeline)
      ~observe net Adm.Online_cp trace
  in
  check_conservation ~ctx:"final" net fault shadow;
  if s.Dyn.admitted + s.Dyn.rejected <> s.Dyn.arrivals then
    QCheck.Test.fail_reportf "admitted + rejected <> arrivals";
  if s.Dyn.evicted <> s.Dyn.repaired + s.Dyn.dropped then
    QCheck.Test.fail_reportf "every eviction must repair or drop";
  if s.Dyn.restored > s.Dyn.dropped then
    QCheck.Test.fail_reportf "restored %d > dropped %d" s.Dyn.restored
      s.Dyn.dropped;
  (match deltas rep0 (repair_counters ()) with
  | a :: tiers when a <> List.fold_left ( + ) 0 tiers ->
    QCheck.Test.fail_reportf "repair tier counters do not sum to attempted"
  | _ -> ());
  (match deltas res0 (restoration_counters ()) with
  | [ att; ok; fail ] when att <> ok + fail ->
    QCheck.Test.fail_reportf
      "restoration.attempted <> restored + failed (%d <> %d + %d)" att ok fail
  | _ -> ());
  true

let () =
  Alcotest.run "dynamic_churn"
    [
      ( "designed",
        [
          Alcotest.test_case "the designed trace, event for event" `Quick
            test_designed_trace;
          Alcotest.test_case "dropped session departure is a no-op" `Quick
            test_dropped_session_departure_is_noop;
          Alcotest.test_case "restoration order is id-sorted under ties" `Quick
            test_restoration_order_on_ties;
          Alcotest.test_case "SRLG partition on GEANT coordinates" `Quick
            test_srlg_partition_geant;
          Alcotest.test_case "SRLG partition edge cases" `Quick
            test_srlg_partition_edge_cases;
          Alcotest.test_case "SRLG timeline shape" `Quick
            test_srlg_timeline_shape;
        ] );
      ( "regression",
        [
          Alcotest.test_case "fault-free runs match the pre-fault simulator"
            `Quick test_fault_free_regression;
          Alcotest.test_case "reset:false keeps caller state" `Quick
            test_reset_false_keeps_caller_state;
        ] );
      ( "property",
        [
          Tutil.qtest ~count:25
            "capacity is conserved after every merged event"
            QCheck.small_nat conservation_property;
        ] );
    ]
