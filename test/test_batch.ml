module B = Nfv_multicast.Batch
module N = Sdn.Network
module Cp = Nfv_multicast.Online_cp
module G = Mcgraph.Graph
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

let with_obs f =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

let counter name = Obs.Counter.value (Obs.Counter.make name)

let mk seed count =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.35 ~beta:0.3 rng ~n:40 in
  let net = N.make_random_servers ~fraction:0.15 ~rng topo in
  let reqs = Workload.Gen.sequence rng net ~count in
  (net, reqs)

let test_order_names () =
  Alcotest.(check string) "arrival" "arrival" (B.order_to_string B.Arrival);
  Alcotest.(check string) "smallest" "smallest-first"
    (B.order_to_string B.Smallest_first);
  Alcotest.(check string) "largest" "largest-first"
    (B.order_to_string B.Largest_first);
  Alcotest.(check string) "cheapest" "cheapest-first"
    (B.order_to_string B.Cheapest_first)

let test_plan_counts () =
  let net, reqs = mk 1 40 in
  let r = B.plan ~k:2 net reqs B.Arrival in
  Alcotest.(check int) "partition" 40 (r.B.admitted + r.B.rejected);
  Alcotest.(check int) "trees recorded" r.B.admitted (List.length r.B.trees);
  Alcotest.(check bool) "cost accumulates" true
    (r.B.total_cost > 0.0 || r.B.admitted = 0)

let test_plan_trees_valid () =
  let net, reqs = mk 2 30 in
  let r = B.plan ~k:2 net reqs B.Smallest_first in
  List.iter
    (fun (_, t) ->
      match Nfv_multicast.Pseudo_tree.validate net t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid tree: %s" e)
    r.B.trees

let test_compare_orders_covers_all () =
  let net, reqs = mk 3 25 in
  let results = B.compare_orders ~k:2 net reqs in
  Alcotest.(check int) "four policies" 4 (List.length results);
  List.iter
    (fun (o, (r : B.result)) ->
      Alcotest.(check bool) "order echoed" true (r.B.order = o))
    results

let test_light_load_order_irrelevant () =
  (* with almost no contention every order admits everything *)
  let net, reqs = mk 4 5 in
  let results = B.compare_orders ~k:2 net reqs in
  List.iter
    (fun (_, (r : B.result)) -> Alcotest.(check int) "all admitted" 5 r.B.admitted)
    results

let prop_capacity_safe =
  Tutil.qtest ~count:20 "batch planning never exceeds capacity"
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, oi) ->
      let order = [| B.Arrival; B.Smallest_first; B.Largest_first; B.Cheapest_first |].(oi) in
      let net, reqs = mk (seed + 7) 50 in
      ignore (B.plan ~k:2 net reqs order);
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        if N.link_residual net e < -1e-6 then ok := false
      done;
      !ok)

(* --- regression: ordering vs reset, and reset:false semantics ---------- *)

let plan_fingerprint (r : B.result) =
  ((r.B.admitted, r.B.rejected), (r.B.total_cost, List.map fst r.B.trees))

let fingerprint_t =
  Alcotest.(pair (pair int int) (pair (float 0.0) (list int)))

(* [plan] used to run Cheapest_first's pricing solves *before* the
   network reset, so leftover residuals from an earlier run could leak
   into the promised idle-network prices. Pricing must see the reset
   state: a polluted network and a fresh twin must produce the same
   plan, bit for bit. *)
let test_cheapest_pricing_sees_reset_state () =
  let net1, reqs1 = mk 9 30 in
  let net2, reqs2 = mk 9 30 in
  (* pollute net1 with a run under another policy, then replan *)
  ignore (B.plan ~k:2 net1 reqs1 B.Largest_first);
  let polluted = B.plan ~k:2 net1 reqs1 B.Cheapest_first in
  let fresh = B.plan ~k:2 net2 reqs2 B.Cheapest_first in
  Alcotest.check fingerprint_t
    "identical plan from polluted and fresh networks"
    (plan_fingerprint fresh) (plan_fingerprint polluted)

let test_reset_false_plans_against_residuals () =
  let net, reqs = mk 10 20 in
  (* drain every link: nothing can be admitted against these residuals *)
  for e = 0 to N.m net - 1 do
    match N.allocate net { N.links = [ (e, N.link_residual net e) ]; nodes = [] } with
    | Ok () -> ()
    | Error err -> Alcotest.failf "drain: %s" err
  done;
  let starved = B.plan ~k:2 ~reset:false net reqs B.Cheapest_first in
  Alcotest.(check int) "reset:false keeps the drained residuals" 0
    starved.B.admitted;
  (* the default reset restores capacity — and therefore admissions *)
  let recovered = B.plan ~k:2 net reqs B.Cheapest_first in
  Alcotest.(check bool) "default reset recovers capacity" true
    (recovered.B.admitted > 0)

let test_plan_deterministic_across_twins () =
  let net1, reqs1 = mk 11 35 in
  let net2, reqs2 = mk 11 35 in
  let r1 = B.plan ~k:2 net1 reqs1 B.Cheapest_first in
  let r2 = B.plan ~k:2 net2 reqs2 B.Cheapest_first in
  Alcotest.check fingerprint_t
    "twin networks, twin plans" (plan_fingerprint r1) (plan_fingerprint r2)

(* --- the availability floor in plan and compare_orders ------------------ *)

(* the 6-node designed net of test_dynamic_churn: one server (node 2),
   six 100-Mbps links, so one SRLG group over every edge pools 600 Mbps *)
let designed_net () =
  let g = G.create 6 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 2);
  ignore (G.add_edge g 2 3);
  ignore (G.add_edge g 1 4);
  ignore (G.add_edge g 4 3);
  ignore (G.add_edge g 4 5);
  let topo = Topology.Topo.make ~name:"batch-net" g in
  N.make_explicit ~topology:topo
    ~servers:[ (2, 1000.0, 1.0) ]
    ~link_capacities:(Array.make (G.m g) 100.0)
    ~link_unit_costs:(Array.make (G.m g) 1.0) ()

let mk_request ~id ~bandwidth =
  Sdn.Request.make ~id ~source:0 ~destinations:[ 3 ] ~bandwidth
    ~chain:[ Sdn.Vnf.Firewall ]

(* [floor_blocks] used to release and re-commit every admitted
   allocation whenever reserve > 0 — two extra weight-epoch bumps per
   admit, flushing every Sp_window engine even though the floor passed.
   A plan whose floor never blocks must now leave the same epoch trail
   and the same shortest-path cache hit/miss profile as a plan with no
   [srlg] at all. *)
let test_passing_floor_no_epoch_churn () =
  with_obs @@ fun () ->
  let reqs =
    List.map (fun id -> mk_request ~id ~bandwidth:5.0) [ 0; 1; 2 ]
  in
  (* reserve 0.1 on the 600-Mbps group: three 15-Mbps trees leave 555,
     far above the 60-Mbps floor — every admit passes *)
  let run srlg =
    let net = designed_net () in
    let srlg =
      if srlg then
        Some (Cp.make_avail ~reserve:0.1 net [| List.init (N.m net) Fun.id |])
      else None
    in
    let e0 = N.weight_epoch net in
    let h0 = counter "sp_engine.cache_hits" in
    let m0 = counter "sp_engine.cache_misses" in
    let r = B.plan ?srlg net reqs B.Arrival in
    ( r.B.admitted,
      N.weight_epoch net - e0,
      counter "sp_engine.cache_hits" - h0,
      counter "sp_engine.cache_misses" - m0 )
  in
  let admitted, epochs, hits, misses = run false in
  let admitted', epochs', hits', misses' = run true in
  Alcotest.(check int) "baseline admits all" 3 admitted;
  Alcotest.(check int) "floored plan admits the same" admitted admitted';
  Alcotest.(check int) "a passing floor adds no epoch bumps" epochs epochs';
  Alcotest.(check int) "same shortest-path cache hits" hits hits';
  Alcotest.(check int) "same shortest-path cache misses" misses misses'

(* compare_orders used to silently drop [?srlg]: the floor could never
   flip an order's outcome. With a 480-Mbps floor on the 600-Mbps
   group, a 40-Mbps tree (120 Mbps over 3 links) lands exactly on the
   floor, after which nothing else fits — so largest-first admits only
   the big request while smallest-first packs both small ones first. *)
let test_compare_orders_floor_flips_an_order () =
  let reqs =
    [
      mk_request ~id:0 ~bandwidth:40.0;
      mk_request ~id:1 ~bandwidth:10.0;
      mk_request ~id:2 ~bandwidth:10.0;
    ]
  in
  let net = designed_net () in
  let admitted order results =
    let r = List.assq order results in
    r.B.admitted
  in
  (* without the floor every order admits everything *)
  let free = B.compare_orders net reqs in
  List.iter
    (fun (_, (r : B.result)) ->
      Alcotest.(check int) "no floor: all admitted" 3 r.B.admitted)
    free;
  let tight =
    Cp.make_avail ~reserve:0.8 net [| List.init (N.m net) Fun.id |]
  in
  let floored = B.compare_orders ~srlg:tight net reqs in
  Alcotest.(check int) "smallest-first packs the two small requests" 2
    (admitted B.Smallest_first floored);
  Alcotest.(check int) "largest-first lands on the floor and stops" 1
    (admitted B.Largest_first floored)

(* with [reset:false] every order must start from the caller's
   residuals — and leave them back in place afterwards *)
let test_compare_orders_reset_false () =
  let net = designed_net () in
  (* drain the only edge out of the source: nothing can be admitted *)
  (match N.allocate net { N.links = [ (0, 95.0) ]; nodes = [] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "drain: %s" e);
  let before = Array.init (N.m net) (N.link_residual net) in
  let reqs = [ mk_request ~id:0 ~bandwidth:10.0 ] in
  let starved = B.compare_orders ~reset:false net reqs in
  List.iter
    (fun (_, (r : B.result)) ->
      Alcotest.(check int) "reset:false sees the drained residuals" 0
        r.B.admitted)
    starved;
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "caller residuals restored after the comparison"
      before.(e) (N.link_residual net e)
  done;
  (* the default still resets: every order admits on the fresh net *)
  let fresh = B.compare_orders net reqs in
  List.iter
    (fun (_, (r : B.result)) ->
      Alcotest.(check int) "reset:true admits" 1 r.B.admitted)
    fresh

(* the packing-order advantage is statistical, not per-draw: aggregate
   over several fixed seeds *)
let test_smallest_beats_largest_in_aggregate () =
  let small_total = ref 0 and large_total = ref 0 in
  List.iter
    (fun seed ->
      let net, reqs = mk (seed + 300) 120 in
      let small = B.plan ~k:1 net reqs B.Smallest_first in
      let large = B.plan ~k:1 net reqs B.Largest_first in
      small_total := !small_total + small.B.admitted;
      large_total := !large_total + large.B.admitted)
    [ 0; 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "aggregate ordering advantage" true
    (!small_total >= !large_total)

let () =
  Alcotest.run "batch"
    [
      ( "unit",
        [
          Alcotest.test_case "order names" `Quick test_order_names;
          Alcotest.test_case "plan counters" `Quick test_plan_counts;
          Alcotest.test_case "trees valid" `Quick test_plan_trees_valid;
          Alcotest.test_case "compare_orders" `Quick test_compare_orders_covers_all;
          Alcotest.test_case "light load" `Quick test_light_load_order_irrelevant;
        ] );
      ( "regression",
        [
          Alcotest.test_case "cheapest-first prices the reset state" `Quick
            test_cheapest_pricing_sees_reset_state;
          Alcotest.test_case "reset:false plans against residuals" `Quick
            test_reset_false_plans_against_residuals;
          Alcotest.test_case "deterministic across twins" `Quick
            test_plan_deterministic_across_twins;
          Alcotest.test_case "passing floor adds no epoch churn" `Quick
            test_passing_floor_no_epoch_churn;
          Alcotest.test_case "compare_orders threads the floor" `Quick
            test_compare_orders_floor_flips_an_order;
          Alcotest.test_case "compare_orders reset:false" `Quick
            test_compare_orders_reset_false;
        ] );
      ( "statistical",
        [
          Alcotest.test_case "smallest beats largest in aggregate" `Slow
            test_smallest_beats_largest_in_aggregate;
        ] );
      ("property", [ prop_capacity_safe ]);
    ]
