module B = Nfv_multicast.Batch
module N = Sdn.Network
module Rng = Topology.Rng

let mk seed count =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.35 ~beta:0.3 rng ~n:40 in
  let net = N.make_random_servers ~fraction:0.15 ~rng topo in
  let reqs = Workload.Gen.sequence rng net ~count in
  (net, reqs)

let test_order_names () =
  Alcotest.(check string) "arrival" "arrival" (B.order_to_string B.Arrival);
  Alcotest.(check string) "smallest" "smallest-first"
    (B.order_to_string B.Smallest_first);
  Alcotest.(check string) "largest" "largest-first"
    (B.order_to_string B.Largest_first);
  Alcotest.(check string) "cheapest" "cheapest-first"
    (B.order_to_string B.Cheapest_first)

let test_plan_counts () =
  let net, reqs = mk 1 40 in
  let r = B.plan ~k:2 net reqs B.Arrival in
  Alcotest.(check int) "partition" 40 (r.B.admitted + r.B.rejected);
  Alcotest.(check int) "trees recorded" r.B.admitted (List.length r.B.trees);
  Alcotest.(check bool) "cost accumulates" true
    (r.B.total_cost > 0.0 || r.B.admitted = 0)

let test_plan_trees_valid () =
  let net, reqs = mk 2 30 in
  let r = B.plan ~k:2 net reqs B.Smallest_first in
  List.iter
    (fun (_, t) ->
      match Nfv_multicast.Pseudo_tree.validate net t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid tree: %s" e)
    r.B.trees

let test_compare_orders_covers_all () =
  let net, reqs = mk 3 25 in
  let results = B.compare_orders ~k:2 net reqs in
  Alcotest.(check int) "four policies" 4 (List.length results);
  List.iter
    (fun (o, (r : B.result)) ->
      Alcotest.(check bool) "order echoed" true (r.B.order = o))
    results

let test_light_load_order_irrelevant () =
  (* with almost no contention every order admits everything *)
  let net, reqs = mk 4 5 in
  let results = B.compare_orders ~k:2 net reqs in
  List.iter
    (fun (_, (r : B.result)) -> Alcotest.(check int) "all admitted" 5 r.B.admitted)
    results

let prop_capacity_safe =
  Tutil.qtest ~count:20 "batch planning never exceeds capacity"
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, oi) ->
      let order = [| B.Arrival; B.Smallest_first; B.Largest_first; B.Cheapest_first |].(oi) in
      let net, reqs = mk (seed + 7) 50 in
      ignore (B.plan ~k:2 net reqs order);
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        if N.link_residual net e < -1e-6 then ok := false
      done;
      !ok)

(* --- regression: ordering vs reset, and reset:false semantics ---------- *)

let plan_fingerprint (r : B.result) =
  ((r.B.admitted, r.B.rejected), (r.B.total_cost, List.map fst r.B.trees))

let fingerprint_t =
  Alcotest.(pair (pair int int) (pair (float 0.0) (list int)))

(* [plan] used to run Cheapest_first's pricing solves *before* the
   network reset, so leftover residuals from an earlier run could leak
   into the promised idle-network prices. Pricing must see the reset
   state: a polluted network and a fresh twin must produce the same
   plan, bit for bit. *)
let test_cheapest_pricing_sees_reset_state () =
  let net1, reqs1 = mk 9 30 in
  let net2, reqs2 = mk 9 30 in
  (* pollute net1 with a run under another policy, then replan *)
  ignore (B.plan ~k:2 net1 reqs1 B.Largest_first);
  let polluted = B.plan ~k:2 net1 reqs1 B.Cheapest_first in
  let fresh = B.plan ~k:2 net2 reqs2 B.Cheapest_first in
  Alcotest.check fingerprint_t
    "identical plan from polluted and fresh networks"
    (plan_fingerprint fresh) (plan_fingerprint polluted)

let test_reset_false_plans_against_residuals () =
  let net, reqs = mk 10 20 in
  (* drain every link: nothing can be admitted against these residuals *)
  for e = 0 to N.m net - 1 do
    match N.allocate net { N.links = [ (e, N.link_residual net e) ]; nodes = [] } with
    | Ok () -> ()
    | Error err -> Alcotest.failf "drain: %s" err
  done;
  let starved = B.plan ~k:2 ~reset:false net reqs B.Cheapest_first in
  Alcotest.(check int) "reset:false keeps the drained residuals" 0
    starved.B.admitted;
  (* the default reset restores capacity — and therefore admissions *)
  let recovered = B.plan ~k:2 net reqs B.Cheapest_first in
  Alcotest.(check bool) "default reset recovers capacity" true
    (recovered.B.admitted > 0)

let test_plan_deterministic_across_twins () =
  let net1, reqs1 = mk 11 35 in
  let net2, reqs2 = mk 11 35 in
  let r1 = B.plan ~k:2 net1 reqs1 B.Cheapest_first in
  let r2 = B.plan ~k:2 net2 reqs2 B.Cheapest_first in
  Alcotest.check fingerprint_t
    "twin networks, twin plans" (plan_fingerprint r1) (plan_fingerprint r2)

(* the packing-order advantage is statistical, not per-draw: aggregate
   over several fixed seeds *)
let test_smallest_beats_largest_in_aggregate () =
  let small_total = ref 0 and large_total = ref 0 in
  List.iter
    (fun seed ->
      let net, reqs = mk (seed + 300) 120 in
      let small = B.plan ~k:1 net reqs B.Smallest_first in
      let large = B.plan ~k:1 net reqs B.Largest_first in
      small_total := !small_total + small.B.admitted;
      large_total := !large_total + large.B.admitted)
    [ 0; 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "aggregate ordering advantage" true
    (!small_total >= !large_total)

let () =
  Alcotest.run "batch"
    [
      ( "unit",
        [
          Alcotest.test_case "order names" `Quick test_order_names;
          Alcotest.test_case "plan counters" `Quick test_plan_counts;
          Alcotest.test_case "trees valid" `Quick test_plan_trees_valid;
          Alcotest.test_case "compare_orders" `Quick test_compare_orders_covers_all;
          Alcotest.test_case "light load" `Quick test_light_load_order_irrelevant;
        ] );
      ( "regression",
        [
          Alcotest.test_case "cheapest-first prices the reset state" `Quick
            test_cheapest_pricing_sees_reset_state;
          Alcotest.test_case "reset:false plans against residuals" `Quick
            test_reset_false_plans_against_residuals;
          Alcotest.test_case "deterministic across twins" `Quick
            test_plan_deterministic_across_twins;
        ] );
      ( "statistical",
        [
          Alcotest.test_case "smallest beats largest in aggregate" `Slow
            test_smallest_beats_largest_in_aggregate;
        ] );
      ("property", [ prop_capacity_safe ]);
    ]
