module Om = Nfv_multicast.Online_multi
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

let mk_net seed =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.4 ~beta:0.3 rng ~n:30 in
  (N.make_random_servers ~fraction:0.2 ~rng topo, rng)

let test_admits_idle () =
  let net, rng = mk_net 1 in
  let req = Workload.Gen.request rng net ~id:0 in
  match Om.admit ~k:2 net req with
  | Om.Rejected msg -> Alcotest.failf "idle network: %s" msg
  | Om.Admitted a -> (
    Alcotest.(check bool) "≤ 2 servers" true (List.length a.Om.servers <= 2);
    match Pt.validate net a.Om.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e)

let test_rejects_starved () =
  let net, rng = mk_net 2 in
  List.iter
    (fun v ->
      match
        N.allocate net { N.links = []; nodes = [ (v, N.server_residual net v) ] }
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "drain: %s" e)
    (N.servers net);
  let req = Workload.Gen.request rng net ~id:0 in
  match Om.admit net req with
  | Om.Rejected _ -> ()
  | Om.Admitted _ -> Alcotest.fail "should reject"

let test_k_validation () =
  let net, rng = mk_net 3 in
  let req = Workload.Gen.request rng net ~id:0 in
  Alcotest.check_raises "k=0" (Invalid_argument "Appro_multi: K must be at least 1")
    (fun () -> ignore (Om.admit ~k:0 net req))

let prop_capacity_invariant =
  Tutil.qtest ~count:30 "online multi never exceeds capacities"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 50) in
      let reqs = Workload.Gen.sequence rng net ~count:60 in
      ignore (Om.run ~k:2 net reqs);
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        if N.link_residual net e < -1e-6 then ok := false
      done;
      List.iter
        (fun v -> if N.server_residual net v < -1e-6 then ok := false)
        (N.servers net);
      !ok)

let prop_trees_validate =
  Tutil.qtest ~count:25 "admitted multi-server trees validate on both planes"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 500) in
      let reqs = Workload.Gen.sequence rng net ~count:30 in
      N.reset net;
      List.for_all
        (fun r ->
          match Om.admit ~k:2 net r with
          | Om.Admitted a -> (
            (match Pt.validate net a.Om.tree with Ok () -> true | Error _ -> false)
            &&
            match Nfv_multicast.Flow_rules.verify net a.Om.tree with
            | Ok () -> true
            | Error _ -> false)
          | Om.Rejected _ -> true)
        reqs)

(* under load, the K=2 variant should do at least as well as K=1 of the
   same policy (it strictly generalises the search space) *)
let prop_k2_not_worse_on_average =
  Tutil.qtest ~count:8 "K=2 admits at least ~ as many as K=1"
    QCheck.(int_bound 1_000)
    (fun seed ->
      let net, rng = mk_net (seed + 900) in
      let reqs = Workload.Gen.sequence rng net ~count:150 in
      let k1 = Om.run ~k:1 net reqs in
      let k2 = Om.run ~k:2 net reqs in
      (* admission is path-dependent; allow 10% slack *)
      float_of_int k2 >= 0.9 *. float_of_int k1)

let () =
  Alcotest.run "online_multi"
    [
      ( "unit",
        [
          Alcotest.test_case "admits idle" `Quick test_admits_idle;
          Alcotest.test_case "rejects starved" `Quick test_rejects_starved;
          Alcotest.test_case "k validation" `Quick test_k_validation;
        ] );
      ( "property",
        [ prop_capacity_invariant; prop_trees_validate; prop_k2_not_worse_on_average ] );
    ]
