module Gen = Workload.Gen
module N = Sdn.Network
module Rng = Topology.Rng

let mk_net seed n =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate rng ~n in
  (N.make_random_servers ~rng topo, rng)

let test_request_fields () =
  let net, rng = mk_net 1 50 in
  for id = 0 to 200 do
    let r = Gen.request rng net ~id in
    Alcotest.(check int) "id" id r.Sdn.Request.id;
    if r.Sdn.Request.source < 0 || r.Sdn.Request.source >= 50 then
      Alcotest.fail "source range";
    List.iter
      (fun d ->
        if d < 0 || d >= 50 then Alcotest.fail "dest range";
        if d = r.Sdn.Request.source then Alcotest.fail "source among dests")
      r.Sdn.Request.destinations;
    if r.Sdn.Request.bandwidth < 50.0 || r.Sdn.Request.bandwidth >= 200.0 then
      Alcotest.fail "bandwidth range";
    let len = List.length r.Sdn.Request.chain in
    if len < 1 || len > 3 then Alcotest.fail "chain length"
  done

let test_dmax_bound () =
  let net, rng = mk_net 2 100 in
  (* ratio fixed at 0.1 → at most 10 destinations *)
  let spec = { Gen.default_spec with dmax_ratio = Some 0.1 } in
  for id = 0 to 300 do
    let r = Gen.request ~spec rng net ~id in
    let k = List.length r.Sdn.Request.destinations in
    if k < 1 || k > 10 then Alcotest.failf "dest count %d outside [1,10]" k
  done

let test_default_ratio_bound () =
  let net, rng = mk_net 3 100 in
  for id = 0 to 300 do
    let r = Gen.request rng net ~id in
    let k = List.length r.Sdn.Request.destinations in
    (* ratio ≤ 0.2 → at most 20 destinations on 100 nodes *)
    if k > 20 then Alcotest.failf "dest count %d exceeds Dmax" k
  done

let test_fixed_chain () =
  let net, rng = mk_net 4 30 in
  let spec = { Gen.default_spec with chain = Some [ Sdn.Vnf.Ids ] } in
  let r = Gen.request ~spec rng net ~id:0 in
  Alcotest.(check bool) "chain honoured" true (r.Sdn.Request.chain = [ Sdn.Vnf.Ids ])

let test_custom_bandwidth () =
  let net, rng = mk_net 5 30 in
  let spec = { Gen.default_spec with bandwidth = (10.0, 11.0) } in
  for id = 0 to 50 do
    let r = Gen.request ~spec rng net ~id in
    if r.Sdn.Request.bandwidth < 10.0 || r.Sdn.Request.bandwidth >= 11.0 then
      Alcotest.fail "custom bandwidth"
  done

let test_sequence_ids () =
  let net, rng = mk_net 6 30 in
  let reqs = Gen.sequence rng net ~count:25 in
  Alcotest.(check (list int)) "sequential ids" (List.init 25 Fun.id)
    (List.map (fun r -> r.Sdn.Request.id) reqs)

let test_determinism () =
  let net1, rng1 = mk_net 7 40 in
  let net2, rng2 = mk_net 7 40 in
  ignore net2;
  let r1 = Gen.sequence rng1 net1 ~count:10 in
  let r2 = Gen.sequence rng2 net1 ~count:10 in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "same source" a.Sdn.Request.source b.Sdn.Request.source;
      Alcotest.(check (list int)) "same dests" a.Sdn.Request.destinations
        b.Sdn.Request.destinations)
    r1 r2

let test_tiny_network () =
  let rng = Rng.create 8 in
  let topo = Topology.Waxman.generate rng ~n:2 in
  let net = N.make ~rng ~servers:[ 0 ] topo in
  let r = Gen.request rng net ~id:0 in
  Alcotest.(check int) "one destination possible" 1
    (List.length r.Sdn.Request.destinations)

(* statistical sanity: sources cover the node range *)
let test_source_coverage () =
  let net, rng = mk_net 9 10 in
  let seen = Array.make 10 false in
  for id = 0 to 500 do
    let r = Gen.request rng net ~id in
    seen.(r.Sdn.Request.source) <- true
  done;
  Alcotest.(check bool) "all nodes used as source" true (Array.for_all Fun.id seen)

let () =
  Alcotest.run "workload"
    [
      ( "unit",
        [
          Alcotest.test_case "field ranges" `Quick test_request_fields;
          Alcotest.test_case "dmax bound" `Quick test_dmax_bound;
          Alcotest.test_case "default ratio bound" `Quick test_default_ratio_bound;
          Alcotest.test_case "fixed chain" `Quick test_fixed_chain;
          Alcotest.test_case "custom bandwidth" `Quick test_custom_bandwidth;
          Alcotest.test_case "sequence ids" `Quick test_sequence_ids;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "tiny network" `Quick test_tiny_network;
          Alcotest.test_case "source coverage" `Quick test_source_coverage;
        ] );
    ]
