module Pq = Mcgraph.Pqueue
module Dyn = Nfv_multicast.Dynamic
module Adm = Nfv_multicast.Admission
module N = Sdn.Network
module Rng = Topology.Rng

(* --- pairing heap --- *)

let test_pq_basic () =
  let q = Pq.of_list [ (3.0, "c"); (1.0, "a"); (2.0, "b") ] in
  Alcotest.(check int) "size" 3 (Pq.size q);
  Alcotest.(check (list (pair (float 0.0) string)))
    "sorted drain"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (Pq.to_sorted_list q)

let test_pq_empty () =
  Alcotest.(check bool) "empty" true (Pq.is_empty Pq.empty);
  Alcotest.(check bool) "pop none" true (Pq.pop Pq.empty = None);
  Alcotest.(check bool) "peek none" true (Pq.peek (Pq.empty : int Pq.t) = None)

let test_pq_persistence () =
  let q1 = Pq.insert Pq.empty 1.0 "x" in
  let q2 = Pq.insert q1 0.5 "y" in
  (* q1 unaffected by the later insert *)
  Alcotest.(check (option (pair (float 0.0) string))) "q1 min" (Some (1.0, "x"))
    (Pq.peek q1);
  Alcotest.(check (option (pair (float 0.0) string))) "q2 min" (Some (0.5, "y"))
    (Pq.peek q2)

let prop_pq_sorts =
  Tutil.qtest ~count:150 "pqueue drains in sorted order"
    QCheck.(list (float_range 0.0 1000.0))
    (fun prios ->
      let q = Pq.of_list (List.map (fun p -> (p, ())) prios) in
      let drained = List.map fst (Pq.to_sorted_list q) in
      drained = List.sort compare prios)

(* --- traces --- *)

let mk_net seed =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.4 ~beta:0.3 rng ~n:30 in
  (N.make_random_servers ~fraction:0.2 ~rng topo, rng)

let test_trace_shape () =
  let net, rng = mk_net 1 in
  let trace = Dyn.poisson_trace rng net ~rate:2.0 ~mean_holding:10.0 ~count:200 in
  Alcotest.(check int) "count" 200 (List.length trace);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a.Dyn.at <= b.Dyn.at && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "times ascend" true (ascending trace);
  List.iter
    (fun a ->
      if a.Dyn.holding <= 0.0 then Alcotest.fail "non-positive holding")
    trace;
  (* mean inter-arrival ≈ 1/rate *)
  let last = List.nth trace 199 in
  let mean_gap = last.Dyn.at /. 200.0 in
  Alcotest.(check bool) "rate calibrated" true
    (mean_gap > 0.3 && mean_gap < 0.8)

let test_trace_validation () =
  let net, rng = mk_net 2 in
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Dynamic.poisson_trace: non-positive rate or holding")
    (fun () ->
      ignore (Dyn.poisson_trace rng net ~rate:0.0 ~mean_holding:1.0 ~count:1))

(* --- simulation --- *)

let test_run_counts () =
  let net, rng = mk_net 3 in
  let trace = Dyn.poisson_trace rng net ~rate:1.0 ~mean_holding:5.0 ~count:150 in
  let s = Dyn.run net Adm.Online_cp_no_threshold trace in
  Alcotest.(check int) "arrivals" 150 s.Dyn.arrivals;
  Alcotest.(check int) "partition" 150 (s.Dyn.admitted + s.Dyn.rejected);
  Alcotest.(check bool) "completed ≤ admitted" true (s.Dyn.completed <= s.Dyn.admitted);
  Alcotest.(check bool) "peak ≥ mean" true
    (float_of_int s.Dyn.peak_concurrent >= s.Dyn.mean_concurrent -. 1e-9);
  Alcotest.(check bool) "horizon positive" true (s.Dyn.horizon > 0.0)

let test_all_sessions_end () =
  (* every admitted session departs once its holding time passes, because
     departures are scheduled within the trace horizon extended by the
     queue draining everything *)
  let net, rng = mk_net 4 in
  let trace = Dyn.poisson_trace rng net ~rate:5.0 ~mean_holding:1.0 ~count:100 in
  let s = Dyn.run net Adm.Sp trace in
  Alcotest.(check int) "all admitted complete" s.Dyn.admitted s.Dyn.completed;
  (* after all departures the network is back to full residuals *)
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "residual restored" (N.link_capacity net e)
      (N.link_residual net e)
  done;
  List.iter
    (fun v ->
      Tutil.assert_close "server restored" (N.server_capacity net v)
        (N.server_residual net v))
    (N.servers net)

let test_light_load_admits_everything () =
  let net, rng = mk_net 5 in
  let trace = Dyn.poisson_trace rng net ~rate:0.01 ~mean_holding:1.0 ~count:50 in
  let s = Dyn.run net Adm.Online_cp trace in
  Alcotest.(check int) "no rejections at negligible load" 0 s.Dyn.rejected

let prop_capacity_invariant_under_churn =
  Tutil.qtest ~count:25 "residuals stay within bounds under churn"
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, algo_idx) ->
      let algo =
        [| Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp |].(algo_idx)
      in
      let net, rng = mk_net (seed + 10) in
      let trace =
        Dyn.poisson_trace rng net ~rate:4.0 ~mean_holding:8.0 ~count:120
      in
      ignore (Dyn.run net algo trace);
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        let r = N.link_residual net e in
        if r < -1e-6 || r > N.link_capacity net e +. 1e-6 then ok := false
      done;
      !ok)

let prop_departures_improve_acceptance =
  Tutil.qtest ~count:15 "shorter sessions never hurt acceptance"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 500) in
      let trace_long =
        Dyn.poisson_trace rng net ~rate:3.0 ~mean_holding:50.0 ~count:120
      in
      (* same arrivals, shorter holding *)
      let trace_short =
        List.map (fun a -> { a with Dyn.holding = a.Dyn.holding /. 10.0 }) trace_long
      in
      let s_long = Dyn.run net Adm.Sp trace_long in
      let s_short = Dyn.run net Adm.Sp trace_short in
      (* admission is path-dependent, so allow a small slack rather than
         demanding strict dominance *)
      s_short.Dyn.admitted >= s_long.Dyn.admitted - 3)

let () =
  Alcotest.run "dynamic"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basic" `Quick test_pq_basic;
          Alcotest.test_case "empty" `Quick test_pq_empty;
          Alcotest.test_case "persistence" `Quick test_pq_persistence;
          prop_pq_sorts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "shape" `Quick test_trace_shape;
          Alcotest.test_case "validation" `Quick test_trace_validation;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "counters" `Quick test_run_counts;
          Alcotest.test_case "sessions end, resources return" `Quick
            test_all_sessions_end;
          Alcotest.test_case "light load" `Quick test_light_load_admits_everything;
        ] );
      ( "property",
        [ prop_capacity_invariant_under_churn; prop_departures_improve_acceptance ] );
    ]
