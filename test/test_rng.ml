module Rng = Topology.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done

let test_int_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Rng.int rng 0))

let test_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    if x < 0.0 || x >= 3.5 then Alcotest.failf "out of range: %f" x
  done

let test_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1_000 do
    let x = Rng.float_range rng 2.0 5.0 in
    if x < 2.0 || x >= 5.0 then Alcotest.failf "out of range: %f" x
  done;
  Alcotest.check Tutil.check_float "degenerate" 4.0 (Rng.float_range rng 4.0 4.0)

let test_int_range () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    let x = Rng.int_range rng 3 7 in
    if x < 3 || x > 7 then Alcotest.failf "out of range: %d" x;
    seen.(x - 3) <- true
  done;
  Alcotest.(check bool) "covers range" true (Array.for_all Fun.id seen)

let test_split_independence () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* child and parent produce different streams *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.int64 parent = Rng.int64 child then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 3)

let test_copy () =
  let a = Rng.create 13 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copies agree" (Rng.int64 a) (Rng.int64 b)
  done

let test_choose () =
  let rng = Rng.create 17 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let x = Rng.choose rng arr in
    Alcotest.(check bool) "member" true (Array.mem x arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_shuffle_permutation () =
  let rng = Rng.create 19 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 23 in
  for _ = 1 to 200 do
    let s = Rng.sample_without_replacement rng 5 10 in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> if x < 0 || x >= 10 then Alcotest.fail "range") s
  done;
  Alcotest.(check (list int)) "full sample" [ 0; 1; 2 ]
    (List.sort compare (Rng.sample_without_replacement rng 3 3));
  Alcotest.check_raises "too many" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement rng 4 3))

(* crude uniformity check: mean of many draws close to midpoint *)
let test_uniformity () =
  let rng = Rng.create 29 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

(* every sample index should appear with roughly equal frequency *)
let test_sample_unbiased () =
  let rng = Rng.create 31 in
  let counts = Array.make 6 0 in
  let rounds = 12_000 in
  for _ = 1 to rounds do
    List.iter (fun i -> counts.(i) <- counts.(i) + 1)
      (Rng.sample_without_replacement rng 3 6)
  done;
  (* each index expected rounds/2 times; allow 10% slack *)
  Array.iter
    (fun c ->
      if Float.abs (float_of_int c -. (float_of_int rounds /. 2.0))
         > 0.1 *. float_of_int rounds
      then Alcotest.failf "biased sample: %d" c)
    counts

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int non-positive" `Quick test_int_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "uniformity" `Slow test_uniformity;
          Alcotest.test_case "sample unbiased" `Slow test_sample_unbiased;
        ] );
    ]
