module G = Mcgraph.Graph
module T = Mcgraph.Traversal

let test_create () =
  let g = G.create 5 in
  Alcotest.(check int) "n" 5 (G.n g);
  Alcotest.(check int) "m" 0 (G.m g)

let test_add_edge () =
  let g = G.create 3 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 1 2 in
  Alcotest.(check int) "first id" 0 e0;
  Alcotest.(check int) "second id" 1 e1;
  Alcotest.(check int) "m" 2 (G.m g);
  Alcotest.(check (pair int int)) "endpoints" (0, 1) (G.endpoints g 0);
  Alcotest.(check int) "other endpoint" 0 (G.other_endpoint g 0 1);
  Alcotest.(check int) "degree 1" 2 (G.degree g 1);
  Alcotest.(check int) "degree 0" 1 (G.degree g 0)

let test_self_loop_rejected () =
  let g = G.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (G.add_edge g 1 1))

let test_out_of_range () =
  let g = G.create 2 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Graph.add_edge: node out of range") (fun () ->
      ignore (G.add_edge g 0 2))

let test_parallel_edges () =
  let g = G.create 2 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 0 1 in
  Alcotest.(check bool) "distinct ids" true (e0 <> e1);
  Alcotest.(check int) "m" 2 (G.m g);
  Alcotest.(check (option int)) "find_edge returns first" (Some e0)
    (G.find_edge g 0 1)

let test_find_edge () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (option int)) "present" (Some 1) (G.find_edge g 2 1);
  Alcotest.(check (option int)) "absent" None (G.find_edge g 0 3);
  Alcotest.(check bool) "mem" true (G.mem_edge g 3 2)

let test_neighbors () =
  let g = G.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let ns = List.sort compare (List.map fst (G.neighbors g 0)) in
  Alcotest.(check (list int)) "star center" [ 1; 2; 3 ] ns;
  Alcotest.(check (list int)) "leaf" [ 0 ] (List.map fst (G.neighbors g 2))

let test_iter_fold () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let count = ref 0 in
  G.iter_edges g (fun _ _ _ -> incr count);
  Alcotest.(check int) "iter count" 3 !count;
  let sum = G.fold_edges g ~init:0 ~f:(fun acc _ u v -> acc + u + v) in
  Alcotest.(check int) "fold sum" 9 sum;
  Alcotest.(check int) "edge_list" 3 (List.length (G.edge_list g))

let test_copy_independent () =
  let g = G.of_edges ~n:3 [ (0, 1) ] in
  let g' = G.copy g in
  ignore (G.add_edge g' 1 2);
  Alcotest.(check int) "original unchanged" 1 (G.m g);
  Alcotest.(check int) "copy extended" 2 (G.m g')

let test_growth () =
  (* exceed the initial internal capacity to exercise array growth *)
  let g = G.create 100 in
  for i = 0 to 98 do
    ignore (G.add_edge g i (i + 1))
  done;
  Alcotest.(check int) "m" 99 (G.m g);
  Alcotest.(check (pair int int)) "late edge" (98, 99) (G.endpoints g 98)

(* --- traversal --- *)

let path_graph n = G.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_bfs_path () =
  let g = path_graph 6 in
  let d = T.bfs g ~source:0 in
  Alcotest.(check int) "end distance" 5 d.(5);
  Alcotest.(check int) "start" 0 d.(0)

let test_bfs_unreachable () =
  let g = G.of_edges ~n:4 [ (0, 1) ] in
  let d = T.bfs g ~source:0 in
  Alcotest.(check int) "unreachable" (-1) d.(3)

let test_bfs_keep () =
  let g = path_graph 4 in
  let d = T.bfs ~keep:(fun e -> e <> 1) g ~source:0 in
  Alcotest.(check int) "cut at edge 1" (-1) d.(2);
  Alcotest.(check int) "before cut" 1 d.(1)

let test_components () =
  let g = G.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let label, count = T.components g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0-1 same" true (label.(0) = label.(1));
  Alcotest.(check bool) "2-4 same" true (label.(2) = label.(4));
  Alcotest.(check bool) "different" true (label.(0) <> label.(5))

let test_is_connected () =
  Alcotest.(check bool) "path" true (T.is_connected (path_graph 5));
  Alcotest.(check bool) "disconnected" false
    (T.is_connected (G.of_edges ~n:3 [ (0, 1) ]));
  Alcotest.(check bool) "singleton" true (T.is_connected (G.create 1))

let test_dfs_preorder () =
  let g = path_graph 4 in
  Alcotest.(check (list int)) "path order" [ 0; 1; 2; 3 ] (T.dfs_preorder g ~source:0)

let test_in_same_component () =
  let g = G.of_edges ~n:5 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "yes" true (T.in_same_component g 0 [ 1; 2 ]);
  Alcotest.(check bool) "no" false (T.in_same_component g 0 [ 1; 4 ])

(* qcheck: BFS distance satisfies the edge relaxation property *)
let prop_bfs_relaxation =
  Tutil.qtest "bfs distances are 1-Lipschitz across edges"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let g, _ = Tutil.random_connected_graph seed ~lo:2 ~hi:40 in
      let d = T.bfs g ~source:0 in
      let ok = ref (d.(0) = 0) in
      G.iter_edges g (fun _ u v ->
          if abs (d.(u) - d.(v)) > 1 then ok := false);
      !ok)

(* qcheck: component labels partition and respect edges *)
let prop_components =
  Tutil.qtest "components respect edges"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Topology.Rng.create seed in
      let n = 2 + Topology.Rng.int rng 30 in
      let g = G.create n in
      for _ = 1 to n do
        let u = Topology.Rng.int rng n and v = Topology.Rng.int rng n in
        if u <> v then ignore (G.add_edge g u v)
      done;
      let label, count = T.components g in
      let ok = ref true in
      G.iter_edges g (fun _ u v -> if label.(u) <> label.(v) then ok := false);
      Array.iter (fun l -> if l < 0 || l >= count then ok := false) label;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "structure",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "add_edge" `Quick test_add_edge;
          Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "node out of range" `Quick test_out_of_range;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "growth" `Quick test_growth;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "bfs keep filter" `Quick test_bfs_keep;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
          Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
          Alcotest.test_case "in_same_component" `Quick test_in_same_component;
        ] );
      ("property", [ prop_bfs_relaxation; prop_components ]);
    ]
