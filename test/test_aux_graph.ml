module Aux = Nfv_multicast.Aux_graph
module G = Mcgraph.Graph
module P = Mcgraph.Paths
module N = Sdn.Network
module Rng = Topology.Rng

let instance seed =
  let net, rng = Tutil.random_network seed ~lo:6 ~hi:25 in
  let request = Tutil.random_request rng net ~id:0 in
  let aux =
    Aux.build ~net ~request ~candidate_servers:(N.servers net) ()
  in
  (net, request, aux, rng)

let test_structure () =
  let net, _, aux, _ = instance 1 in
  let g = Aux.ext_graph aux in
  Alcotest.(check int) "one extra node" (N.n net + 1) (G.n g);
  Alcotest.(check int) "virtual node id" (N.n net) (Aux.virtual_node aux);
  Alcotest.(check int) "extra edges" (N.m net + N.server_count net) (G.m g);
  Alcotest.(check int) "base edge bound" (N.m net) (Aux.base_edge_count aux);
  List.iter
    (fun v ->
      match Aux.virtual_edge_of_server aux v with
      | None -> Alcotest.fail "candidate lacks virtual edge"
      | Some e ->
        Alcotest.(check bool) "virtual id range" true (Aux.is_virtual_edge aux e);
        Alcotest.(check int) "round trip" v (Aux.server_of_virtual_edge aux e))
    (N.servers net)

let test_virtual_weight_formula () =
  let net, req, aux, _ = instance 2 in
  let b = req.Sdn.Request.bandwidth in
  let weight e = b *. N.link_unit_cost net e in
  let apsp = P.all_pairs (N.graph net) ~weight in
  List.iter
    (fun v ->
      let expect =
        P.apsp_dist apsp req.Sdn.Request.source v
        +. N.chain_cost net v req.Sdn.Request.chain
      in
      Tutil.assert_close "wv" expect (Aux.virtual_edge_weight aux v))
    (N.servers net)

let test_weight_function () =
  let net, req, aux, _ = instance 3 in
  let servers = N.servers net in
  let subset = [ List.hd servers ] in
  let sm = Aux.subset_metric aux subset in
  (* base edges cost b·c_e *)
  let b = req.Sdn.Request.bandwidth in
  Tutil.assert_close "base edge" (b *. N.link_unit_cost net 0) (Aux.weight sm 0);
  (* chosen server's virtual edge has its wv; others are infinite *)
  let v = List.hd subset in
  let e = Option.get (Aux.virtual_edge_of_server aux v) in
  Tutil.assert_close "chosen virtual" (Aux.virtual_edge_weight aux v)
    (Aux.weight sm e);
  List.iter
    (fun v' ->
      if not (List.mem v' subset) then begin
        let e' = Option.get (Aux.virtual_edge_of_server aux v') in
        Alcotest.(check bool) "other virtual infinite" true
          (Aux.weight sm e' = infinity)
      end)
    servers

let test_subset_validation () =
  let net, _, aux, _ = instance 4 in
  let non_server =
    let rec find v = if N.is_server net v then find (v + 1) else v in
    find 0
  in
  Alcotest.check_raises "non-candidate"
    (Invalid_argument "Aux_graph.subset_metric: not a candidate server") (fun () ->
      ignore (Aux.subset_metric aux [ non_server ]))

(* the central property: the closed-form hub metric equals Dijkstra on the
   materialised auxiliary graph, for every subset of up to 3 servers *)
let prop_metric_exact =
  Tutil.qtest ~count:80 "hub metric = dijkstra on materialised graph"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, _, aux, _ = instance seed in
      let servers = Aux.reachable_servers aux in
      let subsets = Nfv_multicast.Combinations.subsets_up_to servers 3 in
      let ext = Aux.ext_graph aux in
      List.for_all
        (fun subset ->
          let sm = Aux.subset_metric aux subset in
          let _, weight = Aux.materialize aux ~subset in
          let ok = ref true in
          (* compare distances from a few nodes including the virtual one *)
          let sources = [ Aux.virtual_node aux; 0; G.n ext - 2 ] in
          List.iter
            (fun s ->
              let spt = P.dijkstra ext ~weight ~source:s in
              for t = 0 to G.n ext - 1 do
                let d1 = Aux.dist sm s t and d2 = spt.P.dist.(t) in
                if
                  (d1 = infinity) <> (d2 = infinity)
                  || (d1 < infinity && Float.abs (d1 -. d2) > 1e-6)
                then ok := false
              done)
            sources;
          !ok)
        subsets)

(* extracted paths realise the reported distances *)
let prop_path_realises_dist =
  Tutil.qtest ~count:60 "aux path cost = aux dist"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, _, aux, rng = instance seed in
      let servers = Aux.reachable_servers aux in
      if servers = [] then true
      else begin
        let k = 1 + Rng.int rng (min 3 (List.length servers)) in
        let idx = Rng.sample_without_replacement rng k (List.length servers) in
        let subset = List.map (List.nth servers) idx in
        let sm = Aux.subset_metric aux subset in
        let ext = Aux.ext_graph aux in
        let ok = ref true in
        for _ = 1 to 15 do
          let x = Rng.int rng (G.n ext) and y = Rng.int rng (G.n ext) in
          match Aux.path sm x y with
          | None -> if Aux.dist sm x y < infinity then ok := false
          | Some edges ->
            let cost =
              List.fold_left (fun acc e -> acc +. Aux.weight sm e) 0.0 edges
            in
            if Float.abs (cost -. Aux.dist sm x y) > 1e-6 then ok := false;
            (* the edge list must be a walk x → y in the extended graph *)
            let rec walk node = function
              | [] -> node = y
              | e :: rest ->
                let u, v = G.endpoints ext e in
                if u = node then walk v rest
                else if v = node then walk u rest
                else false
            in
            if not (walk x edges) then ok := false
        done;
        !ok
      end)

(* steiner trees from the aux metric map back to valid pseudo-trees *)
let prop_pseudo_tree_valid =
  Tutil.qtest ~count:80 "aux steiner → valid pseudo-multicast tree"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req, aux, rng = instance seed in
      let servers = Aux.reachable_servers aux in
      if servers = [] then true
      else begin
        let k = 1 + Rng.int rng (min 3 (List.length servers)) in
        let idx = Rng.sample_without_replacement rng k (List.length servers) in
        let subset = List.map (List.nth servers) idx in
        let sm = Aux.subset_metric aux subset in
        match Aux.steiner_tree sm with
        | None -> true (* destinations unreachable via this subset *)
        | Some edges -> (
          let pt = Aux.to_pseudo_tree aux edges in
          match Nfv_multicast.Pseudo_tree.validate net pt with
          | Ok () ->
            (* servers used must come from the subset *)
            List.for_all
              (fun v -> List.mem v subset)
              pt.Nfv_multicast.Pseudo_tree.servers
            && pt.Nfv_multicast.Pseudo_tree.request.Sdn.Request.id
               = req.Sdn.Request.id
          | Error _ -> false)
      end)

(* honest pseudo-tree cost equals the aux tree cost (no zero edges) *)
let prop_cost_agreement =
  Tutil.qtest ~count:80 "pseudo-tree cost = aux tree cost"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, _, aux, rng = instance seed in
      let servers = Aux.reachable_servers aux in
      if servers = [] then true
      else begin
        let subset = [ List.nth servers (Rng.int rng (List.length servers)) ] in
        let sm = Aux.subset_metric aux subset in
        match Aux.steiner_tree sm with
        | None -> true
        | Some edges ->
          let pt = Aux.to_pseudo_tree aux edges in
          Float.abs
            (Nfv_multicast.Pseudo_tree.cost net pt -. Aux.tree_cost sm edges)
          < 1e-6 *. (1.0 +. Aux.tree_cost sm edges)
      end)

(* the hub metric stays exact when capacity pruning removes edges *)
let prop_metric_exact_pruned =
  Tutil.qtest ~count:60 "hub metric = dijkstra under pruning"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:8 ~hi:20 in
      let request = Tutil.random_request rng net ~id:0 in
      (* randomly knock out ~30% of the edges, as residual pruning would *)
      let removed = Array.init (N.m net) (fun _ -> Rng.int rng 10 < 3) in
      let keep e = not removed.(e) in
      let aux =
        Aux.build ~keep ~net ~request ~candidate_servers:(N.servers net) ()
      in
      let servers = Aux.reachable_servers aux in
      if servers = [] then true
      else begin
        let k = 1 + Rng.int rng (min 2 (List.length servers)) in
        let idx = Rng.sample_without_replacement rng k (List.length servers) in
        let subset = List.map (List.nth servers) idx in
        let sm = Aux.subset_metric aux subset in
        let ext, weight = Aux.materialize aux ~subset in
        let ok = ref true in
        List.iter
          (fun s ->
            let spt = P.dijkstra ext ~weight ~source:s in
            for t = 0 to G.n ext - 1 do
              let d1 = Aux.dist sm s t and d2 = spt.P.dist.(t) in
              if
                (d1 = infinity) <> (d2 = infinity)
                || (d1 < infinity && Float.abs (d1 -. d2) > 1e-6)
              then ok := false
            done)
          [ Aux.virtual_node aux; 0 ];
        !ok
      end)

let () =
  Alcotest.run "aux_graph"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "virtual weight formula" `Quick
            test_virtual_weight_formula;
          Alcotest.test_case "weight function" `Quick test_weight_function;
          Alcotest.test_case "subset validation" `Quick test_subset_validation;
        ] );
      ( "property",
        [
          prop_metric_exact;
          prop_metric_exact_pruned;
          prop_path_realises_dist;
          prop_pseudo_tree_valid;
          prop_cost_agreement;
        ] );
    ]
