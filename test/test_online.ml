module Cp = Nfv_multicast.Online_cp
module Sp = Nfv_multicast.Online_sp
module Adm = Nfv_multicast.Admission
module Pt = Nfv_multicast.Pseudo_tree
module W = Nfv_multicast.Sp_window
module N = Sdn.Network
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

let mk_net seed =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.4 ~beta:0.3 rng ~n:30 in
  let net = N.make_random_servers ~fraction:0.2 ~rng topo in
  (net, rng)

(* --- Online_CP unit behaviour --- *)

let test_default_params () =
  let net, _ = mk_net 1 in
  let p = Cp.default_params net in
  Alcotest.check Tutil.check_float "alpha = 2|V|" 60.0 p.Cp.alpha;
  Alcotest.check Tutil.check_float "sigma = |V|-1" 29.0 p.Cp.sigma_v

let test_admit_on_idle_network () =
  let net, rng = mk_net 2 in
  let req = Workload.Gen.request rng net ~id:0 in
  match Cp.admit net req with
  | Cp.Rejected r -> Alcotest.failf "idle network rejects: %s" (Cp.rejection_to_string r)
  | Cp.Admitted a -> (
    Alcotest.(check bool) "server placed" true (N.is_server net a.Cp.server);
    match Pt.validate net a.Cp.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid tree: %s" e)

let test_rejects_when_servers_full () =
  let net, rng = mk_net 3 in
  (* drain all servers *)
  List.iter
    (fun v ->
      match N.allocate net { N.links = []; nodes = [ (v, N.server_residual net v) ] } with
      | Ok () -> ()
      | Error e -> Alcotest.failf "drain: %s" e)
    (N.servers net);
  let req = Workload.Gen.request rng net ~id:0 in
  match Cp.admit net req with
  | Cp.Rejected Cp.No_feasible_server -> ()
  | Cp.Rejected r -> Alcotest.failf "wrong reason: %s" (Cp.rejection_to_string r)
  | Cp.Admitted _ -> Alcotest.fail "should reject"

let test_threshold_rejection () =
  let net, rng = mk_net 4 in
  let req = Workload.Gen.request rng net ~id:0 in
  (* absurdly low thresholds force Case 3 *)
  let p = Cp.default_params net in
  let p = { p with Cp.sigma_v = -1.0; sigma_e = -1.0 } in
  match Cp.admit ~params:p net req with
  | Cp.Rejected Cp.Over_threshold -> ()
  | Cp.Rejected r -> Alcotest.failf "wrong reason: %s" (Cp.rejection_to_string r)
  | Cp.Admitted _ -> Alcotest.fail "should reject"

let test_linear_mode_ignores_thresholds () =
  let net, rng = mk_net 5 in
  let req = Workload.Gen.request rng net ~id:0 in
  let p = Cp.default_params net in
  let p = { p with Cp.sigma_v = -1.0; sigma_e = -1.0 } in
  match Cp.admit ~mode:`Linear ~params:p net req with
  | Cp.Admitted _ -> ()
  | Cp.Rejected r -> Alcotest.failf "linear mode: %s" (Cp.rejection_to_string r)

let test_admission_consumes_resources () =
  let net, rng = mk_net 6 in
  let req = Workload.Gen.request rng net ~id:0 in
  let before = List.map (fun v -> N.server_residual net v) (N.servers net) in
  match Cp.admit net req with
  | Cp.Rejected _ -> Alcotest.fail "should admit on idle network"
  | Cp.Admitted a ->
    let after = List.map (fun v -> N.server_residual net v) (N.servers net) in
    let drained =
      List.exists2 (fun b a -> b -. a > 1e-9) before after
    in
    Alcotest.(check bool) "some server drained" true drained;
    let demand = Sdn.Request.demand_mhz req in
    Tutil.assert_close "drained by demand"
      (N.server_capacity net a.Cp.server -. demand)
      (N.server_residual net a.Cp.server)

(* --- rejection attribution (designed topologies) --- *)

let straw_capacity = 0.5 (* far below any request bandwidth *)

(* s=0 — d=1 over a wide link; the only server (2) sits behind a starved
   link. Destinations are reachable, servers are not: this used to be
   misreported as plain [Unreachable]. *)
let server_behind_straw () =
  let g = Mcgraph.Graph.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  let topo = Topology.Topo.make ~name:"server-behind-straw" g in
  N.make_explicit ~topology:topo
    ~servers:[ (2, 8_000.0, 0.01) ]
    ~link_capacities:[| 1_000.0; straw_capacity |]
    ~link_unit_costs:[| 1.0; 1.0 |]
    ()

let test_server_unreachable_attribution () =
  let net = server_behind_straw () in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 1 ] ~bandwidth:10.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  (match Cp.admit net req with
  | Cp.Rejected Cp.Server_unreachable -> ()
  | Cp.Rejected r -> Alcotest.failf "wrong reason: %s" (Cp.rejection_to_string r)
  | Cp.Admitted _ -> Alcotest.fail "should reject");
  Alcotest.(check int) "attributed to server_unreachable" 1
    (Obs.Counter.value (Obs.Counter.make "online_cp.rejected.server_unreachable"));
  Alcotest.(check int) "not to unreachable" 0
    (Obs.Counter.value (Obs.Counter.make "online_cp.rejected.unreachable"));
  (* a request the straw can carry is admitted — the server is only
     unreachable at the larger bandwidth *)
  let small =
    Sdn.Request.make ~id:1 ~source:0 ~destinations:[ 1 ]
      ~bandwidth:(straw_capacity /. 4.0) ~chain:[ Sdn.Vnf.Nat ]
  in
  match Cp.admit net small with
  | Cp.Admitted _ -> ()
  | Cp.Rejected r -> Alcotest.failf "small request: %s" (Cp.rejection_to_string r)

(* Two equal-cost routes 0→4: A = 0-3-4 (2 hops, 1.25 + 0.75) and
   B = 0-1-2-4 (3 hops, 0.5 + 0.5 + 1.0). Without the hop epsilon,
   Dijkstra from 0 settles node 4 through B first and never replaces an
   equal-cost parent; the epsilon must break the tie toward the 2-hop
   route in [`Linear] mode exactly as it always did in [`Exponential]. *)
let test_linear_mode_hop_tiebreak () =
  let g = Mcgraph.Graph.of_edges ~n:5 [ (0, 3); (3, 4); (0, 1); (1, 2); (2, 4) ] in
  let topo = Topology.Topo.make ~name:"hop-tie" g in
  let net =
    N.make_explicit ~topology:topo
      ~servers:[ (4, 8_000.0, 0.01) ]
      ~link_capacities:(Array.make 5 1_000.0)
      ~link_unit_costs:[| 1.25; 0.75; 0.5; 0.5; 1.0 |]
      ()
  in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 4 ] ~bandwidth:1.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  match Cp.admit ~mode:`Linear net req with
  | Cp.Rejected r -> Alcotest.failf "should admit: %s" (Cp.rejection_to_string r)
  | Cp.Admitted a ->
    Alcotest.(check (list (pair int int)))
      "tie broken toward the 2-hop route"
      [ (0, 1); (1, 1) ]
      (List.sort compare a.Cp.tree.Pt.edge_uses)

(* --- SP --- *)

let test_sp_admits_idle () =
  let net, rng = mk_net 7 in
  let req = Workload.Gen.request rng net ~id:0 in
  match Sp.admit net req with
  | Sp.Rejected msg -> Alcotest.failf "idle network: %s" msg
  | Sp.Admitted a -> (
    Alcotest.(check bool) "hops positive" true (a.Sp.hops >= 1);
    match Pt.validate net a.Sp.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid tree: %s" e)

let test_sp_rejects_when_starved () =
  let net, rng = mk_net 8 in
  (* drain every link below any possible demand *)
  for e = 0 to N.m net - 1 do
    match
      N.allocate net { N.links = [ (e, N.link_residual net e -. 1.0) ]; nodes = [] }
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "drain: %s" msg
  done;
  let req = Workload.Gen.request rng net ~id:0 in
  match Sp.admit net req with
  | Sp.Rejected _ -> ()
  | Sp.Admitted _ -> Alcotest.fail "should reject"

(* --- admission driver --- *)

let test_run_stats_consistent () =
  let net, rng = mk_net 9 in
  let reqs = Workload.Gen.sequence rng net ~count:40 in
  let stats = Adm.run net Adm.Online_cp reqs in
  Alcotest.(check int) "total" 40 stats.Adm.total;
  Alcotest.(check int) "partition" 40 (stats.Adm.admitted + stats.Adm.rejected);
  Alcotest.(check int) "records" 40 (List.length stats.Adm.records);
  Alcotest.(check bool) "ratio in range" true
    (stats.Adm.acceptance_ratio >= 0.0 && stats.Adm.acceptance_ratio <= 1.0);
  Alcotest.(check int) "admitted_after total" stats.Adm.admitted
    (Adm.admitted_after stats 40)

let test_run_resets () =
  let net, rng = mk_net 10 in
  let reqs = Workload.Gen.sequence rng net ~count:30 in
  let s1 = Adm.run net Adm.Sp reqs in
  let s2 = Adm.run net Adm.Sp reqs in
  Alcotest.(check int) "deterministic replay" s1.Adm.admitted s2.Adm.admitted

let test_prefix_property () =
  (* the first n decisions of a run equal a run on the prefix *)
  let net, rng = mk_net 11 in
  let reqs = Workload.Gen.sequence rng net ~count:30 in
  let full = Adm.run net Adm.Online_cp reqs in
  let prefix =
    Adm.run net Adm.Online_cp
      (List.filteri (fun i _ -> i < 15) reqs)
  in
  Alcotest.(check int) "prefix equivalence" prefix.Adm.admitted
    (Adm.admitted_after full 15)

let test_algorithm_names () =
  Alcotest.(check string) "cp" "Online_CP" (Adm.algorithm_to_string Adm.Online_cp);
  Alcotest.(check string) "nosigma" "Online_CP_noSigma"
    (Adm.algorithm_to_string Adm.Online_cp_no_threshold);
  Alcotest.(check string) "linear" "Online_Linear"
    (Adm.algorithm_to_string Adm.Online_linear);
  Alcotest.(check string) "sp" "SP" (Adm.algorithm_to_string Adm.Sp)

(* --- randomized properties --- *)

let prop_capacity_invariant =
  Tutil.qtest ~count:40 "no algorithm ever exceeds capacities"
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, algo_idx) ->
      let algo =
        [| Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp |].(algo_idx)
      in
      let net, rng = mk_net (seed + 100) in
      let reqs = Workload.Gen.sequence rng net ~count:60 in
      ignore (Adm.run net algo reqs);
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        if N.link_residual net e < -1e-6 then ok := false;
        if N.link_residual net e > N.link_capacity net e +. 1e-6 then ok := false
      done;
      List.iter
        (fun v ->
          if N.server_residual net v < -1e-6 then ok := false)
        (N.servers net);
      !ok)

let prop_admitted_trees_valid =
  Tutil.qtest ~count:30 "every admitted CP tree validates"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 500) in
      let reqs = Workload.Gen.sequence rng net ~count:40 in
      N.reset net;
      List.for_all
        (fun r ->
          match Cp.admit net r with
          | Cp.Admitted a -> (
            match Pt.validate net a.Cp.tree with Ok () -> true | Error _ -> false)
          | Cp.Rejected _ -> true)
        reqs)

let prop_sp_trees_valid =
  Tutil.qtest ~count:30 "every admitted SP tree validates"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 900) in
      let reqs = Workload.Gen.sequence rng net ~count:40 in
      N.reset net;
      List.for_all
        (fun r ->
          match Sp.admit net r with
          | Sp.Admitted a -> (
            match Pt.validate net a.Sp.tree with Ok () -> true | Error _ -> false)
          | Sp.Rejected _ -> true)
        reqs)

(* --- pruning and window exactness --- *)

(* outcome fingerprints: enough to detect any divergence in decision,
   placement or score without comparing whole trees *)
let cp_fingerprint = function
  | Cp.Admitted a ->
    Printf.sprintf "A server=%d lca=%d score=%.17g uses=%s" a.Cp.server
      a.Cp.lca a.Cp.score
      (String.concat ","
         (List.map
            (fun (e, u) -> Printf.sprintf "%d:%d" e u)
            (List.sort compare a.Cp.tree.Pt.edge_uses)))
  | Cp.Rejected r -> "R " ^ Cp.rejection_to_string r

let net_state net =
  ( Array.init (N.m net) (N.link_residual net),
    List.map (N.server_residual net) (N.servers net) )

(* pruning + window sharing must be invisible: same decisions, same
   scores, same residual trajectories as the naive per-request engines *)
let prop_prune_and_window_exact =
  Tutil.qtest ~count:25 "pruned windowed run = naive run, bit for bit"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net1, rng1 = mk_net (seed + 1700) in
      let net2, rng2 = mk_net (seed + 1700) in
      let reqs1 = Workload.Gen.sequence rng1 net1 ~count:40 in
      let reqs2 = Workload.Gen.sequence rng2 net2 ~count:40 in
      let w = W.create net1 in
      let fast =
        List.map
          (fun r -> cp_fingerprint (Cp.admit ~window:w ~prune:true net1 r))
          reqs1
      in
      let naive =
        List.map (fun r -> cp_fingerprint (Cp.admit ~prune:false net2 r)) reqs2
      in
      fast = naive && net_state net1 = net_state net2)

let sp_fingerprint = function
  | Sp.Admitted a ->
    Printf.sprintf "A hops=%d uses=%s" a.Sp.hops
      (String.concat ","
         (List.map
            (fun (e, u) -> Printf.sprintf "%d:%d" e u)
            (List.sort compare a.Sp.tree.Pt.edge_uses)))
  | Sp.Rejected msg -> "R " ^ msg

let prop_sp_window_exact =
  Tutil.qtest ~count:25 "SP window sharing changes nothing"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net1, rng1 = mk_net (seed + 2100) in
      let net2, rng2 = mk_net (seed + 2100) in
      let reqs1 = Workload.Gen.sequence rng1 net1 ~count:40 in
      let reqs2 = Workload.Gen.sequence rng2 net2 ~count:40 in
      let w = W.create net1 in
      let windowed =
        List.map (fun r -> sp_fingerprint (Sp.admit ~window:w net1 r)) reqs1
      in
      let naive = List.map (fun r -> sp_fingerprint (Sp.admit net2 r)) reqs2 in
      windowed = naive && net_state net1 = net_state net2)

(* the speed-up must actually materialise: under load, the driver's
   shared window serves some admits from cache and the pruner skips
   some candidate servers outright *)
let test_window_and_pruning_telemetry () =
  let net, rng = mk_net 12 in
  let reqs = Workload.Gen.sequence rng net ~count:80 in
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  ignore (Adm.run net Adm.Online_cp reqs);
  let v name = Obs.Counter.value (Obs.Counter.make name) in
  Alcotest.(check bool) "servers were pruned" true
    (v "online_cp.pruned.servers" > 0);
  Alcotest.(check bool) "window engines were reused" true
    (v "sp_window.engine_reuses" > 0);
  Alcotest.(check bool) "engine cache served hits" true
    (v "sp_engine.cache_hits" > 0)

let prop_cp_score_nonnegative =
  Tutil.qtest ~count:30 "admitted scores are non-negative"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 1300) in
      let reqs = Workload.Gen.sequence rng net ~count:30 in
      N.reset net;
      List.for_all
        (fun r ->
          match Cp.admit net r with
          | Cp.Admitted a -> a.Cp.score >= 0.0
          | Cp.Rejected _ -> true)
        reqs)

let () =
  Alcotest.run "online"
    [
      ( "online_cp",
        [
          Alcotest.test_case "default params" `Quick test_default_params;
          Alcotest.test_case "admits on idle network" `Quick test_admit_on_idle_network;
          Alcotest.test_case "rejects when servers full" `Quick
            test_rejects_when_servers_full;
          Alcotest.test_case "threshold rejection" `Quick test_threshold_rejection;
          Alcotest.test_case "linear mode skips thresholds" `Quick
            test_linear_mode_ignores_thresholds;
          Alcotest.test_case "admission consumes resources" `Quick
            test_admission_consumes_resources;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "server unreachable is distinguished" `Quick
            test_server_unreachable_attribution;
          Alcotest.test_case "linear mode breaks ties by hops" `Quick
            test_linear_mode_hop_tiebreak;
        ] );
      ( "sp",
        [
          Alcotest.test_case "admits idle" `Quick test_sp_admits_idle;
          Alcotest.test_case "rejects starved" `Quick test_sp_rejects_when_starved;
        ] );
      ( "driver",
        [
          Alcotest.test_case "stats consistent" `Quick test_run_stats_consistent;
          Alcotest.test_case "reset + determinism" `Quick test_run_resets;
          Alcotest.test_case "prefix property" `Quick test_prefix_property;
          Alcotest.test_case "names" `Quick test_algorithm_names;
        ] );
      ( "pruning",
        [
          prop_prune_and_window_exact;
          prop_sp_window_exact;
          Alcotest.test_case "window and pruning telemetry" `Quick
            test_window_and_pruning_telemetry;
        ] );
      ( "property",
        [
          prop_capacity_invariant;
          prop_admitted_trees_valid;
          prop_sp_trees_valid;
          prop_cp_score_nonnegative;
        ] );
    ]
