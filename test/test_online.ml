module Cp = Nfv_multicast.Online_cp
module Sp = Nfv_multicast.Online_sp
module Adm = Nfv_multicast.Admission
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

let mk_net seed =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.4 ~beta:0.3 rng ~n:30 in
  let net = N.make_random_servers ~fraction:0.2 ~rng topo in
  (net, rng)

(* --- Online_CP unit behaviour --- *)

let test_default_params () =
  let net, _ = mk_net 1 in
  let p = Cp.default_params net in
  Alcotest.check Tutil.check_float "alpha = 2|V|" 60.0 p.Cp.alpha;
  Alcotest.check Tutil.check_float "sigma = |V|-1" 29.0 p.Cp.sigma_v

let test_admit_on_idle_network () =
  let net, rng = mk_net 2 in
  let req = Workload.Gen.request rng net ~id:0 in
  match Cp.admit net req with
  | Cp.Rejected r -> Alcotest.failf "idle network rejects: %s" (Cp.rejection_to_string r)
  | Cp.Admitted a -> (
    Alcotest.(check bool) "server placed" true (N.is_server net a.Cp.server);
    match Pt.validate net a.Cp.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid tree: %s" e)

let test_rejects_when_servers_full () =
  let net, rng = mk_net 3 in
  (* drain all servers *)
  List.iter
    (fun v ->
      match N.allocate net { N.links = []; nodes = [ (v, N.server_residual net v) ] } with
      | Ok () -> ()
      | Error e -> Alcotest.failf "drain: %s" e)
    (N.servers net);
  let req = Workload.Gen.request rng net ~id:0 in
  match Cp.admit net req with
  | Cp.Rejected Cp.No_feasible_server -> ()
  | Cp.Rejected r -> Alcotest.failf "wrong reason: %s" (Cp.rejection_to_string r)
  | Cp.Admitted _ -> Alcotest.fail "should reject"

let test_threshold_rejection () =
  let net, rng = mk_net 4 in
  let req = Workload.Gen.request rng net ~id:0 in
  (* absurdly low thresholds force Case 3 *)
  let p = Cp.default_params net in
  let p = { p with Cp.sigma_v = -1.0; sigma_e = -1.0 } in
  match Cp.admit ~params:p net req with
  | Cp.Rejected Cp.Over_threshold -> ()
  | Cp.Rejected r -> Alcotest.failf "wrong reason: %s" (Cp.rejection_to_string r)
  | Cp.Admitted _ -> Alcotest.fail "should reject"

let test_linear_mode_ignores_thresholds () =
  let net, rng = mk_net 5 in
  let req = Workload.Gen.request rng net ~id:0 in
  let p = Cp.default_params net in
  let p = { p with Cp.sigma_v = -1.0; sigma_e = -1.0 } in
  match Cp.admit ~mode:`Linear ~params:p net req with
  | Cp.Admitted _ -> ()
  | Cp.Rejected r -> Alcotest.failf "linear mode: %s" (Cp.rejection_to_string r)

let test_admission_consumes_resources () =
  let net, rng = mk_net 6 in
  let req = Workload.Gen.request rng net ~id:0 in
  let before = List.map (fun v -> N.server_residual net v) (N.servers net) in
  match Cp.admit net req with
  | Cp.Rejected _ -> Alcotest.fail "should admit on idle network"
  | Cp.Admitted a ->
    let after = List.map (fun v -> N.server_residual net v) (N.servers net) in
    let drained =
      List.exists2 (fun b a -> b -. a > 1e-9) before after
    in
    Alcotest.(check bool) "some server drained" true drained;
    let demand = Sdn.Request.demand_mhz req in
    Tutil.assert_close "drained by demand"
      (N.server_capacity net a.Cp.server -. demand)
      (N.server_residual net a.Cp.server)

(* --- SP --- *)

let test_sp_admits_idle () =
  let net, rng = mk_net 7 in
  let req = Workload.Gen.request rng net ~id:0 in
  match Sp.admit net req with
  | Sp.Rejected msg -> Alcotest.failf "idle network: %s" msg
  | Sp.Admitted a -> (
    Alcotest.(check bool) "hops positive" true (a.Sp.hops >= 1);
    match Pt.validate net a.Sp.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid tree: %s" e)

let test_sp_rejects_when_starved () =
  let net, rng = mk_net 8 in
  (* drain every link below any possible demand *)
  for e = 0 to N.m net - 1 do
    match
      N.allocate net { N.links = [ (e, N.link_residual net e -. 1.0) ]; nodes = [] }
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "drain: %s" msg
  done;
  let req = Workload.Gen.request rng net ~id:0 in
  match Sp.admit net req with
  | Sp.Rejected _ -> ()
  | Sp.Admitted _ -> Alcotest.fail "should reject"

(* --- admission driver --- *)

let test_run_stats_consistent () =
  let net, rng = mk_net 9 in
  let reqs = Workload.Gen.sequence rng net ~count:40 in
  let stats = Adm.run net Adm.Online_cp reqs in
  Alcotest.(check int) "total" 40 stats.Adm.total;
  Alcotest.(check int) "partition" 40 (stats.Adm.admitted + stats.Adm.rejected);
  Alcotest.(check int) "records" 40 (List.length stats.Adm.records);
  Alcotest.(check bool) "ratio in range" true
    (stats.Adm.acceptance_ratio >= 0.0 && stats.Adm.acceptance_ratio <= 1.0);
  Alcotest.(check int) "admitted_after total" stats.Adm.admitted
    (Adm.admitted_after stats 40)

let test_run_resets () =
  let net, rng = mk_net 10 in
  let reqs = Workload.Gen.sequence rng net ~count:30 in
  let s1 = Adm.run net Adm.Sp reqs in
  let s2 = Adm.run net Adm.Sp reqs in
  Alcotest.(check int) "deterministic replay" s1.Adm.admitted s2.Adm.admitted

let test_prefix_property () =
  (* the first n decisions of a run equal a run on the prefix *)
  let net, rng = mk_net 11 in
  let reqs = Workload.Gen.sequence rng net ~count:30 in
  let full = Adm.run net Adm.Online_cp reqs in
  let prefix =
    Adm.run net Adm.Online_cp
      (List.filteri (fun i _ -> i < 15) reqs)
  in
  Alcotest.(check int) "prefix equivalence" prefix.Adm.admitted
    (Adm.admitted_after full 15)

let test_algorithm_names () =
  Alcotest.(check string) "cp" "Online_CP" (Adm.algorithm_to_string Adm.Online_cp);
  Alcotest.(check string) "nosigma" "Online_CP_noSigma"
    (Adm.algorithm_to_string Adm.Online_cp_no_threshold);
  Alcotest.(check string) "linear" "Online_Linear"
    (Adm.algorithm_to_string Adm.Online_linear);
  Alcotest.(check string) "sp" "SP" (Adm.algorithm_to_string Adm.Sp)

(* --- randomized properties --- *)

let prop_capacity_invariant =
  Tutil.qtest ~count:40 "no algorithm ever exceeds capacities"
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, algo_idx) ->
      let algo =
        [| Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp |].(algo_idx)
      in
      let net, rng = mk_net (seed + 100) in
      let reqs = Workload.Gen.sequence rng net ~count:60 in
      ignore (Adm.run net algo reqs);
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        if N.link_residual net e < -1e-6 then ok := false;
        if N.link_residual net e > N.link_capacity net e +. 1e-6 then ok := false
      done;
      List.iter
        (fun v ->
          if N.server_residual net v < -1e-6 then ok := false)
        (N.servers net);
      !ok)

let prop_admitted_trees_valid =
  Tutil.qtest ~count:30 "every admitted CP tree validates"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 500) in
      let reqs = Workload.Gen.sequence rng net ~count:40 in
      N.reset net;
      List.for_all
        (fun r ->
          match Cp.admit net r with
          | Cp.Admitted a -> (
            match Pt.validate net a.Cp.tree with Ok () -> true | Error _ -> false)
          | Cp.Rejected _ -> true)
        reqs)

let prop_sp_trees_valid =
  Tutil.qtest ~count:30 "every admitted SP tree validates"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 900) in
      let reqs = Workload.Gen.sequence rng net ~count:40 in
      N.reset net;
      List.for_all
        (fun r ->
          match Sp.admit net r with
          | Sp.Admitted a -> (
            match Pt.validate net a.Sp.tree with Ok () -> true | Error _ -> false)
          | Sp.Rejected _ -> true)
        reqs)

let prop_cp_score_nonnegative =
  Tutil.qtest ~count:30 "admitted scores are non-negative"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = mk_net (seed + 1300) in
      let reqs = Workload.Gen.sequence rng net ~count:30 in
      N.reset net;
      List.for_all
        (fun r ->
          match Cp.admit net r with
          | Cp.Admitted a -> a.Cp.score >= 0.0
          | Cp.Rejected _ -> true)
        reqs)

let () =
  Alcotest.run "online"
    [
      ( "online_cp",
        [
          Alcotest.test_case "default params" `Quick test_default_params;
          Alcotest.test_case "admits on idle network" `Quick test_admit_on_idle_network;
          Alcotest.test_case "rejects when servers full" `Quick
            test_rejects_when_servers_full;
          Alcotest.test_case "threshold rejection" `Quick test_threshold_rejection;
          Alcotest.test_case "linear mode skips thresholds" `Quick
            test_linear_mode_ignores_thresholds;
          Alcotest.test_case "admission consumes resources" `Quick
            test_admission_consumes_resources;
        ] );
      ( "sp",
        [
          Alcotest.test_case "admits idle" `Quick test_sp_admits_idle;
          Alcotest.test_case "rejects starved" `Quick test_sp_rejects_when_starved;
        ] );
      ( "driver",
        [
          Alcotest.test_case "stats consistent" `Quick test_run_stats_consistent;
          Alcotest.test_case "reset + determinism" `Quick test_run_resets;
          Alcotest.test_case "prefix property" `Quick test_prefix_property;
          Alcotest.test_case "names" `Quick test_algorithm_names;
        ] );
      ( "property",
        [
          prop_capacity_invariant;
          prop_admitted_trees_valid;
          prop_sp_trees_valid;
          prop_cp_score_nonnegative;
        ] );
    ]
