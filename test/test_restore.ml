(* The restoration policy engine: select's ordering contracts (replay
   bit-identity, knapsack fit/density classes, deadline order,
   id-sorted ties), the default policy's bit-identity with the
   historical hard-coded pass, the depart trigger restoring a backlog
   no heal would ever reach, lifecycle edges (a restored session's
   departure releases exactly once) and the infeasible-entry-last
   guarantee of the priced orders. *)

module G = Mcgraph.Graph
module N = Sdn.Network
module Fault = Sdn.Fault
module Adm = Nfv_multicast.Admission
module Dyn = Nfv_multicast.Dynamic
module Batch = Nfv_multicast.Batch
module R = Nfv_multicast.Restore
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

let with_obs f =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

let counter name = Obs.Counter.value (Obs.Counter.make name)

let mk_request ~id ~source ~destinations ~bandwidth =
  Sdn.Request.make ~id ~source ~destinations ~bandwidth
    ~chain:[ Sdn.Vnf.Firewall ]

let ids = List.map (fun (r : Sdn.Request.t) -> r.Sdn.Request.id)

(* a 0 -- 1(srv) -- 2 chain with an isolated node 3: requests to 3 are
   structurally infeasible (no path), the priced policies' worst case *)
let spur_net () =
  let g = G.create 4 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 2);
  let topo = Topology.Topo.make ~name:"spur-net" g in
  N.make_explicit ~topology:topo
    ~servers:[ (1, 1000.0, 1.0) ]
    ~link_capacities:(Array.make (G.m g) 100.0)
    ~link_unit_costs:(Array.make (G.m g) 1.0) ()

let entry ?(depart_at = infinity) r = { R.request = r; depart_at }

(* ---- select: ordering contracts ---------------------------------------- *)

let test_to_string () =
  Alcotest.(check string) "default" "replay-smallest-first"
    (R.to_string R.default);
  Alcotest.(check string) "knapsack volume" "knapsack-volume"
    (R.policy_to_string (R.Knapsack R.Volume));
  Alcotest.(check string) "knapsack priced" "knapsack-priced"
    (R.policy_to_string (R.Knapsack R.Priced));
  Alcotest.(check string) "deadline" "deadline" (R.policy_to_string R.Deadline);
  Alcotest.(check string) "depart trigger suffix" "deadline+depart"
    (R.to_string (R.make ~policy:R.Deadline ~trigger:R.Heal_or_depart ()));
  Alcotest.(check bool) "default is heal-only" false (R.on_depart R.default);
  Alcotest.(check bool) "heal-or-depart fires on departs" true
    (R.on_depart (R.make ~trigger:R.Heal_or_depart ()))

(* the default policy must reproduce exactly what the hard-coded pass
   did: id-sort the backlog, then Batch.reorder under Smallest_first *)
let test_select_default_is_the_replay () =
  let net = spur_net () in
  let reqs =
    List.map
      (fun (id, bw) ->
        mk_request ~id ~source:0 ~destinations:[ 2 ] ~bandwidth:bw)
      [ (0, 5.0); (1, 3.0); (2, 8.0); (3, 3.0) ]
  in
  (* scrambled entry order: select must not depend on it *)
  let entries = List.map entry [ List.nth reqs 2; List.nth reqs 0; List.nth reqs 3; List.nth reqs 1 ] in
  let got = R.select ~returned:0.0 net R.default entries in
  let expected =
    Batch.reorder net
      (List.sort
         (fun (a : Sdn.Request.t) b -> compare a.Sdn.Request.id b.Sdn.Request.id)
         reqs)
      Batch.Smallest_first
  in
  Alcotest.(check (list int))
    "default == id-sorted backlog through Batch.reorder Smallest_first"
    (ids expected) (ids got);
  Alcotest.(check (list int)) "ties resolve to id order" [ 1; 3; 0; 2 ]
    (ids got)

let test_select_knapsack_volume () =
  let net = spur_net () in
  let reqs =
    List.map
      (fun (id, bw) ->
        mk_request ~id ~source:0 ~destinations:[ 2 ] ~bandwidth:bw)
      [ (0, 5.0); (1, 3.0); (2, 8.0); (3, 3.0) ]
  in
  let entries = List.map entry reqs in
  let t = R.make ~policy:(R.Knapsack R.Volume) () in
  (* returned = 6: footprints 5, 3, 3 fit (descending density, ties by
     id), the 8 overshoots and goes last *)
  Alcotest.(check (list int)) "fitting class first, density desc, ties by id"
    [ 0; 1; 3; 2 ]
    (ids (R.select ~returned:6.0 net t entries));
  (* nothing fits: pure density order *)
  Alcotest.(check (list int)) "returned 0 degenerates to density order"
    [ 2; 0; 1; 3 ]
    (ids (R.select ~returned:0.0 net t entries));
  (* everything fits: same density order *)
  Alcotest.(check (list int)) "everything fits: density order" [ 2; 0; 1; 3 ]
    (ids (R.select ~returned:100.0 net t entries))

let test_select_deadline () =
  let net = spur_net () in
  let r id = mk_request ~id ~source:0 ~destinations:[ 2 ] ~bandwidth:10.0 in
  let entries =
    [
      entry ~depart_at:9.0 (r 0);
      entry ~depart_at:3.0 (r 1);
      entry ~depart_at:3.0 (r 2);
      entry (r 3) (* unknown lifetime: infinity, last *);
    ]
  in
  let t = R.make ~policy:R.Deadline () in
  Alcotest.(check (list int))
    "least remaining lifetime first, ties by id, unknown last" [ 1; 2; 0; 3 ]
    (ids (R.select ~returned:0.0 net t entries))

let test_select_priced_infeasible_last () =
  let net = spur_net () in
  let infeasible =
    mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0
  in
  let feasible =
    mk_request ~id:1 ~source:0 ~destinations:[ 2 ] ~bandwidth:10.0
  in
  let entries = [ entry infeasible; entry feasible ] in
  let t = R.make ~policy:(R.Knapsack R.Priced) () in
  Alcotest.(check (list int)) "unpriceable entry sorts last, never dropped"
    [ 1; 0 ]
    (ids (R.select ~returned:100.0 net t entries));
  Alcotest.(check (list int)) "same with no returned headroom" [ 1; 0 ]
    (ids (R.select ~returned:0.0 net t entries))

(* ---- the default policy is bit-identical to the historical pass --------
   The 6-node designed net of test_dynamic_churn, replayed twice: the
   implicit default and an explicit [Restore.default] must produce the
   same event stream, the same stats and the exact historical order the
   hard-coded pass was pinned to. *)

let designed_net () =
  let g = G.create 6 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 2);
  let e2 = G.add_edge g 2 3 in
  ignore (G.add_edge g 1 4);
  ignore (G.add_edge g 4 3);
  let e5 = G.add_edge g 4 5 in
  let topo = Topology.Topo.make ~name:"restore-net" g in
  let net =
    N.make_explicit ~topology:topo
      ~servers:[ (2, 1000.0, 1.0) ]
      ~link_capacities:(Array.make (G.m g) 100.0)
      ~link_unit_costs:(Array.make (G.m g) 1.0) ()
  in
  (net, e2, e5)

let describe (t, h) =
  match h with
  | Dyn.Arrived { id; tree } ->
    Printf.sprintf "%g arrived %d %s" t id
      (match tree with Some _ -> "admitted" | None -> "rejected")
  | Dyn.Departed { id; released } ->
    Printf.sprintf "%g departed %d %s" t id
      (if released then "released" else "noop")
  | Dyn.Fault_fired { victims; _ } ->
    Printf.sprintf "%g fault victims=[%s]" t
      (String.concat ";" (List.map string_of_int victims))
  | Dyn.Repaired { id; _ } -> Printf.sprintf "%g repaired %d" t id
  | Dyn.Dropped { id } -> Printf.sprintf "%g dropped %d" t id
  | Dyn.Restored { id; _ } -> Printf.sprintf "%g restored %d" t id

let designed_run restore =
  let net, e2, _ = designed_net () in
  let trace =
    [
      {
        Dyn.at = 1.0;
        holding = 100.0;
        request = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
      {
        Dyn.at = 2.0;
        holding = 3.0;
        request = mk_request ~id:1 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
    ]
  in
  let timeline =
    [
      { Fault.at = 4.0; event = Fault.Link_down e2 };
      { Fault.at = 6.0; event = Fault.Server_down 2 };
      { Fault.at = 8.0; event = Fault.Link_up e2 };
      { Fault.at = 9.0; event = Fault.Server_up 2 };
    ]
  in
  let seen = ref [] in
  let observe t h = seen := (t, h) :: !seen in
  let faults =
    match restore with
    | None -> Dyn.make_faults timeline
    | Some r -> Dyn.make_faults ~restore:(Some r) timeline
  in
  let s = Dyn.run ~faults ~observe net Adm.Online_cp trace in
  (s, List.rev_map describe !seen)

let test_default_policy_bit_identical () =
  let s_implicit, ev_implicit = designed_run None in
  let s_explicit, ev_explicit = designed_run (Some R.default) in
  Alcotest.(check (list string))
    "explicit Restore.default replays the implicit default event for event"
    ev_implicit ev_explicit;
  Alcotest.(check bool) "identical stats" true (s_implicit = s_explicit);
  (* and both are the exact order the hard-coded pass was pinned to *)
  Alcotest.(check (list string)) "the historical event order"
    [
      "1 arrived 0 admitted";
      "2 arrived 1 admitted";
      "4 fault victims=[0;1]";
      "4 repaired 0";
      "4 repaired 1";
      "5 departed 1 released";
      "6 fault victims=[0]";
      "6 dropped 0";
      "8 fault victims=[]";
      "9 fault victims=[]";
      "9 restored 0";
      "101 departed 0 released";
    ]
    ev_implicit

(* ---- the depart trigger -------------------------------------------------
   Two parallel server paths, 10-Mbps links:

     0 -e0- 1(srv) -e1- 3      (unit cost 1 — the cheap path)
     0 -e2- 2(srv) -e3- 3      (unit cost 2)

   Online_CP's load-dependent pricing sends session 0 down the
   server-2 path, so session 1 fills the server-1 path (e0, e1).
   Cutting e0 drops session 1 (no spare capacity anywhere) onto the
   backlog — and the timeline holds no heal until everything is over,
   so the heal-only default can never restore it. Session 0's natural
   departure at t=8 is the only capacity the backlog will ever see:
   the depart trigger turns it into a restoration. *)

let parallel_net () =
  let g = G.create 4 in
  let e0 = G.add_edge g 0 1 in
  ignore (G.add_edge g 1 3);
  ignore (G.add_edge g 0 2);
  ignore (G.add_edge g 2 3);
  let topo = Topology.Topo.make ~name:"parallel-net" g in
  let net =
    N.make_explicit ~topology:topo
      ~servers:[ (1, 1000.0, 1.0); (2, 1000.0, 1.0) ]
      ~link_capacities:(Array.make (G.m g) 10.0)
      ~link_unit_costs:[| 1.0; 1.0; 2.0; 2.0 |] ()
  in
  (net, e0)

let depart_run restore =
  let net, e0 = parallel_net () in
  let trace =
    [
      {
        Dyn.at = 1.0;
        holding = 7.0;
        request = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
      {
        Dyn.at = 2.0;
        holding = 100.0;
        request = mk_request ~id:1 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
    ]
  in
  let timeline =
    [
      { Fault.at = 3.0; event = Fault.Link_down e0 };
      (* the only heal fires after every session is over: it cannot
         restore anything, it just returns the confiscation so the
         final conservation check sees a whole network *)
      { Fault.at = 200.0; event = Fault.Link_up e0 };
    ]
  in
  let seen = ref [] in
  let observe t h = seen := (t, h) :: !seen in
  let s =
    Dyn.run
      ~faults:(Dyn.make_faults ~restore:(Some restore) timeline)
      ~observe net Adm.Online_cp trace
  in
  (net, s, List.rev_map describe !seen)

let test_depart_trigger_restores_heal_free_tail () =
  (* heal-only: the backlog starves — session 0 expires unserved *)
  let net_heal, s_heal, ev_heal = depart_run R.default in
  Alcotest.(check int) "heal-only restores nothing" 0 s_heal.Dyn.restored;
  Alcotest.(check int) "heal-only completes only session 0" 1
    s_heal.Dyn.completed;
  Alcotest.(check (list string)) "heal-only event order"
    [
      "1 arrived 0 admitted";
      "2 arrived 1 admitted";
      "3 fault victims=[1]";
      "3 dropped 1";
      "8 departed 0 released";
      "102 departed 1 noop";
      "200 fault victims=[]";
    ]
    ev_heal;
  for e = 0 to N.m net_heal - 1 do
    Tutil.assert_close "heal-only network ends whole"
      (N.link_capacity net_heal e) (N.link_residual net_heal e)
  done;
  (* the depart trigger turns session 1's departure into the pass *)
  let dep = R.make ~trigger:R.Heal_or_depart () in
  let net_dep, s_dep, ev_dep = depart_run dep in
  Alcotest.(check int) "depart trigger restores the backlog" 1
    s_dep.Dyn.restored;
  Alcotest.(check int) "both sessions complete" 2 s_dep.Dyn.completed;
  Alcotest.(check (list string)) "depart-triggered event order"
    [
      "1 arrived 0 admitted";
      "2 arrived 1 admitted";
      "3 fault victims=[1]";
      "3 dropped 1";
      "8 departed 0 released";
      "8 restored 1";
      "102 departed 1 released";
      "200 fault victims=[]";
    ]
    ev_dep;
  (* lifecycle edge: the restored session's original departure released
     exactly once — any double free would leave residuals above
     capacity (or raise in Network.release) *)
  for e = 0 to N.m net_dep - 1 do
    Tutil.assert_close "restored session releases exactly once"
      (N.link_capacity net_dep e) (N.link_residual net_dep e)
  done;
  List.iter
    (fun v ->
      Tutil.assert_close "server residual exact" (N.server_capacity net_dep v)
        (N.server_residual net_dep v))
    (N.servers net_dep)

(* ---- an infeasible backlog entry under a priced order -------------------
   Session 0 reaches the spur node 5 of the designed net; after it is
   dropped, e5 goes down and stays down, so re-pricing it yields no
   tree at all (infinite price). A Cheapest_first replay must still
   attempt it — last — and the pass must restore the feasible session
   rather than wedge. *)

let test_infeasible_entry_attempted_last () =
  with_obs @@ fun () ->
  let net, _, e5 = designed_net () in
  let trace =
    [
      {
        Dyn.at = 1.0;
        holding = 100.0;
        request = mk_request ~id:0 ~source:0 ~destinations:[ 5 ] ~bandwidth:10.0;
      };
      {
        Dyn.at = 2.0;
        holding = 100.0;
        request = mk_request ~id:1 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0;
      };
    ]
  in
  let timeline =
    [
      { Fault.at = 3.0; event = Fault.Server_down 2 };
      { Fault.at = 4.0; event = Fault.Link_down e5 };
      { Fault.at = 5.0; event = Fault.Server_up 2 };
    ]
  in
  let policy = R.make ~policy:(R.Replay Batch.Cheapest_first) () in
  let a0 = counter "restoration.attempted" in
  let r0 = counter "restoration.restored" in
  let f0 = counter "restoration.failed" in
  let seen = ref [] in
  let observe t h = seen := (t, h) :: !seen in
  let s =
    Dyn.run
      ~faults:(Dyn.make_faults ~restore:(Some policy) timeline)
      ~observe net Adm.Online_cp trace
  in
  Alcotest.(check int) "both dropped" 2 s.Dyn.dropped;
  Alcotest.(check int) "the feasible session is restored" 1 s.Dyn.restored;
  Alcotest.(check bool) "session 1 restored at the heal" true
    (List.exists (fun eh -> describe eh = "5 restored 1") !seen);
  Alcotest.(check int) "both entries attempted" (a0 + 2)
    (counter "restoration.attempted");
  Alcotest.(check int) "one restored" (r0 + 1) (counter "restoration.restored");
  Alcotest.(check int) "the infeasible one failed" (f0 + 1)
    (counter "restoration.failed")

let () =
  Alcotest.run "restore"
    [
      ( "select",
        [
          Alcotest.test_case "policy labels and triggers" `Quick test_to_string;
          Alcotest.test_case "default is the historical replay" `Quick
            test_select_default_is_the_replay;
          Alcotest.test_case "knapsack fit/density classes" `Quick
            test_select_knapsack_volume;
          Alcotest.test_case "deadline order" `Quick test_select_deadline;
          Alcotest.test_case "priced order puts infeasible last" `Quick
            test_select_priced_infeasible_last;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "default policy is bit-identical" `Quick
            test_default_policy_bit_identical;
          Alcotest.test_case "depart trigger rescues a heal-free tail" `Quick
            test_depart_trigger_restores_heal_free_tail;
          Alcotest.test_case "infeasible backlog entry attempted last" `Quick
            test_infeasible_entry_attempted_last;
        ] );
    ]
