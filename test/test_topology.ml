module Topo = Topology.Topo
module Rng = Topology.Rng

let test_waxman_basic () =
  let rng = Rng.create 1 in
  let t = Topology.Waxman.generate rng ~n:60 in
  Alcotest.(check int) "n" 60 (Topo.n t);
  Alcotest.(check bool) "connected" true (Topo.is_connected t);
  Alcotest.(check bool) "has coords" true (t.Topo.coords <> None)

let test_waxman_deterministic () =
  let t1 = Topology.Waxman.generate (Rng.create 5) ~n:40 in
  let t2 = Topology.Waxman.generate (Rng.create 5) ~n:40 in
  Alcotest.(check int) "same m" (Topo.m t1) (Topo.m t2);
  Alcotest.(check bool) "same edges" true
    (Mcgraph.Graph.edge_list t1.Topo.graph = Mcgraph.Graph.edge_list t2.Topo.graph)

let test_waxman_too_small () =
  Alcotest.check_raises "n=1" (Invalid_argument "Waxman.generate: need at least 2 nodes")
    (fun () -> ignore (Topology.Waxman.generate (Rng.create 1) ~n:1))

let test_waxman_density_scales_with_alpha () =
  let sparse = Topology.Waxman.generate ~alpha:0.05 (Rng.create 3) ~n:80 in
  let dense = Topology.Waxman.generate ~alpha:0.9 (Rng.create 3) ~n:80 in
  Alcotest.(check bool) "alpha raises density" true (Topo.m dense > Topo.m sparse)

let test_erdos_renyi () =
  let t = Topology.Random_graph.erdos_renyi (Rng.create 2) ~n:50 ~p:0.08 in
  Alcotest.(check bool) "connected" true (Topo.is_connected t);
  Alcotest.(check int) "n" 50 (Topo.n t)

let test_random_tree () =
  let t = Topology.Random_graph.random_tree (Rng.create 4) ~n:30 in
  Alcotest.(check int) "tree edges" 29 (Topo.m t);
  Alcotest.(check bool) "connected" true (Topo.is_connected t)

let test_gnm () =
  let t = Topology.Random_graph.gnm (Rng.create 4) ~n:30 ~m:60 in
  Alcotest.(check int) "edge count" 60 (Topo.m t);
  Alcotest.(check bool) "connected" true (Topo.is_connected t)

let test_fat_tree () =
  let t = Topology.Fat_tree.generate ~k:4 () in
  Alcotest.(check int) "k=4 nodes" 20 (Topo.n t);
  Alcotest.(check int) "k=4 links" 32 (Topo.m t);
  Alcotest.(check bool) "connected" true (Topo.is_connected t);
  let cores = Topology.Fat_tree.core_switches ~k:4 in
  let edges = Topology.Fat_tree.edge_switches ~k:4 in
  Alcotest.(check int) "cores" 4 (List.length cores);
  Alcotest.(check int) "edge switches" 8 (List.length edges);
  (* every core has degree k *)
  List.iter
    (fun c -> Alcotest.(check int) "core degree" 4 (Mcgraph.Graph.degree t.Topo.graph c))
    cores

let test_fat_tree_odd_rejected () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Fat_tree: arity must be even and >= 2") (fun () ->
      ignore (Topology.Fat_tree.generate ~k:3 ()))

let test_geant () =
  let t = Topology.Geant.topology () in
  Alcotest.(check int) "40 PoPs" 40 (Topo.n t);
  Alcotest.(check bool) "connected" true (Topo.is_connected t);
  Alcotest.(check int) "nine servers" 9 (List.length Topology.Geant.default_servers);
  Alcotest.(check string) "named nodes" "Amsterdam" (Topo.node_name t 0);
  List.iter
    (fun v ->
      if v < 0 || v >= 40 then Alcotest.fail "server id out of range")
    Topology.Geant.default_servers

let test_geant_fresh_copies () =
  let t1 = Topology.Geant.topology () and t2 = Topology.Geant.topology () in
  ignore (Mcgraph.Graph.add_edge t1.Topo.graph 0 5);
  Alcotest.(check bool) "independent" true (Topo.m t1 = Topo.m t2 + 1)

let test_rocketfuel_sizes () =
  let a = Topology.Rocketfuel.as1755 () in
  Alcotest.(check int) "as1755 nodes" 87 (Topo.n a);
  Alcotest.(check int) "as1755 links" 161 (Topo.m a);
  Alcotest.(check bool) "connected" true (Topo.is_connected a);
  let b = Topology.Rocketfuel.as4755 () in
  Alcotest.(check int) "as4755 nodes" 41 (Topo.n b);
  Alcotest.(check int) "as4755 links" 68 (Topo.m b);
  Alcotest.(check bool) "connected" true (Topo.is_connected b)

let test_rocketfuel_deterministic () =
  let a = Topology.Rocketfuel.as1755 () and b = Topology.Rocketfuel.as1755 () in
  Alcotest.(check bool) "same graph" true
    (Mcgraph.Graph.edge_list a.Topo.graph = Mcgraph.Graph.edge_list b.Topo.graph)

let test_rocketfuel_heavy_tail () =
  let t = Topology.Rocketfuel.as1755 () in
  let g = t.Topo.graph in
  let max_deg = ref 0 in
  for v = 0 to Topo.n t - 1 do
    max_deg := max !max_deg (Mcgraph.Graph.degree g v)
  done;
  (* preferential attachment must create hubs well above the mean degree *)
  let mean = 2.0 *. float_of_int (Topo.m t) /. float_of_int (Topo.n t) in
  Alcotest.(check bool) "has hubs" true (float_of_int !max_deg > 2.5 *. mean)

let test_transit_stub () =
  let t = Topology.Transit_stub.generate (Rng.create 6) in
  Alcotest.(check bool) "connected" true (Topo.is_connected t);
  let p = Topology.Transit_stub.default_params in
  let expect =
    p.Topology.Transit_stub.transit_domains * p.transit_size
    * (1 + (p.stubs_per_transit_node * p.stub_size))
  in
  Alcotest.(check int) "size formula" expect (Topo.n t)

let test_transit_stub_sized () =
  List.iter
    (fun n ->
      let t = Topology.Transit_stub.generate_sized (Rng.create 8) ~n in
      Alcotest.(check int) "hits target" n (Topo.n t);
      Alcotest.(check bool) "connected" true (Topo.is_connected t))
    [ 50; 100; 173; 250 ]

let test_connect_components () =
  let g = Mcgraph.Graph.of_edges ~n:6 [ (0, 1); (2, 3); (4, 5) ] in
  let t = Topo.make ~name:"frag" g in
  let t = Topo.connect_components (Rng.create 9) t in
  Alcotest.(check bool) "joined" true (Topo.is_connected t)

let test_topo_validation () =
  let g = Mcgraph.Graph.create 3 in
  Alcotest.check_raises "coords mismatch"
    (Invalid_argument "Topo.make: coords size mismatch") (fun () ->
      ignore (Topo.make ~coords:[| (0.0, 0.0) |] ~name:"bad" g))

(* properties *)

let prop_waxman_connected =
  Tutil.qtest ~count:40 "waxman always connected"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let t =
        Topology.Waxman.generate (Rng.create seed) ~n:(10 + (seed mod 90))
      in
      Topo.is_connected t)

let prop_transit_stub_connected =
  Tutil.qtest ~count:40 "transit-stub always connected"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let n = 20 + (seed mod 200) in
      Topo.is_connected (Topology.Transit_stub.generate_sized (Rng.create seed) ~n))

let () =
  Alcotest.run "topology"
    [
      ( "waxman",
        [
          Alcotest.test_case "basic" `Quick test_waxman_basic;
          Alcotest.test_case "deterministic" `Quick test_waxman_deterministic;
          Alcotest.test_case "too small" `Quick test_waxman_too_small;
          Alcotest.test_case "alpha density" `Quick test_waxman_density_scales_with_alpha;
        ] );
      ( "random",
        [
          Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "gnm" `Quick test_gnm;
        ] );
      ( "fat-tree",
        [
          Alcotest.test_case "k=4 structure" `Quick test_fat_tree;
          Alcotest.test_case "odd k rejected" `Quick test_fat_tree_odd_rejected;
        ] );
      ( "real",
        [
          Alcotest.test_case "geant" `Quick test_geant;
          Alcotest.test_case "geant copies" `Quick test_geant_fresh_copies;
          Alcotest.test_case "rocketfuel sizes" `Quick test_rocketfuel_sizes;
          Alcotest.test_case "rocketfuel deterministic" `Quick
            test_rocketfuel_deterministic;
          Alcotest.test_case "rocketfuel heavy tail" `Quick test_rocketfuel_heavy_tail;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "default params" `Quick test_transit_stub;
          Alcotest.test_case "sized" `Quick test_transit_stub_sized;
        ] );
      ( "topo",
        [
          Alcotest.test_case "connect components" `Quick test_connect_components;
          Alcotest.test_case "validation" `Quick test_topo_validation;
        ] );
      ("property", [ prop_waxman_connected; prop_transit_stub_connected ]);
    ]
