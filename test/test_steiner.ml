module G = Mcgraph.Graph
module S = Mcgraph.Steiner

let unit_weight _ = 1.0

let test_trivial_terminals () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check (option (list int))) "no terminals" (Some [])
    (S.kmb g ~weight:unit_weight ~terminals:[]);
  Alcotest.(check (option (list int))) "single" (Some [])
    (S.kmb g ~weight:unit_weight ~terminals:[ 2 ]);
  Alcotest.(check (option (list int))) "duplicates collapse" (Some [])
    (S.kmb g ~weight:unit_weight ~terminals:[ 2; 2 ])

let test_pair_is_shortest_path () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let w = [| 1.0; 1.0; 1.0; 10.0 |] in
  match S.kmb g ~weight:(Tutil.weight_fn w) ~terminals:[ 0; 3 ] with
  | None -> Alcotest.fail "reachable"
  | Some tree ->
    Alcotest.check Tutil.check_float "cost" 3.0
      (S.tree_cost ~weight:(Tutil.weight_fn w) tree)

let test_star_uses_steiner_node () =
  (* terminals 1,2,3 all adjacent to hub 0; optimal tree = star of cost 3 *)
  let g = G.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (1, 3) ] in
  let w = [| 1.0; 1.0; 1.0; 1.9; 1.9; 1.9 |] in
  match S.kmb g ~weight:(Tutil.weight_fn w) ~terminals:[ 1; 2; 3 ] with
  | None -> Alcotest.fail "reachable"
  | Some tree ->
    let c = S.tree_cost ~weight:(Tutil.weight_fn w) tree in
    (* KMB may pick the 2-path closure tree (3.8) or the star (3.0); both
       within the 2(1-1/3) ≈ 1.33 bound of OPT = 3.0 *)
    Alcotest.(check bool) "within KMB bound" true (c <= 4.0 +. 1e-9);
    Alcotest.(check bool) "valid" true
      (S.is_steiner_tree g ~terminals:[ 1; 2; 3 ] tree)

let test_unreachable () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check (option (list int))) "none" None
    (S.kmb g ~weight:unit_weight ~terminals:[ 0; 3 ])

let test_prune () =
  (* path 0-1-2-3 plus dangling 2-4; terminals {0, 3} *)
  let g = G.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (2, 4) ] in
  let pruned = S.prune g ~terminals:[ 0; 3 ] [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "dangling removed" [ 0; 1; 2 ]
    (List.sort compare pruned)

let test_prune_cascades () =
  (* chain 0-1-2-3 with terminal only at 0: everything prunes away *)
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (list int)) "all gone" []
    (S.prune g ~terminals:[ 0 ] [ 0; 1; 2 ])

let test_exact_known () =
  (* C4 with unit weights, terminals {0, 2}: exact cost 2 *)
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  match S.exact g ~weight:unit_weight ~terminals:[ 0; 2 ] with
  | None -> Alcotest.fail "reachable"
  | Some tree ->
    Alcotest.check Tutil.check_float "cost 2" 2.0 (S.tree_cost ~weight:unit_weight tree)

let test_exact_steiner_node () =
  (* the star graph again: exact must find cost 3 via the hub *)
  let g = G.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (1, 3) ] in
  let w = [| 1.0; 1.0; 1.0; 1.9; 1.9; 1.9 |] in
  match S.exact g ~weight:(Tutil.weight_fn w) ~terminals:[ 1; 2; 3 ] with
  | None -> Alcotest.fail "reachable"
  | Some tree ->
    Alcotest.check Tutil.check_float "uses hub" 3.0
      (S.tree_cost ~weight:(Tutil.weight_fn w) tree)

let test_exact_too_many_terminals () =
  let g = G.of_edges ~n:20 (List.init 19 (fun i -> (i, i + 1))) in
  Alcotest.check_raises "guard" (Invalid_argument "Steiner.exact: too many terminals")
    (fun () ->
      ignore (S.exact g ~weight:unit_weight ~terminals:(List.init 16 Fun.id)))

let test_is_steiner_tree () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check bool) "valid" true (S.is_steiner_tree g ~terminals:[ 0; 2 ] [ 0; 1 ]);
  Alcotest.(check bool) "missing terminal" false
    (S.is_steiner_tree g ~terminals:[ 0; 3 ] [ 0; 1 ]);
  Alcotest.(check bool) "not connected to terminal" false
    (S.is_steiner_tree g ~terminals:[ 0; 2 ] [ 2 ])

(* ---- properties ---- *)

let with_instance seed f =
  let g, rng = Tutil.random_connected_graph seed ~lo:3 ~hi:18 in
  let w = Tutil.random_weights rng g in
  let n = G.n g in
  let t = 2 + Topology.Rng.int rng (min 5 (n - 1)) in
  let terminals = Topology.Rng.sample_without_replacement rng t n in
  f g (Tutil.weight_fn w) terminals rng

let prop_kmb_valid =
  Tutil.qtest ~count:200 "kmb returns a steiner tree"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g weight terminals _ ->
          match S.kmb g ~weight ~terminals with
          | None -> false
          | Some tree -> S.is_steiner_tree g ~terminals tree))

let prop_exact_valid =
  Tutil.qtest ~count:120 "exact returns a steiner tree"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g weight terminals _ ->
          match S.exact g ~weight ~terminals with
          | None -> false
          | Some tree -> S.is_steiner_tree g ~terminals tree))

let prop_kmb_ratio =
  Tutil.qtest ~count:120 "kmb within 2(1-1/t) of exact"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g weight terminals _ ->
          match (S.kmb g ~weight ~terminals, S.exact g ~weight ~terminals) with
          | Some approx, Some opt ->
            let ca = S.tree_cost ~weight approx
            and co = S.tree_cost ~weight opt in
            let t = float_of_int (List.length (List.sort_uniq compare terminals)) in
            ca <= (2.0 *. (1.0 -. (1.0 /. t)) *. co) +. 1e-6
          | _ -> false))

let prop_exact_lower_bounds_kmb =
  Tutil.qtest ~count:120 "exact <= kmb"
    QCheck.(int_bound 100_000)
    (fun seed ->
      with_instance seed (fun g weight terminals _ ->
          match (S.kmb g ~weight ~terminals, S.exact g ~weight ~terminals) with
          | Some approx, Some opt ->
            S.tree_cost ~weight opt <= S.tree_cost ~weight approx +. 1e-6
          | _ -> false))

(* with exactly two terminals both must equal the shortest path *)
let prop_two_terminals =
  Tutil.qtest ~count:120 "two terminals = shortest path"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g, rng = Tutil.random_connected_graph seed ~lo:2 ~hi:20 in
      let w = Tutil.random_weights rng g in
      let weight = Tutil.weight_fn w in
      let n = G.n g in
      let a = Topology.Rng.int rng n in
      let b = (a + 1 + Topology.Rng.int rng (n - 1)) mod n in
      if a = b then true
      else begin
        let spt = Mcgraph.Paths.dijkstra g ~weight ~source:a in
        let expected = spt.Mcgraph.Paths.dist.(b) in
        match (S.kmb g ~weight ~terminals:[ a; b ], S.exact g ~weight ~terminals:[ a; b ]) with
        | Some t1, Some t2 ->
          Float.abs (S.tree_cost ~weight t1 -. expected) < 1e-6
          && Float.abs (S.tree_cost ~weight t2 -. expected) < 1e-6
        | _ -> false
      end)

let () =
  Alcotest.run "steiner"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial terminal sets" `Quick test_trivial_terminals;
          Alcotest.test_case "pair = shortest path" `Quick test_pair_is_shortest_path;
          Alcotest.test_case "star instance" `Quick test_star_uses_steiner_node;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "prune cascades" `Quick test_prune_cascades;
          Alcotest.test_case "exact on C4" `Quick test_exact_known;
          Alcotest.test_case "exact uses steiner node" `Quick test_exact_steiner_node;
          Alcotest.test_case "exact terminal guard" `Quick test_exact_too_many_terminals;
          Alcotest.test_case "is_steiner_tree" `Quick test_is_steiner_tree;
        ] );
      ( "property",
        [
          prop_kmb_valid;
          prop_exact_valid;
          prop_kmb_ratio;
          prop_exact_lower_bounds_kmb;
          prop_two_terminals;
        ] );
    ]
