(* Shared helpers for the test suites. *)

module G = Mcgraph.Graph
module Rng = Topology.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A connected random graph from a seed: n in [lo, hi], extra edges over a
   random spanning tree. Returns the graph and the rng used (advanced), so
   callers can draw more randomness deterministically. *)
let random_connected_graph seed ~lo ~hi =
  let rng = Rng.create seed in
  let n = Rng.int_range rng lo hi in
  let g = G.create n in
  for v = 1 to n - 1 do
    ignore (G.add_edge g v (Rng.int rng v))
  done;
  let extra = Rng.int rng (2 * n) in
  let added = ref 0 and guard = ref 0 in
  while !added < extra && !guard < 20 * extra + 20 do
    incr guard;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (G.mem_edge g u v) then begin
      ignore (G.add_edge g u v);
      incr added
    end
  done;
  (g, rng)

(* random positive weights for a graph's edges *)
let random_weights rng g =
  Array.init (G.m g) (fun _ -> Rng.float_range rng 0.1 10.0)

let weight_fn w e = w.(e)

(* a small random SDN network for end-to-end properties *)
let random_network seed ~lo ~hi =
  let rng = Rng.create seed in
  let n = Rng.int_range rng lo hi in
  let topo = Topology.Waxman.generate ~alpha:0.5 ~beta:0.4 rng ~n in
  let net = Sdn.Network.make_random_servers ~fraction:0.2 ~rng topo in
  (net, rng)

let random_request rng net ~id = Workload.Gen.request rng net ~id

(* checks that an edge set forms a tree (acyclic and connected) *)
let is_tree g edges =
  match edges with
  | [] -> true
  | e :: _ ->
    let u, _ = G.endpoints g e in
    (match Mcgraph.Tree.of_edges g ~root:u edges with
    | (_ : Mcgraph.Tree.t) -> true
    | exception Invalid_argument _ -> false)

let check_float = Alcotest.float 1e-6

let assert_close ?(eps = 1e-6) msg a b =
  if Float.abs (a -. b) > eps *. (1.0 +. Float.abs a +. Float.abs b) then
    Alcotest.failf "%s: %.9g <> %.9g" msg a b
