(* The declarative experiment layer: registry completeness, golden
   byte-identity of every family's CSVs under the fake clock, exactness
   of the histogram-sourced timing columns, and the per-scenario
   [--obs-out] snapshot. *)

module Obs = Nfv_obs.Obs
module E = Experiments.Exp_common
module Spec = Experiments.Spec
module Runner = Experiments.Runner

(* ---- registry completeness ------------------------------------------- *)

let expected_ids =
  [
    "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "ablation"; "dynamic"; "batch";
    "delay"; "tables"; "stress"; "churn"; "dynamic_churn"; "avail"; "restore";
  ]

let test_registry_ids () =
  Alcotest.(check (list string))
    "every family is registered, in presentation order" expected_ids
    Experiments.Registry.ids;
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | Some s -> Alcotest.(check string) "find returns the spec" id s.Spec.id
      | None -> Alcotest.failf "Registry.find %S = None" id)
    expected_ids

(* Building an instance is pure — no sweep runs — so the declared
   figure_ids can be checked against the instance shape for free. *)
let test_declared_figures () =
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.Spec.instance ~seed:1 ~requests:(Some 2) in
      let fids = List.map (fun f -> f.Spec.fid) inst.Spec.figures in
      Alcotest.(check (list string))
        (s.Spec.id ^ ": declared figure_ids match the instance")
        s.Spec.figure_ids fids;
      let sorted = List.sort_uniq compare fids in
      Alcotest.(check int)
        (s.Spec.id ^ ": figure ids unique")
        (List.length fids) (List.length sorted))
    Experiments.Registry.all

(* every cell of every figure must name a sweep/point/metric the sweeps
   can produce — shape errors surface at assembly, so run the smallest
   family end to end *)
let test_assembly_smoke () =
  E.install_fake_clock ();
  Experiments.Pool.set_jobs 1;
  let figs = Experiments.Stress.run ~seed:3 ~requests:8 () in
  Alcotest.(check (list string))
    "stress produces its declared figures" [ "stressA"; "stressB" ]
    (List.map (fun f -> f.E.id) figs);
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          List.iter
            (fun (_, v) ->
              if Float.is_nan v then
                Alcotest.failf "%s/%s has a NaN cell" f.E.id s.E.label)
            s.E.points)
        f.E.series)
    figs

(* the stress tables are counter deltas: admitted + rejections = load *)
let test_stress_conservation () =
  E.install_fake_clock ();
  Experiments.Pool.set_jobs 1;
  let figs = Experiments.Stress.run ~seed:3 ~requests:32 () in
  List.iter
    (fun f ->
      match f.E.series with
      | [] -> Alcotest.failf "%s has no series" f.E.id
      | first :: _ ->
        List.iteri
          (fun i (x, _) ->
            let total =
              List.fold_left
                (fun acc s -> acc +. snd (List.nth s.E.points i))
                0.0 f.E.series
            in
            Alcotest.(check (float 0.0))
              (Printf.sprintf "%s: outcomes at load %g sum to the load" f.E.id x)
              x total)
          first.E.points)
    figs

(* ---- histogram-native timing ----------------------------------------- *)

(* Under the fake clock a span's duration is (clock reads inside + 1)
   ticks exactly; the tick is dyadic so histogram sums of it are exact.
   [span_mean_ms] must therefore be bit-equal to the arithmetic
   prediction, not merely close. *)
let test_span_probe_exact () =
  E.install_fake_clock ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let tick = 1.0 /. 8192.0 in
  let p = Runner.span_probe "test_specs.empty" in
  for _ = 1 to 7 do
    Obs.Span.run "test_specs.empty" (fun () -> ())
  done;
  Alcotest.(check int) "7 empty spans recorded" 7 (Runner.span_count p);
  Alcotest.(check (float 0.0))
    "an empty span costs exactly one tick" (1000.0 *. tick)
    (Runner.span_mean_ms p);
  (* k clock reads inside the body -> (k + 1) ticks per span *)
  let q = Runner.span_probe "test_specs.busy" in
  for _ = 1 to 3 do
    Obs.Span.run "test_specs.busy" (fun () ->
        for _ = 1 to 4 do
          ignore (!Obs.clock ())
        done)
  done;
  Alcotest.(check int) "3 busy spans recorded" 3 (Runner.span_count q);
  Alcotest.(check (float 0.0))
    "busy span mean is exactly 5 ticks" (1000.0 *. 5.0 *. tick)
    (Runner.span_mean_ms q)

(* [span_quantile_ms] on degenerate delta histograms: an empty probe is
   0 at every q, a single observation answers every q with its own
   bucket bound, and q = 0 reports the first *non-empty* bucket — not
   [bounds.(0)] (the regression: cum = 0 satisfies >= 0). *)
let test_span_quantile_edges () =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let h = Obs.Histogram.make "test_specs.quantile" in
  (* empty: every q, including the endpoints, is 0 *)
  let p = Runner.span_probe "test_specs.quantile" in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty probe: q=%g is 0" q)
        0.0
        (Runner.span_quantile_ms p q))
    [ 0.0; 0.5; 1.0 ];
  (* one observation in the 1e-3 bucket: every q reports its bound *)
  let p1 = Runner.span_probe "test_specs.quantile" in
  Obs.Histogram.observe h 0.5e-3;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single sample: q=%g is the sample's bound" q)
        1.0
        (Runner.span_quantile_ms p1 q))
    [ 0.0; 0.5; 1.0 ];
  (* two samples in distinct buckets: q=0 and the median report the
     lower bucket (NOT the histogram's first bound, 0.001 ms), q=1 the
     upper *)
  let p2 = Runner.span_probe "test_specs.quantile" in
  Obs.Histogram.observe h 0.5e-3;
  Obs.Histogram.observe h 0.5e-1;
  Alcotest.(check (float 0.0))
    "two samples: q=0 is the first non-empty bucket" 1.0
    (Runner.span_quantile_ms p2 0.0);
  Alcotest.(check (float 0.0))
    "two samples: median is the lower bucket" 1.0
    (Runner.span_quantile_ms p2 0.5);
  Alcotest.(check (float 0.0))
    "two samples: q=1 is the upper bucket" 100.0
    (Runner.span_quantile_ms p2 1.0);
  (* overflow lands at infinity; out-of-range q raises *)
  let p3 = Runner.span_probe "test_specs.quantile" in
  Obs.Histogram.observe h 100.0;
  Alcotest.(check (float 0.0))
    "overflow bucket: q=1 is infinity" infinity
    (Runner.span_quantile_ms p3 1.0);
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "q=%g raises" q)
        true
        (try
           ignore (Runner.span_quantile_ms p3 q);
           false
         with Invalid_argument _ -> true))
    [ -0.1; 1.5 ]

(* The real thing: a designed network where the solver's span histogram
   is the only timing source. The ms column published by the probe must
   equal 1000 * (sum delta) / (count delta) read independently from the
   histogram, and the sum delta must be an exact integer number of
   ticks. *)
let test_designed_net_ms () =
  E.install_fake_clock ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) @@ fun () ->
  let tick = 1.0 /. 8192.0 in
  let rng = Topology.Rng.create 11 in
  let net = E.network rng ~n:30 in
  let reqs = Workload.Gen.sequence rng net ~count:5 in
  let h = Obs.Histogram.make "appro_multi.solve" in
  let c0 = Obs.Histogram.count h and s0 = Obs.Histogram.sum h in
  let p = Runner.span_probe "appro_multi.solve" in
  List.iter
    (fun r -> ignore (Nfv_multicast.Appro_multi.solve ~k:2 net r))
    reqs;
  let dc = Obs.Histogram.count h - c0 in
  let ds = Obs.Histogram.sum h -. s0 in
  Alcotest.(check int) "one span per solve call" 5 dc;
  Alcotest.(check int) "probe sees the same count" 5 (Runner.span_count p);
  Alcotest.(check (float 0.0))
    "ms column = 1000 * sum / count of the span histogram"
    (1000.0 *. ds /. float_of_int dc)
    (Runner.span_mean_ms p);
  let ticks = ds /. tick in
  Alcotest.(check (float 0.0))
    "span sum is an exact whole number of dyadic ticks" (Float.round ticks)
    ticks

(* ---- golden CSVs ------------------------------------------------------ *)

(* MUST stay in sync with golden_gen.ml (same seeds, sizes, request
   counts). Regenerate after an intentional output change with
     dune exec test/golden_gen.exe -- test/golden *)
let families =
  [
    ("fig5", fun () -> Experiments.Fig5.run ~seed:3 ~requests:2 ~sizes:[ 30; 50 ] ());
    ("fig6", fun () -> Experiments.Fig6.run ~seed:3 ~requests:2 ());
    ("fig7", fun () -> Experiments.Fig7.run ~seed:3 ~requests:10 ~sizes:[ 30; 50 ] ());
    ("fig8", fun () -> Experiments.Fig8.run ~seed:3 ~requests:30 ~sizes:[ 30; 50 ] ());
    ("fig9", fun () -> Experiments.Fig9.run ~seed:3 ~requests:60 ());
    ("ablation", fun () -> Experiments.Ablation.run ~seed:3 ~requests:12 ());
    ("dynamic", fun () -> Experiments.Dynamic_load.run ~seed:3 ~n:40 ~arrivals:40 ());
    ("batch", fun () -> Experiments.Batch_order.run ~seed:3 ~n:30 ~sizes:[ 15; 30 ] ());
    ("delay", fun () -> Experiments.Delay_exp.run ~seed:3 ~n:40 ~requests:20 ());
    ("tables", fun () -> Experiments.Table_exp.run ~seed:3 ~n:40 ~requests:20 ());
  ]

(* dune runtest executes in _build/default/test (where the deps glob
   copies golden/); dune exec from the repo root sees test/golden *)
let golden_dir =
  lazy
    (List.find_opt Sys.file_exists [ "golden"; "test/golden" ]
    |> function
    | Some d -> d
    | None -> Alcotest.fail "golden directory not found")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden name run () =
  E.install_fake_clock ();
  Experiments.Pool.set_jobs 1;
  List.iter
    (fun f ->
      let path = Filename.concat (Lazy.force golden_dir) (f.E.id ^ ".csv") in
      if not (Sys.file_exists path) then
        Alcotest.failf "missing golden file %s (run golden_gen)" path;
      let want = read_file path in
      let got = E.to_csv f in
      if not (String.equal want got) then
        Alcotest.failf
          "%s: CSV differs from golden %s (regenerate with golden_gen if the \
           change is intentional)"
          name path)
    (run ())

(* ---- per-scenario obs snapshots --------------------------------------- *)

let test_obs_out () =
  E.install_fake_clock ();
  Experiments.Pool.set_jobs 1;
  let dir = Filename.temp_file "nfvm_obs" "" in
  Sys.remove dir;
  let figs =
    Runner.run ~seed:3 ~requests:16 ~obs_out:dir Experiments.Stress.spec
  in
  Alcotest.(check int) "stress figures produced" 2 (List.length figs);
  let path = Runner.obs_json_path ~dir "stress" in
  if not (Sys.file_exists path) then
    Alcotest.failf "snapshot %s not written" path;
  let text = read_file path in
  let snap = Obs.Export.of_json text in
  if snap = [] then Alcotest.fail "snapshot is empty";
  (* exact round-trip: to_json . of_json = id on the written bytes *)
  Alcotest.(check string)
    "snapshot JSON round-trips byte-for-byte" (String.trim text)
    (Obs.Export.to_json snap);
  (* the family's own counters are in its snapshot *)
  let has_counter name =
    List.exists
      (function Obs.Export.Counter (n, _) -> n = name | _ -> false)
      snap
  in
  if not (has_counter "online_cp.admitted") then
    Alcotest.fail "snapshot lacks online_cp.admitted";
  if not (has_counter "online_cp.rejected.over_threshold") then
    Alcotest.fail "snapshot lacks rejection counters"

let () =
  Alcotest.run "specs"
    [
      ( "registry",
        [
          Alcotest.test_case "ids" `Quick test_registry_ids;
          Alcotest.test_case "declared figures" `Quick test_declared_figures;
          Alcotest.test_case "assembly smoke" `Quick test_assembly_smoke;
          Alcotest.test_case "stress conservation" `Quick
            test_stress_conservation;
        ] );
      ( "timing",
        [
          Alcotest.test_case "span probe exact" `Quick test_span_probe_exact;
          Alcotest.test_case "span quantile edge cases" `Quick
            test_span_quantile_edges;
          Alcotest.test_case "designed-net ms column" `Quick
            test_designed_net_ms;
        ] );
      ( "golden",
        List.map
          (fun (name, run) ->
            Alcotest.test_case name `Quick (test_golden name run))
          families );
      ("obs-out", [ Alcotest.test_case "snapshot" `Quick test_obs_out ]);
    ]
