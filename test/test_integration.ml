(* End-to-end scenarios across topologies, plus experiment smoke tests. *)

module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server
module Adm = Nfv_multicast.Admission
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

let test_geant_pipeline () =
  let rng = Rng.create 1 in
  let net =
    N.make ~rng ~servers:Topology.Geant.default_servers (Topology.Geant.topology ())
  in
  let reqs = Workload.Gen.sequence rng net ~count:20 in
  List.iter
    (fun r ->
      match (A.solve ~k:3 net r, O.solve net r) with
      | Ok a, Ok o ->
        (match Pt.validate net a.A.tree with
        | Ok () -> ()
        | Error e -> Alcotest.failf "appro invalid: %s" e);
        (match Pt.validate net o.O.tree with
        | Ok () -> ()
        | Error e -> Alcotest.failf "one_server invalid: %s" e)
      | Error e, _ -> Alcotest.failf "appro failed on GEANT: %s" e
      | _, Error e -> Alcotest.failf "one_server failed on GEANT: %s" e)
    reqs

let test_geant_appro_beats_baseline_on_average () =
  let rng = Rng.create 2 in
  let net =
    N.make ~rng ~servers:Topology.Geant.default_servers (Topology.Geant.topology ())
  in
  let reqs = Workload.Gen.sequence rng net ~count:100 in
  let total_a = ref 0.0 and total_o = ref 0.0 in
  List.iter
    (fun r ->
      match (A.solve ~k:3 net r, O.solve net r) with
      | Ok a, Ok o ->
        total_a := !total_a +. a.A.cost;
        total_o := !total_o +. o.O.cost
      | _ -> Alcotest.fail "solver failure")
    reqs;
  Alcotest.(check bool) "Appro_Multi cheaper on average" true (!total_a <= !total_o)

let test_as1755_pipeline () =
  let rng = Rng.create 3 in
  let net =
    N.make_random_servers ~fraction:0.1 ~rng (Topology.Rocketfuel.as1755 ())
  in
  let reqs = Workload.Gen.sequence rng net ~count:10 in
  List.iter
    (fun r ->
      match A.solve ~k:3 net r with
      | Ok a -> (
        match Pt.validate net a.A.tree with
        | Ok () -> ()
        | Error e -> Alcotest.failf "invalid: %s" e)
      | Error e -> Alcotest.failf "solve failed: %s" e)
    reqs

let test_fat_tree_monitoring () =
  (* datacenter monitoring: multicast from an edge switch to many edge
     switches over a k=4 fat-tree with servers at two aggregation nodes *)
  let rng = Rng.create 4 in
  let topo = Topology.Fat_tree.generate ~k:4 () in
  let aggs = Topology.Fat_tree.aggregation_switches ~k:4 in
  let servers = [ List.nth aggs 0; List.nth aggs 5 ] in
  let net = N.make ~rng ~servers topo in
  let edges = Topology.Fat_tree.edge_switches ~k:4 in
  let source = List.hd edges in
  let destinations = List.filteri (fun i _ -> i > 0 && i mod 2 = 0) edges in
  let req =
    Sdn.Request.make ~id:0 ~source ~destinations ~bandwidth:120.0
      ~chain:[ Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]
  in
  match A.solve ~k:2 net req with
  | Error e -> Alcotest.failf "fat-tree solve: %s" e
  | Ok res -> (
    match Pt.validate net res.A.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e)

let test_online_full_run_geant () =
  let rng = Rng.create 5 in
  let net =
    N.make ~rng ~servers:Topology.Geant.default_servers (Topology.Geant.topology ())
  in
  let reqs = Workload.Gen.sequence rng net ~count:200 in
  let cp = Adm.run net Adm.Online_cp_no_threshold reqs in
  let sp = Adm.run net Adm.Sp reqs in
  Alcotest.(check bool) "CP-noSigma >= SP admissions" true
    (cp.Adm.admitted >= sp.Adm.admitted);
  Alcotest.(check bool) "CP balances better" true
    (cp.Adm.jain_fairness >= sp.Adm.jain_fairness -. 0.05)

let test_paper_scale_instance () =
  (* one request at the paper's largest scale: 250 switches, 25 servers,
     K = 3, Dmax/|V| = 0.2 — exercises the combination enumeration and
     the hub metric at full size *)
  let rng = Rng.create 7 in
  let net = Experiments.Exp_common.network rng ~n:250 in
  let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.2 } in
  let req = Workload.Gen.request ~spec rng net ~id:0 in
  match A.solve ~k:3 net req with
  | Error e -> Alcotest.failf "paper-scale solve: %s" e
  | Ok res ->
    (match Pt.validate net res.A.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e);
    (match Nfv_multicast.Flow_rules.verify net res.A.tree with
    | Ok () -> ()
    | Error e -> Alcotest.failf "data plane: %s" e);
    Alcotest.(check bool) "explored thousands of combinations" true
      (res.A.combinations > 2000)

let test_admission_interleaving_safe () =
  (* alternate algorithms on one network without reset: capacities hold *)
  let rng = Rng.create 6 in
  let net = Experiments.Exp_common.network rng ~n:60 in
  let reqs = Workload.Gen.sequence rng net ~count:60 in
  N.reset net;
  List.iteri
    (fun i r ->
      if i mod 2 = 0 then ignore (Nfv_multicast.Online_cp.admit net r)
      else ignore (Nfv_multicast.Online_sp.admit net r))
    reqs;
  for e = 0 to N.m net - 1 do
    if N.link_residual net e < -1e-6 then Alcotest.fail "negative residual"
  done

(* --- experiment smoke tests (tiny sizes, just structure) --- *)

let check_figure (fig : Experiments.Exp_common.figure) =
  if fig.Experiments.Exp_common.series = [] then
    Alcotest.failf "figure %s has no series" fig.Experiments.Exp_common.id;
  List.iter
    (fun s ->
      if s.Experiments.Exp_common.points = [] then
        Alcotest.failf "figure %s series %s empty" fig.Experiments.Exp_common.id
          s.Experiments.Exp_common.label;
      List.iter
        (fun (_, y) ->
          if Float.is_nan y then
            Alcotest.failf "NaN in %s" fig.Experiments.Exp_common.id)
        s.Experiments.Exp_common.points)
    fig.Experiments.Exp_common.series

let test_fig5_smoke () =
  let figs = Experiments.Fig5.run ~seed:1 ~requests:3 ~sizes:[ 30; 50 ] () in
  Alcotest.(check int) "six figures" 6 (List.length figs);
  List.iter check_figure figs

let test_fig6_smoke () =
  let figs = Experiments.Fig6.run ~seed:1 ~requests:5 () in
  Alcotest.(check int) "four figures" 4 (List.length figs);
  List.iter check_figure figs

let test_fig7_smoke () =
  let figs = Experiments.Fig7.run ~seed:1 ~requests:3 ~sizes:[ 30; 50 ] () in
  Alcotest.(check int) "two figures" 2 (List.length figs);
  List.iter check_figure figs

let test_fig8_smoke () =
  let figs = Experiments.Fig8.run ~seed:1 ~requests:30 ~sizes:[ 30; 50 ] () in
  Alcotest.(check int) "two figures" 2 (List.length figs);
  List.iter check_figure figs

let test_fig9_smoke () =
  let figs = Experiments.Fig9.run ~seed:1 ~requests:60 () in
  Alcotest.(check int) "two figures" 2 (List.length figs);
  List.iter check_figure figs

let test_ablation_smoke () =
  let fig = Experiments.Ablation.cost_model ~seed:1 ~requests:200 ~n:40 () in
  check_figure fig;
  let figs = Experiments.Ablation.k_sweep ~seed:1 ~requests:2 ~sizes:[ 30 ] () in
  List.iter check_figure figs

let test_render_smoke () =
  let figs = Experiments.Fig9.run ~seed:1 ~requests:60 () in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.Exp_common.render_all ppf figs;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions Online_CP" true (contains out "Online_CP")

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "GEANT pipeline" `Quick test_geant_pipeline;
          Alcotest.test_case "GEANT appro vs baseline" `Slow
            test_geant_appro_beats_baseline_on_average;
          Alcotest.test_case "AS1755 pipeline" `Quick test_as1755_pipeline;
          Alcotest.test_case "fat-tree monitoring" `Quick test_fat_tree_monitoring;
          Alcotest.test_case "online GEANT run" `Slow test_online_full_run_geant;
          Alcotest.test_case "paper-scale instance" `Slow test_paper_scale_instance;
          Alcotest.test_case "interleaved admission" `Quick
            test_admission_interleaving_safe;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig5" `Slow test_fig5_smoke;
          Alcotest.test_case "fig6" `Slow test_fig6_smoke;
          Alcotest.test_case "fig7" `Slow test_fig7_smoke;
          Alcotest.test_case "fig8" `Slow test_fig8_smoke;
          Alcotest.test_case "fig9" `Slow test_fig9_smoke;
          Alcotest.test_case "ablation" `Slow test_ablation_smoke;
          Alcotest.test_case "render" `Quick test_render_smoke;
        ] );
    ]
