(* Failure injection (Sdn.Fault) + tiered recovery (Repair): designed
   nets pinning which tier fires, and the resource-exactness property —
   injection and repair conserve capacity exactly, dropped sessions leak
   nothing. *)

module G = Mcgraph.Graph
module N = Sdn.Network
module Fault = Sdn.Fault
module Adm = Nfv_multicast.Admission
module Cp = Nfv_multicast.Online_cp
module Pt = Nfv_multicast.Pseudo_tree
module Repair = Nfv_multicast.Repair
module W = Nfv_multicast.Sp_window
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

let with_obs f =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

(* the five repair outcome counters, read as one tuple *)
let repair_counters () =
  let v name = Obs.Counter.value (Obs.Counter.make name) in
  ( v "repair.attempted",
    v "repair.patched",
    v "repair.migrated",
    v "repair.readmitted",
    v "repair.dropped" )

let check_counters_sum ~before ~after =
  let a0, p0, m0, r0, d0 = before and a1, p1, m1, r1, d1 = after in
  Alcotest.(check int)
    "repair.* tier counters sum to repair.attempted" (a1 - a0)
    (p1 - p0 + (m1 - m0) + (r1 - r0) + (d1 - d0))

let mk_request ~id ~source ~destinations ~bandwidth =
  Sdn.Request.make ~id ~source ~destinations ~bandwidth
    ~chain:[ Sdn.Vnf.Firewall ]

let repair_with ~window ~fault net tree =
  Repair.repair ~window
    ~link_down:(Fault.link_is_down fault)
    ~server_down:(Fault.server_is_down fault)
    net tree

(* ---- designed net 1: a single link failure with a detour ----
       0 --e0-- 1 --e1-- 2(srv)
                |         |
                e3       e2
                |         |
                4 --e4-- 3(dest)
   Admitted tree: 0-1-2-3. Killing e2 severs the destination; the patch
   tier must re-attach it through 4 and keep server 2. *)
let patch_net () =
  let g = G.create 5 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 1 2 in
  let e2 = G.add_edge g 2 3 in
  let e3 = G.add_edge g 1 4 in
  let e4 = G.add_edge g 4 3 in
  let topo = Topology.Topo.make ~name:"patch-net" g in
  let m = G.m g in
  let net =
    N.make_explicit ~topology:topo
      ~servers:[ (2, 1000.0, 1.0) ]
      ~link_capacities:(Array.make m 100.0)
      ~link_unit_costs:(Array.make m 1.0) ()
  in
  (net, (e0, e1, e2, e3, e4))

let test_single_edge_failure_is_patched () =
  with_obs @@ fun () ->
  let net, (e0, e1, e2, _e3, _e4) = patch_net () in
  let req = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0 in
  let tree =
    match Adm.admit_tree net Adm.Online_cp req with
    | Ok t -> t
    | Error e -> Alcotest.failf "admission failed: %s" e
  in
  Alcotest.(check (list int))
    "admitted along the short path" [ e0; e1; e2 ]
    (List.sort compare (List.map fst tree.Pt.edge_uses));
  let fault = Fault.create net in
  let before = repair_counters () in
  let victims = Fault.inject fault ~live:[ (0, Pt.allocation tree) ] (Fault.Link_down e2) in
  Alcotest.(check (list int)) "the session is evicted" [ 0 ] victims;
  Alcotest.(check bool) "link marked down" true (Fault.link_is_down fault e2);
  let window = W.create net in
  (match repair_with ~window ~fault net tree with
  | Repair.Repaired { tree = t'; tier = Repair.Patched } ->
    (match Pt.validate net t' with
    | Ok () -> ()
    | Error e -> Alcotest.failf "patched tree invalid: %s" e);
    Alcotest.(check (list int)) "server kept" [ 2 ] t'.Pt.servers;
    let support = List.sort compare (List.map fst t'.Pt.edge_uses) in
    Alcotest.(check bool)
      "patched tree avoids the down link" false (List.mem e2 support)
  | Repair.Repaired { tier; _ } ->
    Alcotest.failf "wrong tier: %s (local patch is feasible)"
      (Repair.tier_to_string tier)
  | Repair.Dropped msg -> Alcotest.failf "dropped: %s" msg);
  check_counters_sum ~before ~after:(repair_counters ())

(* healing restores exactly the confiscated capacity *)
let test_heal_restores_capacity () =
  let net, (_, _, e2, _, _) = patch_net () in
  let fault = Fault.create net in
  ignore (Fault.inject fault ~live:[] (Fault.Link_down e2));
  Alcotest.(check (Alcotest.float 1e-9)) "down link has zero residual" 0.0
    (N.link_residual net e2);
  Alcotest.(check (Alcotest.float 1e-9)) "confiscation = capacity" 100.0
    (Fault.confiscated_link fault e2);
  ignore (Fault.inject fault ~live:[] (Fault.Link_up e2));
  Alcotest.(check (Alcotest.float 1e-9)) "residual restored" 100.0
    (N.link_residual net e2);
  Alcotest.(check bool) "flag cleared" false (Fault.link_is_down fault e2)

(* ---- designed net 2: server failure with an alternative server ----
       0 --e0-- 1 --e1-- 2(srvA)
                |\
               e2 e3
                |  \
         (dest) 3   5 --e4-- 4(srvB)
   A is admitted (closer); killing A must migrate the chain to B while
   keeping the surviving 0-1-3 tree. *)
let migrate_net () =
  let g = G.create 6 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 1 2 in
  let e2 = G.add_edge g 1 3 in
  let e3 = G.add_edge g 1 5 in
  let e4 = G.add_edge g 5 4 in
  let topo = Topology.Topo.make ~name:"migrate-net" g in
  let m = G.m g in
  let net =
    N.make_explicit ~topology:topo
      ~servers:[ (2, 1000.0, 1.0); (4, 1000.0, 1.0) ]
      ~link_capacities:(Array.make m 100.0)
      ~link_unit_costs:(Array.make m 1.0) ()
  in
  (net, (e0, e1, e2, e3, e4))

let test_server_failure_is_migrated () =
  with_obs @@ fun () ->
  let net, (e0, e1, e2, e3, e4) = migrate_net () in
  let req = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0 in
  let tree =
    match Adm.admit_tree net Adm.Online_cp req with
    | Ok t -> t
    | Error e -> Alcotest.failf "admission failed: %s" e
  in
  Alcotest.(check (list int)) "server A chosen" [ 2 ] tree.Pt.servers;
  let fault = Fault.create net in
  let before = repair_counters () in
  let victims =
    Fault.inject fault ~live:[ (0, Pt.allocation tree) ] (Fault.Server_down 2)
  in
  Alcotest.(check (list int)) "the session is evicted" [ 0 ] victims;
  let window = W.create net in
  (match repair_with ~window ~fault net tree with
  | Repair.Repaired { tree = t'; tier = Repair.Migrated } ->
    (match Pt.validate net t' with
    | Ok () -> ()
    | Error e -> Alcotest.failf "migrated tree invalid: %s" e);
    Alcotest.(check (list int)) "chain moved to B" [ 4 ] t'.Pt.servers;
    let support = List.sort compare (List.map fst t'.Pt.edge_uses) in
    Alcotest.(check (list int))
      "surviving tree kept, B attached" [ e0; e2; e3; e4 ] support;
    Alcotest.(check bool) "old server edge dropped" false (List.mem e1 support)
  | Repair.Repaired { tier; _ } ->
    Alcotest.failf "wrong tier: %s" (Repair.tier_to_string tier)
  | Repair.Dropped msg -> Alcotest.failf "dropped: %s" msg);
  check_counters_sum ~before ~after:(repair_counters ())

(* only server down, no alternative anywhere: every tier fails and the
   drop must leave the network exactly as the failure left it *)
let test_lone_server_failure_is_dropped () =
  with_obs @@ fun () ->
  let net, _ = patch_net () in
  let req = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0 in
  let tree =
    match Adm.admit_tree net Adm.Online_cp req with
    | Ok t -> t
    | Error e -> Alcotest.failf "admission failed: %s" e
  in
  let fault = Fault.create net in
  let before = repair_counters () in
  let victims =
    Fault.inject fault ~live:[ (0, Pt.allocation tree) ] (Fault.Server_down 2)
  in
  Alcotest.(check (list int)) "the session is evicted" [ 0 ] victims;
  let window = W.create net in
  (match repair_with ~window ~fault net tree with
  | Repair.Dropped _ -> ()
  | Repair.Repaired { tier; _ } ->
    Alcotest.failf "no server is available, yet %s" (Repair.tier_to_string tier));
  check_counters_sum ~before ~after:(repair_counters ());
  (* nothing leaked: every link back to capacity, the server fully
     confiscated and nothing else held *)
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "link residual back to capacity"
      (N.link_capacity net e) (N.link_residual net e)
  done;
  Tutil.assert_close "server residual all confiscated" 0.0
    (N.server_residual net 2);
  Tutil.assert_close "confiscation equals capacity"
    (N.server_capacity net 2)
    (Fault.confiscated_server fault 2)

(* a degradation that needs no eviction has no victims *)
let test_degrade_without_eviction () =
  let net, (e0, _, _, _, _) = patch_net () in
  let fault = Fault.create net in
  let victims = Fault.inject fault ~live:[] (Fault.Degrade_link (e0, 0.5)) in
  Alcotest.(check (list int)) "no victims" [] victims;
  Alcotest.(check bool) "degraded is not down" false (Fault.link_is_down fault e0);
  Tutil.assert_close "half the capacity confiscated" 50.0
    (Fault.confiscated_link fault e0);
  (* degrading again to a lower target confiscates nothing more *)
  ignore (Fault.inject fault ~live:[] (Fault.Degrade_link (e0, 0.25)));
  Tutil.assert_close "confiscation is monotone (max of targets)" 50.0
    (Fault.confiscated_link fault e0)

(* ---- the conservation property ----------------------------------------

   Drive a random admission sequence against a random schedule, repairing
   every victim. After every event and at the end:
     capacity(r) = residual(r) + confiscated(r) + Σ live allocations on r
   for every link and server; tier counters sum to attempted; live trees
   stay valid. *)

let sum_allocs live =
  let links = Hashtbl.create 32 and nodes = Hashtbl.create 32 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v +. Option.value (Hashtbl.find_opt tbl k) ~default:0.0)
  in
  List.iter
    (fun (_, tree) ->
      let a = Pt.allocation tree in
      List.iter (fun (e, amt) -> bump links e amt) a.N.links;
      List.iter (fun (v, amt) -> bump nodes v amt) a.N.nodes)
    live;
  (links, nodes)

let check_conservation net fault live =
  let links, nodes = sum_allocs live in
  let held tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0.0 in
  for e = 0 to N.m net - 1 do
    let lhs = N.link_capacity net e -. N.link_residual net e in
    let rhs = Fault.confiscated_link fault e +. held links e in
    if Float.abs (lhs -. rhs) > 1e-6 then
      QCheck.Test.fail_reportf
        "link %d: allocated %.9g but confiscated+held = %.9g" e lhs rhs
  done;
  List.iter
    (fun v ->
      let lhs = N.server_capacity net v -. N.server_residual net v in
      let rhs = Fault.confiscated_server fault v +. held nodes v in
      if Float.abs (lhs -. rhs) > 1e-6 then
        QCheck.Test.fail_reportf
          "server %d: allocated %.9g but confiscated+held = %.9g" v lhs rhs)
    (N.servers net)

let churn_property seed =
  with_obs @@ fun () ->
  let net, rng = Tutil.random_network seed ~lo:12 ~hi:24 in
  let count = 16 in
  let reqs = Workload.Gen.sequence rng net ~count in
  let schedule =
    Fault.random_schedule ~heal_after:3 ~rng ~horizon:count ~events:6 net
  in
  let fault = Fault.create net in
  let window = W.create net in
  let before = repair_counters () in
  let live = ref [] in
  List.iteri
    (fun idx r ->
      (match Adm.admit_tree ~window net Adm.Online_cp r with
      | Ok t -> live := (r.Sdn.Request.id, t) :: !live
      | Error _ -> ());
      List.iter
        (fun (ev : Fault.timed) ->
          if ev.Fault.after = idx then begin
            let allocations =
              List.map (fun (id, t) -> (id, Pt.allocation t)) !live
            in
            let victims = Fault.inject fault ~live:allocations ev.Fault.event in
            List.iter
              (fun vid ->
                let t = List.assoc vid !live in
                live := List.remove_assoc vid !live;
                match repair_with ~window ~fault net t with
                | Repair.Repaired { tree; _ } -> live := (vid, tree) :: !live
                | Repair.Dropped _ -> ())
              victims;
            check_conservation net fault !live
          end)
        schedule)
    reqs;
  check_conservation net fault !live;
  List.iter
    (fun (id, t) ->
      match Pt.validate net t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "live tree %d invalid: %s" id e)
    !live;
  let a0, p0, m0, r0, d0 = before and a1, p1, m1, r1, d1 = repair_counters () in
  if a1 - a0 <> p1 - p0 + (m1 - m0) + (r1 - r0) + (d1 - d0) then
    QCheck.Test.fail_reportf "tier counters do not sum to repair.attempted";
  (* healing everything must restore the full idle capacity net of what
     the surviving sessions still hold *)
  Fault.heal_all fault;
  let links, nodes = sum_allocs !live in
  let held tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0.0 in
  for e = 0 to N.m net - 1 do
    let expect = N.link_capacity net e -. held links e in
    if Float.abs (N.link_residual net e -. expect) > 1e-6 then
      QCheck.Test.fail_reportf "after heal_all, link %d residual wrong" e
  done;
  List.iter
    (fun v ->
      let expect = N.server_capacity net v -. held nodes v in
      if Float.abs (N.server_residual net v -. expect) > 1e-6 then
        QCheck.Test.fail_reportf "after heal_all, server %d residual wrong" v)
    (N.servers net);
  true

let () =
  Alcotest.run "repair"
    [
      ( "designed",
        [
          Alcotest.test_case "single edge failure -> patched" `Quick
            test_single_edge_failure_is_patched;
          Alcotest.test_case "heal restores capacity" `Quick
            test_heal_restores_capacity;
          Alcotest.test_case "server failure -> migrated" `Quick
            test_server_failure_is_migrated;
          Alcotest.test_case "lone server failure -> dropped" `Quick
            test_lone_server_failure_is_dropped;
          Alcotest.test_case "degrade without eviction" `Quick
            test_degrade_without_eviction;
        ] );
      ( "property",
        [
          Tutil.qtest ~count:40 "injection + repair conserves resources"
            QCheck.small_nat churn_property;
        ] );
    ]
