module D = Nfv_multicast.Delay
module Pt = Nfv_multicast.Pseudo_tree
module Adm = Nfv_multicast.Admission
module N = Sdn.Network
module Rng = Topology.Rng

(* path 0-1-2-3-4, server at 2, uniform profile (delay 1 ms per link) *)
let fixture () =
  let rng = Rng.create 1 in
  let topo =
    Topology.Topo.make ~name:"path"
      (Mcgraph.Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ])
  in
  N.make
    ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:8000.0)
    ~rng ~servers:[ 2 ] topo

let request ?deadline () =
  let r =
    Sdn.Request.make ~id:7 ~source:0 ~destinations:[ 4 ] ~bandwidth:10.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  match deadline with None -> r | Some d -> Sdn.Request.with_deadline r d

let tree req =
  Pt.make ~request:req ~servers:[ 2 ]
    ~edge_uses:[ (0, 1); (1, 1); (2, 1); (3, 1) ]
    ~routes:[ (4, { Pt.to_server = [ 0; 1 ]; server = 2; onward = [ 2; 3 ] }) ]

let test_destination_delay () =
  let net = fixture () in
  let pt = tree (request ()) in
  (* 4 links × 1 ms + NAT 0.1 ms *)
  Tutil.assert_close "delay" 4.1 (D.destination_delay_ms net pt 4);
  Tutil.assert_close "worst = only" 4.1 (D.worst_delay_ms net pt)

let test_chain_delay_values () =
  Tutil.assert_close "NAT" 0.1 (Sdn.Vnf.chain_delay_ms [ Sdn.Vnf.Nat ]);
  Tutil.assert_close "full chain" 1.3
    (Sdn.Vnf.chain_delay_ms [ Sdn.Vnf.Nat; Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]);
  Alcotest.check_raises "empty" (Invalid_argument "Vnf.chain_delay_ms: empty chain")
    (fun () -> ignore (Sdn.Vnf.chain_delay_ms []))

let test_meets_deadline () =
  let net = fixture () in
  Alcotest.(check bool) "no deadline" true (D.meets_deadline net (tree (request ())));
  Alcotest.(check bool) "loose" true
    (D.meets_deadline net (tree (request ~deadline:5.0 ())));
  Alcotest.(check bool) "tight" false
    (D.meets_deadline net (tree (request ~deadline:4.0 ())))

let test_deadline_setter_validates () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Request.with_deadline: non-positive deadline") (fun () ->
      ignore (Sdn.Request.with_deadline (request ()) 0.0))

let test_admit_rolls_back () =
  let net = fixture () in
  let impossible = request ~deadline:1.0 () in
  (match D.admit net Adm.Sp impossible with
  | Ok _ -> Alcotest.fail "1 ms across 4 hops is impossible"
  | Error _ -> ());
  (* rollback left the network untouched *)
  for e = 0 to N.m net - 1 do
    Tutil.assert_close "residual intact" (N.link_capacity net e) (N.link_residual net e)
  done;
  Tutil.assert_close "server intact" (N.server_capacity net 2) (N.server_residual net 2)

let test_admit_accepts_feasible () =
  let net = fixture () in
  match D.admit net Adm.Sp (request ~deadline:10.0 ()) with
  | Error e -> Alcotest.failf "should admit: %s" e
  | Ok pt ->
    Alcotest.(check bool) "within bound" true (D.meets_deadline net pt);
    Alcotest.(check bool) "resources held" true
      (N.link_residual net 0 < N.link_capacity net 0)

let test_missing_witness () =
  let net = fixture () in
  let pt = Pt.make ~request:(request ()) ~servers:[ 2 ] ~edge_uses:[ (0, 1) ] ~routes:[] in
  Alcotest.check_raises "no witness"
    (Invalid_argument "Delay.destination_delay_ms: no witness for destination")
    (fun () -> ignore (D.destination_delay_ms net pt 4))

let prop_delay_consistent_with_validation =
  Tutil.qtest ~count:60 "admitted delay-bounded trees always meet the bound"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:8 ~hi:25 in
      let spec =
        { Workload.Gen.default_spec with deadline = Some (5.0, 30.0) }
      in
      let reqs = Workload.Gen.sequence ~spec rng net ~count:20 in
      List.for_all
        (fun r ->
          match D.admit net Adm.Online_cp_no_threshold r with
          | Ok pt -> D.meets_deadline net pt
          | Error _ -> true)
        reqs)

let prop_tightening_monotone =
  Tutil.qtest ~count:30 "tighter deadlines never admit more"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:10 ~hi:25 in
      let reqs = Workload.Gen.sequence rng net ~count:25 in
      let count bound =
        Sdn.Network.reset net;
        List.fold_left
          (fun k r ->
            let r = Sdn.Request.with_deadline r bound in
            match D.admit net Adm.Sp r with Ok _ -> k + 1 | Error _ -> k)
          0 reqs
      in
      (* SP's routing ignores the bound; allow one unit of slack for the
         rare case where a rollback frees capacity that flips a later
         decision *)
      count 8.0 <= count 100.0 + 1)

let () =
  Alcotest.run "delay"
    [
      ( "unit",
        [
          Alcotest.test_case "destination delay" `Quick test_destination_delay;
          Alcotest.test_case "chain delays" `Quick test_chain_delay_values;
          Alcotest.test_case "meets_deadline" `Quick test_meets_deadline;
          Alcotest.test_case "setter validation" `Quick test_deadline_setter_validates;
          Alcotest.test_case "rollback on violation" `Quick test_admit_rolls_back;
          Alcotest.test_case "accepts feasible" `Quick test_admit_accepts_feasible;
          Alcotest.test_case "missing witness" `Quick test_missing_witness;
        ] );
      ( "property",
        [ prop_delay_consistent_with_validation; prop_tightening_monotone ] );
    ]
