(* Randomized invariant suite: the paper's guarantees checked on many
   small random instances.

   1. Approximation ratio (Theorem 2): Appro_Multi's cost is within 2K
      of the exact optimum computed by brute force on instances small
      enough for Dreyfus–Wagner.
   2. Structure: every solution is a valid pseudo-multicast tree whose
      witness routes visit a service-chain server before reaching their
      destination.
   3. Capacity safety: no sequence of admissions ever drives a link or
      server residual below zero or above its capacity.

   All trials derive from one master seed, so a failure reproduces
   exactly; each trial logs its per-trial seed on failure. *)

module A = Nfv_multicast.Appro_multi
module E = Nfv_multicast.Exact
module P = Nfv_multicast.Pseudo_tree
module Adm = Nfv_multicast.Admission
module Net = Sdn.Network

let eps = 1e-6

(* a small random instance: 8–14 switches, ~25 % servers, a request with
   a bounded destination set *)
let small_instance ?(max_dests = 4) rng =
  let n = 10 + Topology.Rng.int rng 5 in
  let topo =
    (* Transit_stub.generate_sized needs n >= 10, hence the size floor *)
    if Topology.Rng.int rng 4 = 0 then
      Topology.Transit_stub.generate_sized rng ~n
    else Topology.Waxman.generate ~alpha:0.6 ~beta:0.4 rng ~n
  in
  let net = Net.make_random_servers ~fraction:0.25 ~rng topo in
  let nn = Net.n net in
  let source = Topology.Rng.int rng nn in
  let dcount = 1 + Topology.Rng.int rng max_dests in
  let picks =
    Topology.Rng.sample_without_replacement rng (min dcount (nn - 1)) (nn - 1)
  in
  let destinations =
    List.map (fun i -> if i >= source then i + 1 else i) picks
  in
  let request =
    Sdn.Request.make ~id:0 ~source ~destinations
      ~bandwidth:(Topology.Rng.float_range rng 50.0 200.0)
      ~chain:(Sdn.Vnf.random_chain rng)
  in
  (net, request)

(* --- 1. the 2K bound --- *)

let test_approximation_ratio () =
  let rng = Topology.Rng.create 0xA11CE in
  let feasible = ref 0 in
  for trial = 1 to 60 do
    let tseed = Topology.Rng.int rng max_int in
    let trng = Topology.Rng.create tseed in
    let k = 1 + Topology.Rng.int trng 2 in
    let net, req = small_instance trng in
    match (A.solve ~k net req, E.optimal ~k net req) with
    | Ok appro, Ok opt ->
      incr feasible;
      let bound = (2.0 *. float_of_int k *. opt.E.mcost) +. eps in
      if appro.A.cost > bound then
        Alcotest.failf
          "trial %d (seed %d, K=%d): Appro_Multi cost %.4f exceeds 2K x OPT \
           = %.4f (OPT %.4f)"
          trial tseed k appro.A.cost bound opt.E.mcost;
      (* the oracle really is a lower bound for the solution found *)
      if opt.E.mcost > appro.A.cost +. eps then
        Alcotest.failf
          "trial %d (seed %d, K=%d): exact optimum %.4f above Appro_Multi \
           cost %.4f"
          trial tseed k opt.E.mcost appro.A.cost
    | Error _, Error _ -> () (* unreachable destinations: both agree *)
    | Ok _, Error e ->
      Alcotest.failf "trial %d (seed %d): oracle failed on a feasible instance: %s"
        trial tseed e
    | Error e, Ok _ ->
      Alcotest.failf
        "trial %d (seed %d): Appro_Multi failed on a feasible instance: %s"
        trial tseed e
  done;
  (* the generator must actually produce solvable instances *)
  Alcotest.(check bool)
    (Printf.sprintf "enough feasible trials (%d)" !feasible)
    true (!feasible >= 30)

(* --- 2. structural soundness + service-chain property --- *)

let test_tree_structure () =
  let rng = Topology.Rng.create 0xBEEF in
  let feasible = ref 0 in
  for trial = 1 to 80 do
    let tseed = Topology.Rng.int rng max_int in
    let trng = Topology.Rng.create tseed in
    let k = 1 + Topology.Rng.int trng 3 in
    let net, req = small_instance ~max_dests:6 trng in
    match A.solve ~k net req with
    | Error _ -> ()
    | Ok res ->
      incr feasible;
      let tree = res.A.tree in
      (match P.validate net tree with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "trial %d (seed %d, K=%d): invalid tree: %s" trial tseed
          k e);
      if List.length tree.P.servers > k then
        Alcotest.failf "trial %d (seed %d): %d servers exceed K=%d" trial tseed
          (List.length tree.P.servers) k;
      (* every destination's copy is processed by a chosen, real server
         before onward delivery — the service-chain property *)
      List.iter
        (fun d ->
          match List.assoc_opt d tree.P.routes with
          | None ->
            Alcotest.failf "trial %d (seed %d): destination %d has no route"
              trial tseed d
          | Some r ->
            if not (List.mem r.P.server tree.P.servers) then
              Alcotest.failf
                "trial %d (seed %d): destination %d served by %d, not a \
                 chosen server"
                trial tseed d r.P.server;
            if not (Net.is_server net r.P.server) then
              Alcotest.failf
                "trial %d (seed %d): node %d is not a server of the network"
                trial tseed r.P.server)
        req.Sdn.Request.destinations
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough feasible trials (%d)" !feasible)
    true (!feasible >= 40)

(* --- 3. capacity safety --- *)

let check_residuals ~trial ~tseed ~what net =
  let g = Net.graph net in
  for e = 0 to Mcgraph.Graph.m g - 1 do
    let r = Net.link_residual net e and c = Net.link_capacity net e in
    if r < -.eps || r > c +. eps then
      Alcotest.failf
        "trial %d (seed %d, %s): link %d residual %.4f outside [0, %.4f]"
        trial tseed what e r c
  done;
  List.iter
    (fun v ->
      let r = Net.server_residual net v and c = Net.server_capacity net v in
      if r < -.eps || r > c +. eps then
        Alcotest.failf
          "trial %d (seed %d, %s): server %d residual %.4f outside [0, %.4f]"
          trial tseed what v r c)
    (Net.servers net)

let test_capacity_safety () =
  let rng = Topology.Rng.create 0xCAFE in
  let total_admitted = ref 0 in
  for trial = 1 to 60 do
    let tseed = Topology.Rng.int rng max_int in
    let trng = Topology.Rng.create tseed in
    let n = 10 + Topology.Rng.int trng 10 in
    let topo = Topology.Waxman.generate ~alpha:0.6 ~beta:0.4 trng ~n in
    (* tight capacities so admits actually hit the limits *)
    let profile =
      Net.uniform_profile ~link_capacity:400.0 ~server_capacity:600.0
    in
    let net = Net.make_random_servers ~profile ~fraction:0.25 ~rng:trng topo in
    let reqs = Workload.Gen.sequence trng net ~count:12 in
    (* greedy Appro_Multi_Cap admission *)
    List.iter
      (fun r ->
        match A.admit ~k:2 net r with
        | Ok _ -> incr total_admitted
        | Error _ -> ())
      reqs;
    check_residuals ~trial ~tseed ~what:"Appro_Multi_Cap" net;
    (* each online algorithm over the same sequence (run resets first) *)
    List.iter
      (fun algo ->
        let s = Adm.run net algo reqs in
        total_admitted := !total_admitted + s.Adm.admitted;
        check_residuals ~trial ~tseed ~what:(Adm.algorithm_to_string algo) net)
      [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]
  done;
  (* capacity checks are vacuous if nothing was ever admitted *)
  Alcotest.(check bool)
    (Printf.sprintf "admissions happened (%d)" !total_admitted)
    true (!total_admitted > 60)

let () =
  Alcotest.run "invariants"
    [
      ( "randomized",
        [
          Alcotest.test_case "2K approximation bound" `Slow
            test_approximation_ratio;
          Alcotest.test_case "pseudo-tree structure" `Slow test_tree_structure;
          Alcotest.test_case "capacity safety" `Slow test_capacity_safety;
        ] );
    ]
