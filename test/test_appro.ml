module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server
module E = Nfv_multicast.Exact
module C = Nfv_multicast.Combinations
module Pt = Nfv_multicast.Pseudo_tree
module N = Sdn.Network
module Rng = Topology.Rng

(* --- combinations --- *)

let test_choose () =
  Alcotest.(check int) "C(5,2)" 10 (C.choose 5 2);
  Alcotest.(check int) "C(5,0)" 1 (C.choose 5 0);
  Alcotest.(check int) "C(5,5)" 1 (C.choose 5 5);
  Alcotest.(check int) "C(5,6)" 0 (C.choose 5 6);
  Alcotest.(check int) "C(25,3)" 2300 (C.choose 25 3);
  Alcotest.(check int) "negative" 0 (C.choose 5 (-1))

let test_subsets () =
  let s = C.subsets_of_size [ 1; 2; 3; 4 ] 2 in
  Alcotest.(check int) "count" 6 (List.length s);
  Alcotest.(check int) "distinct" 6 (List.length (List.sort_uniq compare s));
  List.iter (fun l -> Alcotest.(check int) "size" 2 (List.length l)) s

let test_subsets_up_to () =
  let s = C.subsets_up_to [ 1; 2; 3 ] 2 in
  Alcotest.(check int) "count" 6 (List.length s);
  Alcotest.(check int) "count_up_to formula" 6 (C.count_up_to 3 2);
  Alcotest.(check int) "paper fig4 example" 6 (C.count_up_to 3 2)

let test_iter_subsets () =
  let collected = ref [] in
  C.iter_subsets_up_to [ 1; 2; 3; 4 ] 3 (fun s -> collected := s :: !collected);
  Alcotest.(check int) "matches list version" (C.count_up_to 4 3)
    (List.length !collected);
  let as_sets = List.map (List.sort compare) !collected in
  Alcotest.(check int) "all distinct" (C.count_up_to 4 3)
    (List.length (List.sort_uniq compare as_sets))

(* --- a hand-built instance where multi-server placement wins --- *)

(* Star: source 0 at center of two long arms; servers 5 and 6 sit next to
   the two destination clusters. A single server forces processed traffic
   to cross the center twice. *)
let two_cluster_net () =
  let rng = Rng.create 1 in
  (* 0 -1- 1 -2- 5 ; 0 -3- 3 -4- 6 ; dest 2 next to 5, dest 4 next to 6 *)
  let g =
    Mcgraph.Graph.of_edges ~n:7
      [ (0, 1); (1, 5); (5, 2); (0, 3); (3, 6); (6, 4) ]
  in
  let topo = Topology.Topo.make ~name:"two-cluster" g in
  N.make
    ~profile:(N.uniform_profile ~link_capacity:10_000.0 ~server_capacity:8_000.0)
    ~rng ~servers:[ 5; 6 ] topo

let two_cluster_request () =
  (* bandwidth high enough that an extra chain instance (25) is cheaper
     than re-crossing an arm twice (2·b): single server = 25 + 8b = 825,
     two servers = 50 + 6b = 650 *)
  Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 2; 4 ] ~bandwidth:100.0
    ~chain:[ Sdn.Vnf.Nat ]

let test_multi_server_wins () =
  let net = two_cluster_net () in
  let req = two_cluster_request () in
  match A.solve ~k:2 net req with
  | Error e -> Alcotest.failf "solve: %s" e
  | Ok res ->
    (* both servers used: unprocessed copies go down both arms, no
       crossing of the center by processed traffic *)
    Alcotest.(check (list int)) "two servers"
      [ 5; 6 ] res.A.tree.Pt.servers;
    Tutil.assert_close "cost" 650.0 res.A.cost;
    (match A.solve ~k:1 net req with
    | Error e -> Alcotest.failf "k=1: %s" e
    | Ok res1 ->
      Alcotest.(check bool) "k=2 beats k=1" true (res.A.cost < res1.A.cost))

let test_k_monotone () =
  let net = two_cluster_net () in
  let req = two_cluster_request () in
  let cost k =
    match A.solve ~k net req with
    | Ok r -> r.A.cost
    | Error e -> Alcotest.failf "k=%d: %s" k e
  in
  Alcotest.(check bool) "more K never hurts" true (cost 2 <= cost 1 +. 1e-9)

let test_no_server_error () =
  (* a network whose only server cannot host the chain *)
  let rng = Rng.create 1 in
  let g = Mcgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let topo = Topology.Topo.make ~name:"tiny" g in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:1000.0 ~server_capacity:10.0)
      ~rng ~servers:[ 1 ] topo
  in
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 2 ] ~bandwidth:1.0
      ~chain:[ Sdn.Vnf.Ids ]
  in
  (match A.solve_capacitated net req with
  | Ok _ -> Alcotest.fail "should reject"
  | Error _ -> ());
  (* uncapacitated ignores computing capacity *)
  match A.solve net req with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "uncapacitated should work: %s" e

let test_capacitated_prunes_links () =
  let rng = Rng.create 1 in
  (* two routes 0→2: direct cheap edge and a detour; choke the direct edge *)
  let g = Mcgraph.Graph.of_edges ~n:4 [ (0, 2); (0, 1); (1, 2); (2, 3) ] in
  let topo = Topology.Topo.make ~name:"choke" g in
  let net =
    N.make
      ~profile:(N.uniform_profile ~link_capacity:100.0 ~server_capacity:8000.0)
      ~rng ~servers:[ 2 ] topo
  in
  (match N.allocate net { N.links = [ (0, 95.0) ]; nodes = [] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "setup: %s" e);
  let req =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:50.0
      ~chain:[ Sdn.Vnf.Nat ]
  in
  match A.solve_capacitated net req with
  | Error e -> Alcotest.failf "detour exists: %s" e
  | Ok res ->
    Alcotest.(check bool) "avoids choked edge" true
      (not (List.mem_assoc 0 res.A.tree.Pt.edge_uses))

let test_admit_allocates () =
  let net = two_cluster_net () in
  let req = two_cluster_request () in
  match A.admit ~k:2 net req with
  | Error e -> Alcotest.failf "admit: %s" e
  | Ok res ->
    List.iter
      (fun (e, uses) ->
        Tutil.assert_close "link drained"
          (N.link_capacity net e -. (float_of_int uses *. 100.0))
          (N.link_residual net e))
      res.A.tree.Pt.edge_uses;
    List.iter
      (fun v ->
        Tutil.assert_close "server drained" (N.server_capacity net v -. 25.0)
          (N.server_residual net v))
      res.A.tree.Pt.servers

let test_rejects_bad_k () =
  let net = two_cluster_net () in
  let req = two_cluster_request () in
  Alcotest.check_raises "k=0" (Invalid_argument "Appro_multi: K must be at least 1")
    (fun () -> ignore (A.solve ~k:0 net req))

(* --- randomized properties --- *)

let small_instance seed =
  let net, rng = Tutil.random_network seed ~lo:6 ~hi:16 in
  (* keep |D| small so Dreyfus–Wagner stays cheap *)
  let nn = N.n net in
  let source = Rng.int rng nn in
  let count = 1 + Rng.int rng (min 4 (nn - 1)) in
  let picks = Rng.sample_without_replacement rng count (nn - 1) in
  let dests = List.map (fun i -> if i >= source then i + 1 else i) picks in
  let req =
    Sdn.Request.make ~id:0 ~source ~destinations:dests
      ~bandwidth:(Rng.float_range rng 50.0 200.0)
      ~chain:(Sdn.Vnf.random_chain rng)
  in
  (net, req)

let prop_solution_valid =
  Tutil.qtest ~count:150 "appro solutions validate, ≤ K servers"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      let k = 1 + (seed mod 3) in
      match A.solve ~k net req with
      | Error _ -> true
      | Ok res -> (
        List.length res.A.tree.Pt.servers <= k
        &&
        match Pt.validate net res.A.tree with Ok () -> true | Error _ -> false))

let prop_within_2opt1 =
  Tutil.qtest ~count:100 "appro aux cost ≤ 2·OPT(K=1)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match (A.solve ~k:3 net req, E.optimal_one_server net req) with
      | Ok res, Ok opt -> res.A.aux_cost <= (2.0 *. opt.E.cost) +. 1e-6
      | Error _, Error _ -> true
      | _ -> false)

(* Theorem 1: Appro_Multi is a 2K-approximation of the true optimum *)
let prop_theorem_2k =
  Tutil.qtest ~count:60 "Theorem 1: appro(K) ≤ 2K·OPT(K)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      let k = 1 + (seed mod 2) in
      match (A.solve ~k net req, E.optimal ~k net req) with
      | Ok res, Ok opt ->
        res.A.cost <= (2.0 *. float_of_int k *. opt.E.mcost) +. 1e-6
      | Error _, Error _ -> true
      | _ -> false)

let prop_optimal_is_lower_bound =
  Tutil.qtest ~count:60 "OPT(K) ≤ every heuristic and OPT(K) ≤ OPT(1)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match (E.optimal ~k:2 net req, E.optimal_one_server net req, A.solve ~k:2 net req)
      with
      | Ok opt, Ok opt1, Ok appro ->
        opt.E.mcost <= opt1.E.cost +. 1e-6 && opt.E.mcost <= appro.A.cost +. 1e-6
      | _ -> true)

(* the two exact formulations agree at K = 1: shortest path = Steiner
   tree over {s, v}, so the decompositions coincide *)
let prop_exact_oracles_agree =
  Tutil.qtest ~count:60 "optimal(k=1) = optimal_one_server"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match (E.optimal ~k:1 net req, E.optimal_one_server net req) with
      | Ok a, Ok b -> Float.abs (a.E.mcost -. b.E.cost) < 1e-6 *. (1.0 +. b.E.cost)
      | Error _, Error _ -> true
      | _ -> false)

let prop_optimal_tree_valid =
  Tutil.qtest ~count:60 "OPT(K) structures validate"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match E.optimal ~k:2 net req with
      | Error _ -> true
      | Ok opt -> (
        (match Pt.validate net opt.E.mtree with Ok () -> true | Error _ -> false)
        && Float.abs (Pt.cost net opt.E.mtree -. opt.E.mcost)
           < 1e-6 *. (1.0 +. opt.E.mcost)
        && List.for_all
             (fun (d, _) -> List.mem_assoc d opt.E.assignment)
             opt.E.mtree.Pt.routes))

let prop_opt1_lower_bound =
  Tutil.qtest ~count:100 "OPT(K=1) ≤ one_server and ≤ appro(k=1)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match (E.optimal_one_server net req, O.solve net req, A.solve ~k:1 net req) with
      | Ok opt, Ok base, Ok appro ->
        opt.E.cost <= base.O.cost +. 1e-6 && opt.E.cost <= appro.A.cost +. 1e-6
      | _ -> true)

let prop_k_improves =
  Tutil.qtest ~count:100 "appro(k=3) ≤ appro(k=1)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match (A.solve ~k:3 net req, A.solve ~k:1 net req) with
      | Ok r3, Ok r1 -> r3.A.aux_cost <= r1.A.aux_cost +. 1e-6
      | _ -> true)

let prop_one_server_valid =
  Tutil.qtest ~count:150 "one_server solutions validate with one server"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match O.solve net req with
      | Error _ -> true
      | Ok res -> (
        List.length res.O.tree.Pt.servers = 1
        &&
        match Pt.validate net res.O.tree with Ok () -> true | Error _ -> false))

let prop_exact_valid =
  Tutil.qtest ~count:100 "exact K=1 oracle validates"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, req = small_instance seed in
      match E.optimal_one_server net req with
      | Error _ -> true
      | Ok res -> (
        match Pt.validate net res.E.tree with Ok () -> true | Error _ -> false))

let prop_capacitated_never_exceeds =
  Tutil.qtest ~count:80 "sequential admits never exceed capacity"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let net, rng = Tutil.random_network seed ~lo:8 ~hi:20 in
      let reqs = Workload.Gen.sequence rng net ~count:30 in
      List.iter (fun r -> ignore (A.admit ~k:2 net r)) reqs;
      let ok = ref true in
      for e = 0 to N.m net - 1 do
        if N.link_residual net e < -1e-6 then ok := false
      done;
      List.iter
        (fun v -> if N.server_residual net v < -1e-6 then ok := false)
        (N.servers net);
      !ok)

let () =
  Alcotest.run "appro"
    [
      ( "combinations",
        [
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "subsets_of_size" `Quick test_subsets;
          Alcotest.test_case "subsets_up_to" `Quick test_subsets_up_to;
          Alcotest.test_case "iter_subsets" `Quick test_iter_subsets;
        ] );
      ( "unit",
        [
          Alcotest.test_case "multi-server wins on clusters" `Quick
            test_multi_server_wins;
          Alcotest.test_case "K monotone" `Quick test_k_monotone;
          Alcotest.test_case "capacity-starved server" `Quick test_no_server_error;
          Alcotest.test_case "capacitated pruning" `Quick test_capacitated_prunes_links;
          Alcotest.test_case "admit allocates" `Quick test_admit_allocates;
          Alcotest.test_case "k validation" `Quick test_rejects_bad_k;
        ] );
      ( "property",
        [
          prop_solution_valid;
          prop_within_2opt1;
          prop_theorem_2k;
          prop_exact_oracles_agree;
          prop_optimal_is_lower_bound;
          prop_optimal_tree_valid;
          prop_opt1_lower_bound;
          prop_k_improves;
          prop_one_server_valid;
          prop_exact_valid;
          prop_capacitated_never_exceeds;
        ] );
    ]
