(* DOT export, table rendering and CSV export. *)

module Dot = Mcgraph.Dot
module E = Experiments.Exp_common

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- DOT --- *)

let test_dot_graph () =
  let g = Mcgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let dot = Dot.graph ~name:"test" g in
  Alcotest.(check bool) "header" true (contains dot "graph \"test\" {");
  Alcotest.(check bool) "edge 0-1" true (contains dot "0 -- 1");
  Alcotest.(check bool) "edge 1-2" true (contains dot "1 -- 2");
  Alcotest.(check bool) "closed" true (contains dot "}")

let test_dot_highlights () =
  let g = Mcgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let dot = Dot.graph ~highlight_edges:[ 1 ] ~highlight_nodes:[ 2 ] g in
  Alcotest.(check bool) "edge colored" true (contains dot "penwidth");
  Alcotest.(check bool) "node doubled" true (contains dot "doublecircle")

let test_dot_labels () =
  let g = Mcgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let dot =
    Dot.graph ~node_label:(fun v -> Printf.sprintf "sw%d" v)
      ~edge_label:(fun e -> Printf.sprintf "e%d" e)
      g
  in
  Alcotest.(check bool) "node label" true (contains dot "sw1");
  Alcotest.(check bool) "edge label" true (contains dot "e0")

let test_dot_tree () =
  let g = Mcgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let t = Mcgraph.Tree.of_edges g ~root:0 [ 0; 1 ] in
  let dot = Dot.tree g t in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "oriented edge" true (contains dot "0 -> 1")

(* --- figure rendering --- *)

let sample_figure =
  {
    E.id = "t1";
    title = "demo";
    xlabel = "x";
    ylabel = "y";
    series =
      [
        { E.label = "alpha"; points = [ (1.0, 10.0); (2.0, 20.0) ] };
        { E.label = "beta"; points = [ (1.0, 11.0) ] };
      ];
    notes = [ "a note" ];
  }

let test_render_table () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  E.render ppf sample_figure;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "title" true (contains out "t1: demo");
  Alcotest.(check bool) "note" true (contains out "# a note");
  Alcotest.(check bool) "series" true (contains out "alpha");
  (* missing point shows as dash *)
  Alcotest.(check bool) "missing cell" true (contains out "-")

let test_csv () =
  let csv = E.to_csv sample_figure in
  Alcotest.(check bool) "comment" true (contains csv "# t1: demo");
  Alcotest.(check bool) "header" true (contains csv "x,alpha,beta");
  Alcotest.(check bool) "row" true (contains csv "1,10,11");
  (* missing cell is empty, line still has both commas *)
  Alcotest.(check bool) "sparse row" true (contains csv "2,20,")

let test_csv_escaping () =
  let fig =
    { sample_figure with E.series = [ { E.label = "a,b\"c"; points = [] } ] }
  in
  let csv = E.to_csv fig in
  Alcotest.(check bool) "quoted" true (contains csv "\"a,b\"\"c\"")

let test_write_csv () =
  let dir = Filename.temp_file "nfvm" "" in
  Sys.remove dir;
  let path = E.write_csv ~dir sample_figure in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "named by id" true (contains path "t1.csv");
  Sys.remove path;
  Sys.rmdir dir

(* regression: --csv DIR with a multi-level DIR used to fail because only
   the last path segment was created *)
let test_write_csv_nested () =
  let root = Filename.temp_file "nfvm" "" in
  Sys.remove root;
  let dir = Filename.concat (Filename.concat root "nested") "deep" in
  let path = E.write_csv ~dir sample_figure in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  (* idempotent on an existing tree *)
  E.ensure_dir dir;
  Sys.remove path;
  Sys.rmdir dir;
  Sys.rmdir (Filename.concat root "nested");
  Sys.rmdir root

(* --- helpers --- *)

let test_mean () =
  Alcotest.check Tutil.check_float "empty" 0.0 (E.mean []);
  Alcotest.check Tutil.check_float "values" 2.0 (E.mean [ 1.0; 2.0; 3.0 ])

let test_gtitm_degree () =
  (* the generator keeps average degree roughly flat across sizes *)
  let deg n =
    let t = E.gtitm_like (Topology.Rng.create 1) ~n in
    2.0 *. float_of_int (Topology.Topo.m t) /. float_of_int n
  in
  let d50 = deg 50 and d250 = deg 250 in
  Alcotest.(check bool) "flat degree" true
    (d50 > 2.0 && d50 < 7.0 && d250 > 2.0 && d250 < 7.0)

let () =
  Alcotest.run "reporting"
    [
      ( "dot",
        [
          Alcotest.test_case "graph" `Quick test_dot_graph;
          Alcotest.test_case "highlights" `Quick test_dot_highlights;
          Alcotest.test_case "labels" `Quick test_dot_labels;
          Alcotest.test_case "tree" `Quick test_dot_tree;
        ] );
      ( "figures",
        [
          Alcotest.test_case "render table" `Quick test_render_table;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write csv" `Quick test_write_csv;
          Alcotest.test_case "write csv nested dir" `Quick test_write_csv_nested;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "gtitm degree" `Quick test_gtitm_degree;
        ] );
    ]
