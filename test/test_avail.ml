(* Availability-aware admission: make_avail validation, exposure
   semantics (idle / allocated / confiscated / healed), the
   spare-capacity floor in Online_cp and Batch.plan, and the two
   equivalence properties — alpha = 0 + no reserve is bit-identical to
   the baseline, and the pruning screen stays exact under a non-zero
   surcharge. *)

module G = Mcgraph.Graph
module N = Sdn.Network
module Fault = Sdn.Fault
module Cp = Nfv_multicast.Online_cp
module Adm = Nfv_multicast.Admission
module Batch = Nfv_multicast.Batch
module Pt = Nfv_multicast.Pseudo_tree
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

let with_obs f =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

let counter name = Obs.Counter.value (Obs.Counter.make name)

let mk_request ~id ~source ~destinations ~bandwidth =
  Sdn.Request.make ~id ~source ~destinations ~bandwidth
    ~chain:[ Sdn.Vnf.Firewall ]

(* the 6-node designed net of test_dynamic_churn: one server (node 2),
   six 100-Mbps links *)
let designed_net () =
  let g = G.create 6 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 2);
  ignore (G.add_edge g 2 3);
  ignore (G.add_edge g 1 4);
  ignore (G.add_edge g 4 3);
  ignore (G.add_edge g 4 5);
  let topo = Topology.Topo.make ~name:"avail-net" g in
  N.make_explicit ~topology:topo
    ~servers:[ (2, 1000.0, 1.0) ]
    ~link_capacities:(Array.make (G.m g) 100.0)
    ~link_unit_costs:(Array.make (G.m g) 1.0) ()

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ---- construction and accessors ---------------------------------------- *)

let test_make_avail_validation () =
  let net = designed_net () in
  List.iter
    (fun (what, f) ->
      Alcotest.(check bool) (what ^ " raises") true (raises_invalid f))
    [
      ("negative alpha", fun () -> Cp.make_avail ~alpha:(-1.0) net [| [ 0 ] |]);
      ("nan alpha", fun () -> Cp.make_avail ~alpha:Float.nan net [| [ 0 ] |]);
      ( "infinite alpha",
        fun () -> Cp.make_avail ~alpha:infinity net [| [ 0 ] |] );
      ( "negative reserve",
        fun () -> Cp.make_avail ~reserve:(-0.1) net [| [ 0 ] |] );
      ("reserve = 1", fun () -> Cp.make_avail ~reserve:1.0 net [| [ 0 ] |]);
      ("reserve > 1", fun () -> Cp.make_avail ~reserve:1.5 net [| [ 0 ] |]);
      ("edge out of range", fun () -> Cp.make_avail net [| [ 0; 99 ] |]);
      ("negative edge", fun () -> Cp.make_avail net [| [ -1 ] |]);
      ( "edge in two groups",
        fun () -> Cp.make_avail net [| [ 0; 1 ]; [ 1; 2 ] |] );
    ];
  (* empty groups are dropped, ungrouped links are ungrouped *)
  let av = Cp.make_avail net [| []; [ 0; 2 ]; [] |] in
  Alcotest.(check int) "empty groups dropped" 1 (Cp.avail_group_count av);
  Alcotest.(check int) "edge 0 grouped" 0 (Cp.avail_group_of av 0);
  Alcotest.(check int) "edge 2 grouped" 0 (Cp.avail_group_of av 2);
  Alcotest.(check int) "edge 1 ungrouped" (-1) (Cp.avail_group_of av 1);
  Alcotest.(check int) "out of range is ungrouped" (-1)
    (Cp.avail_group_of av 99);
  Alcotest.(check int) "negative is ungrouped" (-1) (Cp.avail_group_of av (-5));
  Alcotest.(check (float 0.0)) "alpha default" 0.0 (Cp.avail_alpha av);
  Alcotest.(check (float 0.0)) "reserve default" 0.0 (Cp.avail_reserve av)

(* ---- exposure across allocate / release / confiscate / heal ------------- *)

let test_exposure_lifecycle () =
  with_obs @@ fun () ->
  let net = designed_net () in
  let m = N.m net in
  let all = [ List.init m Fun.id ] in
  let av = Cp.make_avail ~alpha:1.0 net (Array.of_list all) in
  Alcotest.(check (float 1e-12)) "idle exposure is 0" 0.0 (Cp.exposure av net 0);
  let r0 = counter "avail.exposure_refreshes" in
  ignore (Cp.exposure av net 0);
  Alcotest.(check int) "same epoch: no refresh" r0
    (counter "avail.exposure_refreshes");
  (* allocate a session: exposure = allocated / total, derived from the
     residuals the allocation actually moved *)
  let req = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:10.0 in
  let tree =
    match Adm.admit_tree net Adm.Online_cp req with
    | Ok t -> t
    | Error e -> Alcotest.failf "designed admit failed: %s" e
  in
  let expected () =
    let used = ref 0.0 and cap = ref 0.0 in
    for e = 0 to m - 1 do
      used := !used +. (N.link_capacity net e -. N.link_residual net e);
      cap := !cap +. N.link_capacity net e
    done;
    !used /. !cap
  in
  Alcotest.(check (float 1e-12)) "allocated exposure" (expected ())
    (Cp.exposure av net 0);
  Alcotest.(check bool) "exposure is positive" true (Cp.exposure av net 0 > 0.0);
  Alcotest.(check bool) "epoch bump refreshed" true
    (counter "avail.exposure_refreshes" > r0);
  (* a confiscation counts as exposure: cut a link the tree does not
     use, so only the confiscated capacity moves *)
  let fault = Fault.create net in
  ignore (Fault.inject fault ~live:[ (0, Pt.allocation tree) ] (Fault.Link_down 5));
  Alcotest.(check (float 1e-12)) "confiscated capacity is exposed"
    (expected ()) (Cp.exposure av net 0);
  Alcotest.(check bool) "confiscation raised exposure" true
    (Cp.exposure av net 0 >= 100.0 /. 600.0 -. 1e-12);
  (* heal, then release: exposure returns exactly to 0 *)
  ignore (Fault.inject fault ~live:[ (0, Pt.allocation tree) ] (Fault.Link_up 5));
  N.release net (Pt.allocation tree);
  Alcotest.(check (float 1e-9)) "healed+released exposure is 0" 0.0
    (Cp.exposure av net 0)

(* ---- the spare-capacity floor ------------------------------------------- *)

let test_reserve_floor () =
  with_obs @@ fun () ->
  let net = designed_net () in
  let m = N.m net in
  let groups = [| List.init m Fun.id |] in
  let req = mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:40.0 in
  (* baseline and a loose floor both admit *)
  (match Cp.admit net req with
  | Cp.Admitted a -> N.release net (Pt.allocation a.Cp.tree)
  | Cp.Rejected r ->
    Alcotest.failf "baseline rejected: %s" (Cp.rejection_to_string r));
  let loose = Cp.make_avail ~reserve:0.5 net groups in
  (match Cp.admit ~avail:loose net req with
  | Cp.Admitted a -> N.release net (Pt.allocation a.Cp.tree)
  | Cp.Rejected r ->
    Alcotest.failf "loose floor rejected: %s" (Cp.rejection_to_string r));
  (* a 90%% floor on a 600-Mbps group: any 40-Mbps tree (>= 3 links,
     >= 120 Mbps) would leave < 540 — every candidate is blocked *)
  let tight = Cp.make_avail ~reserve:0.9 net groups in
  let b0 = counter "avail.reserve_blocked" in
  (match Cp.admit ~avail:tight net req with
  | Cp.Admitted _ -> Alcotest.fail "tight floor admitted"
  | Cp.Rejected r ->
    Alcotest.(check string) "blocked admits reject as Unallocatable"
      (Cp.rejection_to_string Cp.Unallocatable)
      (Cp.rejection_to_string r));
  Alcotest.(check bool) "avail.reserve_blocked counted" true
    (counter "avail.reserve_blocked" > b0);
  for e = 0 to m - 1 do
    Tutil.assert_close "blocked admit left no residue" (N.link_capacity net e)
      (N.link_residual net e)
  done

let test_batch_plan_floor () =
  with_obs @@ fun () ->
  let net = designed_net () in
  let m = N.m net in
  let groups = [| List.init m Fun.id |] in
  let reqs =
    [ mk_request ~id:0 ~source:0 ~destinations:[ 3 ] ~bandwidth:40.0 ]
  in
  let base = Batch.plan net reqs Batch.Arrival in
  Alcotest.(check int) "baseline plan admits" 1 base.Batch.admitted;
  (* a neutral avail changes nothing *)
  let neutral = Cp.make_avail net groups in
  let same = Batch.plan ~srlg:neutral net reqs Batch.Arrival in
  Alcotest.(check bool) "neutral avail: identical plan" true (base = same);
  (* the tight floor rejects, rolls the allocation back, and counts it *)
  let tight = Cp.make_avail ~reserve:0.9 net groups in
  let b0 = counter "avail.reserve_blocked" in
  let blocked = Batch.plan ~srlg:tight net reqs Batch.Arrival in
  Alcotest.(check int) "tight floor admits none" 0 blocked.Batch.admitted;
  Alcotest.(check int) "tight floor rejects all" 1 blocked.Batch.rejected;
  Alcotest.(check int) "blocked plan counted" (b0 + 1)
    (counter "avail.reserve_blocked");
  for e = 0 to m - 1 do
    Tutil.assert_close "rollback restored every residual"
      (N.link_capacity net e) (N.link_residual net e)
  done

(* ---- alpha = 0 equivalence (the ?prune:false pattern) ------------------- *)

let residuals net = Array.init (N.m net) (N.link_residual net)

let strip (s : Adm.stats) =
  ( s.Adm.admitted,
    s.Adm.rejected,
    s.Adm.total_cost,
    s.Adm.mean_link_utilization,
    s.Adm.max_link_utilization,
    s.Adm.jain_fairness,
    s.Adm.records )

let alpha_zero_equivalence seed =
  let net, rng = Tutil.random_network seed ~lo:10 ~hi:22 in
  let groups = Fault.srlg_partition ~groups:4 ~rng net in
  let reqs = Workload.Gen.sequence rng net ~count:20 in
  List.iter
    (fun algo ->
      let base = Adm.run net algo reqs in
      let base_res = residuals net in
      let av = Cp.make_avail ~alpha:0.0 net groups in
      let treated = Adm.run ~srlg:av net algo reqs in
      if strip base <> strip treated then
        QCheck.Test.fail_reportf "alpha=0 diverged on %s"
          (Adm.algorithm_to_string algo);
      if base_res <> residuals net then
        QCheck.Test.fail_reportf "alpha=0 residuals diverged on %s"
          (Adm.algorithm_to_string algo))
    [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp ];
  true

(* ---- pruning stays exact under a surcharge ------------------------------ *)

let outcome_key = function
  | Cp.Admitted a -> Printf.sprintf "admitted:%d:%.12g" a.Cp.server a.Cp.score
  | Cp.Rejected r -> "rejected:" ^ Cp.rejection_to_string r

let prune_equivalence_under_alpha seed =
  let run prune =
    let net, rng = Tutil.random_network seed ~lo:10 ~hi:22 in
    let groups = Fault.srlg_partition ~groups:4 ~rng net in
    let av = Cp.make_avail ~alpha:2.5 net groups in
    let reqs = Workload.Gen.sequence rng net ~count:20 in
    let outs = List.map (fun r -> outcome_key (Cp.admit ~prune ~avail:av net r)) reqs in
    (outs, residuals net)
  in
  let on = run true and off = run false in
  if on <> off then
    QCheck.Test.fail_reportf
      "pruned and unpruned admission diverged under alpha > 0";
  true

(* ---- the exposure cache tracks the residuals exactly --------------------- *)

let exposure_conservation seed =
  let net, rng = Tutil.random_network seed ~lo:10 ~hi:20 in
  let groups = Fault.srlg_partition ~groups:4 ~rng net in
  let av = Cp.make_avail ~alpha:1.0 net groups in
  let check ctx =
    Array.iteri
      (fun gi links ->
        let used =
          List.fold_left
            (fun acc e ->
              acc +. (N.link_capacity net e -. N.link_residual net e))
            0.0 links
        in
        let cap =
          List.fold_left (fun acc e -> acc +. N.link_capacity net e) 0.0 links
        in
        let expected = if cap > 0.0 then used /. cap else 0.0 in
        let got = Cp.exposure av net gi in
        if Float.abs (got -. expected) > 1e-9 then
          QCheck.Test.fail_reportf
            "%s: group %d cached exposure %.12g but residuals say %.12g" ctx
            gi got expected)
      groups
  in
  check "idle";
  (* allocate a handful of sessions, checking after each admit *)
  let reqs = Workload.Gen.sequence rng net ~count:8 in
  let live = ref [] in
  List.iter
    (fun r ->
      (match Cp.admit ~avail:av net r with
      | Cp.Admitted a ->
        live := (r.Sdn.Request.id, Pt.allocation a.Cp.tree) :: !live
      | Cp.Rejected _ -> ());
      check "after admit")
    reqs;
  (* confiscate a random link, then heal it *)
  let fault = Fault.create net in
  let e = Rng.int rng (N.m net) in
  let victims = Fault.inject fault ~live:!live (Fault.Link_down e) in
  live := List.filter (fun (id, _) -> not (List.mem id victims)) !live;
  check "after cut";
  ignore (Fault.inject fault ~live:!live (Fault.Link_up e));
  check "after heal";
  (* release everything: exposure falls back to (numerically) nothing *)
  List.iter (fun (_, a) -> N.release net a) !live;
  check "after release";
  Array.iteri
    (fun gi _ ->
      if Float.abs (Cp.exposure av net gi) > 1e-9 then
        QCheck.Test.fail_reportf "group %d not empty after full release" gi)
    groups;
  true

let () =
  Alcotest.run "avail"
    [
      ( "designed",
        [
          Alcotest.test_case "make_avail validation" `Quick
            test_make_avail_validation;
          Alcotest.test_case "exposure lifecycle" `Quick
            test_exposure_lifecycle;
          Alcotest.test_case "reserve floor in Online_cp" `Quick
            test_reserve_floor;
          Alcotest.test_case "reserve floor in Batch.plan" `Quick
            test_batch_plan_floor;
        ] );
      ( "property",
        [
          Tutil.qtest ~count:25 "alpha=0 + no reserve is outcome-identical"
            QCheck.small_nat alpha_zero_equivalence;
          Tutil.qtest ~count:25 "pruning is exact under alpha > 0"
            QCheck.small_nat prune_equivalence_under_alpha;
          Tutil.qtest ~count:25
            "the exposure cache tracks residuals across allocate/cut/heal"
            QCheck.small_nat exposure_conservation;
        ] );
    ]
