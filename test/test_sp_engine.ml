(* The lazy Sp_engine must be observationally identical to the eager
   Paths.all_pairs it replaced — same distances AND same extracted paths
   (tie-breaks included), on the pruned weight functions the algorithms
   use (infeasible links priced at infinity). It must also recompute
   trees when the network's weight epoch moves. *)

module G = Mcgraph.Graph
module Paths = Mcgraph.Paths
module Sp = Mcgraph.Sp_engine
module Rng = Topology.Rng
module N = Sdn.Network

(* A Waxman graph with weights where a random subset of edges is pruned
   to infinity, as capacitated algorithms do with saturated links. *)
let waxman_with_pruning seed =
  let rng = Rng.create seed in
  let n = Rng.int_range rng 8 40 in
  let topo = Topology.Waxman.generate ~alpha:0.5 ~beta:0.4 rng ~n in
  let g = topo.Topology.Topo.graph in
  let w =
    Array.init (G.m g) (fun _ ->
        if Rng.float rng 1.0 < 0.15 then infinity
        else Rng.float_range rng 0.1 10.0)
  in
  (g, fun e -> w.(e))

(* --- lazy vs eager equivalence ----------------------------------------- *)

let prop_dist_equals_eager =
  Tutil.qtest ~count:120 "lazy dist = eager all_pairs dist"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g, weight = waxman_with_pruning seed in
      let eager = Paths.all_pairs g ~weight in
      let eng = Sp.create g ~weight in
      let n = G.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Sp.dist eng u v <> Paths.apsp_dist eager u v then ok := false
        done
      done;
      !ok)

let prop_path_equals_eager =
  Tutil.qtest ~count:120 "lazy path = eager all_pairs path (tie-breaks)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g, weight = waxman_with_pruning seed in
      let eager = Paths.all_pairs g ~weight in
      let eng = Sp.create g ~weight in
      let n = G.n g in
      let rng = Rng.create (seed + 1) in
      let ok = ref true in
      (* paths are heavier to extract; sample pairs instead of all n² *)
      for _ = 1 to 50 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if Sp.path eng u v <> Paths.apsp_path eager u v then ok := false
      done;
      !ok)

let prop_queries_are_lazy =
  Tutil.qtest ~count:60 "engine computes only the queried source trees"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g, weight = waxman_with_pruning seed in
      let eng = Sp.create g ~weight in
      let n = G.n g in
      let sources = List.sort_uniq compare [ 0; n / 2; n - 1 ] in
      List.iter (fun u -> ignore (Sp.dist eng u 0)) sources;
      (* repeated queries from cached sources must not add trees *)
      List.iter (fun u -> ignore (Sp.dist eng u (n - 1))) sources;
      let st = Sp.stats eng in
      st.Sp.trees_computed = List.length sources
      && st.Sp.cache_hits >= List.length sources)

(* --- epoch invalidation ------------------------------------------------ *)

(* Distances under a residual-dependent weight must change after an
   allocate: the engine may not serve the pre-allocation tree. *)
let test_epoch_invalidation () =
  let rng = Rng.create 42 in
  let topo = Topology.Waxman.generate ~alpha:0.6 ~beta:0.5 rng ~n:20 in
  let net = N.make_random_servers ~fraction:0.3 ~rng topo in
  let g = N.graph net in
  (* weight = congestion-style price: rises with consumed bandwidth *)
  let weight e =
    let cap = N.link_capacity net e in
    1.0 +. ((cap -. N.link_residual net e) /. cap *. 100.0)
  in
  let eng = Sp.create g ~weight ~epoch:(fun () -> N.weight_epoch net) in
  let u, v = G.endpoints g 0 in
  let d_before = Sp.dist eng u v in
  (* consume half of edge 0's bandwidth; epoch bumps, weights rise *)
  let half = N.link_capacity net 0 /. 2.0 in
  (match N.allocate net { N.links = [ (0, half) ]; nodes = [] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocate failed: %s" e);
  let d_after = Sp.dist eng u v in
  Alcotest.(check bool) "distance rose after allocate" true (d_after > d_before);
  let st = Sp.stats eng in
  Alcotest.(check bool) "stale tree was dropped" true (st.Sp.invalidations >= 1);
  (* release returns to the original prices — and bumps the epoch again *)
  N.release net { N.links = [ (0, half) ]; nodes = [] };
  Alcotest.(check (Tutil.check_float)) "release restores distances" d_before
    (Sp.dist eng u v)

let test_epoch_stability () =
  (* without any allocation the epoch is stable: queries hit the cache *)
  let rng = Rng.create 43 in
  let topo = Topology.Waxman.generate rng ~n:15 in
  let net = N.make_random_servers ~fraction:0.3 ~rng topo in
  let g = N.graph net in
  let eng =
    Sp.create g ~weight:(fun _ -> 1.0) ~epoch:(fun () -> N.weight_epoch net)
  in
  for _ = 1 to 5 do
    ignore (Sp.dist eng 0 (G.n g - 1))
  done;
  let st = Sp.stats eng in
  Alcotest.(check int) "one tree" 1 st.Sp.trees_computed;
  Alcotest.(check int) "no invalidations" 0 st.Sp.invalidations

(* --- telemetry counters ------------------------------------------------ *)

module Obs = Nfv_obs.Obs

(* All engines share the process-global "sp_engine.*" counters, so these
   tests reset them, enable recording for their own queries only, and
   diff. *)
let with_obs f =
  Obs.reset_all ();
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

let c_hits = Obs.Counter.make "sp_engine.cache_hits"
let c_misses = Obs.Counter.make "sp_engine.cache_misses"
let c_evictions = Obs.Counter.make "sp_engine.evictions"

let test_obs_hit_miss_counters () =
  with_obs @@ fun () ->
  let g, weight = waxman_with_pruning 11 in
  let eng = Sp.create g ~weight in
  let n = G.n g in
  ignore (Sp.dist eng 0 (n - 1));
  Alcotest.(check int) "first query is a miss" 1 (Obs.Counter.value c_misses);
  Alcotest.(check int) "no hit yet" 0 (Obs.Counter.value c_hits);
  ignore (Sp.dist eng 0 1);
  ignore (Sp.path eng 0 (n - 1));
  Alcotest.(check int) "repeated same-source queries hit" 2
    (Obs.Counter.value c_hits);
  Alcotest.(check int) "still one miss" 1 (Obs.Counter.value c_misses)

let test_obs_epoch_bump_is_miss () =
  with_obs @@ fun () ->
  let g, weight = waxman_with_pruning 12 in
  let epoch = ref 0 in
  let eng = Sp.create g ~weight ~epoch:(fun () -> !epoch) in
  ignore (Sp.dist eng 0 1);
  ignore (Sp.dist eng 0 1);
  Alcotest.(check int) "warm cache" 1 (Obs.Counter.value c_hits);
  incr epoch;
  ignore (Sp.dist eng 0 1);
  Alcotest.(check int) "epoch bump forces a miss" 2
    (Obs.Counter.value c_misses);
  Alcotest.(check int) "no extra hit" 1 (Obs.Counter.value c_hits)

(* The fix this PR verifies: an epoch bump must drop *every* cached
   tree on the next lookup, not only the one being queried — otherwise
   trees for other sources linger as dead weight forever. *)
let test_obs_stale_trees_swept () =
  with_obs @@ fun () ->
  let g, weight = waxman_with_pruning 13 in
  let n = G.n g in
  let epoch = ref 0 in
  let eng = Sp.create g ~weight ~epoch:(fun () -> !epoch) in
  ignore (Sp.dist eng 0 1);
  ignore (Sp.dist eng (n - 1) 1);
  incr epoch;
  (* querying source 0 must sweep the stale tree of source n-1 too *)
  ignore (Sp.dist eng 0 1);
  let st = Sp.stats eng in
  Alcotest.(check int) "both stale trees dropped" 2 st.Sp.invalidations;
  Alcotest.(check int) "evictions counter agrees" 2
    (Obs.Counter.value c_evictions);
  (* and the swept source recomputes rather than serving stale data *)
  ignore (Sp.dist eng (n - 1) 1);
  Alcotest.(check int) "swept source is a fresh miss" 4
    (Obs.Counter.value c_misses)

(* --- renew: closure swap for long-lived engines ------------------------ *)

let test_renew_keeps_cache_same_epoch () =
  let g, weight = waxman_with_pruning 21 in
  let eng = Sp.create g ~weight in
  ignore (Sp.dist eng 0 1);
  (* a new but extensionally equal closure: cached trees must survive *)
  Sp.renew eng ~weight:(fun e -> weight e);
  ignore (Sp.dist eng 0 1);
  let st = Sp.stats eng in
  Alcotest.(check int) "one tree" 1 st.Sp.trees_computed;
  Alcotest.(check int) "post-renew query hits" 1 st.Sp.cache_hits;
  Alcotest.(check int) "nothing swept" 0 st.Sp.invalidations

let test_renew_sweeps_and_swaps_on_epoch_change () =
  let g, _ = waxman_with_pruning 22 in
  let epoch = ref 0 in
  let eng = Sp.create g ~weight:(fun _ -> 1.0) ~epoch:(fun () -> !epoch) in
  let hops = Sp.dist eng 0 1 in
  incr epoch;
  Sp.renew eng ~weight:(fun _ -> 2.0);
  let st = Sp.stats eng in
  Alcotest.(check int) "stale tree swept by renew" 1 st.Sp.invalidations;
  (* the swapped closure is what the recomputation uses *)
  Alcotest.check Tutil.check_float "distances follow the new closure"
    (2.0 *. hops) (Sp.dist eng 0 1)

(* --- Sp_window: engine sharing across an admission window -------------- *)

module W = Nfv_multicast.Sp_window
module Cp = Nfv_multicast.Online_cp

let window_net seed =
  let rng = Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.5 ~beta:0.4 rng ~n:25 in
  (N.make_random_servers ~fraction:0.25 ~rng topo, rng)

(* the bucket must agree exactly with link_admits, so that equal bucket
   (within one epoch) really means an identical pruned-link set *)
let prop_bucket_counts_infeasible_links =
  Tutil.qtest ~count:60 "window bucket = |links that reject b|"
    QCheck.(pair (int_bound 100_000) (int_bound 2_000))
    (fun (seed, b_int) ->
      let b = float_of_int b_int in
      let net, rng = window_net seed in
      (* random partial load so residuals differ across links *)
      for e = 0 to N.m net - 1 do
        if Rng.float rng 1.0 < 0.4 then
          ignore
            (N.allocate net
               { N.links = [ (e, Rng.float rng (N.link_residual net e)) ];
                 nodes = [] })
      done;
      let w = W.create net in
      let direct = ref 0 in
      for e = 0 to N.m net - 1 do
        if not (N.link_admits net e b) then incr direct
      done;
      W.bucket w ~bandwidth:b = !direct)

let test_window_reuse_within_epoch () =
  let net, _ = window_net 31 in
  let w = W.create net in
  let weight _ = 1.0 in
  let e1 = W.engine w ~family:"t" ~bucket:0 ~weight in
  ignore (Sp.dist e1 0 1);
  let before = Sp.global_trees_computed () in
  let e2 = W.engine w ~family:"t" ~bucket:0 ~weight in
  Alcotest.(check bool) "same engine returned" true (e1 == e2);
  ignore (Sp.dist e2 0 1);
  Alcotest.(check int) "cached tree reused, no new Dijkstra" before
    (Sp.global_trees_computed ());
  let st = W.stats w in
  Alcotest.(check int) "engines" 1 st.W.engines;
  Alcotest.(check int) "acquisitions" 2 st.W.acquisitions;
  Alcotest.(check int) "reuses" 1 st.W.reuses;
  (* a different key is a different engine *)
  let e3 = W.engine w ~family:"t" ~bucket:1 ~weight in
  Alcotest.(check bool) "distinct key, distinct engine" false (e1 == e3)

let test_window_sweeps_on_epoch_bump () =
  let net, _ = window_net 32 in
  let w = W.create net in
  let weight _ = 1.0 in
  let e1 = W.engine w ~family:"t" ~bucket:0 ~weight in
  ignore (Sp.dist e1 0 1);
  (match N.allocate net { N.links = [ (0, 1.0) ]; nodes = [] } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocate: %s" e);
  let e2 = W.engine w ~family:"t" ~bucket:0 ~weight in
  Alcotest.(check bool) "engine object survives the bump" true (e1 == e2);
  let before = Sp.global_trees_computed () in
  ignore (Sp.dist e2 0 1);
  Alcotest.(check int) "stale tree recomputed after the bump" (before + 1)
    (Sp.global_trees_computed ());
  Alcotest.(check bool) "sweep counted" true
    ((Sp.stats e2).Sp.invalidations >= 1)

(* Cross-request reuse through the real admission path: two identical
   admits that both reject leave the epoch alone, so the second one must
   run entirely from cached trees; an admission (epoch bump) must force
   recomputation. *)
let test_window_cross_request_reuse () =
  let net, rng = window_net 33 in
  let req = Workload.Gen.request rng net ~id:0 in
  let w = W.create net in
  let p = Cp.default_params net in
  let rejecting = { p with Cp.sigma_v = -1.0; sigma_e = -1.0 } in
  (match Cp.admit ~params:rejecting ~window:w net req with
  | Cp.Rejected Cp.Over_threshold -> ()
  | _ -> Alcotest.fail "expected threshold rejection");
  let before = Sp.global_trees_computed () in
  (match Cp.admit ~params:rejecting ~window:w net req with
  | Cp.Rejected Cp.Over_threshold -> ()
  | _ -> Alcotest.fail "expected threshold rejection");
  Alcotest.(check int) "rejected replay costs zero Dijkstras" before
    (Sp.global_trees_computed ());
  (* now actually admit: the allocate bumps the epoch, so a further
     admit of the same request recomputes instead of serving stale *)
  (match Cp.admit ~window:w net req with
  | Cp.Admitted _ -> ()
  | Cp.Rejected r -> Alcotest.failf "idle admit: %s" (Cp.rejection_to_string r));
  let after_admit = Sp.global_trees_computed () in
  ignore (Cp.admit ~window:w net req);
  Alcotest.(check bool) "post-admission requests recompute" true
    (Sp.global_trees_computed () > after_admit)

(* --- CSR structural sanity --------------------------------------------- *)

let test_csr_matches_adjacency () =
  let g, _ = waxman_with_pruning 7 in
  let c = G.csr g in
  let n = G.n g in
  Alcotest.(check int) "offset array length" (n + 1) (Array.length c.G.off);
  Alcotest.(check int) "slot count = 2m" (2 * G.m g) (Array.length c.G.nbr);
  for u = 0 to n - 1 do
    (* CSR row of u must list neighbors in iter_neighbors order *)
    let expected = ref [] in
    G.iter_neighbors g u (fun v e -> expected := (v, e) :: !expected);
    let expected = List.rev !expected in
    let got = ref [] in
    for i = c.G.off.(u) to c.G.off.(u + 1) - 1 do
      got := (c.G.nbr.(i), c.G.eid.(i)) :: !got
    done;
    let got = List.rev !got in
    if expected <> got then Alcotest.failf "CSR row %d disagrees" u
  done

let test_csr_invalidated_by_add_edge () =
  let g = G.create 4 in
  ignore (G.add_edge g 0 1);
  let c1 = G.csr g in
  Alcotest.(check int) "one edge" 2 (Array.length c1.G.nbr);
  ignore (G.add_edge g 1 2);
  let c2 = G.csr g in
  Alcotest.(check int) "rebuilt after add_edge" 4 (Array.length c2.G.nbr)

let () =
  Alcotest.run "sp_engine"
    [
      ( "equivalence",
        [
          prop_dist_equals_eager;
          prop_path_equals_eager;
          prop_queries_are_lazy;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "allocate invalidates" `Quick
            test_epoch_invalidation;
          Alcotest.test_case "stable epoch hits cache" `Quick
            test_epoch_stability;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "hit/miss counters" `Quick
            test_obs_hit_miss_counters;
          Alcotest.test_case "epoch bump is a miss" `Quick
            test_obs_epoch_bump_is_miss;
          Alcotest.test_case "stale trees swept" `Quick
            test_obs_stale_trees_swept;
        ] );
      ( "renew",
        [
          Alcotest.test_case "same epoch keeps cache" `Quick
            test_renew_keeps_cache_same_epoch;
          Alcotest.test_case "epoch change sweeps and swaps" `Quick
            test_renew_sweeps_and_swaps_on_epoch_change;
        ] );
      ( "window",
        [
          prop_bucket_counts_infeasible_links;
          Alcotest.test_case "reuse within epoch" `Quick
            test_window_reuse_within_epoch;
          Alcotest.test_case "sweep on epoch bump" `Quick
            test_window_sweeps_on_epoch_bump;
          Alcotest.test_case "cross-request reuse" `Quick
            test_window_cross_request_reuse;
        ] );
      ( "csr",
        [
          Alcotest.test_case "matches adjacency order" `Quick
            test_csr_matches_adjacency;
          Alcotest.test_case "add_edge invalidates" `Quick
            test_csr_invalidated_by_add_edge;
        ] );
    ]
