(* nfvm — command-line frontend for the NFV-enabled multicasting library:
   regenerate any of the paper's figures, solve a single request, or run
   an online admission race on a chosen topology. *)

open Cmdliner

(* ---------- shared options ---------- *)

let seed_arg =
  let doc = "Random seed (all runs are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let requests_arg =
  let doc = "Requests per data point / sequence length (figure-specific default)." in
  Arg.(value & opt (some int) None & info [ "requests" ] ~docv:"N" ~doc)

let topology_arg =
  let doc =
    "Topology: geant, as1755, as4755, fat-tree:K, waxman:N, transit-stub:N."
  in
  Arg.(value & opt string "waxman:50" & info [ "topology" ] ~docv:"SPEC" ~doc)

let k_arg =
  let doc = "Maximum number of servers per service chain (K)." in
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc)

let jobs_arg =
  let doc =
    "Worker domains used to compute figure data points in parallel \
     (0 = pick automatically from the core count, 1 = sequential). \
     Tables and CSVs are byte-identical for every setting."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let stats_arg =
  let doc =
    "Record telemetry (cache hit/miss counters, per-algorithm Dijkstra and \
     relaxation counts, per-request solve-time histograms) and print the \
     nfv-obs table to stderr on exit."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* flip the recording switch for the command body, dump the report after;
   stdout stays machine-readable, telemetry goes to stderr *)
let with_stats stats f =
  if stats then Nfv_obs.Obs.enabled := true;
  let r = f () in
  if stats then Nfv_obs.Obs.Export.print_table stderr;
  r

let parse_topology rng spec =
  match String.split_on_char ':' spec with
  | [ "geant" ] ->
    (Topology.Geant.topology (), Some Topology.Geant.default_servers)
  | [ "as1755" ] -> (Topology.Rocketfuel.as1755 (), None)
  | [ "as4755" ] -> (Topology.Rocketfuel.as4755 (), None)
  | [ "fat-tree"; k ] ->
    let k = int_of_string k in
    let aggs = Topology.Fat_tree.aggregation_switches ~k in
    let servers = List.filteri (fun i _ -> i mod (k / 2) = 0) aggs in
    (Topology.Fat_tree.generate ~k (), Some servers)
  | [ "waxman"; n ] ->
    (Experiments.Exp_common.gtitm_like rng ~n:(int_of_string n), None)
  | [ "transit-stub"; n ] ->
    (Topology.Transit_stub.generate_sized rng ~n:(int_of_string n), None)
  | _ -> failwith ("unknown topology spec: " ^ spec)

let make_network rng spec =
  let topo, servers = parse_topology rng spec in
  match servers with
  | Some servers -> Sdn.Network.make ~rng ~servers topo
  | None -> Sdn.Network.make_random_servers ~fraction:0.1 ~rng topo

(* ---------- figure commands ---------- *)

let obs_out_arg =
  let doc =
    "Write a per-family Nfv_obs snapshot to $(docv)/<family>.obs.json \
     (instruments are reset before each family, so every snapshot is \
     self-contained and diffable)."
  in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"DIR" ~doc)

let csv_arg =
  let doc = "Also write each figure as $(docv)/<id>.csv." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let run_figures figs = Experiments.Exp_common.render_all Format.std_formatter figs

let run_spec ~seed ~requests ~obs_out ~csv spec =
  let figs = Experiments.Runner.run ~seed ?requests ?obs_out spec in
  run_figures figs;
  match csv with
  | None -> ()
  | Some dir ->
    List.iter (fun f -> ignore (Experiments.Exp_common.write_csv ~dir f)) figs

(* one subcommand per registered experiment family — the registry, not
   this file, decides what exists *)
let spec_cmd (spec : Experiments.Spec.t) =
  let action seed requests jobs stats obs_out csv =
    Experiments.Pool.set_jobs jobs;
    with_stats stats (fun () -> run_spec ~seed ~requests ~obs_out ~csv spec)
  in
  Cmd.v
    (Cmd.info spec.Experiments.Spec.id ~doc:(spec.Experiments.Spec.doc ^ "."))
    Term.(
      const action $ seed_arg $ requests_arg $ jobs_arg $ stats_arg
      $ obs_out_arg $ csv_arg)

let all_cmd =
  let doc = "Every registered experiment family (the full reproduction run)." in
  let action seed jobs stats obs_out csv =
    Experiments.Pool.set_jobs jobs;
    with_stats stats (fun () ->
        List.iter
          (run_spec ~seed ~requests:None ~obs_out ~csv)
          Experiments.Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const action $ seed_arg $ jobs_arg $ stats_arg $ obs_out_arg $ csv_arg)

(* ---------- solve one request ---------- *)

let solve_cmd =
  let doc = "Solve one random NFV-enabled multicast request with Appro_Multi." in
  let dests_arg =
    Arg.(value & opt int 5 & info [ "destinations" ] ~docv:"N" ~doc:"Destination count.")
  in
  let action seed topo_spec k dests stats =
    with_stats stats @@ fun () ->
    let rng = Topology.Rng.create seed in
    let net = make_network rng topo_spec in
    Format.printf "%a@." Sdn.Network.pp net;
    let nn = Sdn.Network.n net in
    let source = Topology.Rng.int rng nn in
    let picks =
      Topology.Rng.sample_without_replacement rng (min dests (nn - 1)) (nn - 1)
    in
    let destinations = List.map (fun i -> if i >= source then i + 1 else i) picks in
    let request =
      Sdn.Request.make ~id:0 ~source ~destinations
        ~bandwidth:(Topology.Rng.float_range rng 50.0 200.0)
        ~chain:(Sdn.Vnf.random_chain rng)
    in
    Format.printf "%a@." Sdn.Request.pp request;
    (match Nfv_multicast.One_server.solve net request with
    | Ok res ->
      Format.printf "Alg_One_Server : cost %.2f (server %d)@."
        res.Nfv_multicast.One_server.cost res.Nfv_multicast.One_server.server
    | Error e -> Format.printf "Alg_One_Server : %s@." e);
    match Nfv_multicast.Appro_multi.solve ~k net request with
    | Ok res ->
      let tree = res.Nfv_multicast.Appro_multi.tree in
      Format.printf "Appro_Multi K=%d: cost %.2f, servers {%s}, %d combinations@." k
        res.Nfv_multicast.Appro_multi.cost
        (String.concat ","
           (List.map string_of_int tree.Nfv_multicast.Pseudo_tree.servers))
        res.Nfv_multicast.Appro_multi.combinations;
      (match Nfv_multicast.Pseudo_tree.validate net tree with
      | Ok () -> Format.printf "validation: OK@."
      | Error e -> Format.printf "validation: FAILED %s@." e)
    | Error e -> Format.printf "Appro_Multi    : %s@." e
  in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(const action $ seed_arg $ topology_arg $ k_arg $ dests_arg $ stats_arg)

(* ---------- online admission race ---------- *)

let admit_cmd =
  let doc = "Race the online algorithms on an arrival sequence." in
  let action seed topo_spec requests stats =
    with_stats stats @@ fun () ->
    let count = Option.value requests ~default:500 in
    let rng = Topology.Rng.create seed in
    let net = make_network rng topo_spec in
    Format.printf "%a, %d requests@.@." Sdn.Network.pp net count;
    let reqs = Workload.Gen.sequence rng net ~count in
    List.iter
      (fun algo ->
        let s = Nfv_multicast.Admission.run net algo reqs in
        Format.printf
          "%-18s admitted %4d/%d  acceptance %.2f  mean-util %.2f  jain %.2f  (%.2f s)@."
          (Nfv_multicast.Admission.algorithm_to_string algo)
          s.Nfv_multicast.Admission.admitted s.Nfv_multicast.Admission.total
          s.Nfv_multicast.Admission.acceptance_ratio
          s.Nfv_multicast.Admission.mean_link_utilization
          s.Nfv_multicast.Admission.jain_fairness
          s.Nfv_multicast.Admission.runtime_s)
      Nfv_multicast.Admission.
        [ Online_cp; Online_cp_no_threshold; Online_linear; Sp ]
  in
  Cmd.v
    (Cmd.info "admit" ~doc)
    Term.(const action $ seed_arg $ topology_arg $ requests_arg $ stats_arg)

let main =
  let doc = "NFV-enabled multicasting in SDNs (ICDCS 2017 reproduction)" in
  Cmd.group
    (Cmd.info "nfvm" ~version:"1.0.0" ~doc)
    (List.map spec_cmd Experiments.Registry.all
    @ [ all_cmd; solve_cmd; admit_cmd ])

let () = exit (Cmd.eval main)
