(* Online admission on an ISP backbone: NFV-enabled multicast requests
   arrive one by one at the AS1755-scale topology; Online_CP (Algorithm 2,
   with and without its σ thresholds) races the SP heuristic for network
   throughput. Prints the admission race every 100 arrivals.

   Run with: dune exec examples/online_admission.exe *)

module Adm = Nfv_multicast.Admission

let () =
  let horizon = 800 in
  let rng = Topology.Rng.create 4 in
  let topo = Topology.Rocketfuel.as1755 () in
  let net = Sdn.Network.make_random_servers ~fraction:0.1 ~rng topo in
  Format.printf "backbone: %a@." Sdn.Network.pp net;
  let requests = Workload.Gen.sequence rng net ~count:horizon in

  let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ] in
  let stats = List.map (fun a -> (a, Adm.run net a requests)) algos in

  Format.printf "@.%-10s" "arrivals";
  List.iter
    (fun (a, _) -> Format.printf "%20s" (Adm.algorithm_to_string a))
    stats;
  Format.printf "@.";
  let checkpoints = List.init (horizon / 100) (fun i -> (i + 1) * 100) in
  List.iter
    (fun p ->
      Format.printf "%-10d" p;
      List.iter (fun (_, s) -> Format.printf "%20d" (Adm.admitted_after s p)) stats;
      Format.printf "@.")
    checkpoints;

  Format.printf "@.final state per algorithm:@.";
  List.iter
    (fun (a, s) ->
      Format.printf
        "  %-18s admitted %3d/%d  acceptance %.2f  mean-util %.2f  jain %.2f@."
        (Adm.algorithm_to_string a) s.Adm.admitted s.Adm.total
        s.Adm.acceptance_ratio s.Adm.mean_link_utilization s.Adm.jain_fairness)
    stats;

  (* show a couple of rejection reasons from the thresholded run *)
  let cp = List.assoc Adm.Online_cp stats in
  let reasons = Hashtbl.create 8 in
  List.iter
    (fun (r : Adm.record) ->
      if not r.Adm.admitted then begin
        let c = Option.value (Hashtbl.find_opt reasons r.Adm.detail) ~default:0 in
        Hashtbl.replace reasons r.Adm.detail (c + 1)
      end)
    cp.Adm.records;
  Format.printf "@.Online_CP rejection reasons:@.";
  Hashtbl.iter (fun k v -> Format.printf "  %4d × %s@." v k) reasons
