(* Quickstart: build a small SDN, submit one NFV-enabled multicast request,
   solve it with the paper's 2K-approximation and print the resulting
   pseudo-multicast tree.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. a random 20-switch SDN with servers on 10% of the switches *)
  let rng = Topology.Rng.create 2024 in
  let topo = Topology.Waxman.generate rng ~n:20 in
  let net = Sdn.Network.make_random_servers ~rng topo in
  Format.printf "network: %a@." Sdn.Network.pp net;
  Format.printf "servers: %s@."
    (String.concat ", " (List.map string_of_int (Sdn.Network.servers net)));

  (* 2. an NFV-enabled multicast request r = (s, D; b, SC) *)
  let request =
    Sdn.Request.make ~id:0 ~source:0 ~destinations:[ 5; 11; 17 ]
      ~bandwidth:120.0
      ~chain:[ Sdn.Vnf.Nat; Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]
  in
  Format.printf "request: %a@." Sdn.Request.pp request;

  (* 3. Appro_Multi with up to K = 3 servers *)
  match Nfv_multicast.Appro_multi.solve ~k:3 net request with
  | Error e -> Format.printf "no solution: %s@." e
  | Ok res ->
    let tree = res.Nfv_multicast.Appro_multi.tree in
    Format.printf "solved: %a@." Nfv_multicast.Pseudo_tree.pp tree;
    Format.printf "  implementation cost : %.2f@." res.Nfv_multicast.Appro_multi.cost;
    Format.printf "  servers hosting %s : %s@."
      (Sdn.Vnf.chain_to_string request.Sdn.Request.chain)
      (String.concat ", "
         (List.map string_of_int tree.Nfv_multicast.Pseudo_tree.servers));
    Format.printf "  edges (id×uses)     : %s@."
      (String.concat ", "
         (List.map
            (fun (e, u) -> Printf.sprintf "%d×%d" e u)
            tree.Nfv_multicast.Pseudo_tree.edge_uses));
    (* 4. per-destination witness routes: source → server → destination *)
    List.iter
      (fun (d, r) ->
        Format.printf "  to %-3d: %d edges to server %d, then %d edges onward@." d
          (List.length r.Nfv_multicast.Pseudo_tree.to_server)
          r.Nfv_multicast.Pseudo_tree.server
          (List.length r.Nfv_multicast.Pseudo_tree.onward))
      tree.Nfv_multicast.Pseudo_tree.routes;
    (* 5. structural validation, end-to-end latency, and the compiled
       SDN forwarding state with an independent data-plane check *)
    (match Nfv_multicast.Pseudo_tree.validate net tree with
    | Ok () -> Format.printf "  validation          : OK@."
    | Error e -> Format.printf "  validation          : FAILED (%s)@." e);
    Format.printf "  worst-case latency  : %.2f ms@."
      (Nfv_multicast.Delay.worst_delay_ms net tree);
    let rules = Nfv_multicast.Flow_rules.of_pseudo_tree net tree in
    Format.printf "  forwarding state    : %a@." Nfv_multicast.Flow_rules.pp rules;
    (match Nfv_multicast.Flow_rules.verify net tree with
    | Ok () -> Format.printf "  data-plane check    : OK@."
    | Error e -> Format.printf "  data-plane check    : FAILED (%s)@." e);
    let highlight = List.map fst tree.Nfv_multicast.Pseudo_tree.edge_uses in
    Format.printf "@.DOT (render with graphviz):@.%s@."
      (Mcgraph.Dot.graph ~name:"pseudo_multicast_tree"
         ~highlight_edges:highlight
         ~highlight_nodes:tree.Nfv_multicast.Pseudo_tree.servers
         (Sdn.Network.graph net))
