(* Video streaming over GÉANT: a Dublin head-end multicasts a stream to
   European PoPs; every packet must traverse <NAT, Firewall, IDS> before
   delivery. Compares Appro_Multi at K = 1..3 with the one-server
   baseline and prints named per-city routes.

   Run with: dune exec examples/video_streaming.exe *)

let () =
  let rng = Topology.Rng.create 7 in
  let topo = Topology.Geant.topology () in
  let net =
    Sdn.Network.make ~rng ~servers:Topology.Geant.default_servers topo
  in
  let name v = Topology.Topo.node_name topo v in
  let id city =
    let rec find v =
      if v >= Topology.Topo.n topo then failwith ("unknown city " ^ city)
      else if name v = city then v
      else find (v + 1)
    in
    find 0
  in
  let source = id "Dublin" in
  let destinations =
    List.map id
      [ "Athens"; "Bucharest"; "Helsinki"; "Lisbon"; "Rome"; "Warsaw"; "Zurich" ]
  in
  let request =
    Sdn.Request.make ~id:0 ~source ~destinations ~bandwidth:180.0
      ~chain:[ Sdn.Vnf.Nat; Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]
  in
  Format.printf "GÉANT streaming: %s -> %s@." (name source)
    (String.concat ", " (List.map name destinations));
  Format.printf "service chain: %s (%.0f MHz)@.@."
    (Sdn.Vnf.chain_to_string request.Sdn.Request.chain)
    (Sdn.Request.demand_mhz request);

  (* baseline: one server, server-oblivious destination tree *)
  (match Nfv_multicast.One_server.solve net request with
  | Error e -> Format.printf "baseline failed: %s@." e
  | Ok res ->
    Format.printf "Alg_One_Server: cost %.2f, chain at %s@."
      res.Nfv_multicast.One_server.cost
      (name res.Nfv_multicast.One_server.server));

  (* Appro_Multi for increasing K *)
  List.iter
    (fun k ->
      match Nfv_multicast.Appro_multi.solve ~k net request with
      | Error e -> Format.printf "K=%d failed: %s@." k e
      | Ok res ->
        let tree = res.Nfv_multicast.Appro_multi.tree in
        Format.printf "Appro_Multi K=%d: cost %.2f, chain at {%s}, %d combinations@."
          k res.Nfv_multicast.Appro_multi.cost
          (String.concat ", "
             (List.map name tree.Nfv_multicast.Pseudo_tree.servers))
          res.Nfv_multicast.Appro_multi.combinations)
    [ 1; 2; 3 ];

  (* route listing for the best K = 3 solution *)
  match Nfv_multicast.Appro_multi.solve ~k:3 net request with
  | Error _ -> ()
  | Ok res ->
    Format.printf "@.routes (K=3):@.";
    List.iter
      (fun (d, r) ->
        Format.printf "  %-10s via %-10s (%d + %d hops)@." (name d)
          (name r.Nfv_multicast.Pseudo_tree.server)
          (List.length r.Nfv_multicast.Pseudo_tree.to_server)
          (List.length r.Nfv_multicast.Pseudo_tree.onward))
      res.Nfv_multicast.Appro_multi.tree.Nfv_multicast.Pseudo_tree.routes
