(* System monitoring in a data center (one of the multicast applications
   the paper's introduction motivates): a k=8 fat-tree fabric where a
   collector at one edge switch streams monitoring state to replicas at
   other edge switches; traffic passes a <Firewall, LoadBalancer> chain.
   Requests are admitted sequentially under capacity constraints with
   Appro_Multi_Cap, showing residual utilisation as the fabric fills.

   Run with: dune exec examples/datacenter_monitoring.exe *)

let () =
  let k = 8 in
  let rng = Topology.Rng.create 99 in
  let topo = Topology.Fat_tree.generate ~k () in
  (* servers at one aggregation switch per pod *)
  let aggs = Topology.Fat_tree.aggregation_switches ~k in
  let servers =
    List.filteri (fun i _ -> i mod (k / 2) = 0) aggs
  in
  let net = Sdn.Network.make ~rng ~servers topo in
  Format.printf "fabric: %a (k=%d fat-tree)@." Sdn.Network.pp net k;

  let edge_switches = Array.of_list (Topology.Fat_tree.edge_switches ~k) in
  let num_edges = Array.length edge_switches in
  let make_request id =
    let source = edge_switches.(Topology.Rng.int rng num_edges) in
    let replicas =
      List.filter (fun v -> v <> source)
        (List.map
           (fun i -> edge_switches.(i))
           (Topology.Rng.sample_without_replacement rng 6 num_edges))
    in
    Sdn.Request.make ~id ~source ~destinations:replicas
      ~bandwidth:(Topology.Rng.float_range rng 80.0 160.0)
      ~chain:[ Sdn.Vnf.Firewall; Sdn.Vnf.Load_balancer ]
  in
  let admitted = ref 0 and rejected = ref 0 in
  for id = 0 to 119 do
    let req = make_request id in
    (match Nfv_multicast.Appro_multi.admit ~k:2 net req with
    | Ok res ->
      incr admitted;
      if id mod 20 = 0 then
        Format.printf
          "  r%-3d admitted: %d dests, cost %.1f, servers {%s}, mean util %.1f%%@."
          id
          (Sdn.Request.terminal_count req)
          res.Nfv_multicast.Appro_multi.cost
          (String.concat ","
             (List.map string_of_int
                res.Nfv_multicast.Appro_multi.tree
                  .Nfv_multicast.Pseudo_tree.servers))
          (100.0 *. Sdn.Network.mean_link_utilization net)
    | Error e ->
      incr rejected;
      if !rejected <= 3 then Format.printf "  r%-3d rejected (%s)@." id e)
  done;
  Format.printf "@.admitted %d / %d monitoring streams@." !admitted
    (!admitted + !rejected);
  Format.printf "final mean link utilisation : %.1f%%@."
    (100.0 *. Sdn.Network.mean_link_utilization net);
  Format.printf "final max  link utilisation : %.1f%%@."
    (100.0 *. Sdn.Network.max_link_utilization net);
  Format.printf "Jain fairness of link loads : %.3f@."
    (Sdn.Network.jain_fairness net);
  List.iter
    (fun v ->
      Format.printf "server %-3d computing: %.0f / %.0f MHz used@." v
        (Sdn.Network.server_capacity net v -. Sdn.Network.server_residual net v)
        (Sdn.Network.server_capacity net v))
    (Sdn.Network.servers net)
