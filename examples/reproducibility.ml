(* Reproducibility workflow: generate a scenario (network + request
   sequence), dump it to a plain-text snapshot, reload it, and show that
   the reloaded scenario replays the original admission run decision for
   decision. This is how experiment configurations can be shared or kept
   as regression fixtures.

   Run with: dune exec examples/reproducibility.exe *)

let () =
  (* 1. generate a scenario *)
  let rng = Topology.Rng.create 123 in
  let topo = Topology.Transit_stub.generate_sized rng ~n:80 in
  let net = Sdn.Network.make_random_servers ~rng topo in
  let requests = Workload.Gen.sequence rng net ~count:120 in
  Format.printf "scenario: %a, %d requests@." Sdn.Network.pp net
    (List.length requests);

  (* 2. dump it *)
  let text = Sdn.Snapshot.scenario_to_string net requests in
  let path = Filename.temp_file "nfvm_scenario" ".snap" in
  Sdn.Snapshot.save path text;
  Format.printf "snapshot : %s (%d bytes)@." path (String.length text);

  (* 3. reload into fresh values *)
  match Result.bind (Sdn.Snapshot.load path) Sdn.Snapshot.scenario_of_string with
  | Error e -> Format.printf "reload failed: %s@." e
  | Ok (net', requests') ->
    (* 4. replay the same online run on both *)
    let run net reqs =
      Nfv_multicast.Admission.run net Nfv_multicast.Admission.Online_cp reqs
    in
    let original = run net requests in
    let replayed = run net' requests' in
    Format.printf "original : admitted %d/%d@."
      original.Nfv_multicast.Admission.admitted
      original.Nfv_multicast.Admission.total;
    Format.printf "replayed : admitted %d/%d@."
      replayed.Nfv_multicast.Admission.admitted
      replayed.Nfv_multicast.Admission.total;
    let identical =
      List.for_all2
        (fun (a : Nfv_multicast.Admission.record)
             (b : Nfv_multicast.Admission.record) ->
          a.Nfv_multicast.Admission.admitted = b.Nfv_multicast.Admission.admitted
          && a.Nfv_multicast.Admission.server = b.Nfv_multicast.Admission.server)
        original.Nfv_multicast.Admission.records
        replayed.Nfv_multicast.Admission.records
    in
    Format.printf "decisions identical: %b@." identical;
    Sys.remove path
