(* Benchmark harness: regenerates every figure of the paper's evaluation
   section as a plain-text table (see DESIGN.md §5 for the experiment
   index) and, with [--micro], runs Bechamel micro-benchmarks of the core
   algorithms. *)

let figures = ref [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "ablation"; "dynamic"; "batch"; "delay"; "tables" ]
let seed = ref 1
let requests = ref None
let micro = ref false
let csv_dir = ref None

let specs =
  [
    ( "--figure",
      Arg.String (fun s -> figures := [ String.lowercase_ascii s ]),
      "FIG  run one figure: fig5..fig9, ablation, dynamic, batch, delay, tables, all" );
    ("--seed", Arg.Set_int seed, "N  random seed (default 1)");
    ( "--requests",
      Arg.Int (fun n -> requests := Some n),
      "N  requests per data point (defaults are figure-specific)" );
    ("--micro", Arg.Set micro, " also run Bechamel micro-benchmarks");
    ( "--csv",
      Arg.String (fun d -> csv_dir := Some d),
      "DIR  also write each figure as DIR/<id>.csv" );
  ]

let usage = "main.exe [--figure FIG] [--seed N] [--requests N] [--micro] [--csv DIR]"

let run_figure name =
  let seed = !seed in
  let figs =
    match name with
    | "fig5" -> Experiments.Fig5.run ~seed ?requests:!requests ()
    | "fig6" -> Experiments.Fig6.run ~seed ?requests:!requests ()
    | "fig7" -> Experiments.Fig7.run ~seed ?requests:!requests ()
    | "fig8" -> Experiments.Fig8.run ~seed ?requests:!requests ()
    | "fig9" -> Experiments.Fig9.run ~seed ?requests:!requests ()
    | "ablation" -> Experiments.Ablation.run ~seed ()
    | "dynamic" -> Experiments.Dynamic_load.run ~seed ?arrivals:!requests ()
    | "batch" -> Experiments.Batch_order.run ~seed ()
    | "delay" -> Experiments.Delay_exp.run ~seed ?requests:!requests ()
    | "tables" -> Experiments.Table_exp.run ~seed ?requests:!requests ()
    | other ->
      Printf.eprintf "unknown figure %S\n" other;
      exit 2
  in
  Experiments.Exp_common.render_all Format.std_formatter figs;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun f -> ignore (Experiments.Exp_common.write_csv ~dir f))
      figs

let micro_benchmarks () =
  let open Bechamel in
  let rng = Topology.Rng.create 7 in
  let net50 = Experiments.Exp_common.network rng ~n:50 in
  let net150 = Experiments.Exp_common.network rng ~n:150 in
  let req50 = Workload.Gen.request rng net50 ~id:0 in
  let req150 = Workload.Gen.request rng net150 ~id:0 in
  let g150 = Sdn.Network.graph net150 in
  let weight e = Sdn.Network.link_unit_cost net150 e in
  let terminals =
    req150.Sdn.Request.source :: req150.Sdn.Request.destinations
  in
  let tests =
    Test.make_grouped ~name:"nfv-multicast"
      [
        Test.make ~name:"dijkstra-n150"
          (Staged.stage (fun () ->
               ignore (Mcgraph.Paths.dijkstra g150 ~weight ~source:0)));
        Test.make ~name:"kmb-steiner-n150"
          (Staged.stage (fun () ->
               ignore (Mcgraph.Steiner.kmb g150 ~weight ~terminals)));
        Test.make ~name:"appro-multi-k3-n50"
          (Staged.stage (fun () ->
               ignore (Nfv_multicast.Appro_multi.solve ~k:3 net50 req50)));
        Test.make ~name:"one-server-n150"
          (Staged.stage (fun () ->
               ignore (Nfv_multicast.One_server.solve net150 req150)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel micro-benchmarks (monotonic clock, per run) ==";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-36s %12.1f ns\n" name est
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    results

let () =
  Arg.parse specs (fun s -> figures := [ String.lowercase_ascii s ]) usage;
  let names =
    match !figures with
    | [ "all" ] ->
      [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "ablation"; "dynamic"; "batch"; "delay"; "tables" ]
    | names -> names
  in
  let _, elapsed =
    Experiments.Exp_common.time_of (fun () -> List.iter run_figure names)
  in
  Printf.printf "# total experiment CPU time: %.1f s\n%!" elapsed;
  if !micro then micro_benchmarks ()
