(* Benchmark harness: regenerates every figure of the paper's evaluation
   section as a plain-text table (see DESIGN.md §5 for the experiment
   index) and, with [--micro], runs Bechamel micro-benchmarks of the core
   algorithms. *)

let figures = ref Experiments.Registry.ids
let seed = ref 1
let requests = ref None
let micro = ref false
let csv_dir = ref None
let stats = ref false
let jobs = ref 0
let fake_clock = ref false
let obs_out = ref None

let specs =
  [
    ( "--figure",
      Arg.String (fun s -> figures := [ String.lowercase_ascii s ]),
      "FIG  run one experiment family: "
      ^ String.concat ", " Experiments.Registry.ids
      ^ ", all" );
    ("--seed", Arg.Set_int seed, "N  random seed (default 1)");
    ( "--requests",
      Arg.Int (fun n -> requests := Some n),
      "N  requests per data point (defaults are figure-specific)" );
    ("--micro", Arg.Set micro, " also run Bechamel micro-benchmarks");
    ( "--csv",
      Arg.String (fun d -> csv_dir := Some d),
      "DIR  also write each figure as DIR/<id>.csv (and DIR/micro_obs.csv)" );
    ( "--stats",
      Arg.Set stats,
      " record Nfv_obs telemetry and dump the table to stderr on exit" );
    ( "--jobs",
      Arg.Set_int jobs,
      "N  worker domains for figure data points (0 = auto, 1 = sequential; \
       default auto). Outputs are byte-identical across settings." );
    ( "--fake-clock",
      Arg.Set fake_clock,
      " replace the CPU clock with a deterministic per-domain tick counter \
       (makes timing columns reproducible; see EXPERIMENTS.md)" );
    ( "--obs-out",
      Arg.String (fun d -> obs_out := Some d),
      "DIR  write a per-family Nfv_obs snapshot to DIR/<family>.obs.json \
       (instruments are reset before each family, so every snapshot is \
       self-contained)" );
  ]

let usage =
  "main.exe [--figure FIG] [--seed N] [--requests N] [--jobs N] [--fake-clock] \
   [--micro] [--csv DIR] [--obs-out DIR] [--stats]"

let run_figure name =
  let figs =
    match Experiments.Registry.find name with
    | Some spec ->
      Experiments.Runner.run ~seed:!seed ?requests:!requests
        ?obs_out:!obs_out spec
    | None ->
      Printf.eprintf "unknown figure %S (try: %s)\n" name
        (String.concat ", " Experiments.Registry.ids);
      exit 2
  in
  Experiments.Exp_common.render_all Format.std_formatter figs;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun f -> ignore (Experiments.Exp_common.write_csv ~dir f))
      figs

(* Run a Bechamel test group and return (name, ns-per-run) rows sorted by
   name, so the same data can be printed and written as CSV. *)
let run_micro_suite tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Some est
        | _ -> None
      in
      rows := (name, est) :: !rows)
    results;
  List.sort compare !rows

let print_micro_rows rows =
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "%-36s %12.1f ns\n" name est
      | None -> Printf.printf "%-36s (no estimate)\n" name)
    rows

(* The paths suite: eager all-pairs vs the lazy engine under a
   per-request query load vs a single CSR Dijkstra, on the paper's
   topologies. The lazy-engine case reproduces what one Appro_Multi
   request asks of Aux_graph: distances from every candidate server and
   every terminal, nothing else. *)
let micro_paths_benchmarks () =
  let open Bechamel in
  let rng = Topology.Rng.create 7 in
  let instances =
    List.map
      (fun n ->
        (Printf.sprintf "waxman-n%d" n, Experiments.Exp_common.network rng ~n))
      [ 50; 100; 200 ]
    @ [ ("geant-n40", Experiments.Exp_common.geant_network rng) ]
  in
  let tests =
    List.concat_map
      (fun (label, net) ->
        let g = Sdn.Network.graph net in
        let weight e = Sdn.Network.link_unit_cost net e in
        let n = Sdn.Network.n net in
        (* one request's worth of sources: the servers plus a handful of
           terminals *)
        let sources =
          List.sort_uniq compare
            (Sdn.Network.servers net @ [ 0; n / 3; n / 2; (2 * n) / 3; n - 1 ])
        in
        [
          Test.make ~name:(Printf.sprintf "apsp-eager/%s" label)
            (Staged.stage (fun () ->
                 ignore (Mcgraph.Paths.all_pairs g ~weight)));
          Test.make ~name:(Printf.sprintf "lazy-engine-request/%s" label)
            (Staged.stage (fun () ->
                 let eng = Mcgraph.Sp_engine.create g ~weight in
                 List.iter
                   (fun s -> ignore (Mcgraph.Sp_engine.dist eng s 0))
                   sources));
          Test.make ~name:(Printf.sprintf "dijkstra-csr/%s" label)
            (Staged.stage (fun () ->
                 ignore (Mcgraph.Paths.dijkstra g ~weight ~source:0)));
        ])
      instances
  in
  run_micro_suite (Test.make_grouped ~name:"paths" tests)

(* The admission suite: the full online driver per algorithm on the
   paper's topologies — the workload the window-scoped engine sharing
   and Online_CP's candidate-server pruning actually speed up. Each run
   resets the network, admits the same 100-request trace, and reports
   ns per trace. *)
let micro_admission_benchmarks () =
  let open Bechamel in
  let module Adm = Nfv_multicast.Admission in
  let rng = Topology.Rng.create 7 in
  let instances =
    [
      ("geant-n40", Experiments.Exp_common.geant_network rng);
      ("waxman-n100", Experiments.Exp_common.network rng ~n:100);
    ]
  in
  let algos =
    [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp ]
  in
  let tests =
    List.concat_map
      (fun (label, net) ->
        let reqs = Workload.Gen.sequence rng net ~count:100 in
        List.map
          (fun algo ->
            let name =
              Printf.sprintf "%s/%s" (Adm.algorithm_to_string algo) label
            in
            Test.make ~name
              (Staged.stage (fun () -> ignore (Adm.run net algo reqs))))
          algos)
      instances
  in
  run_micro_suite (Test.make_grouped ~name:"admission" tests)

let write_micro_csv ~dir ~file rows =
  Experiments.Exp_common.ensure_dir dir;
  let path = Filename.concat dir file in
  let oc = open_out path in
  output_string oc "benchmark,ns_per_run\n";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.fprintf oc "%s,%.1f\n" name est
      | None -> Printf.fprintf oc "%s,\n" name)
    rows;
  close_out oc;
  Printf.printf "# wrote %s\n%!" path

let micro_benchmarks () =
  let open Bechamel in
  let rng = Topology.Rng.create 7 in
  let net50 = Experiments.Exp_common.network rng ~n:50 in
  let net150 = Experiments.Exp_common.network rng ~n:150 in
  let req50 = Workload.Gen.request rng net50 ~id:0 in
  let req150 = Workload.Gen.request rng net150 ~id:0 in
  let g150 = Sdn.Network.graph net150 in
  let weight e = Sdn.Network.link_unit_cost net150 e in
  let terminals =
    req150.Sdn.Request.source :: req150.Sdn.Request.destinations
  in
  let tests =
    Test.make_grouped ~name:"nfv-multicast"
      [
        Test.make ~name:"dijkstra-n150"
          (Staged.stage (fun () ->
               ignore (Mcgraph.Paths.dijkstra g150 ~weight ~source:0)));
        Test.make ~name:"kmb-steiner-n150"
          (Staged.stage (fun () ->
               ignore (Mcgraph.Steiner.kmb g150 ~weight ~terminals)));
        Test.make ~name:"appro-multi-k3-n50"
          (Staged.stage (fun () ->
               ignore (Nfv_multicast.Appro_multi.solve ~k:3 net50 req50)));
        Test.make ~name:"one-server-n150"
          (Staged.stage (fun () ->
               ignore (Nfv_multicast.One_server.solve net150 req150)));
      ]
  in
  print_endline "== Bechamel micro-benchmarks (monotonic clock, per run) ==";
  print_micro_rows (run_micro_suite tests)

(* snapshot of every Nfv_obs instrument, same directory as the figure
   CSVs; rows are kind-tagged so one file carries all instrument kinds *)
let write_obs_csv ~dir =
  Experiments.Exp_common.ensure_dir dir;
  let path = Filename.concat dir "micro_obs.csv" in
  let oc = open_out path in
  output_string oc (Nfv_obs.Obs.Export.(to_csv (snapshot ())));
  close_out oc;
  Printf.printf "# wrote %s\n%!" path

let () =
  Arg.parse specs (fun s -> figures := [ String.lowercase_ascii s ]) usage;
  Experiments.Pool.set_jobs !jobs;
  if !fake_clock then Experiments.Exp_common.install_fake_clock ();
  if !stats then Nfv_obs.Obs.enabled := true;
  let names =
    match !figures with
    | [ "all" ] -> Experiments.Registry.ids
    | names -> names
  in
  let _, elapsed =
    Experiments.Exp_common.time_of (fun () -> List.iter run_figure names)
  in
  Printf.printf "# total experiment CPU time: %.1f s\n%!" elapsed;
  if !micro then begin
    micro_benchmarks ();
    print_endline "== paths suite: eager APSP vs lazy engine vs CSR Dijkstra ==";
    let rows = micro_paths_benchmarks () in
    print_micro_rows rows;
    (match !csv_dir with
    | Some dir -> write_micro_csv ~dir ~file:"micro_paths.csv" rows
    | None -> ());
    print_endline "== admission suite: Admission.run per algorithm ==";
    let arows = micro_admission_benchmarks () in
    print_micro_rows arows;
    match !csv_dir with
    | Some dir -> write_micro_csv ~dir ~file:"micro_admission.csv" arows
    | None -> ()
  end;
  (match !csv_dir with Some dir -> write_obs_csv ~dir | None -> ());
  if !stats then Nfv_obs.Obs.Export.print_table stderr
