(** Multicast request generation with the paper's evaluation parameters
    (§VI-A): random source and destinations, destination-set size bounded
    by [D_max = ratio·|V|] with the ratio drawn from [0.05, 0.2] unless
    fixed, bandwidth uniform in [50, 200] Mbps, and a random service
    chain over the five NFV types. *)

type spec = {
  dmax_ratio : float option;
      (** fix [D_max/|V|]; [None] draws it uniformly from [0.05, 0.2]
          per request, as in the default setting *)
  bandwidth : float * float;  (** Mbps range, default [(50, 200)] *)
  chain : Sdn.Vnf.chain option;  (** fix the chain; [None] draws randomly *)
  deadline : (float * float) option;
      (** draw an end-to-end latency bound (ms) from this range;
          [None] (default) leaves requests unbounded *)
}

val default_spec : spec

val request :
  ?spec:spec -> Topology.Rng.t -> Sdn.Network.t -> id:int -> Sdn.Request.t
(** One random request over the network's switches. The destination
    count is uniform in [1 .. max 1 (D_max)] and never includes the
    source. *)

val sequence :
  ?spec:spec -> Topology.Rng.t -> Sdn.Network.t -> count:int -> Sdn.Request.t list
(** [count] independent requests with ids [0 .. count-1]. *)
