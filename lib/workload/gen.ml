module Rng = Topology.Rng

type spec = {
  dmax_ratio : float option;
  bandwidth : float * float;
  chain : Sdn.Vnf.chain option;
  deadline : (float * float) option;
}

let default_spec =
  { dmax_ratio = None; bandwidth = (50.0, 200.0); chain = None; deadline = None }

let request ?(spec = default_spec) rng net ~id =
  let nn = Sdn.Network.n net in
  if nn < 2 then invalid_arg "Gen.request: network too small";
  let source = Rng.int rng nn in
  let ratio =
    match spec.dmax_ratio with
    | Some r -> r
    | None -> Rng.float_range rng 0.05 0.2
  in
  let dmax = max 1 (int_of_float (ratio *. float_of_int nn)) in
  let dmax = min dmax (nn - 1) in
  let count = 1 + Rng.int rng dmax in
  (* sample from all switches except the source *)
  let picks = Rng.sample_without_replacement rng count (nn - 1) in
  let destinations = List.map (fun i -> if i >= source then i + 1 else i) picks in
  let lo, hi = spec.bandwidth in
  let bandwidth = Rng.float_range rng lo hi in
  let chain =
    match spec.chain with Some c -> c | None -> Sdn.Vnf.random_chain rng
  in
  let r = Sdn.Request.make ~id ~source ~destinations ~bandwidth ~chain in
  match spec.deadline with
  | None -> r
  | Some (lo, hi) -> Sdn.Request.with_deadline r (Rng.float_range rng lo hi)

let sequence ?spec rng net ~count =
  List.init count (fun id -> request ?spec rng net ~id)
