(* Metrics/tracing substrate. Everything is registered in global
   per-kind registries so exporters can walk the full instrument
   population without the instrumented layers knowing about each other.
   Recording is gated on [enabled]; see obs.mli for the contract.

   Domain safety: the global registries belong to the main domain and
   are never touched from any other domain. A worker domain records
   into a private per-domain shard (domain-local storage, keyed by
   instrument name); the parallel harness collects each worker's shard
   after [Domain.join] and folds it into the global registries with
   [Sharding.merge]. Handles created at module-init time in the main
   domain can therefore be used from any domain: every operation
   dispatches on [Domain.is_main_domain]. *)

let enabled = ref false
let clock = ref Sys.time

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-' || c = '/')
       name

let check_name name =
  if not (valid_name name) then
    invalid_arg ("Obs: invalid instrument name: " ^ name)

(* Insertion-ordered name-keyed registry; [find_or_add] makes every
   constructor idempotent per name. *)
module Registry = struct
  type 'a t = { tbl : (string, 'a) Hashtbl.t; mutable rev_order : 'a list }

  let create () = { tbl = Hashtbl.create 32; rev_order = [] }

  let find_or_add r name build =
    check_name name;
    match Hashtbl.find_opt r.tbl name with
    | Some x -> x
    | None ->
      let x = build () in
      Hashtbl.replace r.tbl name x;
      r.rev_order <- x :: r.rev_order;
      x

  let find_opt r name = Hashtbl.find_opt r.tbl name
  let items r = List.rev r.rev_order

  let clear r =
    Hashtbl.reset r.tbl;
    r.rev_order <- []
end

(* ---- per-domain shards (worker-side storage) ----

   A worker domain must not mutate the global registries (races with
   the main domain and with other workers), so each domain owns a
   shard: one name-keyed registry per instrument kind, holding plain
   mutable cells. Cells are created lazily on first record and carry
   everything [Sharding.merge] needs to fold them back. *)

type counter_cell = { c_name : string; mutable c_v : int }
type gauge_cell = { g_name : string; mutable g_v : float }

type timer_cell = {
  t_name : string;
  mutable t_count : int;
  mutable t_total : float;
}

type hist_cell = {
  h_name : string;
  h_bnds : float array;
  h_bkts : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

type shard_store = {
  sh_counters : counter_cell Registry.t;
  sh_gauges : gauge_cell Registry.t;
  sh_timers : timer_cell Registry.t;
  sh_hists : hist_cell Registry.t;
}

let fresh_shard () =
  {
    sh_counters = Registry.create ();
    sh_gauges = Registry.create ();
    sh_timers = Registry.create ();
    sh_hists = Registry.create ();
  }

let shard_key : shard_store Domain.DLS.key = Domain.DLS.new_key fresh_shard
let local_shard () = Domain.DLS.get shard_key
let in_main () = Domain.is_main_domain ()

module Counter = struct
  type t = { name : string; mutable v : int }

  let registry : t Registry.t = Registry.create ()

  (* In the main domain, [make] registers globally as before. In a
     worker it returns a detached handle — a pure name carrier whose
     record operations resolve to this domain's shard — so dynamic
     registration (e.g. span histograms) never touches shared state. *)
  let make name =
    if in_main () then Registry.find_or_add registry name (fun () -> { name; v = 0 })
    else begin
      check_name name;
      { name; v = 0 }
    end

  let cell t =
    Registry.find_or_add (local_shard ()).sh_counters t.name (fun () ->
        { c_name = t.name; c_v = 0 })

  let incr t =
    if !enabled then
      if in_main () then t.v <- t.v + 1
      else begin
        let c = cell t in
        c.c_v <- c.c_v + 1
      end

  let add t n =
    if !enabled then
      if in_main () then t.v <- t.v + n
      else begin
        let c = cell t in
        c.c_v <- c.c_v + n
      end

  (* reads are per-domain views: the global value in the main domain,
     this domain's unmerged contribution in a worker — which is exactly
     what before/after delta attribution inside a worker needs *)
  let value t =
    if in_main () then t.v
    else
      match Registry.find_opt (local_shard ()).sh_counters t.name with
      | Some c -> c.c_v
      | None -> 0

  let name t = t.name
end

module Gauge = struct
  type t = { name : string; mutable v : float }

  let registry : t Registry.t = Registry.create ()

  let make name =
    if in_main () then
      Registry.find_or_add registry name (fun () -> { name; v = 0.0 })
    else begin
      check_name name;
      { name; v = 0.0 }
    end

  let set t x =
    if !enabled then
      if in_main () then t.v <- x
      else begin
        let c =
          Registry.find_or_add (local_shard ()).sh_gauges t.name (fun () ->
              { g_name = t.name; g_v = 0.0 })
        in
        c.g_v <- x
      end

  let value t =
    if in_main () then t.v
    else
      match Registry.find_opt (local_shard ()).sh_gauges t.name with
      | Some c -> c.g_v
      | None -> 0.0

  let name t = t.name
end

module Timer = struct
  type t = { name : string; mutable count : int; mutable total : float }

  let registry : t Registry.t = Registry.create ()

  let make name =
    if in_main () then
      Registry.find_or_add registry name (fun () ->
          { name; count = 0; total = 0.0 })
    else begin
      check_name name;
      { name; count = 0; total = 0.0 }
    end

  let record t dt =
    if in_main () then begin
      t.count <- t.count + 1;
      t.total <- t.total +. dt
    end
    else begin
      let c =
        Registry.find_or_add (local_shard ()).sh_timers t.name (fun () ->
            { t_name = t.name; t_count = 0; t_total = 0.0 })
      in
      c.t_count <- c.t_count + 1;
      c.t_total <- c.t_total +. dt
    end

  let add t dt =
    if dt < 0.0 then invalid_arg "Obs.Timer.add: negative duration";
    if !enabled then record t dt

  let time t f =
    if not !enabled then f ()
    else begin
      let t0 = !clock () in
      Fun.protect ~finally:(fun () -> record t (!clock () -. t0)) f
    end

  let count t =
    if in_main () then t.count
    else
      match Registry.find_opt (local_shard ()).sh_timers t.name with
      | Some c -> c.t_count
      | None -> 0

  let total t =
    if in_main () then t.total
    else
      match Registry.find_opt (local_shard ()).sh_timers t.name with
      | Some c -> c.t_total
      | None -> 0.0

  let name t = t.name
end

module Histogram = struct
  type t = {
    name : string;
    bnds : float array;
    bkts : int array;   (* length = Array.length bnds + 1; last = overflow *)
    mutable count : int;
    mutable sum : float;
  }

  let registry : t Registry.t = Registry.create ()
  let default_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

  let check_bounds b =
    if Array.length b = 0 then invalid_arg "Obs.Histogram.make: empty bounds";
    Array.iteri
      (fun i x ->
        if not (Float.is_finite x) then
          invalid_arg "Obs.Histogram.make: non-finite bound";
        if i > 0 && x <= b.(i - 1) then
          invalid_arg "Obs.Histogram.make: bounds not strictly increasing")
      b

  let make ?(bounds = default_bounds) name =
    if in_main () then
      Registry.find_or_add registry name (fun () ->
          check_bounds bounds;
          {
            name;
            bnds = Array.copy bounds;
            bkts = Array.make (Array.length bounds + 1) 0;
            count = 0;
            sum = 0.0;
          })
    else begin
      check_name name;
      check_bounds bounds;
      {
        name;
        bnds = Array.copy bounds;
        bkts = Array.make (Array.length bounds + 1) 0;
        count = 0;
        sum = 0.0;
      }
    end

  let cell t =
    Registry.find_or_add (local_shard ()).sh_hists t.name (fun () ->
        {
          h_name = t.name;
          h_bnds = Array.copy t.bnds;
          h_bkts = Array.make (Array.length t.bnds + 1) 0;
          h_count = 0;
          h_sum = 0.0;
        })

  let bucket_index bnds x =
    let n = Array.length bnds in
    let i = ref 0 in
    while !i < n && x > bnds.(!i) do
      incr i
    done;
    !i

  let observe t x =
    if !enabled then
      if in_main () then begin
        t.count <- t.count + 1;
        t.sum <- t.sum +. x;
        let i = bucket_index t.bnds x in
        t.bkts.(i) <- t.bkts.(i) + 1
      end
      else begin
        let c = cell t in
        c.h_count <- c.h_count + 1;
        c.h_sum <- c.h_sum +. x;
        let i = bucket_index c.h_bnds x in
        c.h_bkts.(i) <- c.h_bkts.(i) + 1
      end

  (* per-domain view of (count, sum, buckets); worker reads see this
     domain's unmerged contribution, like Counter.value *)
  let view t =
    if in_main () then (t.count, t.sum, t.bkts)
    else
      match Registry.find_opt (local_shard ()).sh_hists t.name with
      | Some c -> (c.h_count, c.h_sum, c.h_bkts)
      | None -> (0, 0.0, t.bkts)

  let count t =
    let c, _, _ = view t in
    c

  let sum t =
    let _, s, _ = view t in
    s

  let mean t =
    let c, s, _ = view t in
    if c = 0 then 0.0 else s /. float_of_int c

  let bounds t = Array.copy t.bnds

  let buckets t =
    let c, _, b = view t in
    if c = 0 && not (in_main ()) then Array.make (Array.length t.bnds + 1) 0
    else Array.copy b

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Obs.Histogram.quantile";
    let cnt, _, bkts = view t in
    if cnt = 0 then 0.0
    else begin
      let target = q *. float_of_int cnt in
      let cum = ref 0 in
      let result = ref infinity in
      (try
         Array.iteri
           (fun i c ->
             cum := !cum + c;
             if float_of_int !cum >= target then begin
               result := (if i < Array.length t.bnds then t.bnds.(i) else infinity);
               raise Exit
             end)
           bkts
       with Exit -> ());
      !result
    end

  let name t = t.name
end

module Span = struct
  (* stack of full paths, innermost first, one per domain; only touched
     while enabled *)
  let stack_key : string list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let current () =
    match !(Domain.DLS.get stack_key) with [] -> None | p :: _ -> Some p

  let run name f =
    if not !enabled then f ()
    else begin
      let stack = Domain.DLS.get stack_key in
      let path =
        match !stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
      in
      let hist = Histogram.make path in
      stack := path :: !stack;
      let t0 = !clock () in
      Fun.protect
        ~finally:(fun () ->
          (match !stack with _ :: rest -> stack := rest | [] -> ());
          Histogram.observe hist (!clock () -. t0))
        f
    end
end

let reset_all () =
  if in_main () then begin
    List.iter (fun (c : Counter.t) -> c.Counter.v <- 0)
      (Registry.items Counter.registry);
    List.iter (fun (g : Gauge.t) -> g.Gauge.v <- 0.0)
      (Registry.items Gauge.registry);
    List.iter
      (fun (t : Timer.t) ->
        t.Timer.count <- 0;
        t.Timer.total <- 0.0)
      (Registry.items Timer.registry);
    List.iter
      (fun (h : Histogram.t) ->
        h.Histogram.count <- 0;
        h.Histogram.sum <- 0.0;
        Array.fill h.Histogram.bkts 0 (Array.length h.Histogram.bkts) 0)
      (Registry.items Histogram.registry)
  end
  else begin
    (* a worker can only zero its own shard; the global registries stay
       untouched (they belong to the main domain) *)
    let s = local_shard () in
    Registry.clear s.sh_counters;
    Registry.clear s.sh_gauges;
    Registry.clear s.sh_timers;
    Registry.clear s.sh_hists
  end

module Sharding = struct
  type shard = shard_store

  let take () =
    if in_main () then fresh_shard ()
    else begin
      let s = Domain.DLS.get shard_key in
      Domain.DLS.set shard_key (fresh_shard ());
      s
    end

  let merge s =
    if not (in_main ()) then
      invalid_arg "Obs.Sharding.merge: must be called from the main domain";
    List.iter
      (fun (c : counter_cell) ->
        let g = Counter.make c.c_name in
        g.Counter.v <- g.Counter.v + c.c_v)
      (Registry.items s.sh_counters);
    List.iter
      (fun (gc : gauge_cell) ->
        let g = Gauge.make gc.g_name in
        g.Gauge.v <- gc.g_v)
      (Registry.items s.sh_gauges);
    List.iter
      (fun (tc : timer_cell) ->
        let t = Timer.make tc.t_name in
        t.Timer.count <- t.Timer.count + tc.t_count;
        t.Timer.total <- t.Timer.total +. tc.t_total)
      (Registry.items s.sh_timers);
    List.iter
      (fun (hc : hist_cell) ->
        let h = Histogram.make ~bounds:hc.h_bnds hc.h_name in
        h.Histogram.count <- h.Histogram.count + hc.h_count;
        h.Histogram.sum <- h.Histogram.sum +. hc.h_sum;
        if h.Histogram.bnds = hc.h_bnds then
          Array.iteri
            (fun i k -> h.Histogram.bkts.(i) <- h.Histogram.bkts.(i) + k)
            hc.h_bkts
        else begin
          (* bounds mismatch — a contract violation (idempotent [make]
             requires one bounds array per name); keep the totals honest
             by folding everything into the overflow bucket *)
          let last = Array.length h.Histogram.bkts - 1 in
          let tot = Array.fold_left ( + ) 0 hc.h_bkts in
          h.Histogram.bkts.(last) <- h.Histogram.bkts.(last) + tot
        end)
      (Registry.items s.sh_hists)
end

module Export = struct
  type metric =
    | Counter of string * int
    | Gauge of string * float
    | Timer of { name : string; count : int; total : float }
    | Histogram of {
        name : string;
        count : int;
        sum : float;
        bounds : float array;
        buckets : int array;
      }

  type snapshot = metric list

  (* Sorted by name within each kind: registration order depends on
     which domain first touched an instrument (worker shards register on
     merge), so insertion order would make exports differ across --jobs
     settings. Name order makes two snapshots of the same run diffable
     regardless of scheduling. *)
  let by_name name xs =
    List.sort (fun a b -> String.compare (name a) (name b)) xs

  let snapshot () =
    List.map
      (fun c -> Counter (Counter.name c, Counter.value c))
      (by_name Counter.name (Registry.items Counter.registry))
    @ List.map
        (fun g -> Gauge (Gauge.name g, Gauge.value g))
        (by_name Gauge.name (Registry.items Gauge.registry))
    @ List.map
        (fun t ->
          Timer { name = Timer.name t; count = Timer.count t; total = Timer.total t })
        (by_name Timer.name (Registry.items Timer.registry))
    @ List.map
        (fun h ->
          Histogram
            {
              name = Histogram.name h;
              count = Histogram.count h;
              sum = Histogram.sum h;
              bounds = Histogram.bounds h;
              buckets = Histogram.buckets h;
            })
        (by_name Histogram.name (Registry.items Histogram.registry))

  (* %.17g round-trips every finite double through float_of_string *)
  let fstr x = Printf.sprintf "%.17g" x

  let join_floats a = String.concat ";" (Array.to_list (Array.map fstr a))
  let join_ints a =
    String.concat ";" (Array.to_list (Array.map string_of_int a))

  let split_array conv s =
    if s = "" then [||]
    else Array.of_list (List.map conv (String.split_on_char ';' s))

  let to_csv snap =
    let buf = Buffer.create 1024 in
    List.iter
      (fun m ->
        (match m with
        | Counter (n, v) -> Buffer.add_string buf (Printf.sprintf "counter,%s,%d" n v)
        | Gauge (n, v) -> Buffer.add_string buf (Printf.sprintf "gauge,%s,%s" n (fstr v))
        | Timer { name; count; total } ->
          Buffer.add_string buf
            (Printf.sprintf "timer,%s,%d,%s" name count (fstr total))
        | Histogram { name; count; sum; bounds; buckets } ->
          Buffer.add_string buf
            (Printf.sprintf "histogram,%s,%d,%s,%s,%s" name count (fstr sum)
               (join_floats bounds) (join_ints buckets)));
        Buffer.add_char buf '\n')
      snap;
    Buffer.contents buf

  let of_csv text =
    let parse_line line =
      match String.split_on_char ',' line with
      | [ "counter"; n; v ] -> Counter (n, int_of_string v)
      | [ "gauge"; n; v ] -> Gauge (n, float_of_string v)
      | [ "timer"; n; c; t ] ->
        Timer { name = n; count = int_of_string c; total = float_of_string t }
      | [ "histogram"; n; c; s; bs; ks ] ->
        Histogram
          {
            name = n;
            count = int_of_string c;
            sum = float_of_string s;
            bounds = split_array float_of_string bs;
            buckets = split_array int_of_string ks;
          }
      | _ -> failwith ("Obs.Export.of_csv: unrecognised row: " ^ line)
    in
    String.split_on_char '\n' text
    |> List.filter (fun l -> l <> "")
    |> List.map parse_line

  (* ---- JSON ---- *)

  let to_json snap =
    let buf = Buffer.create 1024 in
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_char buf ',' in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let group kind keep emit =
      sep ();
      add "%S:{" kind;
      let inner_first = ref true in
      List.iter
        (fun m ->
          match keep m with
          | None -> ()
          | Some x ->
            if !inner_first then inner_first := false else Buffer.add_char buf ',';
            emit x)
        snap;
      Buffer.add_char buf '}'
    in
    Buffer.add_char buf '{';
    group "counters"
      (function Counter (n, v) -> Some (n, v) | _ -> None)
      (fun (n, v) -> add "%S:%d" n v);
    group "gauges"
      (function Gauge (n, v) -> Some (n, v) | _ -> None)
      (fun (n, v) -> add "%S:%s" n (fstr v));
    group "timers"
      (function
        | Timer { name; count; total } -> Some (name, count, total)
        | _ -> None)
      (fun (name, count, total) ->
        add "%S:{\"count\":%d,\"total\":%s}" name count (fstr total));
    group "histograms"
      (function
        | Histogram { name; count; sum; bounds; buckets } ->
          Some (name, count, sum, bounds, buckets)
        | _ -> None)
      (fun (name, count, sum, bounds, buckets) ->
        add "%S:{\"count\":%d,\"sum\":%s,\"bounds\":[%s],\"buckets\":[%s]}" name
          count (fstr sum)
          (String.concat "," (Array.to_list (Array.map fstr bounds)))
          (String.concat "," (Array.to_list (Array.map string_of_int buckets))));
    Buffer.add_char buf '}';
    Buffer.contents buf

  (* Minimal JSON reader, sufficient for [to_json] output: objects,
     arrays, escape-free strings, numbers. *)
  type json =
    | Jnum of float
    | Jstr of string
    | Jarr of json list
    | Jobj of (string * json) list

  let parse_json text =
    let pos = ref 0 in
    let len = String.length text in
    let fail msg = failwith ("Obs.Export.of_json: " ^ msg) in
    let peek () = if !pos < len then text.[!pos] else '\000' in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      if peek () <> c then fail (Printf.sprintf "expected %c at %d" c !pos);
      advance ()
    in
    let parse_string () =
      expect '"';
      let start = !pos in
      while !pos < len && text.[!pos] <> '"' do
        if text.[!pos] = '\\' then fail "escapes unsupported";
        advance ()
      done;
      if !pos >= len then fail "unterminated string";
      let s = String.sub text start (!pos - start) in
      advance ();
      s
    in
    let parse_number () =
      skip_ws ();
      let start = !pos in
      while
        !pos < len
        && (match text.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        advance ()
      done;
      if !pos = start then fail (Printf.sprintf "expected number at %d" start);
      try Jnum (float_of_string (String.sub text start (!pos - start)))
      with _ -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Jobj [] end
        else begin
          let fields = ref [] in
          let rec loop () =
            let k = (skip_ws (); parse_string ()) in
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); loop ()
            | '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          loop ();
          Jobj (List.rev !fields)
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Jarr [] end
        else begin
          let items = ref [] in
          let rec loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); loop ()
            | ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          loop ();
          Jarr (List.rev !items)
        end
      | '"' -> Jstr (parse_string ())
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing input";
    v

  let of_json text =
    let fail msg = failwith ("Obs.Export.of_json: " ^ msg) in
    let obj = function Jobj fields -> fields | _ -> fail "expected object" in
    let num = function Jnum x -> x | _ -> fail "expected number" in
    let int j = int_of_float (num j) in
    let field name fields =
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> fail ("missing field " ^ name)
    in
    let arr conv = function
      | Jarr items -> Array.of_list (List.map conv items)
      | _ -> fail "expected array"
    in
    let top = obj (parse_json text) in
    let section name conv =
      List.map (fun (k, v) -> conv k v) (obj (field name top))
    in
    section "counters" (fun k v -> Counter (k, int v))
    @ section "gauges" (fun k v -> Gauge (k, num v))
    @ section "timers" (fun k v ->
          let f = obj v in
          Timer
            { name = k; count = int (field "count" f); total = num (field "total" f) })
    @ section "histograms" (fun k v ->
          let f = obj v in
          Histogram
            {
              name = k;
              count = int (field "count" f);
              sum = num (field "sum" f);
              bounds = arr num (field "bounds" f);
              buckets = arr int (field "buckets" f);
            })

  (* ---- human-readable table ---- *)

  let quantile_of ~bounds ~buckets ~count q =
    if count = 0 then 0.0
    else begin
      let target = q *. float_of_int count in
      let cum = ref 0 in
      let result = ref infinity in
      (try
         Array.iteri
           (fun i c ->
             cum := !cum + c;
             if float_of_int !cum >= target then begin
               result :=
                 (if i < Array.length bounds then bounds.(i) else infinity);
               raise Exit
             end)
           buckets
       with Exit -> ());
      !result
    end

  let pp_table ppf snap =
    let fired = function
      | Counter (_, v) -> v <> 0
      | Gauge (_, v) -> v <> 0.0
      | Timer { count; _ } | Histogram { count; _ } -> count <> 0
    in
    let live = List.filter fired snap in
    let counters = List.filter_map (function Counter (n, v) -> Some (n, v) | _ -> None) live in
    let gauges = List.filter_map (function Gauge (n, v) -> Some (n, v) | _ -> None) live in
    let timers =
      List.filter_map
        (function
          | Timer { name; count; total } -> Some (name, count, total)
          | _ -> None)
        live
    in
    let hists =
      List.filter_map
        (function
          | Histogram { name; count; sum; bounds; buckets } ->
            Some (name, count, sum, bounds, buckets)
          | _ -> None)
        live
    in
    Format.fprintf ppf "== nfv-obs metrics ==@.";
    if live = [] then Format.fprintf ppf "(no instrument fired)@."
    else begin
      if counters <> [] then begin
        Format.fprintf ppf "counters:@.";
        List.iter
          (fun (n, v) -> Format.fprintf ppf "  %-44s %12d@." n v)
          counters
      end;
      if gauges <> [] then begin
        Format.fprintf ppf "gauges:@.";
        List.iter
          (fun (n, v) -> Format.fprintf ppf "  %-44s %12.4f@." n v)
          gauges
      end;
      if timers <> [] then begin
        Format.fprintf ppf "timers:@.";
        List.iter
          (fun (name, count, total) ->
            Format.fprintf ppf "  %-44s %8d calls  total %8.3f s  mean %8.3f ms@."
              name count total
              (1000.0 *. total /. float_of_int (max count 1)))
          timers
      end;
      if hists <> [] then begin
        Format.fprintf ppf "histograms (seconds):@.";
        List.iter
          (fun (name, count, sum, bounds, buckets) ->
            let q p = quantile_of ~bounds ~buckets ~count p in
            Format.fprintf ppf
              "  %-44s %8d obs  mean %8.3f ms  p50<=%g p95<=%g p99<=%g@." name
              count
              (1000.0 *. sum /. float_of_int (max count 1))
              (q 0.5) (q 0.95) (q 0.99);
            Array.iteri
              (fun i c ->
                if c > 0 then
                  if i < Array.length bounds then
                    Format.fprintf ppf "    <=%-10g %10d@." bounds.(i) c
                  else Format.fprintf ppf "    overflow    %10d@." c)
              buckets)
          hists
      end
    end

  let print_table oc =
    let ppf = Format.formatter_of_out_channel oc in
    pp_table ppf (snapshot ());
    Format.pp_print_flush ppf ()
end
