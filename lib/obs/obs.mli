(** Zero-dependency, allocation-light metrics and tracing.

    Every hot layer of the system — the CSR graph core, the lazy
    shortest-path engine, the SDN resource substrate, the admission
    algorithms — registers named instruments here at module
    initialisation and records into them while running. Recording is
    gated on a single process-wide switch, {!enabled}: when it is [false]
    (the default) every recording call reduces to one boolean load and a
    branch, so instrumented code paths stay within noise of their
    uninstrumented versions and figure reproductions remain
    byte-identical. The [--stats] flag of [bin/nfvm_cli] and
    [bench/main] flips the switch and dumps a report on exit.

    Instruments are registered globally by name, in creation order, and
    live for the whole process: constructors are idempotent, so two
    modules asking for the same (kind, name) pair share one instrument —
    this is how an algorithm attributes the shortest-path engine's
    process-wide counters to itself by reading them before and after a
    solve. Names may use [A-Za-z0-9], [.], [_], [-] and [/]; the
    conventional shape is ["layer.event"], e.g.
    ["sp_engine.cache_hits"].

    {b Domains.} The global registries belong to the main domain and are
    never mutated from any other domain. Recording from a worker domain
    (spawned by the [Experiments.Pool] harness or directly) lands in a
    private
    per-domain {e shard}; reads from a worker see that domain's unmerged
    contribution, so before/after delta attribution keeps working inside
    a worker. After joining a worker, the main domain folds its shard
    back with {!Sharding.merge}: counters and timers sum, histograms add
    bucket-wise, gauges are last-write-wins in merge order. The same
    name must keep the same histogram bounds across domains. {!enabled}
    and {!clock} are plain refs shared by all domains: set them before
    spawning workers and leave them alone while workers run. *)

val enabled : bool ref
(** Master switch, default [false]. All recording operations ({!Counter.incr},
    {!Histogram.observe}, {!Span.run} timing, …) are no-ops while it is
    [false]; registration and read-out work regardless. *)

val clock : (unit -> float) ref
(** Time source used by {!Timer.time} and {!Span.run}, in seconds.
    Defaults to [Sys.time] (processor time). Note that [Sys.time] is
    process-wide: under a multi-domain run a worker's span durations
    include CPU burnt by sibling domains, so treat per-request timing
    telemetry from parallel runs as an upper bound (the determinism
    test suite substitutes a per-domain fake clock instead). Tests
    substitute a fake clock to make span and timer arithmetic
    deterministic. *)

val reset_all : unit -> unit
(** Zero every registered instrument (counts, sums, buckets). The
    instruments themselves stay registered. Benchmarks call this between
    phases so each phase's snapshot is self-contained. Called from a
    worker domain it zeroes only that domain's shard. *)

(** Per-domain shard hand-off for parallel harnesses. A worker domain's
    records accumulate in a private shard; the code that joins the
    worker moves them into the global registry:

    {[
      let worker () = ...work...; Obs.Sharding.take () in
      let shards = List.map Domain.join (List.map Domain.spawn workers) in
      List.iter Obs.Sharding.merge shards
    ]}

    Merging in spawn order makes the gauge last-write-wins rule
    deterministic per domain id. Nothing here is gated on {!enabled}:
    when recording was disabled the shard is empty and [merge] is a
    no-op. *)
module Sharding : sig
  type shard

  val take : unit -> shard
  (** Detach and return the calling domain's accumulated shard,
      resetting the domain's local state. In the main domain (which
      records straight into the global registry) this returns an empty
      shard. Call as the last thing a worker does, and hand the result
      to the joining domain. *)

  val merge : shard -> unit
  (** Fold a worker shard into the global registry: counters and timers
      sum, histogram buckets add bucket-wise (instruments first seen in
      the worker are registered with the worker's bounds), gauges
      overwrite (last merge wins). Must be called from the main domain;
      raises [Invalid_argument] elsewhere. *)
end

(** {1 Instruments} *)

(** Monotonic integer event counters. *)
module Counter : sig
  type t

  val make : string -> t
  (** [make name] registers (or retrieves — [make] is idempotent per
      name) the counter called [name]. Raises [Invalid_argument] on a
      name containing characters outside [A-Za-z0-9._/-]. *)

  val incr : t -> unit
  (** Add one, when {!enabled}. *)

  val add : t -> int -> unit
  (** Add an arbitrary non-negative amount, when {!enabled}. *)

  val value : t -> int
  (** Current count. Reads are never gated. In a worker domain this is
      the domain's own unmerged contribution (0 before its first
      record), which keeps before/after attribution deltas correct
      under parallel runs. *)

  val name : t -> string
end

(** Last-write-wins scalar measurements (utilisations, sizes, rates). *)
module Gauge : sig
  type t

  val make : string -> t
  (** Idempotent per name, like {!Counter.make}. *)

  val set : t -> float -> unit
  (** Record the latest value, when {!enabled}. *)

  val value : t -> float
  (** Latest recorded value; [0.] before any {!set}. *)

  val name : t -> string
end

(** Scalar accumulating timers: total elapsed seconds and a call count.
    For distributions (per-request solve times) prefer {!Span} /
    {!Histogram}; a timer is the cheap choice when only the aggregate
    matters. *)
module Timer : sig
  type t

  val make : string -> t
  (** Idempotent per name, like {!Counter.make}. *)

  val add : t -> float -> unit
  (** Record one observation of a duration (seconds) measured by the
      caller, when {!enabled}. Negative durations raise
      [Invalid_argument]. *)

  val time : t -> (unit -> 'a) -> 'a
  (** [time t f] runs [f] and records its duration per {!clock}. When
      disabled this is exactly [f ()]. The duration is recorded even if
      [f] raises. *)

  val count : t -> int
  (** Number of recorded observations. *)

  val total : t -> float
  (** Sum of recorded durations, seconds. *)

  val name : t -> string
end

(** Fixed-bucket latency/size histograms. A histogram owns an increasing
    array of finite upper bounds [b_0 < … < b_{n-1}] and [n + 1]
    buckets: observation [x] lands in the first bucket with [x <= b_i],
    or in the overflow bucket when [x > b_{n-1}]. Buckets are fixed at
    creation, so observing allocates nothing. *)
module Histogram : sig
  type t

  val default_bounds : float array
  (** Log-spaced second-scale bounds ([1e-6 … 10.0]), suited to
      per-request solve times from microseconds to seconds. *)

  val make : ?bounds:float array -> string -> t
  (** [make ?bounds name] registers (idempotently — if [name] already
      exists its original bounds win and [?bounds] is ignored) a
      histogram. Raises [Invalid_argument] if [bounds] is empty, not
      strictly increasing, or not finite. *)

  val observe : t -> float -> unit
  (** Record one observation, when {!enabled}. *)

  val count : t -> int
  (** Total observations. *)

  val sum : t -> float
  (** Sum of observed values. *)

  val mean : t -> float
  (** [sum / count], or [0.] when empty. *)

  val bounds : t -> float array
  (** The finite upper bounds (a copy). *)

  val buckets : t -> int array
  (** Per-bucket counts (a copy), length [Array.length (bounds t) + 1];
      the final cell is the overflow bucket. *)

  val quantile : t -> float -> float
  (** [quantile t q] (with [0 <= q <= 1]) is the upper bound of the
      first bucket at which the cumulative count reaches [q * count t] —
      an upper estimate of the q-quantile at bucket resolution.
      [infinity] when the quantile falls in the overflow bucket; [0.]
      when the histogram is empty. *)

  val name : t -> string
end

(** Nestable timed regions. [Span.run "online_cp.admit" f] times [f] and
    records the duration into a histogram (with
    {!Histogram.default_bounds}) named by the full span path: nested
    spans concatenate with ["/"], so a span ["steiner"] inside
    ["online_cp.admit"] records into ["online_cp.admit/steiner"].
    Distinct call paths therefore get distinct distributions for free. *)
module Span : sig
  val run : string -> (unit -> 'a) -> 'a
  (** Run a function inside a named span. When {!enabled} is [false]
      this is exactly [f ()] — no clock read, no allocation. The
      duration is recorded (and the span popped) even if [f] raises. *)

  val current : unit -> string option
  (** Full path of the innermost open span, if any — useful for
      attributing ad-hoc measurements to the running request. *)
end

(** {1 Export} *)

(** Snapshots of every registered instrument, and serialisers for them.

    A snapshot is an ordinary value: exporters are pure functions of it,
    and {!of_csv} / {!of_json} invert {!to_csv} / {!to_json} exactly
    (floats are printed with round-trip precision), so external tooling
    — and the round-trip tests — can reconstruct the numbers without
    this library. *)
module Export : sig
  type metric =
    | Counter of string * int
    | Gauge of string * float
    | Timer of { name : string; count : int; total : float }
    | Histogram of {
        name : string;
        count : int;
        sum : float;
        bounds : float array;
        buckets : int array;
      }
  (** One exported instrument. Field meanings match the accessors of the
      corresponding instrument modules. *)

  type snapshot = metric list
  (** All instruments, grouped by kind (counters, then gauges, timers,
      histograms), each group sorted by name — registration order would
      depend on which domain first touched an instrument, so name order
      is what keeps two exports of the same run diffable across [--jobs]
      settings. *)

  val snapshot : unit -> snapshot
  (** Capture the current values of every registered instrument. *)

  val to_csv : snapshot -> string
  (** CSV with one row per instrument:
      [counter,<name>,<value>] · [gauge,<name>,<value>] ·
      [timer,<name>,<count>,<total>] ·
      [histogram,<name>,<count>,<sum>,<bounds>,<buckets>], where
      [<bounds>] and [<buckets>] are [;]-separated. No header row.
      Floats round-trip exactly through {!of_csv}. *)

  val of_csv : string -> snapshot
  (** Parse {!to_csv} output. Raises [Failure] on rows it does not
      recognise. *)

  val to_json : snapshot -> string
  (** A JSON object with [counters], [gauges], [timers] and
      [histograms] sub-objects keyed by instrument name. All values are
      finite JSON numbers (or arrays/objects of them). *)

  val of_json : string -> snapshot
  (** Parse {!to_json} output (a minimal JSON reader — objects, arrays,
      strings without escapes, numbers — sufficient for snapshots, not a
      general JSON parser). Raises [Failure] on malformed input. *)

  val pp_table : Format.formatter -> snapshot -> unit
  (** Human-readable report: counters and gauges as aligned name/value
      lines, timers with count/total/mean, histograms with count, mean,
      p50/p95/p99 estimates and non-empty buckets. *)

  val print_table : out_channel -> unit
  (** [pp_table] of a fresh {!snapshot}, to a channel (the CLIs print to
      [stderr] so stdout stays machine-readable). Instruments that never
      fired are omitted; prints a placeholder line when nothing fired at
      all. *)
end
