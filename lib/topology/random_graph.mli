(** Simple random graph families used in tests and property checks. *)

val erdos_renyi : ?name:string -> Rng.t -> n:int -> p:float -> Topo.t
(** G(n, p), made connected by random inter-component links. *)

val gnm : ?name:string -> Rng.t -> n:int -> m:int -> Topo.t
(** A connected graph with exactly [max m (n-1)] edges: a random spanning
    tree plus uniformly random extra edges (no parallels). *)

val random_tree : ?name:string -> Rng.t -> n:int -> Topo.t
(** A uniformly random labelled tree (random attachment). *)
