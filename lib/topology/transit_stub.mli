(** GT-ITM-style transit–stub topologies.

    The generator the paper cites for its random SDNs produces two-level
    hierarchies: a small number of well-meshed {e transit} domains
    (backbones) and many {e stub} domains (edge networks) hanging off
    transit nodes. Multicast destinations scattered across stubs make
    traffic cross the backbone — the regime in which server placement
    matters. *)

type params = {
  transit_domains : int;        (** T: number of transit domains *)
  transit_size : int;           (** NT: nodes per transit domain *)
  stubs_per_transit_node : int; (** S *)
  stub_size : int;              (** NS: nodes per stub domain *)
  extra_transit_edges : float;  (** density of intra-transit meshing, 0–1 *)
  extra_stub_edges : float;     (** density of intra-stub meshing, 0–1 *)
}

val default_params : params

val generate : ?params:params -> ?name:string -> Rng.t -> Topo.t
(** Total size [T·NT·(1 + S·NS)]. *)

val generate_sized : ?name:string -> Rng.t -> n:int -> Topo.t
(** Pick parameters so the total node count is approximately [n]
    (never less than [n] − the last stub may be truncated to hit [n]
    exactly). Raises [Invalid_argument] when [n < 10]. *)
