let erdos_renyi ?name rng ~n ~p =
  if n < 1 then invalid_arg "Random_graph.erdos_renyi: empty graph";
  let g = Mcgraph.Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1.0 < p then ignore (Mcgraph.Graph.add_edge g i j)
    done
  done;
  let name = Option.value name ~default:(Printf.sprintf "gnp-%d" n) in
  Topo.connect_components rng (Topo.make ~name g)

let random_tree ?name rng ~n =
  if n < 1 then invalid_arg "Random_graph.random_tree: empty graph";
  let g = Mcgraph.Graph.create n in
  for v = 1 to n - 1 do
    ignore (Mcgraph.Graph.add_edge g v (Rng.int rng v))
  done;
  let name = Option.value name ~default:(Printf.sprintf "tree-%d" n) in
  Topo.make ~name g

let gnm ?name rng ~n ~m =
  let t = random_tree rng ~n in
  let g = t.Topo.graph in
  let target = max m (n - 1) in
  let guard = ref 0 in
  while Mcgraph.Graph.m g < target && !guard < 100 * target do
    incr guard;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Mcgraph.Graph.mem_edge g u v) then
      ignore (Mcgraph.Graph.add_edge g u v)
  done;
  let name = Option.value name ~default:(Printf.sprintf "gnm-%d-%d" n target) in
  Topo.make ~name g
