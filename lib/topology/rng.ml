type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* keep 62 bits so the value fits OCaml's native int; modulo bias is
     negligible for the bounds used here *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x /. 9007199254740992.0 *. bound (* 2^53 *)

let float_range t lo hi =
  if hi < lo then invalid_arg "Rng.float_range: empty range";
  lo +. float t (hi -. lo)

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let arr = Array.init n Fun.id in
  (* partial Fisher–Yates: only the first k positions are needed *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)
