(* 40 GÉANT points of presence. The link list follows the 2012 public
   topology map; a handful of low-degree access links are simplified.
   Ids are alphabetical. *)
let cities =
  [|
    "Amsterdam"; "Athens"; "Belgrade"; "Bratislava"; "Brussels"; "Bucharest";
    "Budapest"; "Copenhagen"; "Dublin"; "Frankfurt"; "Geneva"; "Helsinki";
    "Istanbul"; "Kaunas"; "Kiev"; "Lisbon"; "Ljubljana"; "London";
    "Luxembourg"; "Madrid"; "Malta"; "Milan"; "Moscow"; "Nicosia"; "Oslo";
    "Paris"; "Prague"; "Riga"; "Rome"; "Sofia"; "Stockholm"; "Tallinn";
    "Tirana"; "Vienna"; "Vilnius"; "Warsaw"; "Zagreb"; "Zurich"; "Bern";
    "Reykjavik";
  |]

let id name =
  let rec find i =
    if i >= Array.length cities then invalid_arg ("Geant: unknown city " ^ name)
    else if cities.(i) = name then i
    else find (i + 1)
  in
  find 0

let links =
  [
    ("Amsterdam", "Brussels"); ("Amsterdam", "Copenhagen");
    ("Amsterdam", "Frankfurt"); ("Amsterdam", "London");
    ("Athens", "Milan"); ("Athens", "Vienna"); ("Athens", "Nicosia");
    ("Belgrade", "Budapest"); ("Belgrade", "Sofia"); ("Belgrade", "Zagreb");
    ("Bratislava", "Vienna"); ("Bratislava", "Budapest");
    ("Brussels", "Paris"); ("Brussels", "Luxembourg");
    ("Bucharest", "Budapest"); ("Bucharest", "Sofia"); ("Bucharest", "Kiev");
    ("Budapest", "Prague"); ("Budapest", "Zagreb");
    ("Copenhagen", "Oslo"); ("Copenhagen", "Stockholm");
    ("Copenhagen", "Frankfurt"); ("Copenhagen", "Reykjavik");
    ("Dublin", "London"); ("Dublin", "Reykjavik");
    ("Frankfurt", "Geneva"); ("Frankfurt", "Prague"); ("Frankfurt", "Luxembourg");
    ("Frankfurt", "Moscow"); ("Frankfurt", "Vienna");
    ("Geneva", "Madrid"); ("Geneva", "Milan"); ("Geneva", "Paris");
    ("Geneva", "Bern");
    ("Helsinki", "Stockholm"); ("Helsinki", "Tallinn");
    ("Istanbul", "Bucharest"); ("Istanbul", "Sofia"); ("Istanbul", "Nicosia");
    ("Kaunas", "Riga"); ("Kaunas", "Warsaw");
    ("Kiev", "Warsaw"); ("Kiev", "Moscow");
    ("Lisbon", "London"); ("Lisbon", "Madrid");
    ("Ljubljana", "Vienna"); ("Ljubljana", "Zagreb");
    ("London", "Paris");
    ("Madrid", "Paris");
    ("Malta", "Milan"); ("Malta", "Rome");
    ("Milan", "Vienna"); ("Milan", "Rome"); ("Milan", "Zurich");
    ("Moscow", "Stockholm");
    ("Prague", "Vienna"); ("Prague", "Warsaw");
    ("Riga", "Tallinn");
    ("Rome", "Tirana");
    ("Sofia", "Tirana");
    ("Stockholm", "Tallinn");
    ("Vienna", "Warsaw"); ("Vienna", "Zurich");
    ("Vilnius", "Kaunas"); ("Vilnius", "Warsaw");
    ("Zurich", "Bern");
  ]

let topology () =
  let g = Mcgraph.Graph.create (Array.length cities) in
  List.iter (fun (a, b) -> ignore (Mcgraph.Graph.add_edge g (id a) (id b))) links;
  Topo.make ~node_names:(Array.copy cities) ~name:"GEANT" g

(* nine servers at the best-connected PoPs, matching the paper's count *)
let default_servers =
  List.map id
    [
      "Frankfurt"; "Vienna"; "Geneva"; "Milan"; "Copenhagen"; "Amsterdam";
      "London"; "Budapest"; "Paris";
    ]
