(* 40 GÉANT points of presence. The link list follows the 2012 public
   topology map; a handful of low-degree access links are simplified.
   Ids are alphabetical. *)
let cities =
  [|
    "Amsterdam"; "Athens"; "Belgrade"; "Bratislava"; "Brussels"; "Bucharest";
    "Budapest"; "Copenhagen"; "Dublin"; "Frankfurt"; "Geneva"; "Helsinki";
    "Istanbul"; "Kaunas"; "Kiev"; "Lisbon"; "Ljubljana"; "London";
    "Luxembourg"; "Madrid"; "Malta"; "Milan"; "Moscow"; "Nicosia"; "Oslo";
    "Paris"; "Prague"; "Riga"; "Rome"; "Sofia"; "Stockholm"; "Tallinn";
    "Tirana"; "Vienna"; "Vilnius"; "Warsaw"; "Zagreb"; "Zurich"; "Bern";
    "Reykjavik";
  |]

(* approximate (longitude, latitude) per PoP, aligned with [cities];
   the embedding feeds DOT layouts and the SRLG link clustering of
   Sdn.Fault (links whose midpoints are close share a risk group) *)
let coords =
  [|
    (4.90, 52.37); (23.73, 37.98); (20.46, 44.79); (17.11, 48.15);
    (4.35, 50.85); (26.10, 44.43); (19.04, 47.50); (12.57, 55.68);
    (-6.26, 53.35); (8.68, 50.11); (6.14, 46.20); (24.94, 60.17);
    (28.98, 41.01); (23.90, 54.90); (30.52, 50.45); (-9.14, 38.72);
    (14.51, 46.06); (-0.13, 51.51); (6.13, 49.61); (-3.70, 40.42);
    (14.51, 35.90); (9.19, 45.46); (37.62, 55.76); (33.38, 35.17);
    (10.75, 59.91); (2.35, 48.86); (14.44, 50.08); (24.11, 56.95);
    (12.50, 41.90); (23.32, 42.70); (18.07, 59.33); (24.75, 59.44);
    (19.82, 41.33); (16.37, 48.21); (25.28, 54.69); (21.01, 52.23);
    (15.98, 45.81); (8.54, 47.37); (7.45, 46.95); (-21.94, 64.15);
  |]

let id name =
  let rec find i =
    if i >= Array.length cities then invalid_arg ("Geant: unknown city " ^ name)
    else if cities.(i) = name then i
    else find (i + 1)
  in
  find 0

let links =
  [
    ("Amsterdam", "Brussels"); ("Amsterdam", "Copenhagen");
    ("Amsterdam", "Frankfurt"); ("Amsterdam", "London");
    ("Athens", "Milan"); ("Athens", "Vienna"); ("Athens", "Nicosia");
    ("Belgrade", "Budapest"); ("Belgrade", "Sofia"); ("Belgrade", "Zagreb");
    ("Bratislava", "Vienna"); ("Bratislava", "Budapest");
    ("Brussels", "Paris"); ("Brussels", "Luxembourg");
    ("Bucharest", "Budapest"); ("Bucharest", "Sofia"); ("Bucharest", "Kiev");
    ("Budapest", "Prague"); ("Budapest", "Zagreb");
    ("Copenhagen", "Oslo"); ("Copenhagen", "Stockholm");
    ("Copenhagen", "Frankfurt"); ("Copenhagen", "Reykjavik");
    ("Dublin", "London"); ("Dublin", "Reykjavik");
    ("Frankfurt", "Geneva"); ("Frankfurt", "Prague"); ("Frankfurt", "Luxembourg");
    ("Frankfurt", "Moscow"); ("Frankfurt", "Vienna");
    ("Geneva", "Madrid"); ("Geneva", "Milan"); ("Geneva", "Paris");
    ("Geneva", "Bern");
    ("Helsinki", "Stockholm"); ("Helsinki", "Tallinn");
    ("Istanbul", "Bucharest"); ("Istanbul", "Sofia"); ("Istanbul", "Nicosia");
    ("Kaunas", "Riga"); ("Kaunas", "Warsaw");
    ("Kiev", "Warsaw"); ("Kiev", "Moscow");
    ("Lisbon", "London"); ("Lisbon", "Madrid");
    ("Ljubljana", "Vienna"); ("Ljubljana", "Zagreb");
    ("London", "Paris");
    ("Madrid", "Paris");
    ("Malta", "Milan"); ("Malta", "Rome");
    ("Milan", "Vienna"); ("Milan", "Rome"); ("Milan", "Zurich");
    ("Moscow", "Stockholm");
    ("Prague", "Vienna"); ("Prague", "Warsaw");
    ("Riga", "Tallinn");
    ("Rome", "Tirana");
    ("Sofia", "Tirana");
    ("Stockholm", "Tallinn");
    ("Vienna", "Warsaw"); ("Vienna", "Zurich");
    ("Vilnius", "Kaunas"); ("Vilnius", "Warsaw");
    ("Zurich", "Bern");
  ]

let topology () =
  let g = Mcgraph.Graph.create (Array.length cities) in
  List.iter (fun (a, b) -> ignore (Mcgraph.Graph.add_edge g (id a) (id b))) links;
  Topo.make ~coords:(Array.copy coords) ~node_names:(Array.copy cities)
    ~name:"GEANT" g

(* nine servers at the best-connected PoPs, matching the paper's count *)
let default_servers =
  List.map id
    [
      "Frankfurt"; "Vienna"; "Geneva"; "Milan"; "Copenhagen"; "Amsterdam";
      "London"; "Budapest"; "Paris";
    ]
