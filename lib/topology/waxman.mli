(** Waxman random topologies — the model implemented by GT-ITM's flat
    method, which the paper uses to generate its 50–250 node SDNs.

    Nodes are placed uniformly in the unit square; an edge (u, v) exists
    with probability [alpha · exp (−d(u,v) / (beta · L))] where [L] is
    the maximum inter-node distance. The result is post-processed to be
    connected (random inter-component links), matching how simulation
    studies use GT-ITM output. *)

val generate :
  ?alpha:float ->
  ?beta:float ->
  ?name:string ->
  Rng.t ->
  n:int ->
  Topo.t
(** Defaults [alpha = 0.4], [beta = 0.25]: average degree ≈ 4–7 over the
    paper's size range. Raises [Invalid_argument] when [n < 2]. *)
