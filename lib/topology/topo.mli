(** Network topologies: a named node/edge structure, optionally with
    plane coordinates (used by Waxman generation and DOT layouts).
    Capacities and costs are attached later by [Sdn.Network]. *)

type t = {
  name : string;
  graph : Mcgraph.Graph.t;
  coords : (float * float) array option;  (** one point per node, if geometric *)
  node_names : string array option;       (** human names (e.g. GÉANT cities) *)
}

val make :
  ?coords:(float * float) array ->
  ?node_names:string array ->
  name:string ->
  Mcgraph.Graph.t ->
  t
(** Raises [Invalid_argument] when the optional arrays do not match the
    graph's node count. *)

val n : t -> int
val m : t -> int

val is_connected : t -> bool

val node_name : t -> int -> string
(** Human name when available, otherwise the node id as a string. *)

val connect_components : Rng.t -> t -> t
(** Add uniformly random edges between distinct components until the
    topology is connected (identity when already connected). Used by
    random generators that may produce disconnected draws. *)
