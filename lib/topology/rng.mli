(** Deterministic pseudo-random numbers (SplitMix64).

    All randomness in the repository flows through this module so that
    every topology, workload and experiment is reproducible from a seed,
    independently of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** A generator seeded from an integer. Equal seeds produce equal
    streams. *)

val split : t -> t
(** A statistically independent generator derived from the current state
    (advances the parent). *)

val copy : t -> t
(** Duplicate the current state (both copies then produce the same
    stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val float_range : t -> float -> float -> float
(** Uniform in [lo, hi). Raises [Invalid_argument] if [hi < lo]. *)

val int_range : t -> int -> int -> int
(** Uniform in [lo .. hi] inclusive. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is [k] distinct values drawn
    uniformly from [0 .. n-1], in random order. Raises
    [Invalid_argument] when [k > n] or [k < 0]. *)
