(** Synthetic stand-ins for the Rocketfuel ISP backbone maps the paper
    evaluates on (AS1755 Ebone and AS4755 VSNL).

    The original router-level maps are not redistributable here, so we
    generate deterministic graphs with the published scale — AS1755:
    87 nodes / 161 links, AS4755: 41 nodes / 68 links — and an ISP-like
    heavy-tailed degree distribution (preferential attachment core plus
    random meshing). See DESIGN.md §4 for why this substitution preserves
    the experiments' behaviour. *)

val as1755 : unit -> Topo.t
(** "AS1755"-scale backbone: 87 nodes, 161 links, deterministic. *)

val as4755 : unit -> Topo.t
(** "AS4755"-scale backbone: 41 nodes, 68 links, deterministic. *)

val synthetic_isp : ?name:string -> seed:int -> n:int -> m:int -> unit -> Topo.t
(** General generator behind the two stand-ins. *)
