(** The GÉANT pan-European research network topology.

    Embedded from the public 2012 GÉANT map (40 points of presence,
    61 links, approximate wiring — see DESIGN.md §4). The paper places
    nine servers in GÉANT following Gushchin et al.; [default_servers]
    reproduces that count at well-connected PoPs. *)

val topology : unit -> Topo.t
(** A fresh copy of the GÉANT topology (safe to mutate). *)

val default_servers : int list
(** Nine server locations (node ids), at the highest-degree PoPs. *)
