(** k-ary fat-tree topologies (switch level), the canonical data-center
    fabric motivating the paper's "system monitoring in data centers"
    workload. For an even arity [k] there are [(k/2)²] core switches and
    [k] pods of [k/2] aggregation plus [k/2] edge switches. *)

val generate : ?name:string -> k:int -> unit -> Topo.t
(** Raises [Invalid_argument] when [k] is odd or [k < 2]. *)

val core_switches : k:int -> int list
(** Node ids of the core layer. *)

val aggregation_switches : k:int -> int list

val edge_switches : k:int -> int list
(** Node ids of the edge layer — where servers and multicast endpoints
    naturally attach. *)
