type params = {
  transit_domains : int;
  transit_size : int;
  stubs_per_transit_node : int;
  stub_size : int;
  extra_transit_edges : float;
  extra_stub_edges : float;
}

let default_params =
  {
    transit_domains = 2;
    transit_size = 4;
    stubs_per_transit_node = 3;
    stub_size = 3;
    extra_transit_edges = 0.5;
    extra_stub_edges = 0.3;
  }

(* connected random cluster: a random attachment tree plus extra edges *)
let add_cluster g rng nodes density =
  (match nodes with
  | [] | [ _ ] -> ()
  | first :: rest ->
    let seen = ref [ first ] in
    List.iter
      (fun v ->
        let anchor = List.nth !seen (Rng.int rng (List.length !seen)) in
        ignore (Mcgraph.Graph.add_edge g v anchor);
        seen := v :: !seen)
      rest);
  let arr = Array.of_list nodes in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if
        (not (Mcgraph.Graph.mem_edge g arr.(i) arr.(j)))
        && Rng.float rng 1.0 < density
      then ignore (Mcgraph.Graph.add_edge g arr.(i) arr.(j))
    done
  done

let generate ?(params = default_params) ?name rng =
  let p = params in
  if p.transit_domains < 1 || p.transit_size < 1 || p.stub_size < 1 then
    invalid_arg "Transit_stub.generate: bad parameters";
  let per_transit_node = p.stubs_per_transit_node * p.stub_size in
  let per_domain = p.transit_size * (1 + per_transit_node) in
  let total = p.transit_domains * per_domain in
  let g = Mcgraph.Graph.create total in
  (* node layout: all transit nodes first, then stub nodes *)
  let transit_of d i = (d * p.transit_size) + i in
  let num_transit = p.transit_domains * p.transit_size in
  let next_stub = ref num_transit in
  for d = 0 to p.transit_domains - 1 do
    let transit_nodes = List.init p.transit_size (transit_of d) in
    add_cluster g rng transit_nodes p.extra_transit_edges;
    List.iter
      (fun t ->
        for _ = 1 to p.stubs_per_transit_node do
          let stub = List.init p.stub_size (fun i -> !next_stub + i) in
          next_stub := !next_stub + p.stub_size;
          add_cluster g rng stub p.extra_stub_edges;
          (* stub gateway attaches to its transit node *)
          match stub with
          | gw :: _ -> ignore (Mcgraph.Graph.add_edge g gw t)
          | [] -> ()
        done)
      transit_nodes
  done;
  (* inter-domain backbone links: ring plus a few chords *)
  for d = 0 to p.transit_domains - 1 do
    if p.transit_domains > 1 then begin
      let d' = (d + 1) mod p.transit_domains in
      let a = transit_of d (Rng.int rng p.transit_size) in
      let b = transit_of d' (Rng.int rng p.transit_size) in
      if a <> b && not (Mcgraph.Graph.mem_edge g a b) then
        ignore (Mcgraph.Graph.add_edge g a b)
    end
  done;
  let name = Option.value name ~default:(Printf.sprintf "transit-stub-%d" total) in
  Topo.connect_components rng (Topo.make ~name g)

(* grow stub sizes until the parameterised total reaches n, then truncate *)
let generate_sized ?name rng ~n =
  if n < 10 then invalid_arg "Transit_stub.generate_sized: too small";
  let pick =
    (* per domain: NT·(1 + S·NS); scale domains with n, keep NT/S/NS fixed *)
    let nt = 4 and s = 3 and ns = 3 in
    let per_domain = nt * (1 + (s * ns)) in
    let domains = max 1 ((n + per_domain - 1) / per_domain) in
    { default_params with transit_domains = domains; transit_size = nt;
      stubs_per_transit_node = s; stub_size = ns }
  in
  let topo = generate ~params:pick ?name rng in
  let total = Topo.n topo in
  if total = n then topo
  else begin
    (* rebuild with the first n nodes; re-add edges inside the cut *)
    let g = Mcgraph.Graph.create n in
    Mcgraph.Graph.iter_edges topo.Topo.graph (fun _ u v ->
        if u < n && v < n then ignore (Mcgraph.Graph.add_edge g u v));
    let name = Option.value name ~default:(Printf.sprintf "transit-stub-%d" n) in
    Topo.connect_components rng (Topo.make ~name g)
  end
