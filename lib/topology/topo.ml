type t = {
  name : string;
  graph : Mcgraph.Graph.t;
  coords : (float * float) array option;
  node_names : string array option;
}

let make ?coords ?node_names ~name graph =
  let nn = Mcgraph.Graph.n graph in
  (match coords with
  | Some c when Array.length c <> nn ->
    invalid_arg "Topo.make: coords size mismatch"
  | _ -> ());
  (match node_names with
  | Some names when Array.length names <> nn ->
    invalid_arg "Topo.make: node_names size mismatch"
  | _ -> ());
  { name; graph; coords; node_names }

let n t = Mcgraph.Graph.n t.graph
let m t = Mcgraph.Graph.m t.graph

let is_connected t = Mcgraph.Traversal.is_connected t.graph

let node_name t v =
  match t.node_names with
  | Some names when v >= 0 && v < Array.length names -> names.(v)
  | _ -> string_of_int v

let connect_components rng t =
  let g = t.graph in
  let rec join () =
    let label, count = Mcgraph.Traversal.components g in
    if count > 1 then begin
      (* pick a random node in component 0 and one outside, link them *)
      let inside = ref [] and outside = ref [] in
      Array.iteri
        (fun v c -> if c = 0 then inside := v :: !inside else outside := v :: !outside)
        label;
      let pick l = List.nth l (Rng.int rng (List.length l)) in
      ignore (Mcgraph.Graph.add_edge g (pick !inside) (pick !outside));
      join ()
    end
  in
  join ();
  t
