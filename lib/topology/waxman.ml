let generate ?(alpha = 0.4) ?(beta = 0.25) ?name rng ~n =
  if n < 2 then invalid_arg "Waxman.generate: need at least 2 nodes";
  let coords = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let dist i j =
    let xi, yi = coords.(i) and xj, yj = coords.(j) in
    sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))
  in
  let max_dist = ref epsilon_float in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist i j > !max_dist then max_dist := dist i j
    done
  done;
  let g = Mcgraph.Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. !max_dist)) in
      if Rng.float rng 1.0 < p then ignore (Mcgraph.Graph.add_edge g i j)
    done
  done;
  let name = Option.value name ~default:(Printf.sprintf "waxman-%d" n) in
  Topo.connect_components rng (Topo.make ~coords ~name g)
