(* Preferential attachment produces the heavy-tailed degrees observed in
   Rocketfuel backbones; extra random links raise the edge count to the
   published value and add the meshiness of real ISP cores. *)
let synthetic_isp ?name ~seed ~n ~m () =
  if n < 3 then invalid_arg "Rocketfuel.synthetic_isp: too small";
  if m < n - 1 then invalid_arg "Rocketfuel.synthetic_isp: m < n - 1";
  let rng = Rng.create seed in
  let g = Mcgraph.Graph.create n in
  (* endpoint pool: every endpoint occurrence is one ticket, so picking a
     uniform ticket is degree-proportional attachment *)
  let pool = ref [ 0; 1 ] in
  ignore (Mcgraph.Graph.add_edge g 0 1);
  for v = 2 to n - 1 do
    let tickets = Array.of_list !pool in
    let target = tickets.(Rng.int rng (Array.length tickets)) in
    ignore (Mcgraph.Graph.add_edge g v target);
    pool := v :: target :: !pool
  done;
  let guard = ref 0 in
  while Mcgraph.Graph.m g < m && !guard < 1000 * m do
    incr guard;
    let tickets = Array.of_list !pool in
    let u = tickets.(Rng.int rng (Array.length tickets)) in
    let v = Rng.int rng n in
    if u <> v && not (Mcgraph.Graph.mem_edge g u v) then begin
      ignore (Mcgraph.Graph.add_edge g u v);
      pool := u :: v :: !pool
    end
  done;
  let name = Option.value name ~default:(Printf.sprintf "isp-%d-%d" n m) in
  Topo.make ~name g

let as1755 () = synthetic_isp ~name:"AS1755" ~seed:1755 ~n:87 ~m:161 ()
let as4755 () = synthetic_isp ~name:"AS4755" ~seed:4755 ~n:41 ~m:68 ()
