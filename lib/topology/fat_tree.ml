let check k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fat_tree: arity must be even and >= 2"

let half k = k / 2
let num_core k = half k * half k

(* layout: cores [0 .. (k/2)²-1], then for pod p: aggs, then edges *)
let agg_id k pod i = num_core k + (pod * k) + i
let edge_id k pod i = num_core k + (pod * k) + half k + i

let core_switches ~k =
  check k;
  List.init (num_core k) Fun.id

let aggregation_switches ~k =
  check k;
  List.concat_map (fun p -> List.init (half k) (agg_id k p)) (List.init k Fun.id)

let edge_switches ~k =
  check k;
  List.concat_map (fun p -> List.init (half k) (edge_id k p)) (List.init k Fun.id)

let generate ?name ~k () =
  check k;
  let h = half k in
  let total = num_core k + (k * k) in
  let g = Mcgraph.Graph.create total in
  for pod = 0 to k - 1 do
    (* intra-pod complete bipartite agg × edge *)
    for a = 0 to h - 1 do
      for e = 0 to h - 1 do
        ignore (Mcgraph.Graph.add_edge g (agg_id k pod a) (edge_id k pod e))
      done
    done;
    (* aggregation a of every pod connects to cores [a·h .. a·h + h − 1] *)
    for a = 0 to h - 1 do
      for c = 0 to h - 1 do
        ignore (Mcgraph.Graph.add_edge g (agg_id k pod a) ((a * h) + c))
      done
    done
  done;
  let name = Option.value name ~default:(Printf.sprintf "fat-tree-%d" k) in
  Topo.make ~name g
