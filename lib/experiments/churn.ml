module Adm = Nfv_multicast.Admission
module Repair = Nfv_multicast.Repair
module Pseudo_tree = Nfv_multicast.Pseudo_tree
module Sp_window = Nfv_multicast.Sp_window
module Fault = Sdn.Fault

(* Failure churn on the paper's two real topologies.

   One pool point = one (topology, offered load, failure rate): admit
   [load] online requests with Online_CP while a seeded Fault schedule
   of [rate * load] link/server failures fires between arrivals; every
   evicted session goes through Repair's tier ladder. The tables are
   the repair.* counter deltas (tier breakdown, survival) plus
   p50/p99 repair latency read from the repair.attempt histogram —
   again exactly the telemetry an operator would scrape. *)

let nets =
  [
    ("GEANT", 'A', fun rng -> Exp_common.geant_network rng);
    ("AS1755", 'B', fun rng -> Exp_common.as1755_network rng);
  ]

let rates = [ 0.05; 0.1; 0.2 ]
let default_requests = 800

(* two load levels per topology: the horizon and its half, so
   --requests scales the whole sweep down for smoke runs *)
let loads_of requests = List.map (fun d -> max 1 (requests / d)) [ 2; 1 ]

let tiers =
  [
    ("patched", "repair.patched");
    ("migrated", "repair.migrated");
    ("readmitted", "repair.readmitted");
    ("dropped", "repair.dropped");
  ]

let metrics = [ "survival" ] @ List.map fst tiers @ [ "p50_ms"; "p99_ms" ]

(* one point: drive arrivals and the failure schedule in lockstep *)
let run_point ~make_net ~load ~rate ~rng =
  let net = make_net rng in
  let reqs = Workload.Gen.sequence rng net ~count:load in
  let events =
    int_of_float (Float.round (rate *. float_of_int load))
  in
  let schedule =
    Fault.random_schedule
      ~heal_after:(max 1 (load / 4))
      ~rng ~horizon:load ~events net
  in
  let fault = Fault.create net in
  let window = Sp_window.create net in
  let attempted = Runner.counter_probe "repair.attempted" in
  let tier_probes =
    List.map (fun (name, counter) -> (name, Runner.counter_probe counter)) tiers
  in
  let latency = Runner.span_probe "repair.attempt" in
  let live = ref [] in
  let link_down = Fault.link_is_down fault in
  let server_down = Fault.server_is_down fault in
  List.iteri
    (fun idx r ->
      (match Adm.admit_tree ~window net Adm.Online_cp r with
      | Ok tree -> live := (r.Sdn.Request.id, tree) :: !live
      | Error _ -> ());
      List.iter
        (fun (ev : Fault.timed) ->
          if ev.Fault.after = idx then begin
            let allocations =
              List.map
                (fun (id, tree) -> (id, Pseudo_tree.allocation tree))
                !live
            in
            let victims = Fault.inject fault ~live:allocations ev.Fault.event in
            List.iter
              (fun vid ->
                let vtree = List.assoc vid !live in
                live := List.remove_assoc vid !live;
                match
                  Repair.repair ~window ~link_down ~server_down net vtree
                with
                | Repair.Repaired { tree; _ } -> live := (vid, tree) :: !live
                | Repair.Dropped _ -> ())
              victims
          end)
        schedule)
    reqs;
  let att = Runner.counter_delta attempted in
  let tier_counts =
    List.map (fun (name, p) -> (name, Runner.counter_delta p)) tier_probes
  in
  let repaired =
    List.fold_left
      (fun acc (name, c) -> if name = "dropped" then acc else acc + c)
      0 tier_counts
  in
  let survival =
    if att = 0 then 1.0 else float_of_int repaired /. float_of_int att
  in
  (("survival", survival) :: List.map (fun (n, c) -> (n, float_of_int c)) tier_counts)
  @ [
      ("p50_ms", Runner.span_quantile_ms latency 0.5);
      ("p99_ms", Runner.span_quantile_ms latency 0.99);
    ]

let instance ?(requests = default_requests) () =
  let loads = loads_of requests in
  let n_rates = List.length rates in
  let per_net = List.length loads * n_rates in
  let params =
    Array.of_list
      (List.concat_map
         (fun (_, _, make_net) ->
           List.concat_map
             (fun load -> List.map (fun rate -> (make_net, load, rate)) rates)
             loads)
         nets)
  in
  let sweep =
    {
      Spec.key = "churn";
      points = Array.length params;
      point =
        (fun ~rng i ->
          let make_net, load, rate = params.(i) in
          run_point ~make_net ~load ~rate ~rng);
    }
  in
  let figures =
    List.mapi
      (fun ni (name, tag, _) ->
        {
          Spec.fid = Printf.sprintf "churn%c" tag;
          title = "Failure churn: survival and repair tiers in " ^ name;
          xlabel = "failure events per arrival";
          ylabel = "survival rate / repairs / latency (ms)";
          series =
            List.concat_map
              (fun (li, load) ->
                List.map
                  (fun m ->
                    {
                      Spec.label = Printf.sprintf "%s@%d" m load;
                      cells =
                        List.mapi
                          (fun ri rate ->
                            {
                              Spec.x = rate;
                              sweep = 0;
                              point = (ni * per_net) + (li * n_rates) + ri;
                              metric = m;
                            })
                          rates;
                    })
                  metrics)
              (List.mapi (fun li l -> (li, l)) loads);
          notes =
            [
              Printf.sprintf
                "%s, Online_CP + Fault.random_schedule (heal_after = \
                 load/4); tier columns are repair.* counter deltas, \
                 latency columns are p50/p99 of the repair.attempt \
                 histogram"
                name;
            ];
        })
      nets
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"churn"
    ~doc:
      "Churn: failure injection + tiered repair, survival and latency vs \
       failure rate on GEANT/AS1755"
    ~figure_ids:[ "churnA"; "churnB" ] ~default_requests
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
