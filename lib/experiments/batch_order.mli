(** Extension experiment: offline batch admission order. Sweeps the
    batch size on one network and reports how many requests each
    ordering policy (arrival, smallest-first, largest-first,
    cheapest-first) packs with [Appro_Multi_Cap]. *)

val spec : Spec.t
(** Registered as ["batch"]; the family has no request-count knob, so
    [--requests] is ignored. *)

val run : ?seed:int -> ?n:int -> ?sizes:int list -> unit -> Exp_common.figure list
(** [n] is the network size (default 80), [sizes] the batch sizes
    swept. *)
