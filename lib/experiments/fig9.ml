module Adm = Nfv_multicast.Admission

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]

let nets =
  [
    ("GEANT", 'a', fun rng -> Exp_common.geant_network rng);
    ("AS1755", 'b', fun rng -> Exp_common.as1755_network rng);
  ]

let prefixes_of requests =
  List.sort_uniq compare
    (requests
    :: List.filter
         (fun p -> p <= requests)
         [ 50; 100; 150; 200; 250; 300; 600; 1000; 1500 ])

(* One pool point = one topology; the three algorithms share its network
   and request sequence, so they run together inside the point. An
   online algorithm's first [n] decisions do not depend on later
   arrivals, so one full-length run yields every prefix as a metric. *)
let point ~requests ~prefixes ~make_net ~rng =
  let net = make_net rng in
  let reqs = Workload.Gen.sequence rng net ~count:requests in
  List.concat_map
    (fun algo ->
      let stats = Adm.run net algo reqs in
      let name = Adm.algorithm_to_string algo in
      List.map
        (fun p ->
          ( Printf.sprintf "adm_%s@%d" name p,
            float_of_int (Adm.admitted_after stats p) ))
        prefixes)
    algos

let instance ?(requests = 1500) () =
  let prefixes = prefixes_of requests in
  let nets_a = Array.of_list nets in
  let sweep =
    {
      Spec.key = "fig9";
      points = Array.length nets_a;
      point =
        (fun ~rng i ->
          let _, _, make_net = nets_a.(i) in
          point ~requests ~prefixes ~make_net ~rng);
    }
  in
  let figures =
    List.mapi
      (fun ni (name, tag, _) ->
        {
          Spec.fid = Printf.sprintf "fig9%c" tag;
          title = "admitted requests vs sequence length in " ^ name;
          xlabel = "requests";
          ylabel = "admitted";
          series =
            List.map
              (fun algo ->
                let aname = Adm.algorithm_to_string algo in
                {
                  Spec.label = aname;
                  cells =
                    List.map
                      (fun p ->
                        {
                          Spec.x = float_of_int p;
                          sweep = 0;
                          point = ni;
                          metric = Printf.sprintf "adm_%s@%d" aname p;
                        })
                      prefixes;
                })
              algos;
          notes =
            [
              Printf.sprintf "%s, K = 1, prefix counts of one %d-request run"
                name requests;
            ];
        })
      nets
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"fig9" ~doc:"Fig. 9: Online_CP vs SP in GEANT and AS1755"
    ~figure_ids:[ "fig9a"; "fig9b" ] ~default_requests:1500
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
