module Adm = Nfv_multicast.Admission

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]

let nets =
  [
    ("GEANT", 'a', fun rng -> Exp_common.geant_network rng);
    ("AS1755", 'b', fun rng -> Exp_common.as1755_network rng);
  ]

(* One pool point = one topology; the three algorithms share its network
   and request sequence, so they run together inside the point. *)

let run ?(seed = 1) ?(requests = 1500) () =
  let prefixes =
    List.sort_uniq compare
      (requests
      :: List.filter
           (fun p -> p <= requests)
           [ 50; 100; 150; 200; 250; 300; 600; 1000; 1500 ])
  in
  let nets_a = Array.of_list nets in
  let points =
    Pool.map ~figure:"fig9" ~seed (Array.length nets_a) (fun ~rng i ->
        let _, _, make_net = nets_a.(i) in
        let net = make_net rng in
        let reqs = Workload.Gen.sequence rng net ~count:requests in
        List.map (fun algo -> Adm.run net algo reqs) algos)
  in
  List.map2
    (fun (name, tag, _) stats_by_algo ->
      let curve stats =
        List.map
          (fun p -> (float_of_int p, float_of_int (Adm.admitted_after stats p)))
          prefixes
      in
      let series =
        List.map2
          (fun algo stats ->
            { Exp_common.label = Adm.algorithm_to_string algo; points = curve stats })
          algos stats_by_algo
      in
      {
        Exp_common.id = Printf.sprintf "fig9%c" tag;
        title = "admitted requests vs sequence length in " ^ name;
        xlabel = "requests";
        ylabel = "admitted";
        series;
        notes =
          [
            Printf.sprintf "%s, K = 1, prefix counts of one %d-request run" name
              requests;
          ];
      })
    nets points
