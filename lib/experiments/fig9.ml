module Adm = Nfv_multicast.Admission

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]

let run ?(seed = 1) ?(requests = 1500) () =
  let nets =
    [
      ("GEANT", 'a', fun rng -> Exp_common.geant_network rng);
      ("AS1755", 'b', fun rng -> Exp_common.as1755_network rng);
    ]
  in
  let prefixes =
    List.filter
      (fun p -> p <= requests)
      [ 50; 100; 150; 200; 250; 300; 600; 1000; 1500 ]
  in
  List.map
    (fun (name, tag, make_net) ->
      let rng = Topology.Rng.create seed in
      let net = make_net rng in
      let reqs = Workload.Gen.sequence rng net ~count:requests in
      let curve stats =
        List.map
          (fun p -> (float_of_int p, float_of_int (Adm.admitted_after stats p)))
          prefixes
      in
      let series =
        List.map
          (fun algo ->
            let stats = Adm.run net algo reqs in
            { Exp_common.label = Adm.algorithm_to_string algo; points = curve stats })
          algos
      in
      {
        Exp_common.id = Printf.sprintf "fig9%c" tag;
        title = "admitted requests vs sequence length in " ^ name;
        xlabel = "requests";
        ylabel = "admitted";
        series;
        notes =
          [
            Printf.sprintf "%s, K = 1, prefix counts of one %d-request run" name
              requests;
          ];
      })
    nets
