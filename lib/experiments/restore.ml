module R = Nfv_multicast.Restore
module Batch = Nfv_multicast.Batch

(* Restoration policy sweep: dynamic churn under pluggable backlog
   selection.

   Re-runs Dynamic_churn's exact grid (GEANT/AS1755 × {ind, srlg} ×
   two loads × three failure rates) once per restoration policy. Every
   sweep uses Dynamic_churn.sweep_key, so Pool.point_seed hands matched
   points the same RNG: same network, same Poisson trace, same
   partition, same fault timeline — the policy column is the only
   treatment, so differences in the restored fraction are pure policy,
   not capacity. The first sweep is the default policy (smallest-first
   replay at heals only), byte-for-byte the dynamic_churn baseline.

   What the treatment should show: at heal time the returned capacity
   is scarce relative to the backlog, so who goes first matters — the
   knapsack densities favour restoring the most traffic (or the most
   traffic per unit price) while the deadline order spends the head of
   the pass on sessions that are about to expire. The +depart variant
   additionally fires the pass on every departure, so backlogs no
   longer starve on heal-free stretches of the timeline.

   On the canonical grid the heal time (horizon/4 after the strike) is
   an order of magnitude longer than the mean holding time (25), so a
   dropped session almost always departs before the capacity it needs
   comes back: heal-time backlogs hold only sessions whose own fault is
   still active, every policy restores the same (feasibility-determined)
   set, and the policy columns tie. That tie is itself a result — it is
   what makes the *stressed* GEANT cells the treatment: mean holding is
   raised to half the horizon and outages heal after horizon/8, so the
   sessions a cut drops are still live when it heals and the returned
   capacity is contended by the whole backlog. Those six extra points
   (GEANT x {ind, srlg} x three rates at the full offered load) ride
   after the 24 canonical ones, so the canonical indices — and with
   them the byte-identity of the default sweep against dynamic_churn —
   are untouched, while every policy still sees the same RNG at each
   stressed point. *)

let policies =
  [
    R.default;
    R.make ~policy:(R.Replay Batch.Arrival) ();
    R.make ~policy:(R.Replay Batch.Largest_first) ();
    R.make ~policy:(R.Replay Batch.Cheapest_first) ();
    R.make ~policy:(R.Knapsack R.Volume) ();
    R.make ~policy:(R.Knapsack R.Priced) ();
    R.make ~policy:R.Deadline ();
    R.make ~policy:(R.Knapsack R.Priced) ~trigger:R.Heal_or_depart ();
  ]

let metrics =
  [
    "accept"; "restored"; "restored_frac"; "attempted"; "failed";
    "pass_p50_ms"; "pass_p99_ms";
  ]

(* stressed-cell shape: holdings of half the horizon against outages
   healing after horizon/8, so drops outlive their fault (see the
   header comment). The rates deliberately equal the canonical ones so
   every figure row is dense — stressed series differ only in the
   dynamics, not the x grid. *)
let stressed_rates = Dynamic_churn.rates
let stressed_heal_div = 8.0
let stressed_holding_frac = 0.5

(* one grid point under one policy: Dynamic_churn's point with the
   restoration-pass ledger and latency appended. Probes are created
   before the run so the deltas cover exactly this point. *)
let run_point ?mean_holding ?heal_div ~policy ~make_net ~srlg ~load ~rate ~rng
    () =
  let attempted = Runner.counter_probe "restoration.attempted" in
  let failed = Runner.counter_probe "restoration.failed" in
  let pass = Runner.span_probe "restoration.pass" in
  let base =
    Dynamic_churn.run_point ~restore:policy ?mean_holding ?heal_div ~make_net
      ~srlg ~load ~rate ~rng ()
  in
  let pick m = List.assoc m base in
  [
    ("accept", pick "accept");
    ("restored", pick "restored");
    ("restored_frac", pick "restored_frac");
    ("attempted", float_of_int (Runner.counter_delta attempted));
    ("failed", float_of_int (Runner.counter_delta failed));
    ("pass_p50_ms", Runner.span_quantile_ms pass 0.5);
    ("pass_p99_ms", Runner.span_quantile_ms pass 0.99);
  ]

let instance ?(requests = Dynamic_churn.default_requests) () =
  let loads = Dynamic_churn.loads_of requests in
  let params = Dynamic_churn.grid requests in
  let n_canon = Array.length params in
  (* stressed cells: GEANT only, both failure models, full offered
     load, appended AFTER the canonical grid so indices 0..n_canon-1
     (and their Pool.point_seed draws) are exactly dynamic_churn's *)
  let stressed_load = List.fold_left max 1 loads in
  let stressed_params =
    Array.of_list
      (List.concat_map
         (fun (_, srlg) ->
           List.map (fun rate -> (srlg, rate)) stressed_rates)
         Dynamic_churn.models)
  in
  let stressed_index ~mi ~ri = n_canon + (mi * List.length stressed_rates) + ri in
  let geant_net =
    let _, _, make_net = List.hd Dynamic_churn.nets in
    make_net
  in
  (* one sweep per policy, all under the matched-RNG key *)
  let sweeps =
    List.map
      (fun policy ->
        {
          Spec.key = Dynamic_churn.sweep_key;
          points = n_canon + Array.length stressed_params;
          point =
            (fun ~rng i ->
              if i < n_canon then
                let make_net, srlg, load, rate = params.(i) in
                run_point ~policy ~make_net ~srlg ~load ~rate ~rng ()
              else
                let srlg, rate = stressed_params.(i - n_canon) in
                run_point
                  ~mean_holding:
                    (stressed_holding_frac *. float_of_int stressed_load)
                  ~heal_div:stressed_heal_div ~policy ~make_net:geant_net ~srlg
                  ~load:stressed_load ~rate ~rng ());
        })
      policies
  in
  let figures =
    List.concat_map
      (fun (ni, (name, tag, _)) ->
        List.map
          (fun (mi, (model, _)) ->
            {
              Spec.fid =
                Printf.sprintf "restore%c" (Char.chr (Char.code tag + mi));
              title =
                Printf.sprintf
                  "Restoration policy (%s failures): backlog selection at \
                   heal time on %s"
                  (if model = "srlg" then "SRLG" else "independent")
                  name;
              xlabel = "failure events per arrival";
              ylabel = "rate / count / latency (ms)";
              series =
                List.concat_map
                  (fun (pi, policy) ->
                    List.concat_map
                      (fun (li, load) ->
                        List.map
                          (fun m ->
                            {
                              Spec.label =
                                Printf.sprintf "%s@%s@%d" m
                                  (R.to_string policy) load;
                              cells =
                                List.mapi
                                  (fun ri rate ->
                                    {
                                      Spec.x = rate;
                                      sweep = pi;
                                      point =
                                        Dynamic_churn.point_index ~ni ~mi ~li
                                          ~ri;
                                      metric = m;
                                    })
                                  Dynamic_churn.rates;
                            })
                          metrics)
                      (List.mapi (fun li l -> (li, l)) loads)
                    @
                    (* stressed series live on the GEANT figures only *)
                    if ni <> 0 then []
                    else
                      List.map
                        (fun m ->
                          {
                            Spec.label =
                              Printf.sprintf "%s@%s@stressed" m
                                (R.to_string policy);
                            cells =
                              List.mapi
                                (fun ri rate ->
                                  {
                                    Spec.x = rate;
                                    sweep = pi;
                                    point = stressed_index ~mi ~ri;
                                    metric = m;
                                  })
                                stressed_rates;
                          })
                        metrics)
                  (List.mapi (fun pi p -> (pi, p)) policies);
              notes =
                [
                  Printf.sprintf
                    "%s, Online_CP, policies {%s}; matched RNG with \
                     dynamic_churn (same sweep key), so the \
                     replay-smallest-first rows are byte-identical to the \
                     dynch%c cells of the same metric; attempted = restored \
                     + failed per policy, latency columns p50/p99 of the \
                     restoration.pass histogram%s"
                    name
                    (String.concat ", " (List.map R.to_string policies))
                    (Char.chr (Char.code tag + mi))
                    (if ni = 0 then
                       Printf.sprintf
                         "; @stressed series: full offered load with mean \
                          holding %g x horizon and outages healing after \
                          horizon/%g, so drops outlive their fault and the \
                          heal-time pass is contended (rates %s)"
                         stressed_holding_frac stressed_heal_div
                         (String.concat ", "
                            (List.map string_of_float stressed_rates))
                     else "");
                ];
            })
          (List.mapi (fun mi m -> (mi, m)) Dynamic_churn.models))
      (List.mapi (fun ni n -> (ni, n)) Dynamic_churn.nets)
  in
  { Spec.sweeps; figures }

let spec =
  Spec.make ~id:"restore"
    ~doc:
      "Restoration policy sweep: dynamic churn re-run under pluggable \
       backlog selection (order replays, knapsack value-density, \
       deadline-aware, depart-triggered) on GEANT/AS1755, matched-RNG with \
       dynamic_churn, plus stressed GEANT cells where the heal-time pass \
       is contended"
    ~figure_ids:[ "restoreA"; "restoreB"; "restoreC"; "restoreD" ]
    ~default_requests:Dynamic_churn.default_requests
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
