(** Fig. 8: online algorithms [Online_CP] vs [SP] on GT-ITM-style
    networks of 50–250 switches — admitted requests (a) and running time
    (b) for a monitoring period of 300 requests.

    Paper shape: Online_CP admits clearly more than SP (the paper
    reports ≥ 2×), and admissions do not grow monotonically with network
    size because destination sets scale with |V|. Our default sequence
    length can be raised with [requests] to deepen contention. *)

val spec : Spec.t
(** The "(ms per request)" column is the mean of the per-request
    ["online_cp.admit"] / ["online_sp.admit"] span histograms over each
    algorithm's run — per-request instrumentation, not the batch
    wall-clock divided by the request count. *)

val run : ?seed:int -> ?requests:int -> ?sizes:int list -> unit -> Exp_common.figure list
