(** Fig. 8: online algorithms [Online_CP] vs [SP] on GT-ITM-style
    networks of 50–250 switches — admitted requests (a) and running time
    (b) for a monitoring period of 300 requests.

    Paper shape: Online_CP admits clearly more than SP (the paper
    reports ≥ 2×), and admissions do not grow monotonically with network
    size because destination sets scale with |V|. Our default sequence
    length can be raised with [requests] to deepen contention. *)

val run : ?seed:int -> ?requests:int -> ?sizes:int list -> unit -> Exp_common.figure list
