(** Restoration policy sweep: {!Dynamic_churn}'s grid re-run under
    pluggable backlog selection ({!Nfv_multicast.Restore}), one sweep
    per policy. All sweeps share {!Dynamic_churn.sweep_key}, so matched
    points across policies (and across this family and [dynamic_churn]
    itself) get identical per-point RNGs — identical networks, traces,
    partitions and fault timelines; the restored-fraction differences
    are pure policy, not capacity. The first sweep is the default
    policy (smallest-first replay at heals), byte-identical to the
    dynamic-churn baseline.

    On the canonical grid the mean holding time (25) is far below the
    outage length (horizon/4), so dropped sessions expire before their
    capacity returns and every policy restores the same set — the
    policy columns tie. Each sweep therefore also carries {e stressed}
    GEANT cells, appended after the canonical indices: full offered
    load, mean holding of half the horizon, outages healing after
    horizon/8, so the sessions a cut drops are still live at its heal
    and the returned capacity is contended. Those are the cells where
    the knapsack and deadline policies separate from the replays. *)

val policies : Nfv_multicast.Restore.t list
(** One sweep each: the default smallest-first replay first, then the
    other three order replays, knapsack by volume and by price,
    deadline-aware, and knapsack-priced with the depart trigger. *)

val metrics : string list
(** Tabulated per point: acceptance, restored count, restored fraction
    of drops, the restoration ledger ([attempted]/[failed] deltas, with
    attempted = restored + failed), and p50/p99 of the
    [restoration.pass] span histogram. *)

val spec : Spec.t
(** Registered as ["restore"]; figures [restoreA]/[restoreB] (GÉANT
    independent/SRLG) and [restoreC]/[restoreD] (AS1755
    independent/SRLG), mirroring [dynchA]–[dynchD]. X is the failure
    rate; series are [<metric>@<policy>@<load>], plus
    [<metric>@<policy>@stressed] on the GÉANT figures for the
    contended heal-time cells. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Convenience wrapper: run the spec's instance directly. *)
