(** Fig. 6: [Appro_Multi] vs [Alg_One_Server] in the real topologies
    GÉANT and AS1755 — operational cost (a, b) and running time (c, d)
    as [D_max/|V|] grows from 0.05 to 0.2, K = 3.

    Paper shape: Appro_Multi clearly cheaper (≈ 30 % lower cost in
    AS1755 at ratio 0.15), slightly slower. *)

val spec : Spec.t
(** Registered as ["fig6"]; figures [fig6a]/[fig6b] (cost) and
    [fig6c]/[fig6d] (running time from the solve span histograms). *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Defaults: seed 1, 100 requests averaged per point. *)
