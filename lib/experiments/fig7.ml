module A = Nfv_multicast.Appro_multi

(* The default sequence is long enough that sequential allocation prunes
   links/servers and the capacitated cost visibly exceeds the
   uncapacitated reference (at the paper's 1 000 requests the effect is
   stronger still; runtime scales linearly in [requests]). One pool
   point = one network size; the admission sweep inside a point is
   inherently sequential (each admit sees the residuals its
   predecessors left), so it stays inside the point. *)

let point ~requests ~n ~rng =
  let net = Exp_common.network rng ~n in
  let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.2 } in
  let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
  (* uncapacitated reference on a fresh network *)
  let cu = ref [] in
  List.iter
    (fun r ->
      match A.solve ~k:3 net r with
      | Ok res -> cu := res.A.cost :: !cu
      | Error _ -> ())
    reqs;
  (* capacitated, allocating as we go *)
  Sdn.Network.reset net;
  let pc = Runner.span_probe "appro_multi.admit" in
  let cc = ref [] and adm = ref 0 in
  List.iter
    (fun r ->
      match A.admit ~k:3 net r with
      | Ok res ->
        incr adm;
        cc := res.A.cost :: !cc
      | Error _ -> ())
    reqs;
  [
    ("cost_cap", Exp_common.mean !cc);
    ("cost_uncap", Exp_common.mean !cu);
    ("ms_cap", Runner.span_mean_ms pc);
    ("admitted_frac", float_of_int !adm /. float_of_int requests);
  ]

let instance ?(requests = 120) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let sizes_a = Array.of_list sizes in
  let sweep =
    {
      Spec.key = "fig7";
      points = Array.length sizes_a;
      point = (fun ~rng i -> point ~requests ~n:sizes_a.(i) ~rng);
    }
  in
  let row metric =
    List.mapi
      (fun i n -> { Spec.x = float_of_int n; sweep = 0; point = i; metric })
      sizes
  in
  let note =
    Printf.sprintf "Dmax/|V| = 0.2, K = 3, %d sequentially admitted requests"
      requests
  in
  let figures =
    [
      {
        Spec.fid = "fig7a";
        title = "Appro_Multi_Cap operational cost vs network size";
        xlabel = "|V|";
        ylabel = "mean cost";
        series =
          [
            { Spec.label = "Appro_Multi_Cap"; cells = row "cost_cap" };
            { Spec.label = "Appro_Multi (uncap)"; cells = row "cost_uncap" };
          ];
        notes = [ note ];
      };
      {
        Spec.fid = "fig7b";
        title = "Appro_Multi_Cap running time vs network size";
        xlabel = "|V|";
        ylabel = "ms per request";
        series =
          [
            { Spec.label = "Appro_Multi_Cap"; cells = row "ms_cap" };
            { Spec.label = "admitted fraction"; cells = row "admitted_frac" };
          ];
        notes = [ note ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"fig7"
    ~doc:"Fig. 7: Appro_Multi_Cap under capacity constraints"
    ~figure_ids:[ "fig7a"; "fig7b" ] ~default_requests:120
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests ?sizes () =
  Runner.figures ~seed (instance ?requests ?sizes ())
