module A = Nfv_multicast.Appro_multi

(* The default sequence is long enough that sequential allocation prunes
   links/servers and the capacitated cost visibly exceeds the
   uncapacitated reference (at the paper's 1 000 requests the effect is
   stronger still; runtime scales linearly in [requests]). One pool
   point = one network size; the admission sweep inside a point is
   inherently sequential (each admit sees the residuals its
   predecessors left), so it stays inside the point. *)

type point = {
  mean_cost_cap : float;
  mean_cost_uncap : float;
  mean_ms_cap : float;
  admitted_frac : float;
}

let run ?(seed = 1) ?(requests = 120) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let sizes_a = Array.of_list sizes in
  let points =
    Pool.map ~figure:"fig7" ~seed (Array.length sizes_a) (fun ~rng i ->
        let n = sizes_a.(i) in
        let net = Exp_common.network rng ~n in
        let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.2 } in
        let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
        (* uncapacitated reference on a fresh network *)
        let cu = ref [] in
        List.iter
          (fun r ->
            match A.solve ~k:3 net r with
            | Ok res -> cu := res.A.cost :: !cu
            | Error _ -> ())
          reqs;
        (* capacitated, allocating as we go *)
        Sdn.Network.reset net;
        let cc = ref [] and tc = ref [] and adm = ref 0 in
        List.iter
          (fun r ->
            let res, t = Exp_common.time_of (fun () -> A.admit ~k:3 net r) in
            match res with
            | Ok res ->
              incr adm;
              cc := res.A.cost :: !cc;
              tc := t :: !tc
            | Error _ -> ())
          reqs;
        {
          mean_cost_cap = Exp_common.mean !cc;
          mean_cost_uncap = Exp_common.mean !cu;
          mean_ms_cap = 1000.0 *. Exp_common.mean !tc;
          admitted_frac = float_of_int !adm /. float_of_int requests;
        })
  in
  let points = Array.of_list points in
  let row f =
    List.mapi (fun i n -> (float_of_int n, f points.(i))) sizes
  in
  let note =
    Printf.sprintf "Dmax/|V| = 0.2, K = 3, %d sequentially admitted requests"
      requests
  in
  [
    {
      Exp_common.id = "fig7a";
      title = "Appro_Multi_Cap operational cost vs network size";
      xlabel = "|V|";
      ylabel = "mean cost";
      series =
        [
          {
            Exp_common.label = "Appro_Multi_Cap";
            points = row (fun p -> p.mean_cost_cap);
          };
          {
            Exp_common.label = "Appro_Multi (uncap)";
            points = row (fun p -> p.mean_cost_uncap);
          };
        ];
      notes = [ note ];
    };
    {
      Exp_common.id = "fig7b";
      title = "Appro_Multi_Cap running time vs network size";
      xlabel = "|V|";
      ylabel = "ms per request";
      series =
        [
          {
            Exp_common.label = "Appro_Multi_Cap";
            points = row (fun p -> p.mean_ms_cap);
          };
          {
            Exp_common.label = "admitted fraction";
            points = row (fun p -> p.admitted_frac);
          };
        ];
      notes = [ note ];
    };
  ]
