(** Fig. 9: [Online_CP] vs [SP] in GÉANT (a) and AS1755 (b) — admitted
    requests as the sequence length grows from 50 to 300.

    Paper shape: both algorithms admit nearly everything up to ≈ 100
    requests; beyond that Online_CP pulls ahead and the gap widens.
    Because an online algorithm's first [n] decisions do not depend on
    later arrivals, a single 300-request run yields every prefix
    point. *)

val spec : Spec.t
(** Registered as ["fig9"]; figures [fig9a] (GÉANT) and [fig9b]
    (AS1755), admitted requests per prefix length. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Defaults: seed 1, 1 500-request sequences ([requests] sets the
    horizon; every prefix point comes from the same run). *)
