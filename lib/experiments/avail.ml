(* Availability sweep: dynamic churn under SRLG-exposure pricing.

   Re-runs Dynamic_churn's exact grid (GEANT/AS1755 × {ind, srlg} ×
   two loads × three failure rates) once per surcharge level alpha.
   Every sweep uses Dynamic_churn.sweep_key, so Pool.point_seed hands
   matched points the same RNG: same network, same Poisson trace, same
   partition, same fault timeline — the alpha column is the only
   treatment. In particular the alpha = 0 sweep is byte-for-byte the
   dynamic_churn baseline (run_point passes no ?srlg at all), which the
   CI avail-smoke job asserts against the committed reference CSVs.

   What the treatment should show: with alpha > 0, Online_CP's link
   weights carry an [alpha × exposure(group)] surcharge, steering trees
   away from heavily-committed shared-risk groups *before* any fault
   fires. Under correlated (srlg) cuts that spreads sessions across
   groups, so one group cut evicts fewer sessions and repair finds more
   spare capacity — survival rises — at the cost of longer (pricier)
   trees and therefore somewhat lower acceptance. Under independent
   cuts the groups are singletons and the surcharge degenerates to
   per-link load pricing, a much weaker signal: those figures are the
   matched ablation. *)

let alphas = [ 0.0; 1.0; 4.0 ]
let metrics = [ "accept"; "survival"; "restored_frac"; "p50_ms"; "p99_ms" ]

let instance ?(requests = Dynamic_churn.default_requests) () =
  let loads = Dynamic_churn.loads_of requests in
  let params = Dynamic_churn.grid requests in
  (* one sweep per alpha, all under the matched-RNG key *)
  let sweeps =
    List.map
      (fun alpha ->
        {
          Spec.key = Dynamic_churn.sweep_key;
          points = Array.length params;
          point =
            (fun ~rng i ->
              let make_net, srlg, load, rate = params.(i) in
              Dynamic_churn.run_point ~alpha ~make_net ~srlg ~load ~rate ~rng
                ());
        })
      alphas
  in
  let figures =
    List.concat_map
      (fun (ni, (name, tag, _)) ->
        List.map
          (fun (mi, (model, _)) ->
            {
              Spec.fid =
                Printf.sprintf "avail%c" (Char.chr (Char.code tag + mi));
              title =
                Printf.sprintf
                  "Availability-aware admission (%s failures): exposure \
                   surcharge alpha on %s"
                  (if model = "srlg" then "SRLG" else "independent")
                  name;
              xlabel = "failure events per arrival";
              ylabel = "rate / fraction / latency (ms)";
              series =
                List.concat_map
                  (fun (ai, alpha) ->
                    List.concat_map
                      (fun (li, load) ->
                        List.map
                          (fun m ->
                            {
                              Spec.label =
                                Printf.sprintf "%s@a%g@%d" m alpha load;
                              cells =
                                List.mapi
                                  (fun ri rate ->
                                    {
                                      Spec.x = rate;
                                      sweep = ai;
                                      point =
                                        Dynamic_churn.point_index ~ni ~mi ~li
                                          ~ri;
                                      metric = m;
                                    })
                                  Dynamic_churn.rates;
                            })
                          metrics)
                      (List.mapi (fun li l -> (li, l)) loads))
                  (List.mapi (fun ai a -> (ai, a)) alphas);
              notes =
                [
                  Printf.sprintf
                    "%s, Online_CP with avail pricing (alpha in {%s}, no \
                     reserve), %s; matched RNG with dynamic_churn (same \
                     sweep key), so alpha=0 rows are byte-identical to the \
                     dynch%c cells of the same metric"
                    name
                    (String.concat ", " (List.map (Printf.sprintf "%g") alphas))
                    (if model = "srlg" then
                       Printf.sprintf "correlated (<= %d SRLG groups) cuts"
                         Dynamic_churn.srlg_groups
                     else "independent single-link cuts")
                    (Char.chr (Char.code tag + mi));
                ];
            })
          (List.mapi (fun mi m -> (mi, m)) Dynamic_churn.models))
      (List.mapi (fun ni n -> (ni, n)) Dynamic_churn.nets)
  in
  { Spec.sweeps; figures }

let spec =
  Spec.make ~id:"avail"
    ~doc:
      "Availability sweep: dynamic churn re-run under SRLG-exposure \
       surcharges (alpha x failure rate x {independent, SRLG}) on \
       GEANT/AS1755, matched-RNG with dynamic_churn"
    ~figure_ids:[ "availA"; "availB"; "availC"; "availD" ]
    ~default_requests:Dynamic_churn.default_requests
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
