(** Extension experiment: delay-bounded admission. Requests carry an
    end-to-end latency deadline; trees violating it are rolled back and
    rejected. Sweeping deadline tightness exposes a tension the paper's
    cost model hides: load-aware routing takes detours, so under tight
    deadlines the min-hop SP baseline keeps more of its admissions. *)

val spec : Spec.t
(** Registered as ["delay"]. *)

val run : ?seed:int -> ?n:int -> ?requests:int -> unit -> Exp_common.figure list
(** [n] is the network size, [requests] the sequence length per
    deadline level. *)
