(** Stress sweep: Online_CP on the Rocketfuel-scale topologies (AS1755,
    AS4755) under increasing offered load, tabulating where the requests
    went — admitted, or rejected for which reason. The columns are read
    straight from the algorithm's own ["online_cp.admitted"] and
    ["online_cp.rejected.*"] counters (as deltas around each run), so the
    tables double as a check that the telemetry an operator would scrape
    matches the admission statistics. *)

val spec : Spec.t
(** Registered as ["stress"]; figures [stressA] (AS1755) and [stressB]
    (AS4755). [--requests] sets the largest load level; the sweep runs
    it and its three halvings. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Convenience wrapper: run the spec's instance directly. *)
