module Adm = Nfv_multicast.Admission
module Dyn = Nfv_multicast.Dynamic

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]
let offered_loads = [ 25.0; 50.0; 100.0; 200.0; 400.0 ]

(* One pool point = one offered load; the algorithms compare on that
   load's trace, so they run together inside the point. *)

let run ?(seed = 1) ?(n = 100) ?(arrivals = 2000) () =
  let loads_a = Array.of_list offered_loads in
  let points =
    Pool.map ~figure:"dyn" ~seed (Array.length loads_a) (fun ~rng i ->
        let load = loads_a.(i) in
        let net = Exp_common.network rng ~n in
        (* mean holding 100 time units; rate follows from the target load *)
        let trace =
          Dyn.poisson_trace rng net ~rate:(load /. 100.0) ~mean_holding:100.0
            ~count:arrivals
        in
        List.map (fun algo -> Dyn.run net algo trace) algos)
  in
  let points = Array.of_list points in
  let series f =
    List.mapi
      (fun ai algo ->
        {
          Exp_common.label = Adm.algorithm_to_string algo;
          points =
            List.mapi
              (fun li load -> (load, f (List.nth points.(li) ai)))
              offered_loads;
        })
      algos
  in
  let note =
    Printf.sprintf
      "n = %d, %d Poisson arrivals, exponential holding (mean 100); x = expected concurrent sessions"
      n arrivals
  in
  [
    {
      Exp_common.id = "dynA";
      title = "acceptance ratio vs offered load (with departures)";
      xlabel = "offered load";
      ylabel = "acceptance ratio";
      series = series (fun s -> s.Dyn.acceptance_ratio);
      notes = [ note ];
    };
    {
      Exp_common.id = "dynB";
      title = "time-averaged link utilisation vs offered load";
      xlabel = "offered load";
      ylabel = "mean utilisation";
      series = series (fun s -> s.Dyn.mean_utilization);
      notes = [ note ];
    };
  ]
