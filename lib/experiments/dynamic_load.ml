module Adm = Nfv_multicast.Admission
module Dyn = Nfv_multicast.Dynamic

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]
let offered_loads = [ 25.0; 50.0; 100.0; 200.0; 400.0 ]

let run ?(seed = 1) ?(n = 100) ?(arrivals = 2000) () =
  let acceptance = Hashtbl.create 4 and utilization = Hashtbl.create 4 in
  List.iter
    (fun a ->
      Hashtbl.replace acceptance a [];
      Hashtbl.replace utilization a [])
    algos;
  List.iter
    (fun load ->
      let rng = Topology.Rng.create seed in
      let net = Exp_common.network rng ~n in
      (* mean holding 100 time units; rate follows from the target load *)
      let trace =
        Dyn.poisson_trace rng net ~rate:(load /. 100.0) ~mean_holding:100.0
          ~count:arrivals
      in
      List.iter
        (fun algo ->
          let s = Dyn.run net algo trace in
          Hashtbl.replace acceptance algo
            ((load, s.Dyn.acceptance_ratio) :: Hashtbl.find acceptance algo);
          Hashtbl.replace utilization algo
            ((load, s.Dyn.mean_utilization) :: Hashtbl.find utilization algo))
        algos)
    offered_loads;
  let series tbl =
    List.map
      (fun algo ->
        {
          Exp_common.label = Adm.algorithm_to_string algo;
          points = List.rev (Hashtbl.find tbl algo);
        })
      algos
  in
  let note =
    Printf.sprintf
      "n = %d, %d Poisson arrivals, exponential holding (mean 100); x = expected concurrent sessions"
      n arrivals
  in
  [
    {
      Exp_common.id = "dynA";
      title = "acceptance ratio vs offered load (with departures)";
      xlabel = "offered load";
      ylabel = "acceptance ratio";
      series = series acceptance;
      notes = [ note ];
    };
    {
      Exp_common.id = "dynB";
      title = "time-averaged link utilisation vs offered load";
      xlabel = "offered load";
      ylabel = "mean utilisation";
      series = series utilization;
      notes = [ note ];
    };
  ]
