module Adm = Nfv_multicast.Admission
module Dyn = Nfv_multicast.Dynamic

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]
let offered_loads = [ 25.0; 50.0; 100.0; 200.0; 400.0 ]

(* One pool point = one offered load; the algorithms compare on that
   load's trace, so they run together inside the point. *)

let instance ?(n = 100) ?(arrivals = 2000) () =
  let loads_a = Array.of_list offered_loads in
  let sweep =
    {
      Spec.key = "dyn";
      points = Array.length loads_a;
      point =
        (fun ~rng i ->
          let load = loads_a.(i) in
          let net = Exp_common.network rng ~n in
          (* mean holding 100 time units; rate follows from the target load *)
          let trace =
            Dyn.poisson_trace rng net ~rate:(load /. 100.0)
              ~mean_holding:100.0 ~count:arrivals
          in
          List.concat_map
            (fun algo ->
              let s = Dyn.run net algo trace in
              let name = Adm.algorithm_to_string algo in
              [
                ("accept_" ^ name, s.Dyn.acceptance_ratio);
                ("util_" ^ name, s.Dyn.mean_utilization);
              ])
            algos);
    }
  in
  let series prefix =
    List.map
      (fun algo ->
        let name = Adm.algorithm_to_string algo in
        {
          Spec.label = name;
          cells =
            List.mapi
              (fun li load ->
                { Spec.x = load; sweep = 0; point = li; metric = prefix ^ name })
              offered_loads;
        })
      algos
  in
  let note =
    Printf.sprintf
      "n = %d, %d Poisson arrivals, exponential holding (mean 100); x = expected concurrent sessions"
      n arrivals
  in
  let figures =
    [
      {
        Spec.fid = "dynA";
        title = "acceptance ratio vs offered load (with departures)";
        xlabel = "offered load";
        ylabel = "acceptance ratio";
        series = series "accept_";
        notes = [ note ];
      };
      {
        Spec.fid = "dynB";
        title = "time-averaged link utilisation vs offered load";
        xlabel = "offered load";
        ylabel = "mean utilisation";
        series = series "util_";
        notes = [ note ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"dynamic"
    ~doc:"Extension: acceptance under request departures vs offered load"
    ~figure_ids:[ "dynA"; "dynB" ] ~default_requests:2000
    (fun ~seed:_ ~requests -> instance ?arrivals:requests ())

let run ?(seed = 1) ?n ?arrivals () =
  Runner.figures ~seed (instance ?n ?arrivals ())
