(** Ablations for the design choices DESIGN.md calls out.

    A1 — cost model: Algorithm 2's structure run with the exponential
    weights (paper) vs load-oblivious linear weights vs SP, on a long
    arrival sequence; shows the exponential model's balancing is what
    sustains admissions (§V-A's motivation).

    A2 — number of servers per chain: [Appro_Multi] with K ∈ {1, 2, 3};
    shows the cost reduction from multi-server placement and its
    running-time price (the [2K] ratio trade-off). *)

val cost_model : ?seed:int -> ?requests:int -> ?n:int -> unit -> Exp_common.figure
(** Admissions after every 200 arrivals; default n = 100, 2 000 requests. *)

val k_sweep : ?seed:int -> ?requests:int -> ?sizes:int list -> unit -> Exp_common.figure list
(** Cost and running time vs network size for K = 1, 2, 3. *)

val placement_strategies :
  ?seed:int -> ?requests:int -> ?sizes:int list -> unit -> Exp_common.figure
(** Joint placement+routing (Appro_Multi) vs the tree-first in-line
    derivation of §III-B vs the §VI-A baseline. *)

val two_cluster : ?seed:int -> ?arm:int -> unit -> Exp_common.figure
(** The instance family where multi-server placement provably wins: a
    source between two destination clusters with a server at each; K = 2
    beats K = 1 once bandwidth exceeds the chain-cost crossover. *)

val online_k : ?seed:int -> ?requests:int -> ?n:int -> unit -> Exp_common.figure
(** Admissions of the exponential-price online variant for K ∈ {1,2,3}
    against SP — the K > 1 online setting the paper leaves open. *)

val spec : Spec.t
(** All ablations as one registered family (["ablation"]): figures
    [ablA1], [ablA2cost], [ablA2time], [ablA2cluster], [ablA3],
    [ablA4]. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** All ablations. When [requests] is given it overrides every
    sub-experiment's own default request count (used by the fast test
    configurations); otherwise each keeps its default. *)
