(* Fixed-domain fan-out for figure data points. See pool.mli for the
   determinism contract; the scheduling here is deliberately dumb — one
   shared atomic index, workers claim the next point until none are
   left — because points are coarse (each builds a network and solves
   tens to thousands of requests) and result order is fixed by the
   results array, not by completion order. *)

module Obs = Nfv_obs.Obs

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* 0 = auto; written once by the CLI before any figure runs *)
let jobs_setting = ref 1

let set_jobs n =
  if n < 0 then invalid_arg "Pool.set_jobs: negative job count";
  jobs_setting := n

let get_jobs () = if !jobs_setting = 0 then default_jobs () else !jobs_setting

(* ---- deterministic per-point seeds ---- *)

(* the SplitMix64 finaliser, same constants as Topology.Rng *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let golden_gamma = 0x9E3779B97F4A7C15L

let point_seed ~figure ~index ~seed =
  let h = fnv1a64 figure in
  let h = mix64 (Int64.add h (Int64.mul (Int64.of_int seed) golden_gamma)) in
  let h = mix64 (Int64.add h (Int64.mul (Int64.of_int index) golden_gamma)) in
  (* drop to 62 bits so the value is non-negative on OCaml's native int
     (63-bit); shifting by only 1 can still wrap negative *)
  Int64.to_int (Int64.shift_right_logical h 2)

(* ---- the map itself ---- *)

let map ?jobs ~figure ~seed n f =
  let run i =
    f ~rng:(Topology.Rng.create (point_seed ~figure ~index:i ~seed)) i
  in
  let j = min (match jobs with Some j when j > 0 -> j | Some _ | None -> get_jobs ()) n in
  if j <= 1 || not (Domain.is_main_domain ()) then List.init n run
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (run i);
          loop ()
        end
      in
      loop ();
      Obs.Sharding.take ()
    in
    let domains = List.init j (fun _ -> Domain.spawn worker) in
    (* join every worker before re-raising anything: leaked domains
       would keep claiming points, and successful workers' telemetry
       should survive a sibling's failure *)
    let outcomes =
      List.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains
    in
    List.iter
      (function Ok shard -> Obs.Sharding.merge shard | Error _ -> ())
      outcomes;
    List.iter (function Error e -> raise e | Ok _ -> ()) outcomes;
    List.init n (fun i ->
        match results.(i) with Some v -> v | None -> assert false)
  end
