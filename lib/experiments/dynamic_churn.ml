module Adm = Nfv_multicast.Admission
module Dyn = Nfv_multicast.Dynamic
module Fault = Sdn.Fault

(* Failure-aware dynamic churn on the paper's two real topologies.

   One pool point = one (topology, failure model, offered load, failure
   rate): drive [load] Poisson arrivals with exponential holding times
   through Dynamic.run while a seeded time-stamped Fault timeline fires
   inside the same event queue. Every eviction goes through Repair's
   tier ladder; every heal triggers a proactive restoration pass over
   the dropped backlog (Batch.Smallest_first order). The failure model
   is either independent single-link cuts or SRLG group cuts over the
   same generator — srlg_timeline with singleton groups IS the matched
   independent baseline, so the two rows differ only in correlation. *)

let nets =
  [
    ("GEANT", 'A', fun rng -> Exp_common.geant_network rng);
    ("AS1755", 'C', fun rng -> Exp_common.as1755_network rng);
  ]

let models = [ ("ind", false); ("srlg", true) ]
let rates = [ 0.05; 0.1; 0.2 ]
let default_requests = 400
let mean_holding = 25.0
let mean_holding_default = mean_holding
let srlg_groups = 8

(* two load levels per (topology, model): --requests and its half, so
   smoke runs scale the whole sweep down *)
let loads_of requests = List.map (fun d -> max 1 (requests / d)) [ 2; 1 ]

let tiers =
  [
    ("patched", "repair.patched");
    ("migrated", "repair.migrated");
    ("readmitted", "repair.readmitted");
    ("dropped", "repair.dropped");
  ]

let metrics =
  [ "accept"; "survival" ]
  @ List.map fst tiers
  @ [ "restored"; "restored_frac"; "p50_ms"; "p99_ms" ]

let run_point ?(alpha = 0.0) ?(reserve = 0.0) ?restore ?mean_holding
    ?(heal_div = 4.0) ~make_net ~srlg ~load ~rate ~rng () =
  let mean_holding = Option.value ~default:mean_holding_default mean_holding in
  let net = make_net rng in
  let trace = Dyn.poisson_trace rng net ~rate:1.0 ~mean_holding ~count:load in
  let horizon =
    List.fold_left (fun acc (a : Dyn.arrival) -> Float.max acc a.Dyn.at) 1.0
      trace
  in
  let groups =
    if srlg then Fault.srlg_partition ~groups:srlg_groups ~rng net
    else Array.init (Sdn.Network.m net) (fun e -> [ e ])
  in
  let events = int_of_float (Float.round (rate *. float_of_int load)) in
  let timeline =
    Fault.srlg_timeline ~heal_after:(horizon /. heal_div) ~rng ~horizon ~events
      groups
  in
  (* availability-aware pricing over the *same* partition the timeline
     cuts (for "ind", the matched singleton groups). Building the avail
     consumes no randomness, and [alpha = 0] with no reserve passes
     [None], so the baseline point is bit-for-bit the pre-avail run. *)
  let avail =
    if alpha > 0.0 || reserve > 0.0 then
      Some (Nfv_multicast.Online_cp.make_avail ~alpha ~reserve net groups)
    else None
  in
  let tier_probes =
    List.map (fun (name, counter) -> (name, Runner.counter_probe counter)) tiers
  in
  let latency = Runner.span_probe "repair.attempt" in
  (* [restore] swaps the restoration policy of the pass; [None] keeps
     make_faults' default (the historical smallest-first heal-only
     pass), so baseline points are bit-for-bit the pre-policy run *)
  let faults =
    match restore with
    | None -> Dyn.make_faults timeline
    | Some policy -> Dyn.make_faults ~restore:(Some policy) timeline
  in
  let s = Dyn.run ?srlg:avail ~faults net Adm.Online_cp trace in
  let tier_counts =
    List.map (fun (name, p) -> (name, Runner.counter_delta p)) tier_probes
  in
  let survival =
    if s.Dyn.evicted = 0 then 1.0
    else float_of_int s.Dyn.repaired /. float_of_int s.Dyn.evicted
  in
  let restored_frac =
    if s.Dyn.dropped = 0 then 1.0
    else float_of_int s.Dyn.restored /. float_of_int s.Dyn.dropped
  in
  [
    ("accept", s.Dyn.acceptance_ratio);
    ("survival", survival);
  ]
  @ List.map (fun (n, c) -> (n, float_of_int c)) tier_counts
  @ [
      ("restored", float_of_int s.Dyn.restored);
      ("restored_frac", restored_frac);
      ("p50_ms", Runner.span_quantile_ms latency 0.5);
      ("p99_ms", Runner.span_quantile_ms latency 0.99);
    ]

let sweep_key = "dynamic_churn"

(* The canonical point grid: nets × models × loads × rates, in exactly
   this nesting order. [Avail] re-runs the same grid under non-zero
   alphas through sweeps sharing [sweep_key], so Pool.point_seed hands
   each matched point the same RNG — same network, trace, partition and
   timeline — and only the pricing differs. *)
let grid requests =
  let loads = loads_of requests in
  Array.of_list
    (List.concat_map
       (fun (_, _, make_net) ->
         List.concat_map
           (fun (_, srlg) ->
             List.concat_map
               (fun load ->
                 List.map (fun rate -> (make_net, srlg, load, rate)) rates)
               loads)
           models)
       nets)

let point_index ~ni ~mi ~li ~ri =
  let n_rates = List.length rates in
  let per_model = 2 (* loads *) * n_rates in
  let per_net = List.length models * per_model in
  (ni * per_net) + (mi * per_model) + (li * n_rates) + ri

let instance ?(requests = default_requests) () =
  let loads = loads_of requests in
  let params = grid requests in
  let sweep =
    {
      Spec.key = sweep_key;
      points = Array.length params;
      point =
        (fun ~rng i ->
          let make_net, srlg, load, rate = params.(i) in
          run_point ~make_net ~srlg ~load ~rate ~rng ());
    }
  in
  let figures =
    List.concat_map
      (fun (ni, (name, tag, _)) ->
        List.map
          (fun (mi, (model, _)) ->
            {
              Spec.fid =
                Printf.sprintf "dynch%c" (Char.chr (Char.code tag + mi));
              title =
                Printf.sprintf
                  "Dynamic churn (%s failures): survival, restoration and \
                   repair tiers in %s"
                  (if model = "srlg" then "SRLG" else "independent")
                  name;
              xlabel = "failure events per arrival";
              ylabel = "rate / repairs / latency (ms)";
              series =
                List.concat_map
                  (fun (li, load) ->
                    List.map
                      (fun m ->
                        {
                          Spec.label = Printf.sprintf "%s@%d" m load;
                          cells =
                            List.mapi
                              (fun ri rate ->
                                {
                                  Spec.x = rate;
                                  sweep = 0;
                                  point = point_index ~ni ~mi ~li ~ri;
                                  metric = m;
                                })
                              rates;
                        })
                      metrics)
                  (List.mapi (fun li l -> (li, l)) loads);
              notes =
                [
                  Printf.sprintf
                    "%s, Online_CP, Poisson arrivals (rate 1, mean holding \
                     %g), %s link cuts healing horizon/4 later; restoration \
                     order smallest-first; tier columns are repair.* \
                     counter deltas, latency columns p50/p99 of the \
                     repair.attempt histogram"
                    name mean_holding
                    (if model = "srlg" then
                       Printf.sprintf "correlated (<= %d SRLG groups)"
                         srlg_groups
                     else "independent single-");
                ];
            })
          (List.mapi (fun mi m -> (mi, m)) models))
      (List.mapi (fun ni n -> (ni, n)) nets)
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"dynamic_churn"
    ~doc:
      "Failure-aware dynamic churn: Poisson arrivals/departures with \
       time-stamped faults, tiered repair and heal-triggered restoration, \
       independent vs SRLG, on GEANT/AS1755"
    ~figure_ids:[ "dynchA"; "dynchB"; "dynchC"; "dynchD" ]
    ~default_requests
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
