module Adm = Nfv_multicast.Admission

(* Load-sweep stress telemetry on the Rocketfuel-scale topologies.

   One pool point = one (topology, load level): a fresh network admits
   [load] online requests with Online_CP and the point reports where the
   rejections went, read as deltas of the algorithm's own
   ["online_cp.rejected.*"] reason counters (plus ["online_cp.admitted"])
   rather than by re-deriving outcomes — the tables are exactly the
   telemetry an operator would scrape. *)

let nets =
  [
    ("AS1755", 'A', fun rng -> Exp_common.as1755_network rng);
    ("AS4755", 'B', fun rng -> Exp_common.as4755_network rng);
  ]

let reasons =
  [
    ("admitted", "online_cp.admitted");
    ("no_feasible_server", "online_cp.rejected.no_feasible_server");
    ("unreachable", "online_cp.rejected.unreachable");
    ("server_unreachable", "online_cp.rejected.server_unreachable");
    ("over_threshold", "online_cp.rejected.over_threshold");
    ("unallocatable", "online_cp.rejected.unallocatable");
  ]

let default_requests = 4000

(* the four load levels are the horizon and its halvings, so --requests
   scales the whole sweep down for smoke runs *)
let loads_of requests =
  List.map (fun d -> max 1 (requests / d)) [ 8; 4; 2; 1 ]

let metric name load = Printf.sprintf "%s@%d" name load

let instance ?(requests = default_requests) () =
  let loads = loads_of requests in
  let loads_a = Array.of_list loads in
  let per_net = Array.length loads_a in
  let params =
    Array.of_list
      (List.concat_map
         (fun (_, _, make_net) -> List.map (fun l -> (make_net, l)) loads)
         nets)
  in
  let sweep =
    {
      Spec.key = "stress";
      points = Array.length params;
      point =
        (fun ~rng i ->
          let make_net, load = params.(i) in
          let net = make_net rng in
          let reqs = Workload.Gen.sequence rng net ~count:load in
          let probes =
            List.map
              (fun (name, counter) -> (name, Runner.counter_probe counter))
              reasons
          in
          ignore (Adm.run net Adm.Online_cp reqs);
          List.map
            (fun (name, p) ->
              (metric name load, float_of_int (Runner.counter_delta p)))
            probes);
    }
  in
  let figures =
    List.mapi
      (fun ni (name, tag, _) ->
        {
          Spec.fid = Printf.sprintf "stress%c" tag;
          title = "Online_CP outcome breakdown under load in " ^ name;
          xlabel = "offered requests";
          ylabel = "requests";
          series =
            List.map
              (fun (rname, _) ->
                {
                  Spec.label = rname;
                  cells =
                    List.mapi
                      (fun li load ->
                        {
                          Spec.x = float_of_int load;
                          sweep = 0;
                          point = (ni * per_net) + li;
                          metric = metric rname load;
                        })
                      loads;
                })
              reasons;
          notes =
            [
              Printf.sprintf
                "%s, K = 1; columns are deltas of the online_cp.admitted / \
                 online_cp.rejected.* counters over one admission run"
                name;
            ];
        })
      nets
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"stress"
    ~doc:"Stress: Online_CP rejection-reason telemetry vs load on Rocketfuel topologies"
    ~figure_ids:[ "stressA"; "stressB" ] ~default_requests
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
