(** Fig. 7: [Appro_Multi_Cap] under resource capacity constraints —
    operational cost (a) and running time (b) vs network size at
    [D_max/|V| = 0.2], requests admitted sequentially so residuals
    shrink. The uncapacitated [Appro_Multi] cost on the same request
    stream is included as the comparison the paper draws with Fig. 5(c).

    Paper shape: the capacitated cost is higher, because pruning shrinks
    the set of server combinations the algorithm can exploit. *)

val spec : Spec.t
(** Timing reads the ["appro_multi.admit"] span histogram — every
    admit attempt, rejected ones included. *)

val run : ?seed:int -> ?requests:int -> ?sizes:int list -> unit -> Exp_common.figure list
(** Defaults: seed 1, 120 sequentially admitted requests per point,
    sizes [[50; 100; 150; 200; 250]]. *)
