(** Declarative experiment specifications.

    An experiment of the evaluation section is a {e value}: a set of
    {!sweep}s (parameter grids whose points are computed independently,
    each from its own deterministic RNG) and a set of {!figure_def}s
    that say which point's metric supplies each (x, y) of each output
    series. {!Runner} owns everything around that value — {!Pool}
    fan-out with per-point seeds, telemetry capture, histogram-sourced
    timing, figure assembly, CSV/snapshot output — so an experiment
    module contains only its science: the per-point function and the
    declared shape of its outputs.

    The registry ({!Registry}) holds one {!t} per experiment family;
    the bench harness and the CLI both enumerate it instead of
    hard-coding figure lists. *)

type point_result = (string * float) list
(** Named metrics one grid point computes. Names are free-form and
    local to the spec; a metric may be [nan] when the point has no
    value for it (rendered as [nan], as the legacy modules did). *)

type sweep = {
  key : string;
      (** [Pool.point_seed] figure key. Kept equal to the pre-spec
          harness keys (["fig5"], ["ablA1"], …) so every per-point RNG
          stream — and with it every non-timing figure value — is
          byte-identical to the historical modules. *)
  points : int;  (** grid size; point indices are [0 .. points - 1] *)
  point : rng:Topology.Rng.t -> int -> point_result;
      (** The per-point function. It must derive all randomness from
          [rng] (or re-derive a shared seed via {!Pool.point_seed}, for
          grids whose points race on one common input) and keep its
          mutable state local — the {!Pool} determinism contract. *)
}

type cell = {
  x : float;  (** x value this cell contributes *)
  sweep : int;  (** index into {!instance.sweeps} *)
  point : int;  (** point index within that sweep *)
  metric : string;  (** which of the point's metrics supplies y *)
}

type series_def = { label : string; cells : cell list }

type figure_def = {
  fid : string;  (** e.g. ["fig5a"] *)
  title : string;
  xlabel : string;
  ylabel : string;
  notes : string list;
  series : series_def list;
}

type instance = {
  sweeps : sweep list;
  figures : figure_def list;
}
(** A fully parameterised experiment: every default (request count,
    sizes, loads) already resolved. *)

type t = {
  id : string;
      (** registry key; also the bench [--figure] name and the CLI
          subcommand *)
  doc : string;  (** one-line description, shown by the CLI *)
  figure_ids : string list;
      (** ids of the figures the instance emits, in emission order —
          static, so tooling can enumerate outputs without running *)
  default_requests : int option;
      (** what an absent [--requests] means, [None] when the family has
          no request-count knob (informational) *)
  instance : seed:int -> requests:int option -> instance;
      (** [seed] is also what the runner hands {!Pool.map}; it is passed
          here so point functions that race several algorithms on one
          shared input can re-derive that input's seed (the
          [Pool.point_seed ~index:0] idiom) or, for designed instances,
          use the raw seed directly. *)
}

val make :
  id:string ->
  doc:string ->
  figure_ids:string list ->
  ?default_requests:int ->
  (seed:int -> requests:int option -> instance) ->
  t

val concat_instances : instance list -> instance
(** Combine sub-experiments into one instance: sweeps are concatenated
    in order and every figure's cell [sweep] indices are shifted past
    the sweeps declared before it. *)

val assemble : instance -> point_result array array -> Exp_common.figure list
(** [assemble inst results] materialises the declared figures from the
    computed grid ([results.(s).(p)] is sweep [s]'s point [p]). Raises
    [Invalid_argument] when a cell references a sweep, point or metric
    the grid does not have — a malformed spec, caught loudly. *)
