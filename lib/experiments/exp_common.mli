(** Shared infrastructure for reproducing the paper's figures: network
    construction matching §VI-A, figure/series data structures, and a
    plain-text table renderer used by the bench harness and the CLI. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), in x order *)
}

type figure = {
  id : string;          (** e.g. "fig5a" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;  (** deviations, parameters, expectations *)
}

val render : Format.formatter -> figure -> unit
(** Aligned table: one row per x value, one column per series. *)

val render_all : Format.formatter -> figure list -> unit

val to_csv : figure -> string
(** RFC-4180-style CSV: header [x,label1,label2,…], one row per x value,
    empty cells for missing points; the title and notes as ["# "]
    comment lines. *)

val ensure_dir : string -> unit
(** Create a directory and any missing parents ([mkdir -p]). *)

val write_csv : dir:string -> figure -> string
(** Write [to_csv] into [dir/<figure id>.csv] (creating [dir] and any
    missing parents if needed) and return the path. *)

val gtitm_like : Topology.Rng.t -> n:int -> Topology.Topo.t
(** A GT-ITM-style random topology of [n] switches with a size-independent
    average degree (≈ 4–6): Waxman with [alpha = 20/n]. *)

val network : Topology.Rng.t -> n:int -> Sdn.Network.t
(** [gtitm_like] plus resources and 10 % random servers (§VI-A). *)

val geant_network : Topology.Rng.t -> Sdn.Network.t
(** GÉANT with its nine paper-specified server locations. *)

val as1755_network : Topology.Rng.t -> Sdn.Network.t
(** The AS1755 stand-in with 10 % random servers. *)

val as4755_network : Topology.Rng.t -> Sdn.Network.t

val clock : (unit -> float) ref
[@@ocaml.deprecated
  "Exp_common.clock is an alias of Nfv_obs.Obs.clock; set that instead."]
(** The process time source. This is {e the same ref} as
    [Nfv_obs.Obs.clock] — there is one clock for experiments and
    telemetry — kept only for source compatibility. *)

val time_of : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds per [Nfv_obs.Obs.clock] (default
    [Sys.time], process CPU time). Under [--jobs N] the default clock
    charges a region with CPU burnt by sibling domains too, so treat
    parallel-run wall-clock totals as upper bounds — or install the
    fake clock for determinism checks. *)

val install_fake_clock : unit -> unit
(** Replace [Nfv_obs.Obs.clock] (the one process clock, also read by
    {!time_of}) with a deterministic per-domain tick counter (one tick
    of 2{^-13} s ≈ 0.12 ms per read, domain-local state; the dyadic
    tick keeps clock differences — and histogram sums of them — exact
    in floating point). The ticks a measured region consumes then
    depend only on the code it runs, never on scheduling, which is what
    makes figure timing columns byte-identical across [--jobs]
    settings. Process global and irreversible; meant for the
    determinism tests and [bench --fake-clock]. *)

val mean : float list -> float
(** 0 on the empty list. *)
