(** Extension experiment: per-switch forwarding-table capacity. Sweeps
    the TCAM budget and reports how many of a long request sequence each
    online algorithm can install — bandwidth and computing are generous
    here, so the rule budget is the binding resource (the node-capacity
    regime of Huang et al. [10]). *)

val spec : Spec.t
(** Registered as ["tables"]. *)

val run : ?seed:int -> ?n:int -> ?requests:int -> unit -> Exp_common.figure list
(** [n] is the network size, [requests] the sequence length per TCAM
    budget level. *)
