module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server

let ratios = [ (0.05, 'a', 'd'); (0.1, 'b', 'e'); (0.2, 'c', 'f') ]

(* one data point = one (destination ratio, network size) pair; the
   point derives everything — topology, servers, requests — from the
   rng the pool hands it, so points are independent and the pool can
   run them on any domain in any order *)
type point = {
  mean_cost_appro : float;
  mean_cost_one : float;
  mean_ms_appro : float;
  mean_ms_one : float;
}

let run ?(seed = 1) ?(requests = 30) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let params =
    Array.of_list
      (List.concat_map
         (fun (ratio, _, _) -> List.map (fun n -> (ratio, n)) sizes)
         ratios)
  in
  let points =
    Pool.map ~figure:"fig5" ~seed (Array.length params) (fun ~rng i ->
        let ratio, n = params.(i) in
        let net = Exp_common.network rng ~n in
        let spec = { Workload.Gen.default_spec with dmax_ratio = Some ratio } in
        let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
        let ca = ref [] and co = ref [] and ta = ref [] and to_ = ref [] in
        List.iter
          (fun r ->
            let res_a, t_a = Exp_common.time_of (fun () -> A.solve ~k:3 net r) in
            let res_o, t_o = Exp_common.time_of (fun () -> O.solve net r) in
            (match res_a with
            | Ok res ->
              ca := res.A.cost :: !ca;
              ta := t_a :: !ta
            | Error _ -> ());
            match res_o with
            | Ok res ->
              co := res.O.cost :: !co;
              to_ := t_o :: !to_
            | Error _ -> ())
          reqs;
        {
          mean_cost_appro = Exp_common.mean !ca;
          mean_cost_one = Exp_common.mean !co;
          mean_ms_appro = 1000.0 *. Exp_common.mean !ta;
          mean_ms_one = 1000.0 *. Exp_common.mean !to_;
        })
  in
  let points = Array.of_list points in
  let per_size = List.length sizes in
  let figures =
    List.concat
      (List.mapi
         (fun ri (ratio, cost_tag, time_tag) ->
           let row f =
             List.mapi
               (fun si n -> (float_of_int n, f points.((ri * per_size) + si)))
               sizes
           in
           let mk id title ylabel s1 s2 =
             {
               Exp_common.id;
               title;
               xlabel = "|V|";
               ylabel;
               series =
                 [
                   { Exp_common.label = "Appro_Multi"; points = s1 };
                   { Exp_common.label = "Alg_One_Server"; points = s2 };
                 ];
               notes =
                 [
                   Printf.sprintf
                     "Dmax/|V| = %.2f, K = 3, %d requests averaged per point"
                     ratio requests;
                 ];
             }
           in
           [
             mk
               (Printf.sprintf "fig5%c" cost_tag)
               "operational cost vs network size" "mean cost"
               (row (fun p -> p.mean_cost_appro))
               (row (fun p -> p.mean_cost_one));
             mk
               (Printf.sprintf "fig5%c" time_tag)
               "running time vs network size" "ms per request"
               (row (fun p -> p.mean_ms_appro))
               (row (fun p -> p.mean_ms_one));
           ])
         ratios)
  in
  List.sort (fun a b -> compare a.Exp_common.id b.Exp_common.id) figures
