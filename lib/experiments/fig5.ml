module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server

let ratios = [ (0.05, 'a', 'd'); (0.1, 'b', 'e'); (0.2, 'c', 'f') ]
let default_sizes = [ 50; 100; 150; 200; 250 ]

(* one data point = one (destination ratio, network size) pair; the
   point derives everything — topology, servers, requests — from the
   rng the pool hands it, so points are independent and the pool can
   run them on any domain in any order *)
let point ~requests ~ratio ~n ~rng =
  let net = Exp_common.network rng ~n in
  let spec = { Workload.Gen.default_spec with dmax_ratio = Some ratio } in
  let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
  let pa = Runner.span_probe "appro_multi.solve" in
  let po = Runner.span_probe "one_server.solve" in
  let ca = ref [] and co = ref [] in
  List.iter
    (fun r ->
      (match A.solve ~k:3 net r with
      | Ok res -> ca := res.A.cost :: !ca
      | Error _ -> ());
      match O.solve net r with
      | Ok res -> co := res.O.cost :: !co
      | Error _ -> ())
    reqs;
  [
    ("cost_appro", Exp_common.mean !ca);
    ("cost_one", Exp_common.mean !co);
    ("ms_appro", Runner.span_mean_ms pa);
    ("ms_one", Runner.span_mean_ms po);
  ]

let instance ?(requests = 30) ?(sizes = default_sizes) () =
  let params =
    Array.of_list
      (List.concat_map
         (fun (ratio, _, _) -> List.map (fun n -> (ratio, n)) sizes)
         ratios)
  in
  let sweep =
    {
      Spec.key = "fig5";
      points = Array.length params;
      point =
        (fun ~rng i ->
          let ratio, n = params.(i) in
          point ~requests ~ratio ~n ~rng);
    }
  in
  let per_size = List.length sizes in
  let figures =
    List.concat
      (List.mapi
         (fun ri (ratio, cost_tag, time_tag) ->
           let row metric =
             List.mapi
               (fun si n ->
                 {
                   Spec.x = float_of_int n;
                   sweep = 0;
                   point = (ri * per_size) + si;
                   metric;
                 })
               sizes
           in
           let mk fid title ylabel m1 m2 =
             {
               Spec.fid;
               title;
               xlabel = "|V|";
               ylabel;
               series =
                 [
                   { Spec.label = "Appro_Multi"; cells = row m1 };
                   { Spec.label = "Alg_One_Server"; cells = row m2 };
                 ];
               notes =
                 [
                   Printf.sprintf
                     "Dmax/|V| = %.2f, K = 3, %d requests averaged per point"
                     ratio requests;
                 ];
             }
           in
           [
             mk
               (Printf.sprintf "fig5%c" cost_tag)
               "operational cost vs network size" "mean cost" "cost_appro"
               "cost_one";
             mk
               (Printf.sprintf "fig5%c" time_tag)
               "running time vs network size" "ms per request" "ms_appro"
               "ms_one";
           ])
         ratios)
  in
  let figures =
    List.sort (fun a b -> compare a.Spec.fid b.Spec.fid) figures
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"fig5"
    ~doc:"Fig. 5: Appro_Multi vs Alg_One_Server on random networks"
    ~figure_ids:[ "fig5a"; "fig5b"; "fig5c"; "fig5d"; "fig5e"; "fig5f" ]
    ~default_requests:30
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests ?sizes () =
  Runner.figures ~seed (instance ?requests ?sizes ())
