module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server

let ratios = [ (0.05, 'a', 'd'); (0.1, 'b', 'e'); (0.2, 'c', 'f') ]

let run ?(seed = 1) ?(requests = 30) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let figures = ref [] in
  List.iter
    (fun (ratio, cost_tag, time_tag) ->
      let cost_appro = ref [] and cost_one = ref [] in
      let time_appro = ref [] and time_one = ref [] in
      List.iter
        (fun n ->
          let rng = Topology.Rng.create (seed + n) in
          let net = Exp_common.network rng ~n in
          let spec =
            { Workload.Gen.default_spec with dmax_ratio = Some ratio }
          in
          let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
          let ca = ref [] and co = ref [] and ta = ref [] and to_ = ref [] in
          List.iter
            (fun r ->
              let res_a, t_a = Exp_common.time_of (fun () -> A.solve ~k:3 net r) in
              let res_o, t_o = Exp_common.time_of (fun () -> O.solve net r) in
              (match res_a with
              | Ok res ->
                ca := res.A.cost :: !ca;
                ta := t_a :: !ta
              | Error _ -> ());
              match res_o with
              | Ok res ->
                co := res.O.cost :: !co;
                to_ := t_o :: !to_
              | Error _ -> ())
            reqs;
          let x = float_of_int n in
          cost_appro := (x, Exp_common.mean !ca) :: !cost_appro;
          cost_one := (x, Exp_common.mean !co) :: !cost_one;
          time_appro := (x, 1000.0 *. Exp_common.mean !ta) :: !time_appro;
          time_one := (x, 1000.0 *. Exp_common.mean !to_) :: !time_one)
        sizes;
      let mk id title ylabel s1 s2 =
        {
          Exp_common.id;
          title;
          xlabel = "|V|";
          ylabel;
          series =
            [
              { Exp_common.label = "Appro_Multi"; points = List.rev s1 };
              { Exp_common.label = "Alg_One_Server"; points = List.rev s2 };
            ];
          notes =
            [
              Printf.sprintf "Dmax/|V| = %.2f, K = 3, %d requests averaged per point"
                ratio requests;
            ];
        }
      in
      figures :=
        mk
          (Printf.sprintf "fig5%c" time_tag)
          "running time vs network size" "ms per request" !time_appro !time_one
        :: mk
             (Printf.sprintf "fig5%c" cost_tag)
             "operational cost vs network size" "mean cost" !cost_appro !cost_one
        :: !figures)
    ratios;
  List.sort (fun a b -> compare a.Exp_common.id b.Exp_common.id) !figures
