(** Fig. 5: [Appro_Multi] vs [Alg_One_Server] on GT-ITM-style random
    networks of 50–250 switches — operational cost (a–c) and running
    time (d–f), one subfigure per destination ratio
    [D_max/|V| ∈ {0.05, 0.1, 0.2}], K = 3, uncapacitated.

    Paper shape: Appro_Multi's cost ≈ 70–85 % of Alg_One_Server's, gap
    widening with network size; Appro_Multi slightly slower. *)

val spec : Spec.t
(** The registered experiment. Timing columns read the
    ["appro_multi.solve"] / ["one_server.solve"] span histograms. *)

val run : ?seed:int -> ?requests:int -> ?sizes:int list -> unit -> Exp_common.figure list
(** Defaults: seed 1, 30 requests averaged per data point (the paper
    averages 1 000 — raise [requests] to match), sizes
    [[50; 100; 150; 200; 250]]. *)
