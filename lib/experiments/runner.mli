(** The one experiment runner: everything around a {!Spec} value.

    [run] resolves a spec's parameters, fans its sweeps' points across
    the {!Pool} (telemetry recording forced on for the duration, since
    the timing columns are read from the [Nfv_obs] span histograms),
    assembles the declared figures, and optionally writes a
    self-contained [Obs.Export.to_json] snapshot next to the family's
    outputs so performance regressions are diffable per scenario. *)

val run :
  ?seed:int ->
  ?requests:int ->
  ?obs_out:string ->
  Spec.t ->
  Exp_common.figure list
(** Run a registered spec. With [obs_out:DIR], every instrument is
    zeroed before the sweeps and a snapshot of exactly this family's
    telemetry is written to [DIR/<id>.obs.json] after them (round-trips
    through [Obs.Export.of_json]). Zeroing makes the snapshot
    self-contained, at the price of resetting whatever a surrounding
    [--stats] accumulation had collected so far. *)

val figures : ?seed:int -> Spec.instance -> Exp_common.figure list
(** Run an already-parameterised instance (the experiment modules'
    [run ?sizes ?n …] compatibility wrappers build custom instances and
    come through here). Recording is forced on while the sweeps run and
    restored afterwards. *)

val obs_json_path : dir:string -> string -> string
(** [obs_json_path ~dir id] — where {!run} puts the snapshot for
    [id]: [dir/<id>.obs.json]. *)

(** {1 Probes}

    Delta readers over the process instruments, for per-point metric
    capture inside sweep point functions. A probe pins the calling
    domain's current view (worker shard or global registry) at creation;
    the readers report what accumulated since, so attribution is exact
    under any [--jobs] setting. *)

type span_probe

val span_probe : string -> span_probe
(** Probe the span histogram of that name (e.g.
    ["appro_multi.solve"]) — the same instrument [--stats] reports. *)

val span_count : span_probe -> int
(** Observations recorded since the probe was created. *)

val span_mean_ms : span_probe -> float
(** Mean milliseconds per observation recorded since the probe was
    created; [0.] when none were. This is the source of every
    "(ms per request)" figure column: per-request span durations from
    the instrumentation layer, not wall-clock division. Under the fake
    clock the value is an exact multiple of the tick (dyadic sums), so
    timing columns stay byte-identical across [--jobs] settings. *)

val span_quantile_ms : span_probe -> float -> float
(** [span_quantile_ms p q] (with [0 ≤ q ≤ 1]) is the q-quantile, in
    milliseconds, of the observations recorded since the probe was
    created, at the histogram's bucket resolution — the upper bound of
    the first bucket at which the cumulative delta count reaches
    [q × total], mirroring [Obs.Histogram.quantile] on the delta, with
    the proviso that an empty bucket never carries the quantile: at
    [q = 0] the answer is the first {e non-empty} bucket's bound, not
    [bounds.(0)]. [0.] when nothing was recorded (any [q]); with a
    single observation every [q] reports that observation's bucket
    bound; [infinity] when the quantile lands in the overflow bucket
    (legitimately rendered as [inf] in CSV). Source of the churn
    tables' p50/p99 repair-latency columns. *)

type counter_probe

val counter_probe : string -> counter_probe
(** Probe a counter by name (e.g. ["online_cp.rejected.over_threshold"]). *)

val counter_delta : counter_probe -> int
(** Increments recorded since the probe was created. *)
