module B = Nfv_multicast.Batch

let orders = B.[ Arrival; Smallest_first; Largest_first; Cheapest_first ]

let run ?(seed = 1) ?(n = 80) ?(sizes = [ 100; 200; 400; 800 ]) () =
  let admitted = Hashtbl.create 4 in
  List.iter (fun o -> Hashtbl.replace admitted o []) orders;
  List.iter
    (fun batch ->
      let rng = Topology.Rng.create seed in
      let net = Exp_common.network rng ~n in
      let reqs = Workload.Gen.sequence rng net ~count:batch in
      List.iter
        (fun o ->
          let r = B.plan ~k:2 net reqs o in
          Hashtbl.replace admitted o
            ((float_of_int batch, float_of_int r.B.admitted)
            :: Hashtbl.find admitted o))
        orders)
    sizes;
  [
    {
      Exp_common.id = "batchA";
      title = "batch admission: requests packed per ordering policy";
      xlabel = "batch size";
      ylabel = "admitted";
      series =
        List.map
          (fun o ->
            {
              Exp_common.label = B.order_to_string o;
              points = List.rev (Hashtbl.find admitted o);
            })
          orders;
      notes =
        [ Printf.sprintf "n = %d, K = 2, Appro_Multi_Cap greedy admission" n ];
    };
  ]
