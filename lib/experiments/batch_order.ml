module B = Nfv_multicast.Batch

let orders = B.[ Arrival; Smallest_first; Largest_first; Cheapest_first ]

(* One pool point = one batch size; the ordering policies pack the same
   batch, so they run together inside the point. *)

let instance ?(n = 80) ?(sizes = [ 100; 200; 400; 800 ]) () =
  let sizes_a = Array.of_list sizes in
  let sweep =
    {
      Spec.key = "batch";
      points = Array.length sizes_a;
      point =
        (fun ~rng i ->
          let batch = sizes_a.(i) in
          let net = Exp_common.network rng ~n in
          let reqs = Workload.Gen.sequence rng net ~count:batch in
          List.map
            (fun o ->
              ( "adm_" ^ B.order_to_string o,
                float_of_int (B.plan ~k:2 net reqs o).B.admitted ))
            orders);
    }
  in
  let figures =
    [
      {
        Spec.fid = "batchA";
        title = "batch admission: requests packed per ordering policy";
        xlabel = "batch size";
        ylabel = "admitted";
        series =
          List.map
            (fun o ->
              let name = B.order_to_string o in
              {
                Spec.label = name;
                cells =
                  List.mapi
                    (fun si batch ->
                      {
                        Spec.x = float_of_int batch;
                        sweep = 0;
                        point = si;
                        metric = "adm_" ^ name;
                      })
                    sizes;
              })
            orders;
        notes =
          [ Printf.sprintf "n = %d, K = 2, Appro_Multi_Cap greedy admission" n ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"batch"
    ~doc:"Extension: offline batch admission order comparison"
    ~figure_ids:[ "batchA" ]
    (fun ~seed:_ ~requests:_ -> instance ())

let run ?(seed = 1) ?n ?sizes () = Runner.figures ~seed (instance ?n ?sizes ())
