module B = Nfv_multicast.Batch

let orders = B.[ Arrival; Smallest_first; Largest_first; Cheapest_first ]

(* One pool point = one batch size; the ordering policies pack the same
   batch, so they run together inside the point. *)

let run ?(seed = 1) ?(n = 80) ?(sizes = [ 100; 200; 400; 800 ]) () =
  let sizes_a = Array.of_list sizes in
  let points =
    Pool.map ~figure:"batch" ~seed (Array.length sizes_a) (fun ~rng i ->
        let batch = sizes_a.(i) in
        let net = Exp_common.network rng ~n in
        let reqs = Workload.Gen.sequence rng net ~count:batch in
        List.map (fun o -> (B.plan ~k:2 net reqs o).B.admitted) orders)
  in
  let points = Array.of_list points in
  [
    {
      Exp_common.id = "batchA";
      title = "batch admission: requests packed per ordering policy";
      xlabel = "batch size";
      ylabel = "admitted";
      series =
        List.mapi
          (fun oi o ->
            {
              Exp_common.label = B.order_to_string o;
              points =
                List.mapi
                  (fun si batch ->
                    (float_of_int batch,
                     float_of_int (List.nth points.(si) oi)))
                  sizes;
            })
          orders;
      notes =
        [ Printf.sprintf "n = %d, K = 2, Appro_Multi_Cap greedy admission" n ];
    };
  ]
