module Obs = Nfv_obs.Obs

(* ---- histogram / counter probes ----

   A probe captures an instrument's per-domain view at creation; the
   read-out is the delta accumulated since. Inside a Pool worker the
   view is the domain's unmerged shard and in the main domain it is the
   global registry, so the delta is correct under any --jobs setting.
   Under the fake clock every span duration is an exact multiple of the
   dyadic tick and histogram sums accumulate those multiples exactly,
   which is what keeps histogram-sourced timing columns byte-identical
   across jobs settings. *)

type span_probe = { h : Obs.Histogram.t; c0 : int; s0 : float }

let span_probe name =
  let h = Obs.Histogram.make name in
  { h; c0 = Obs.Histogram.count h; s0 = Obs.Histogram.sum h }

let span_count p = Obs.Histogram.count p.h - p.c0

let span_mean_ms p =
  let dc = span_count p in
  if dc = 0 then 0.0
  else 1000.0 *. (Obs.Histogram.sum p.h -. p.s0) /. float_of_int dc

type counter_probe = { c : Obs.Counter.t; v0 : int }

let counter_probe name =
  let c = Obs.Counter.make name in
  { c; v0 = Obs.Counter.value c }

let counter_delta p = Obs.Counter.value p.c - p.v0

(* ---- running an instance ---- *)

(* Recording must be on while the sweeps run — the "(ms per request)"
   columns are read from the span histograms, the stress tables from the
   rejection counters — whether or not the caller asked for --stats.
   The previous switch state is restored afterwards so a plain figure
   run leaves the process as it found it. *)
let with_recording f =
  let was = !Obs.enabled in
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := was) f

let run_sweeps ~seed (inst : Spec.instance) =
  with_recording @@ fun () ->
  Array.of_list
    (List.map
       (fun (s : Spec.sweep) ->
         Array.of_list (Pool.map ~figure:s.key ~seed s.points s.point))
       inst.sweeps)

let figures ?(seed = 1) inst =
  Spec.assemble inst (run_sweeps ~seed inst)

let obs_json_path ~dir id = Filename.concat dir (id ^ ".obs.json")

let write_obs_snapshot ~dir id =
  Exp_common.ensure_dir dir;
  let path = obs_json_path ~dir id in
  let oc = open_out path in
  output_string oc (Obs.Export.(to_json (snapshot ())));
  output_char oc '\n';
  close_out oc;
  path

let run ?(seed = 1) ?requests ?obs_out (spec : Spec.t) =
  let inst = spec.Spec.instance ~seed ~requests in
  match obs_out with
  | None -> figures ~seed inst
  | Some dir ->
    (* self-contained per-scenario snapshot: zero every instrument
       first, so the JSON next to this family's CSVs holds exactly this
       family's telemetry and two runs diff cleanly *)
    Obs.reset_all ();
    let figs = figures ~seed inst in
    ignore (write_obs_snapshot ~dir spec.Spec.id);
    figs
