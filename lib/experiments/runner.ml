module Obs = Nfv_obs.Obs

(* ---- histogram / counter probes ----

   A probe captures an instrument's per-domain view at creation; the
   read-out is the delta accumulated since. Inside a Pool worker the
   view is the domain's unmerged shard and in the main domain it is the
   global registry, so the delta is correct under any --jobs setting.
   Under the fake clock every span duration is an exact multiple of the
   dyadic tick and histogram sums accumulate those multiples exactly,
   which is what keeps histogram-sourced timing columns byte-identical
   across jobs settings. *)

type span_probe = {
  h : Obs.Histogram.t;
  c0 : int;
  s0 : float;
  b0 : int array;  (* per-bucket counts at creation, for delta quantiles *)
}

let span_probe name =
  let h = Obs.Histogram.make name in
  {
    h;
    c0 = Obs.Histogram.count h;
    s0 = Obs.Histogram.sum h;
    b0 = Obs.Histogram.buckets h;
  }

let span_count p = Obs.Histogram.count p.h - p.c0

let span_mean_ms p =
  let dc = span_count p in
  if dc = 0 then 0.0
  else 1000.0 *. (Obs.Histogram.sum p.h -. p.s0) /. float_of_int dc

(* Obs.Histogram.quantile over the *delta* buckets: the upper bound of
   the first bucket at which the cumulative delta reaches q * total
   (infinity when it only lands in the overflow bucket, 0 when nothing
   was recorded) — the same upper-estimate semantics the histogram's own
   quantile has, but restricted to what happened after the probe *)
let span_quantile_ms p q =
  if q < 0.0 || q > 1.0 then invalid_arg "Runner.span_quantile_ms";
  let now = Obs.Histogram.buckets p.h in
  let delta = Array.mapi (fun i c -> c - p.b0.(i)) now in
  let total = Array.fold_left ( + ) 0 delta in
  if total = 0 then 0.0
  else begin
    let bounds = Obs.Histogram.bounds p.h in
    let target = q *. float_of_int total in
    let cum = ref 0 in
    let result = ref infinity in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           (* [!cum > 0]: with q = 0 the target is 0 and a bare [>=]
              would fire on the first bucket even when it is empty,
              reporting a bound no observation ever fell under; the
              minimum quantile is the first *non-empty* bucket *)
           if !cum > 0 && float_of_int !cum >= target then begin
             result :=
               (if i < Array.length bounds then 1000.0 *. bounds.(i)
                else infinity);
             raise Exit
           end)
         delta
     with Exit -> ());
    !result
  end

type counter_probe = { c : Obs.Counter.t; v0 : int }

let counter_probe name =
  let c = Obs.Counter.make name in
  { c; v0 = Obs.Counter.value c }

let counter_delta p = Obs.Counter.value p.c - p.v0

(* ---- running an instance ---- *)

(* Recording must be on while the sweeps run — the "(ms per request)"
   columns are read from the span histograms, the stress tables from the
   rejection counters — whether or not the caller asked for --stats.
   The previous switch state is restored afterwards so a plain figure
   run leaves the process as it found it. *)
let with_recording f =
  let was = !Obs.enabled in
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := was) f

let run_sweeps ~seed (inst : Spec.instance) =
  with_recording @@ fun () ->
  Array.of_list
    (List.map
       (fun (s : Spec.sweep) ->
         Array.of_list (Pool.map ~figure:s.key ~seed s.points s.point))
       inst.sweeps)

let figures ?(seed = 1) inst =
  Spec.assemble inst (run_sweeps ~seed inst)

let obs_json_path ~dir id = Filename.concat dir (id ^ ".obs.json")

let write_obs_snapshot ~dir id =
  Exp_common.ensure_dir dir;
  let path = obs_json_path ~dir id in
  let oc = open_out path in
  output_string oc (Obs.Export.(to_json (snapshot ())));
  output_char oc '\n';
  close_out oc;
  path

let run ?(seed = 1) ?requests ?obs_out (spec : Spec.t) =
  let inst = spec.Spec.instance ~seed ~requests in
  match obs_out with
  | None -> figures ~seed inst
  | Some dir ->
    (* self-contained per-scenario snapshot: zero every instrument
       first, so the JSON next to this family's CSVs holds exactly this
       family's telemetry and two runs diff cleanly *)
    Obs.reset_all ();
    let figs = figures ~seed inst in
    ignore (write_obs_snapshot ~dir spec.Spec.id);
    figs
