module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server

let ratios = [ 0.05; 0.1; 0.15; 0.2 ]

let run ?(seed = 1) ?(requests = 100) () =
  let nets =
    [
      ("GEANT", 'a', 'c', fun rng -> Exp_common.geant_network rng);
      ("AS1755", 'b', 'd', fun rng -> Exp_common.as1755_network rng);
    ]
  in
  List.concat_map
    (fun (name, cost_tag, time_tag, make_net) ->
      let cost_appro = ref [] and cost_one = ref [] in
      let time_appro = ref [] and time_one = ref [] in
      List.iter
        (fun ratio ->
          let rng = Topology.Rng.create seed in
          let net = make_net rng in
          let spec = { Workload.Gen.default_spec with dmax_ratio = Some ratio } in
          let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
          let ca = ref [] and co = ref [] and ta = ref [] and to_ = ref [] in
          List.iter
            (fun r ->
              let res_a, t_a = Exp_common.time_of (fun () -> A.solve ~k:3 net r) in
              let res_o, t_o = Exp_common.time_of (fun () -> O.solve net r) in
              (match res_a with
              | Ok res ->
                ca := res.A.cost :: !ca;
                ta := t_a :: !ta
              | Error _ -> ());
              match res_o with
              | Ok res ->
                co := res.O.cost :: !co;
                to_ := t_o :: !to_
              | Error _ -> ())
            reqs;
          cost_appro := (ratio, Exp_common.mean !ca) :: !cost_appro;
          cost_one := (ratio, Exp_common.mean !co) :: !cost_one;
          time_appro := (ratio, 1000.0 *. Exp_common.mean !ta) :: !time_appro;
          time_one := (ratio, 1000.0 *. Exp_common.mean !to_) :: !time_one)
        ratios;
      let mk id title ylabel s1 s2 =
        {
          Exp_common.id;
          title;
          xlabel = "Dmax/|V|";
          ylabel;
          series =
            [
              { Exp_common.label = "Appro_Multi"; points = List.rev s1 };
              { Exp_common.label = "Alg_One_Server"; points = List.rev s2 };
            ];
          notes =
            [ Printf.sprintf "%s, K = 3, %d requests averaged per point" name requests ];
        }
      in
      [
        mk
          (Printf.sprintf "fig6%c" cost_tag)
          ("operational cost in " ^ name)
          "mean cost" !cost_appro !cost_one;
        mk
          (Printf.sprintf "fig6%c" time_tag)
          ("running time in " ^ name)
          "ms per request" !time_appro !time_one;
      ])
    nets
