module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server

let ratios = [ 0.05; 0.1; 0.15; 0.2 ]

type point = {
  mean_cost_appro : float;
  mean_cost_one : float;
  mean_ms_appro : float;
  mean_ms_one : float;
}

let nets =
  [
    ("GEANT", 'a', 'c', fun rng -> Exp_common.geant_network rng);
    ("AS1755", 'b', 'd', fun rng -> Exp_common.as1755_network rng);
  ]

let run ?(seed = 1) ?(requests = 100) () =
  let params =
    Array.of_list
      (List.concat_map
         (fun (_, _, _, make_net) -> List.map (fun r -> (make_net, r)) ratios)
         nets)
  in
  let points =
    Pool.map ~figure:"fig6" ~seed (Array.length params) (fun ~rng i ->
        let make_net, ratio = params.(i) in
        let net = make_net rng in
        let spec = { Workload.Gen.default_spec with dmax_ratio = Some ratio } in
        let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
        let ca = ref [] and co = ref [] and ta = ref [] and to_ = ref [] in
        List.iter
          (fun r ->
            let res_a, t_a = Exp_common.time_of (fun () -> A.solve ~k:3 net r) in
            let res_o, t_o = Exp_common.time_of (fun () -> O.solve net r) in
            (match res_a with
            | Ok res ->
              ca := res.A.cost :: !ca;
              ta := t_a :: !ta
            | Error _ -> ());
            match res_o with
            | Ok res ->
              co := res.O.cost :: !co;
              to_ := t_o :: !to_
            | Error _ -> ())
          reqs;
        {
          mean_cost_appro = Exp_common.mean !ca;
          mean_cost_one = Exp_common.mean !co;
          mean_ms_appro = 1000.0 *. Exp_common.mean !ta;
          mean_ms_one = 1000.0 *. Exp_common.mean !to_;
        })
  in
  let points = Array.of_list points in
  let per_net = List.length ratios in
  List.concat
    (List.mapi
       (fun ni (name, cost_tag, time_tag, _) ->
         let row f =
           List.mapi (fun ri r -> (r, f points.((ni * per_net) + ri))) ratios
         in
         let mk id title ylabel s1 s2 =
           {
             Exp_common.id;
             title;
             xlabel = "Dmax/|V|";
             ylabel;
             series =
               [
                 { Exp_common.label = "Appro_Multi"; points = s1 };
                 { Exp_common.label = "Alg_One_Server"; points = s2 };
               ];
             notes =
               [
                 Printf.sprintf "%s, K = 3, %d requests averaged per point" name
                   requests;
               ];
           }
         in
         [
           mk
             (Printf.sprintf "fig6%c" cost_tag)
             ("operational cost in " ^ name)
             "mean cost"
             (row (fun p -> p.mean_cost_appro))
             (row (fun p -> p.mean_cost_one));
           mk
             (Printf.sprintf "fig6%c" time_tag)
             ("running time in " ^ name)
             "ms per request"
             (row (fun p -> p.mean_ms_appro))
             (row (fun p -> p.mean_ms_one));
         ])
       nets)
