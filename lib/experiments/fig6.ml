module A = Nfv_multicast.Appro_multi
module O = Nfv_multicast.One_server

let ratios = [ 0.05; 0.1; 0.15; 0.2 ]

let nets =
  [
    ("GEANT", 'a', 'c', fun rng -> Exp_common.geant_network rng);
    ("AS1755", 'b', 'd', fun rng -> Exp_common.as1755_network rng);
  ]

(* one data point = one (topology, destination ratio) pair *)
let point ~requests ~make_net ~ratio ~rng =
  let net = make_net rng in
  let spec = { Workload.Gen.default_spec with dmax_ratio = Some ratio } in
  let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
  let pa = Runner.span_probe "appro_multi.solve" in
  let po = Runner.span_probe "one_server.solve" in
  let ca = ref [] and co = ref [] in
  List.iter
    (fun r ->
      (match A.solve ~k:3 net r with
      | Ok res -> ca := res.A.cost :: !ca
      | Error _ -> ());
      match O.solve net r with
      | Ok res -> co := res.O.cost :: !co
      | Error _ -> ())
    reqs;
  [
    ("cost_appro", Exp_common.mean !ca);
    ("cost_one", Exp_common.mean !co);
    ("ms_appro", Runner.span_mean_ms pa);
    ("ms_one", Runner.span_mean_ms po);
  ]

let instance ?(requests = 100) () =
  let params =
    Array.of_list
      (List.concat_map
         (fun (_, _, _, make_net) -> List.map (fun r -> (make_net, r)) ratios)
         nets)
  in
  let sweep =
    {
      Spec.key = "fig6";
      points = Array.length params;
      point =
        (fun ~rng i ->
          let make_net, ratio = params.(i) in
          point ~requests ~make_net ~ratio ~rng);
    }
  in
  let per_net = List.length ratios in
  let figures =
    List.concat
      (List.mapi
         (fun ni (name, cost_tag, time_tag, _) ->
           let row metric =
             List.mapi
               (fun ri r ->
                 { Spec.x = r; sweep = 0; point = (ni * per_net) + ri; metric })
               ratios
           in
           let mk fid title ylabel m1 m2 =
             {
               Spec.fid;
               title;
               xlabel = "Dmax/|V|";
               ylabel;
               series =
                 [
                   { Spec.label = "Appro_Multi"; cells = row m1 };
                   { Spec.label = "Alg_One_Server"; cells = row m2 };
                 ];
               notes =
                 [
                   Printf.sprintf "%s, K = 3, %d requests averaged per point"
                     name requests;
                 ];
             }
           in
           [
             mk
               (Printf.sprintf "fig6%c" cost_tag)
               ("operational cost in " ^ name)
               "mean cost" "cost_appro" "cost_one";
             mk
               (Printf.sprintf "fig6%c" time_tag)
               ("running time in " ^ name)
               "ms per request" "ms_appro" "ms_one";
           ])
         nets)
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"fig6"
    ~doc:"Fig. 6: Appro_Multi vs Alg_One_Server in GEANT and AS1755"
    ~figure_ids:[ "fig6a"; "fig6c"; "fig6b"; "fig6d" ]
    ~default_requests:100
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ?requests ())
