(** Fixed-domain parallel map for the figure harness.

    Every figure of the evaluation section is embarrassingly parallel
    per data point, and every data point derives all of its randomness
    from one [Topology.Rng.t]. [Pool.map] fans the points of a figure
    out across a fixed set of worker domains (no work stealing: one
    shared atomic index, claimed in order) and returns the results in
    point order.

    {b Determinism contract.} Each point's generator is seeded with
    {!point_seed}[ ~figure ~index ~seed] — a pure function of the figure
    id, the point index and the user's [--seed] — regardless of how many
    domains run or which domain claims the point. A point function that
    derives everything from its [rng] argument (and keeps its mutable
    state local) therefore produces byte-identical figure tables and
    CSVs under [--jobs 1] and [--jobs N]. Telemetry recorded by worker
    domains lands in per-domain [Nfv_obs] shards that [map] merges back
    (in spawn order) after joining the workers, so [--stats] keeps
    working under [--jobs N]. *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core
    for the coordinating main domain. *)

val set_jobs : int -> unit
(** Set the process-wide worker count used when {!map} is called without
    [?jobs]: [0] means auto ({!default_jobs}), [1] the sequential
    in-main-domain path, [n > 1] that many worker domains. Raises
    [Invalid_argument] on negative values. The library starts at [1]
    (sequential) so programmatic users opt in explicitly; the CLIs call
    this once at startup from [--jobs], whose flag default is [0]
    (auto). *)

val get_jobs : unit -> int
(** The resolved process-wide worker count ([0] already mapped to
    {!default_jobs}). *)

val point_seed : figure:string -> index:int -> seed:int -> int
(** The deterministic per-point RNG seed: a SplitMix-style mix of an
    FNV-1a hash of [figure] with [seed] and [index]. Non-negative, and
    independent of jobs/scheduling by construction. Exposed so figures
    with several points sharing one input (e.g. four algorithms racing
    on the same network) can derive the shared input's seed
    explicitly. *)

val map :
  ?jobs:int ->
  figure:string ->
  seed:int ->
  int ->
  (rng:Topology.Rng.t -> int -> 'a) ->
  'a list
(** [map ~figure ~seed n f] computes
    [f ~rng:(Rng.create (point_seed ~figure ~index:i ~seed)) i] for
    [i = 0 .. n-1] and returns the results in index order.

    With an effective job count of 1 (or [n <= 1], or when already
    inside a worker domain) everything runs inline in the calling
    domain — exactly the historical sequential path. Otherwise
    [min jobs n] domains are spawned; each claims indices from a shared
    atomic counter, runs [f], and finally hands its [Nfv_obs] shard
    back to be merged. [f] must confine its effects to state reachable
    from its own arguments (networks built from [rng], local
    accumulators); the figure modules obey this. If a point raises, the
    first exception (in domain spawn order) is re-raised after all
    workers have been joined and their telemetry merged. *)
