module Adm = Nfv_multicast.Admission
module Delay = Nfv_multicast.Delay

let algos = [ Adm.Online_cp_no_threshold; Adm.Sp ]
let deadlines = [ 6.0; 10.0; 15.0; 25.0; 50.0 ]

(* One pool point = one deadline bound; both algorithms admit the same
   request sequence (network reset in between), so they stay inside the
   point. *)

let run ?(seed = 1) ?(n = 100) ?(requests = 400) () =
  let deadlines_a = Array.of_list deadlines in
  let points =
    Pool.map ~figure:"delay" ~seed (Array.length deadlines_a) (fun ~rng i ->
        let bound = deadlines_a.(i) in
        let net = Exp_common.network rng ~n in
        let spec =
          { Workload.Gen.default_spec with deadline = Some (bound, bound) }
        in
        let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
        List.map
          (fun algo ->
            Sdn.Network.reset net;
            List.fold_left
              (fun k r ->
                match Delay.admit net algo r with Ok _ -> k + 1 | Error _ -> k)
              0 reqs)
          algos)
  in
  let points = Array.of_list points in
  [
    {
      Exp_common.id = "delayA";
      title = "delay-bounded admission: acceptance vs deadline";
      xlabel = "deadline (ms)";
      ylabel = "acceptance ratio";
      series =
        List.mapi
          (fun ai a ->
            {
              Exp_common.label = Adm.algorithm_to_string a;
              points =
                List.mapi
                  (fun di bound ->
                    ( bound,
                      float_of_int (List.nth points.(di) ai)
                      /. float_of_int requests ))
                  deadlines;
            })
          algos;
      notes =
        [
          Printf.sprintf
            "n = %d, %d requests; link delay U[0.5, 2] ms, NF processing 0.1–1 ms"
            n requests;
        ];
    };
  ]
