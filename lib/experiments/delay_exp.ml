module Adm = Nfv_multicast.Admission
module Delay = Nfv_multicast.Delay

let algos = [ Adm.Online_cp_no_threshold; Adm.Sp ]
let deadlines = [ 6.0; 10.0; 15.0; 25.0; 50.0 ]

let run ?(seed = 1) ?(n = 100) ?(requests = 400) () =
  let acc = Hashtbl.create 4 in
  List.iter (fun a -> Hashtbl.replace acc a []) algos;
  List.iter
    (fun bound ->
      let rng = Topology.Rng.create seed in
      let net = Exp_common.network rng ~n in
      let spec =
        { Workload.Gen.default_spec with deadline = Some (bound, bound) }
      in
      let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
      List.iter
        (fun algo ->
          Sdn.Network.reset net;
          let admitted =
            List.fold_left
              (fun k r ->
                match Delay.admit net algo r with Ok _ -> k + 1 | Error _ -> k)
              0 reqs
          in
          Hashtbl.replace acc algo
            ((bound, float_of_int admitted /. float_of_int requests)
            :: Hashtbl.find acc algo))
        algos)
    deadlines;
  [
    {
      Exp_common.id = "delayA";
      title = "delay-bounded admission: acceptance vs deadline";
      xlabel = "deadline (ms)";
      ylabel = "acceptance ratio";
      series =
        List.map
          (fun a ->
            {
              Exp_common.label = Adm.algorithm_to_string a;
              points = List.rev (Hashtbl.find acc a);
            })
          algos;
      notes =
        [
          Printf.sprintf
            "n = %d, %d requests; link delay U[0.5, 2] ms, NF processing 0.1–1 ms"
            n requests;
        ];
    };
  ]
