module Adm = Nfv_multicast.Admission
module Delay = Nfv_multicast.Delay

let algos = [ Adm.Online_cp_no_threshold; Adm.Sp ]
let deadlines = [ 6.0; 10.0; 15.0; 25.0; 50.0 ]

(* One pool point = one deadline bound; both algorithms admit the same
   request sequence (network reset in between), so they stay inside the
   point. *)

let instance ?(n = 100) ?(requests = 400) () =
  let deadlines_a = Array.of_list deadlines in
  let sweep =
    {
      Spec.key = "delay";
      points = Array.length deadlines_a;
      point =
        (fun ~rng i ->
          let bound = deadlines_a.(i) in
          let net = Exp_common.network rng ~n in
          let spec =
            { Workload.Gen.default_spec with deadline = Some (bound, bound) }
          in
          let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
          List.map
            (fun algo ->
              Sdn.Network.reset net;
              let k =
                List.fold_left
                  (fun k r ->
                    match Delay.admit net algo r with
                    | Ok _ -> k + 1
                    | Error _ -> k)
                  0 reqs
              in
              ( "accept_" ^ Adm.algorithm_to_string algo,
                float_of_int k /. float_of_int requests ))
            algos);
    }
  in
  let figures =
    [
      {
        Spec.fid = "delayA";
        title = "delay-bounded admission: acceptance vs deadline";
        xlabel = "deadline (ms)";
        ylabel = "acceptance ratio";
        series =
          List.map
            (fun a ->
              let name = Adm.algorithm_to_string a in
              {
                Spec.label = name;
                cells =
                  List.mapi
                    (fun di bound ->
                      {
                        Spec.x = bound;
                        sweep = 0;
                        point = di;
                        metric = "accept_" ^ name;
                      })
                    deadlines;
              })
            algos;
        notes =
          [
            Printf.sprintf
              "n = %d, %d requests; link delay U[0.5, 2] ms, NF processing 0.1–1 ms"
              n requests;
          ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"delay"
    ~doc:"Extension: delay-bounded admission vs deadline tightness"
    ~figure_ids:[ "delayA" ] ~default_requests:400
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?n ?requests () =
  Runner.figures ~seed (instance ?n ?requests ())
