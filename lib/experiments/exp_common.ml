type series = {
  label : string;
  points : (float * float) list;
}

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;
}

let render ppf fig =
  Format.fprintf ppf "== %s: %s ==@." fig.id fig.title;
  List.iter (fun n -> Format.fprintf ppf "   # %s@." n) fig.notes;
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.points) fig.series)
  in
  let col_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 12 fig.series
    + 2
  in
  Format.fprintf ppf "%-12s" fig.xlabel;
  List.iter
    (fun s -> Format.fprintf ppf "%*s" col_width s.label)
    fig.series;
  Format.fprintf ppf "   (%s)@." fig.ylabel;
  List.iter
    (fun x ->
      Format.fprintf ppf "%-12g" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some y -> Format.fprintf ppf "%*.4g" col_width y
          | None -> Format.fprintf ppf "%*s" col_width "-")
        fig.series;
      Format.fprintf ppf "@.")
    xs;
  Format.fprintf ppf "@."

let render_all ppf figs = List.iter (render ppf) figs

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv fig =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# %s: %s (%s)\n" fig.id fig.title fig.ylabel);
  List.iter (fun n -> Buffer.add_string buf ("# " ^ n ^ "\n")) fig.notes;
  Buffer.add_string buf
    (String.concat ","
       (csv_escape fig.xlabel :: List.map (fun s -> csv_escape s.label) fig.series));
  Buffer.add_char buf '\n';
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) fig.series)
  in
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match List.assoc_opt x s.points with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%g" y)
          | None -> ())
        fig.series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

(* mkdir -p: [--csv out/run-3/figs] used to fail mid-run when the
   parent directory was missing, losing every figure already computed *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_csv ~dir fig =
  ensure_dir dir;
  let path = Filename.concat dir (fig.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv fig);
  close_out oc;
  path

(* Waxman with alpha ∝ 1/n keeps the expected degree flat across the
   50–250 size sweep, at the ≈ 3.5–4.5 average degree GT-ITM setups
   usually report. *)
let gtitm_like rng ~n =
  let alpha = 16.0 /. float_of_int n in
  Topology.Waxman.generate ~alpha ~beta:0.25 rng ~n

let network rng ~n =
  let topo = gtitm_like rng ~n in
  Sdn.Network.make_random_servers ~fraction:0.1 ~rng topo

let geant_network rng =
  Sdn.Network.make ~rng ~servers:Topology.Geant.default_servers
    (Topology.Geant.topology ())

let as1755_network rng =
  Sdn.Network.make_random_servers ~fraction:0.1 ~rng (Topology.Rocketfuel.as1755 ())

let as4755_network rng =
  Sdn.Network.make_random_servers ~fraction:0.1 ~rng (Topology.Rocketfuel.as4755 ())

(* One process-wide time source: [Nfv_obs.Obs.clock]. The experiments
   layer used to keep a second ref that had to be kept in sync with the
   telemetry clock by hand; [clock] is now an alias of the same ref and
   is deprecated in the interface. *)
let clock = Nfv_obs.Obs.clock

let time_of f =
  let t0 = !Nfv_obs.Obs.clock () in
  let x = f () in
  (x, !Nfv_obs.Obs.clock () -. t0)

(* One tick per read, counted per domain (domain-local state), so the
   number of ticks a measured region consumes depends only on the code
   it runs — not on which domain ran it or what siblings did
   concurrently. That makes the figures' "ms per request" columns
   byte-identical across --jobs settings.

   The tick is a power of two (2^-13 s ≈ 0.12 ms) so every clock value
   is an exact multiple of it and differences of two readings are exact:
   with a non-dyadic tick the accumulated counter picks up ULP rounding
   that depends on how much earlier work ran on the same domain, and a
   span duration sitting on a histogram-bucket boundary then lands in
   different buckets under different schedules. *)
let tick = 1.0 /. 8192.0
let fake_ticks : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.0)

let fake_clock () =
  let t = Domain.DLS.get fake_ticks in
  t := !t +. tick;
  !t

let install_fake_clock () = Nfv_obs.Obs.clock := fake_clock

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
