module Adm = Nfv_multicast.Admission

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]

let admit_span = function
  | Adm.Sp -> "online_sp.admit"
  | Adm.Online_cp | Adm.Online_cp_no_threshold | Adm.Online_linear ->
    "online_cp.admit"

(* One pool point = one network size. The three algorithms must race on
   the {e same} network and request sequence, so they stay together
   inside the point rather than becoming points of their own. A probe
   around each algorithm's run separates the two Online_CP variants'
   contributions to the shared "online_cp.admit" histogram. *)
let point ~requests ~n ~rng =
  let net = Exp_common.network rng ~n in
  let reqs = Workload.Gen.sequence rng net ~count:requests in
  List.concat_map
    (fun algo ->
      let p = Runner.span_probe (admit_span algo) in
      let s = Adm.run net algo reqs in
      let name = Adm.algorithm_to_string algo in
      [
        ("admitted_" ^ name, float_of_int s.Adm.admitted);
        ("ms_" ^ name, Runner.span_mean_ms p);
      ])
    algos

let instance ?(requests = 1500) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let sizes_a = Array.of_list sizes in
  let sweep =
    {
      Spec.key = "fig8";
      points = Array.length sizes_a;
      point = (fun ~rng i -> point ~requests ~n:sizes_a.(i) ~rng);
    }
  in
  let series prefix =
    List.map
      (fun algo ->
        let name = Adm.algorithm_to_string algo in
        {
          Spec.label = name;
          cells =
            List.mapi
              (fun si n ->
                {
                  Spec.x = float_of_int n;
                  sweep = 0;
                  point = si;
                  metric = prefix ^ name;
                })
              sizes;
        })
      algos
  in
  let notes =
    [
      Printf.sprintf "%d online requests, K = 1" requests;
      "paper runs 300 requests; our capacity draw leaves 300 under-subscribed, \
       so the default horizon is longer (EXPERIMENTS.md)";
      "Online_CP_noSigma = Algorithm 2 without the σ admission thresholds";
    ]
  in
  let figures =
    [
      {
        Spec.fid = "fig8a";
        title = "admitted requests vs network size";
        xlabel = "|V|";
        ylabel = "admitted";
        series = series "admitted_";
        notes;
      };
      {
        Spec.fid = "fig8b";
        title = "online running time vs network size";
        xlabel = "|V|";
        ylabel = "ms per request";
        series = series "ms_";
        notes = [ List.hd notes ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"fig8" ~doc:"Fig. 8: Online_CP vs SP across network sizes"
    ~figure_ids:[ "fig8a"; "fig8b" ] ~default_requests:1500
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?requests ?sizes () =
  Runner.figures ~seed (instance ?requests ?sizes ())
