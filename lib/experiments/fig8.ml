module Adm = Nfv_multicast.Admission

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]

let run ?(seed = 1) ?(requests = 1500) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let admitted = Hashtbl.create 4 and times = Hashtbl.create 4 in
  List.iter
    (fun algo ->
      Hashtbl.replace admitted algo [];
      Hashtbl.replace times algo [])
    algos;
  List.iter
    (fun n ->
      let rng = Topology.Rng.create (seed + n) in
      let net = Exp_common.network rng ~n in
      let reqs = Workload.Gen.sequence rng net ~count:requests in
      List.iter
        (fun algo ->
          let s = Adm.run net algo reqs in
          let x = float_of_int n in
          Hashtbl.replace admitted algo
            ((x, float_of_int s.Adm.admitted) :: Hashtbl.find admitted algo);
          Hashtbl.replace times algo
            ((x, 1000.0 *. s.Adm.runtime_s /. float_of_int requests)
            :: Hashtbl.find times algo))
        algos)
    sizes;
  let series tbl =
    List.map
      (fun algo ->
        {
          Exp_common.label = Adm.algorithm_to_string algo;
          points = List.rev (Hashtbl.find tbl algo);
        })
      algos
  in
  let notes =
    [
      Printf.sprintf "%d online requests, K = 1" requests;
      "paper runs 300 requests; our capacity draw leaves 300 under-subscribed, \
       so the default horizon is longer (EXPERIMENTS.md)";
      "Online_CP_noSigma = Algorithm 2 without the σ admission thresholds";
    ]
  in
  [
    {
      Exp_common.id = "fig8a";
      title = "admitted requests vs network size";
      xlabel = "|V|";
      ylabel = "admitted";
      series = series admitted;
      notes;
    };
    {
      Exp_common.id = "fig8b";
      title = "online running time vs network size";
      xlabel = "|V|";
      ylabel = "ms per request";
      series = series times;
      notes = [ List.hd notes ];
    };
  ]
