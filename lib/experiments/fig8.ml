module Adm = Nfv_multicast.Admission

let algos = [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Sp ]

(* One pool point = one network size. The three algorithms must race on
   the {e same} network and request sequence, so they stay together
   inside the point rather than becoming points of their own. *)

let run ?(seed = 1) ?(requests = 1500) ?(sizes = [ 50; 100; 150; 200; 250 ]) () =
  let sizes_a = Array.of_list sizes in
  let points =
    Pool.map ~figure:"fig8" ~seed (Array.length sizes_a) (fun ~rng i ->
        let n = sizes_a.(i) in
        let net = Exp_common.network rng ~n in
        let reqs = Workload.Gen.sequence rng net ~count:requests in
        List.map (fun algo -> Adm.run net algo reqs) algos)
  in
  let points = Array.of_list points in
  let series f =
    List.mapi
      (fun ai algo ->
        {
          Exp_common.label = Adm.algorithm_to_string algo;
          points =
            List.mapi
              (fun si n ->
                (float_of_int n, f (List.nth points.(si) ai)))
              sizes;
        })
      algos
  in
  let notes =
    [
      Printf.sprintf "%d online requests, K = 1" requests;
      "paper runs 300 requests; our capacity draw leaves 300 under-subscribed, \
       so the default horizon is longer (EXPERIMENTS.md)";
      "Online_CP_noSigma = Algorithm 2 without the σ admission thresholds";
    ]
  in
  [
    {
      Exp_common.id = "fig8a";
      title = "admitted requests vs network size";
      xlabel = "|V|";
      ylabel = "admitted";
      series = series (fun s -> float_of_int s.Adm.admitted);
      notes;
    };
    {
      Exp_common.id = "fig8b";
      title = "online running time vs network size";
      xlabel = "|V|";
      ylabel = "ms per request";
      series =
        series (fun s -> 1000.0 *. s.Adm.runtime_s /. float_of_int requests);
      notes = [ List.hd notes ];
    };
  ]
