(** Churn sweep: failure injection and tiered repair on the paper's two
    real topologies (GÉANT, AS1755). Each grid point admits an online
    request sequence with Online_CP while a seeded [Sdn.Fault] schedule
    fires link/server failures between arrivals; every evicted session
    goes through [Nfv_multicast.Repair]'s tier ladder (patch →
    migrate → re-admit). The tables report the survival rate, the
    [repair.*] tier breakdown (counter deltas) and p50/p99 repair
    latency from the [repair.attempt] histogram — so they double as a
    check that the repair telemetry matches the simulation.

    Determinism: networks, workloads and failure schedules all derive
    from the per-point RNG, repair itself draws no randomness, and the
    latency columns are histogram quantiles that are exact under the
    fake clock — so every column is byte-identical across [--jobs]
    settings. *)

val spec : Spec.t
(** Registered as ["churn"]; figures [churnA] (GÉANT) and [churnB]
    (AS1755). X is the failure rate (events per arrival: 0.05, 0.1,
    0.2); series are [<metric>@<load>] for two load levels,
    [--requests] and its half. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Convenience wrapper: run the spec's instance directly. *)
