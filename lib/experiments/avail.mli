(** Availability sweep: {!Dynamic_churn}'s grid re-run under
    SRLG-exposure pricing ({!Nfv_multicast.Online_cp.make_avail}), one
    sweep per surcharge level [alpha]. All sweeps share
    {!Dynamic_churn.sweep_key}, so matched points across alphas (and
    across this family and [dynamic_churn] itself) get identical
    per-point RNGs — identical networks, traces, partitions and fault
    timelines. The [alpha = 0] sweep passes no [?srlg] and is
    byte-identical to the dynamic-churn baseline; non-zero alphas
    surcharge every link by [alpha × exposure] of its shared-risk
    group, buying survival under correlated cuts at some acceptance
    cost. *)

val alphas : float list
(** Surcharge levels, one sweep each; [0.] first (the baseline). *)

val metrics : string list
(** The tabulated subset of {!Dynamic_churn.metrics}: acceptance,
    survival, restored fraction, p50/p99 repair latency. *)

val spec : Spec.t
(** Registered as ["avail"]; figures [availA]/[availB] (GÉANT
    independent/SRLG) and [availC]/[availD] (AS1755 independent/SRLG),
    mirroring [dynchA]–[dynchD]. X is the failure rate; series are
    [<metric>@a<alpha>@<load>]. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Convenience wrapper: run the spec's instance directly. *)
