(** The experiment registry: every family's {!Spec.t}, in presentation
    order. The bench harness and the CLI enumerate this list instead of
    hard-coding figure names, so registering a spec here is all it takes
    to appear in [--figure], in the [all] run, and in the CLI's
    subcommands. *)

val all : Spec.t list
(** Every registered family: fig5–fig9, ablation, dynamic, batch, delay,
    tables, stress, churn. *)

val ids : string list
(** The ids of {!all}, in the same order. *)

val find : string -> Spec.t option
(** Look a family up by its [Spec.id]. *)
