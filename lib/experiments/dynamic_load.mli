(** Extension experiment: steady-state acceptance under request
    departures (sessions with finite holding times), sweeping the
    offered load. The paper's model holds resources forever; with
    departures the same admission policies reach a steady state whose
    acceptance ratio separates load-aware from load-oblivious routing. *)

val spec : Spec.t
(** Registered as ["dynamic"]; [--requests] maps to the arrival count. *)

val run :
  ?seed:int -> ?n:int -> ?arrivals:int -> unit -> Exp_common.figure list
(** Acceptance ratio and time-averaged utilisation vs offered load
    (expected concurrent sessions), for Online_CP (both threshold
    variants) and SP. Defaults: n = 100 switches, 2 000 arrivals per
    point. *)
