module Adm = Nfv_multicast.Admission
module A = Nfv_multicast.Appro_multi

let cost_model ?(seed = 1) ?(requests = 2000) ?(n = 100) () =
  let rng = Topology.Rng.create seed in
  let topo = Topology.Waxman.generate ~alpha:0.2 ~beta:0.25 rng ~n in
  let net = Sdn.Network.make_random_servers ~fraction:0.05 ~rng topo in
  let reqs = Workload.Gen.sequence rng net ~count:requests in
  let checkpoints =
    List.init (requests / 200) (fun i -> (i + 1) * 200)
  in
  let curve stats =
    List.map
      (fun p -> (float_of_int p, float_of_int (Adm.admitted_after stats p)))
      checkpoints
  in
  let series =
    List.map
      (fun algo ->
        let stats = Adm.run net algo reqs in
        { Exp_common.label = Adm.algorithm_to_string algo; points = curve stats })
      [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp ]
  in
  {
    Exp_common.id = "ablA1";
    title = "cost-model ablation: admissions over a long arrival sequence";
    xlabel = "requests";
    ylabel = "admitted";
    series;
    notes =
      [
        Printf.sprintf
          "n = %d, 5%% servers, sparse topology; exponential vs linear weights vs SP"
          n;
      ];
  }

let k_sweep ?(seed = 1) ?(requests = 20) ?(sizes = [ 50; 100; 150 ]) () =
  let ks = [ 1; 2; 3 ] in
  let cost_series = ref [] and time_series = ref [] in
  List.iter
    (fun k ->
      let costs = ref [] and times = ref [] in
      List.iter
        (fun n ->
          let rng = Topology.Rng.create (seed + n) in
          let net = Exp_common.network rng ~n in
          let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.2 } in
          let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
          let cs = ref [] and ts = ref [] in
          List.iter
            (fun r ->
              let res, t = Exp_common.time_of (fun () -> A.solve ~k net r) in
              match res with
              | Ok res ->
                cs := res.A.cost :: !cs;
                ts := t :: !ts
              | Error _ -> ())
            reqs;
          costs := (float_of_int n, Exp_common.mean !cs) :: !costs;
          times := (float_of_int n, 1000.0 *. Exp_common.mean !ts) :: !times)
        sizes;
      let label = Printf.sprintf "K=%d" k in
      cost_series :=
        { Exp_common.label; points = List.rev !costs } :: !cost_series;
      time_series :=
        { Exp_common.label; points = List.rev !times } :: !time_series)
    ks;
  [
    {
      Exp_common.id = "ablA2cost";
      title = "K ablation: Appro_Multi cost vs network size";
      xlabel = "|V|";
      ylabel = "mean cost";
      series = List.rev !cost_series;
      notes = [ Printf.sprintf "Dmax/|V| = 0.2, %d requests per point" requests ];
    };
    {
      Exp_common.id = "ablA2time";
      title = "K ablation: Appro_Multi running time vs network size";
      xlabel = "|V|";
      ylabel = "ms per request";
      series = List.rev !time_series;
      notes = [ Printf.sprintf "Dmax/|V| = 0.2, %d requests per point" requests ];
    };
  ]

(* Where multiple servers genuinely pay off: a source between two
   destination clusters, a server next to each cluster. A single chain
   instance forces the processed stream to re-cross one arm (2·arm·b
   extra bandwidth); a second instance costs one more chain placement.
   The crossover sits at b ≈ chain_cost / (2·arm). *)
let two_cluster ?(seed = 1) ?(arm = 4) () =
  let rng = Topology.Rng.create seed in
  (* nodes: 0 = source; arm nodes per side; server at the far end of each
     arm, one destination hanging off each server *)
  let n = (2 * arm) + 5 in
  let g = Mcgraph.Graph.create n in
  let chain_path start nodes =
    List.fold_left
      (fun prev v ->
        ignore (Mcgraph.Graph.add_edge g prev v);
        v)
      start nodes
  in
  let left_nodes = List.init arm (fun i -> 1 + i) in
  let right_nodes = List.init arm (fun i -> 1 + arm + i) in
  let left_end = chain_path 0 left_nodes in
  let right_end = chain_path 0 right_nodes in
  let s_left = (2 * arm) + 1 and s_right = (2 * arm) + 2 in
  let d_left = (2 * arm) + 3 and d_right = (2 * arm) + 4 in
  ignore (Mcgraph.Graph.add_edge g left_end s_left);
  ignore (Mcgraph.Graph.add_edge g right_end s_right);
  ignore (Mcgraph.Graph.add_edge g s_left d_left);
  ignore (Mcgraph.Graph.add_edge g s_right d_right);
  let topo = Topology.Topo.make ~name:"two-cluster" g in
  let net =
    Sdn.Network.make
      ~profile:
        (Sdn.Network.uniform_profile ~link_capacity:100_000.0
           ~server_capacity:12_000.0)
      ~rng ~servers:[ s_left; s_right ] topo
  in
  let bandwidths = [ 25.0; 50.0; 100.0; 150.0; 200.0 ] in
  let series_of k =
    let points =
      List.map
        (fun b ->
          let req =
            Sdn.Request.make ~id:0 ~source:0 ~destinations:[ d_left; d_right ]
              ~bandwidth:b
              ~chain:[ Sdn.Vnf.Nat; Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]
          in
          match A.solve ~k net req with
          | Ok r -> (b, r.A.cost)
          | Error _ -> (b, nan))
        bandwidths
    in
    { Exp_common.label = Printf.sprintf "K=%d" k; points }
  in
  {
    Exp_common.id = "ablA2cluster";
    title = "K ablation: two destination clusters, server next to each";
    xlabel = "bandwidth (Mbps)";
    ylabel = "implementation cost";
    series = List.map series_of [ 1; 2 ];
    notes =
      [
        Printf.sprintf
          "arm length %d; chain <NAT,Firewall,IDS> = 145 MHz; crossover at b ≈ 145/(2·%d)·c"
          arm arm;
      ];
  }

(* joint optimisation (Appro_Multi) vs tree-first placement (Inline, the
   paper's Fig. 3 derivation) vs the §VI-A baseline *)
let placement_strategies ?(seed = 1) ?(requests = 40) ?(sizes = [ 50; 100; 150 ]) () =
  let labels =
    [ "Appro_Multi (joint)"; "Inline (tree-first)"; "Alg_One_Server" ]
  in
  let sums = Hashtbl.create 4 in
  List.iter (fun l -> Hashtbl.replace sums l []) labels;
  List.iter
    (fun n ->
      let rng = Topology.Rng.create (seed + n) in
      let net = Exp_common.network rng ~n in
      let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.15 } in
      let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
      let totals = [| []; []; [] |] in
      List.iter
        (fun r ->
          match
            ( A.solve ~k:2 net r,
              Nfv_multicast.Inline_tree.solve ~k:2 net r,
              Nfv_multicast.One_server.solve net r )
          with
          | Ok a, Ok i, Ok o ->
            totals.(0) <- a.A.cost :: totals.(0);
            totals.(1) <- i.Nfv_multicast.Inline_tree.cost :: totals.(1);
            totals.(2) <- o.Nfv_multicast.One_server.cost :: totals.(2)
          | _ -> ())
        reqs;
      List.iteri
        (fun i l ->
          Hashtbl.replace sums l
            ((float_of_int n, Exp_common.mean totals.(i)) :: Hashtbl.find sums l))
        labels)
    sizes;
  {
    Exp_common.id = "ablA3";
    title = "placement strategy: joint vs tree-first vs baseline";
    xlabel = "|V|";
    ylabel = "mean cost";
    series =
      List.map
        (fun l -> { Exp_common.label = l; points = List.rev (Hashtbl.find sums l) })
        labels;
    notes =
      [
        Printf.sprintf "Dmax/|V| = 0.15, K = 2, %d requests per point" requests;
      ];
  }

(* the K > 1 online variant (future-work direction): admitted requests
   vs K under sustained load *)
let online_k ?(seed = 1) ?(requests = 800) ?(n = 100) () =
  let rng = Topology.Rng.create seed in
  let net = Exp_common.network rng ~n in
  let reqs = Workload.Gen.sequence rng net ~count:requests in
  let points =
    List.map
      (fun k ->
        (float_of_int k, float_of_int (Nfv_multicast.Online_multi.run ~k net reqs)))
      [ 1; 2; 3 ]
  in
  let sp = Adm.run net Adm.Sp reqs in
  {
    Exp_common.id = "ablA4";
    title = "online multi-server placement: admitted vs K";
    xlabel = "K";
    ylabel = "admitted";
    series =
      [
        { Exp_common.label = "Online_Multi"; points };
        {
          Exp_common.label = "SP";
          points = List.map (fun k -> (float_of_int k, float_of_int sp.Adm.admitted)) [ 1; 2; 3 ];
        };
      ];
    notes =
      [
        Printf.sprintf
          "n = %d, %d requests; exponential prices, no σ thresholds (the K>1 \
           online setting the paper leaves open)"
          n requests;
      ];
  }

let run ?(seed = 1) () =
  (cost_model ~seed () :: k_sweep ~seed ())
  @ [ two_cluster ~seed (); placement_strategies ~seed (); online_k ~seed () ]
