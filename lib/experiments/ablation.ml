module Adm = Nfv_multicast.Admission
module A = Nfv_multicast.Appro_multi

(* ---- A1: cost model ---- *)

(* A1 runs four algorithms over the same arrival sequence. Each
   algorithm is a pool point of its own (they are independent full-length
   admission runs), so every point rebuilds the identical network and
   sequence from one shared seed instead of the per-point rng the pool
   hands it. *)

let a1_algos =
  [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp ]

let a1_checkpoints requests =
  let step = max 1 (requests / 10) in
  List.init (requests / step) (fun i -> (i + 1) * step)

let cost_model_instance ~seed ?(requests = 2000) ?(n = 100) () =
  let shared = Pool.point_seed ~figure:"ablA1" ~index:0 ~seed in
  let algos_a = Array.of_list a1_algos in
  let checkpoints = a1_checkpoints requests in
  let sweep =
    {
      Spec.key = "ablA1";
      points = Array.length algos_a;
      point =
        (fun ~rng:_ i ->
          let rng = Topology.Rng.create shared in
          let topo = Topology.Waxman.generate ~alpha:0.2 ~beta:0.25 rng ~n in
          let net = Sdn.Network.make_random_servers ~fraction:0.05 ~rng topo in
          let reqs = Workload.Gen.sequence rng net ~count:requests in
          let stats = Adm.run net algos_a.(i) reqs in
          List.map
            (fun p ->
              ( Printf.sprintf "adm@%d" p,
                float_of_int (Adm.admitted_after stats p) ))
            checkpoints);
    }
  in
  let figures =
    [
      {
        Spec.fid = "ablA1";
        title = "cost-model ablation: admissions over a long arrival sequence";
        xlabel = "requests";
        ylabel = "admitted";
        series =
          List.mapi
            (fun ai algo ->
              {
                Spec.label = Adm.algorithm_to_string algo;
                cells =
                  List.map
                    (fun p ->
                      {
                        Spec.x = float_of_int p;
                        sweep = 0;
                        point = ai;
                        metric = Printf.sprintf "adm@%d" p;
                      })
                    checkpoints;
              })
            a1_algos;
        notes =
          [
            Printf.sprintf
              "n = %d, 5%% servers, sparse topology; exponential vs linear weights vs SP"
              n;
          ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

(* ---- A2: number of servers per chain ---- *)

(* A2 compares K values at each network size, so the K runs at one size
   must share that size's network and requests: the point seed is
   derived from the size index alone. *)
let k_sweep_instance ~seed ?(requests = 20) ?(sizes = [ 50; 100; 150 ]) () =
  let ks = [ 1; 2; 3 ] in
  let sizes_a = Array.of_list sizes in
  let per_k = Array.length sizes_a in
  let params =
    Array.of_list
      (List.concat_map (fun k -> List.map (fun n -> (k, n)) sizes) ks)
  in
  let sweep =
    {
      Spec.key = "ablA2";
      points = Array.length params;
      point =
        (fun ~rng:_ i ->
          let k, n = params.(i) in
          let rng =
            Topology.Rng.create
              (Pool.point_seed ~figure:"ablA2" ~index:(i mod per_k) ~seed)
          in
          let net = Exp_common.network rng ~n in
          let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.2 } in
          let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
          let p = Runner.span_probe "appro_multi.solve" in
          let cs = ref [] in
          List.iter
            (fun r ->
              match A.solve ~k net r with
              | Ok res -> cs := res.A.cost :: !cs
              | Error _ -> ())
            reqs;
          [
            ("cost", Exp_common.mean !cs); ("ms", Runner.span_mean_ms p);
          ]);
    }
  in
  let series metric =
    List.mapi
      (fun ki k ->
        {
          Spec.label = Printf.sprintf "K=%d" k;
          cells =
            List.mapi
              (fun si n ->
                {
                  Spec.x = float_of_int n;
                  sweep = 0;
                  point = (ki * per_k) + si;
                  metric;
                })
              sizes;
        })
      ks
  in
  let notes =
    [ Printf.sprintf "Dmax/|V| = 0.2, %d requests per point" requests ]
  in
  let figures =
    [
      {
        Spec.fid = "ablA2cost";
        title = "K ablation: Appro_Multi cost vs network size";
        xlabel = "|V|";
        ylabel = "mean cost";
        series = series "cost";
        notes;
      };
      {
        Spec.fid = "ablA2time";
        title = "K ablation: Appro_Multi running time vs network size";
        xlabel = "|V|";
        ylabel = "ms per request";
        series = series "ms";
        notes;
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

(* ---- A2 companion: the designed two-cluster instance ---- *)

let cluster_ks = [ 1; 2 ]
let cluster_bandwidths = [ 25.0; 50.0; 100.0; 150.0; 200.0 ]
let cluster_metric k b = Printf.sprintf "k%d@%g" k b

(* Where multiple servers genuinely pay off: a source between two
   destination clusters, a server next to each cluster. A single chain
   instance forces the processed stream to re-cross one arm (2·arm·b
   extra bandwidth); a second instance costs one more chain placement.
   The crossover sits at b ≈ chain_cost / (2·arm). The single point
   derives nothing from the pool rng — the designed topology is seeded
   directly from the user seed, exactly as before the spec port. *)
let two_cluster_instance ~seed ?(arm = 4) () =
  let point ~rng:_ _ =
    let rng = Topology.Rng.create seed in
    (* nodes: 0 = source; arm nodes per side; server at the far end of each
       arm, one destination hanging off each server *)
    let n = (2 * arm) + 5 in
    let g = Mcgraph.Graph.create n in
    let chain_path start nodes =
      List.fold_left
        (fun prev v ->
          ignore (Mcgraph.Graph.add_edge g prev v);
          v)
        start nodes
    in
    let left_nodes = List.init arm (fun i -> 1 + i) in
    let right_nodes = List.init arm (fun i -> 1 + arm + i) in
    let left_end = chain_path 0 left_nodes in
    let right_end = chain_path 0 right_nodes in
    let s_left = (2 * arm) + 1 and s_right = (2 * arm) + 2 in
    let d_left = (2 * arm) + 3 and d_right = (2 * arm) + 4 in
    ignore (Mcgraph.Graph.add_edge g left_end s_left);
    ignore (Mcgraph.Graph.add_edge g right_end s_right);
    ignore (Mcgraph.Graph.add_edge g s_left d_left);
    ignore (Mcgraph.Graph.add_edge g s_right d_right);
    let topo = Topology.Topo.make ~name:"two-cluster" g in
    let net =
      Sdn.Network.make
        ~profile:
          (Sdn.Network.uniform_profile ~link_capacity:100_000.0
             ~server_capacity:12_000.0)
        ~rng ~servers:[ s_left; s_right ] topo
    in
    List.concat_map
      (fun k ->
        List.map
          (fun b ->
            let req =
              Sdn.Request.make ~id:0 ~source:0
                ~destinations:[ d_left; d_right ] ~bandwidth:b
                ~chain:[ Sdn.Vnf.Nat; Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]
            in
            let cost =
              match A.solve ~k net req with
              | Ok r -> r.A.cost
              | Error _ -> nan
            in
            (cluster_metric k b, cost))
          cluster_bandwidths)
      cluster_ks
  in
  let sweep = { Spec.key = "ablA2cluster"; points = 1; point } in
  let figures =
    [
      {
        Spec.fid = "ablA2cluster";
        title = "K ablation: two destination clusters, server next to each";
        xlabel = "bandwidth (Mbps)";
        ylabel = "implementation cost";
        series =
          List.map
            (fun k ->
              {
                Spec.label = Printf.sprintf "K=%d" k;
                cells =
                  List.map
                    (fun b ->
                      {
                        Spec.x = b;
                        sweep = 0;
                        point = 0;
                        metric = cluster_metric k b;
                      })
                    cluster_bandwidths;
              })
            cluster_ks;
        notes =
          [
            Printf.sprintf
              "arm length %d; chain <NAT,Firewall,IDS> = 145 MHz; crossover at b ≈ 145/(2·%d)·c"
              arm arm;
          ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

(* ---- A3: placement strategies ---- *)

(* joint optimisation (Appro_Multi) vs tree-first placement (Inline, the
   paper's Fig. 3 derivation) vs the §VI-A baseline; the three solvers
   compare per request, so they stay inside the per-size point *)
let a3_labels =
  [
    ("joint", "Appro_Multi (joint)");
    ("inline", "Inline (tree-first)");
    ("one", "Alg_One_Server");
  ]

let placement_instance ?(requests = 40) ?(sizes = [ 50; 100; 150 ]) () =
  let sizes_a = Array.of_list sizes in
  let sweep =
    {
      Spec.key = "ablA3";
      points = Array.length sizes_a;
      point =
        (fun ~rng i ->
          let n = sizes_a.(i) in
          let net = Exp_common.network rng ~n in
          let spec =
            { Workload.Gen.default_spec with dmax_ratio = Some 0.15 }
          in
          let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
          let totals = [| []; []; [] |] in
          List.iter
            (fun r ->
              match
                ( A.solve ~k:2 net r,
                  Nfv_multicast.Inline_tree.solve ~k:2 net r,
                  Nfv_multicast.One_server.solve net r )
              with
              | Ok a, Ok i, Ok o ->
                totals.(0) <- a.A.cost :: totals.(0);
                totals.(1) <- i.Nfv_multicast.Inline_tree.cost :: totals.(1);
                totals.(2) <- o.Nfv_multicast.One_server.cost :: totals.(2)
              | _ -> ())
            reqs;
          List.mapi
            (fun li (m, _) -> (m, Exp_common.mean totals.(li)))
            a3_labels);
    }
  in
  let figures =
    [
      {
        Spec.fid = "ablA3";
        title = "placement strategy: joint vs tree-first vs baseline";
        xlabel = "|V|";
        ylabel = "mean cost";
        series =
          List.map
            (fun (m, label) ->
              {
                Spec.label = label;
                cells =
                  List.mapi
                    (fun si n ->
                      {
                        Spec.x = float_of_int n;
                        sweep = 0;
                        point = si;
                        metric = m;
                      })
                    sizes;
              })
            a3_labels;
        notes =
          [
            Printf.sprintf "Dmax/|V| = 0.15, K = 2, %d requests per point"
              requests;
          ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

(* ---- A4: the K > 1 online variant ---- *)

(* admitted requests vs K under sustained load (future-work direction).
   The four runs (K ∈ {1,2,3} and the SP reference) are independent, so
   each is a pool point that rebuilds the shared network and sequence
   from one seed. *)
let online_k_instance ~seed ?(requests = 800) ?(n = 100) () =
  let tasks = [| `K 1; `K 2; `K 3; `Sp |] in
  let shared = Pool.point_seed ~figure:"ablA4" ~index:0 ~seed in
  let sweep =
    {
      Spec.key = "ablA4";
      points = Array.length tasks;
      point =
        (fun ~rng:_ i ->
          let rng = Topology.Rng.create shared in
          let net = Exp_common.network rng ~n in
          let reqs = Workload.Gen.sequence rng net ~count:requests in
          let admitted =
            match tasks.(i) with
            | `K k -> Nfv_multicast.Online_multi.run ~k net reqs
            | `Sp -> (Adm.run net Adm.Sp reqs).Adm.admitted
          in
          [ ("admitted", float_of_int admitted) ]);
    }
  in
  let ks = [ 1; 2; 3 ] in
  let figures =
    [
      {
        Spec.fid = "ablA4";
        title = "online multi-server placement: admitted vs K";
        xlabel = "K";
        ylabel = "admitted";
        series =
          [
            {
              Spec.label = "Online_Multi";
              cells =
                List.mapi
                  (fun i k ->
                    {
                      Spec.x = float_of_int k;
                      sweep = 0;
                      point = i;
                      metric = "admitted";
                    })
                  ks;
            };
            {
              Spec.label = "SP";
              cells =
                List.map
                  (fun k ->
                    {
                      Spec.x = float_of_int k;
                      sweep = 0;
                      point = 3;
                      metric = "admitted";
                    })
                  ks;
            };
          ];
        notes =
          [
            Printf.sprintf
              "n = %d, %d requests; exponential prices, no σ thresholds (the K>1 \
               online setting the paper leaves open)"
              n requests;
          ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

(* ---- the combined family ---- *)

let instance ~seed ?requests () =
  Spec.concat_instances
    [
      cost_model_instance ~seed ?requests ();
      k_sweep_instance ~seed ?requests ();
      two_cluster_instance ~seed ();
      placement_instance ?requests ();
      online_k_instance ~seed ?requests ();
    ]

let spec =
  Spec.make ~id:"ablation"
    ~doc:"Ablations A1-A4: cost model, servers per chain, placement, online K"
    ~figure_ids:
      [ "ablA1"; "ablA2cost"; "ablA2time"; "ablA2cluster"; "ablA3"; "ablA4" ]
    (fun ~seed ~requests -> instance ~seed ?requests ())

(* legacy per-sub-experiment entry points, now thin runner wrappers *)

let one seed inst =
  match Runner.figures ~seed inst with
  | [ f ] -> f
  | fs ->
    invalid_arg
      (Printf.sprintf "Ablation: expected one figure, got %d" (List.length fs))

let cost_model ?(seed = 1) ?requests ?n () =
  one seed (cost_model_instance ~seed ?requests ?n ())

let k_sweep ?(seed = 1) ?requests ?sizes () =
  Runner.figures ~seed (k_sweep_instance ~seed ?requests ?sizes ())

let two_cluster ?(seed = 1) ?arm () =
  one seed (two_cluster_instance ~seed ?arm ())

let placement_strategies ?(seed = 1) ?requests ?sizes () =
  one seed (placement_instance ?requests ?sizes ())

let online_k ?(seed = 1) ?requests ?n () =
  one seed (online_k_instance ~seed ?requests ?n ())

let run ?(seed = 1) ?requests () = Runner.figures ~seed (instance ~seed ?requests ())
