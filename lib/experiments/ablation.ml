module Adm = Nfv_multicast.Admission
module A = Nfv_multicast.Appro_multi

(* A1 runs four algorithms over the same arrival sequence. Each
   algorithm is a pool point of its own (they are independent full-length
   admission runs), so every point rebuilds the identical network and
   sequence from one shared seed instead of the per-point rng the pool
   hands it. *)
let cost_model ?(seed = 1) ?(requests = 2000) ?(n = 100) () =
  let algos =
    [ Adm.Online_cp; Adm.Online_cp_no_threshold; Adm.Online_linear; Adm.Sp ]
  in
  let shared = Pool.point_seed ~figure:"ablA1" ~index:0 ~seed in
  let algos_a = Array.of_list algos in
  let stats =
    Pool.map ~figure:"ablA1" ~seed (Array.length algos_a) (fun ~rng:_ i ->
        let rng = Topology.Rng.create shared in
        let topo = Topology.Waxman.generate ~alpha:0.2 ~beta:0.25 rng ~n in
        let net = Sdn.Network.make_random_servers ~fraction:0.05 ~rng topo in
        let reqs = Workload.Gen.sequence rng net ~count:requests in
        Adm.run net algos_a.(i) reqs)
  in
  let step = max 1 (requests / 10) in
  let checkpoints = List.init (requests / step) (fun i -> (i + 1) * step) in
  let curve stats =
    List.map
      (fun p -> (float_of_int p, float_of_int (Adm.admitted_after stats p)))
      checkpoints
  in
  let series =
    List.map2
      (fun algo stats ->
        { Exp_common.label = Adm.algorithm_to_string algo; points = curve stats })
      algos stats
  in
  {
    Exp_common.id = "ablA1";
    title = "cost-model ablation: admissions over a long arrival sequence";
    xlabel = "requests";
    ylabel = "admitted";
    series;
    notes =
      [
        Printf.sprintf
          "n = %d, 5%% servers, sparse topology; exponential vs linear weights vs SP"
          n;
      ];
  }

(* A2 compares K values at each network size, so the K runs at one size
   must share that size's network and requests: the point seed is
   derived from the size index alone. *)
let k_sweep ?(seed = 1) ?(requests = 20) ?(sizes = [ 50; 100; 150 ]) () =
  let ks = [ 1; 2; 3 ] in
  let sizes_a = Array.of_list sizes in
  let per_k = Array.length sizes_a in
  let params =
    Array.of_list
      (List.concat_map (fun k -> List.map (fun n -> (k, n)) sizes) ks)
  in
  let points =
    Pool.map ~figure:"ablA2" ~seed (Array.length params) (fun ~rng:_ i ->
        let k, n = params.(i) in
        let rng =
          Topology.Rng.create
            (Pool.point_seed ~figure:"ablA2" ~index:(i mod per_k) ~seed)
        in
        let net = Exp_common.network rng ~n in
        let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.2 } in
        let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
        let cs = ref [] and ts = ref [] in
        List.iter
          (fun r ->
            let res, t = Exp_common.time_of (fun () -> A.solve ~k net r) in
            match res with
            | Ok res ->
              cs := res.A.cost :: !cs;
              ts := t :: !ts
            | Error _ -> ())
          reqs;
        (Exp_common.mean !cs, 1000.0 *. Exp_common.mean !ts))
  in
  let points = Array.of_list points in
  let series f =
    List.mapi
      (fun ki k ->
        {
          Exp_common.label = Printf.sprintf "K=%d" k;
          points =
            List.mapi
              (fun si n -> (float_of_int n, f points.((ki * per_k) + si)))
              sizes;
        })
      ks
  in
  [
    {
      Exp_common.id = "ablA2cost";
      title = "K ablation: Appro_Multi cost vs network size";
      xlabel = "|V|";
      ylabel = "mean cost";
      series = series fst;
      notes = [ Printf.sprintf "Dmax/|V| = 0.2, %d requests per point" requests ];
    };
    {
      Exp_common.id = "ablA2time";
      title = "K ablation: Appro_Multi running time vs network size";
      xlabel = "|V|";
      ylabel = "ms per request";
      series = series snd;
      notes = [ Printf.sprintf "Dmax/|V| = 0.2, %d requests per point" requests ];
    };
  ]

(* Where multiple servers genuinely pay off: a source between two
   destination clusters, a server next to each cluster. A single chain
   instance forces the processed stream to re-cross one arm (2·arm·b
   extra bandwidth); a second instance costs one more chain placement.
   The crossover sits at b ≈ chain_cost / (2·arm). *)
let two_cluster ?(seed = 1) ?(arm = 4) () =
  let rng = Topology.Rng.create seed in
  (* nodes: 0 = source; arm nodes per side; server at the far end of each
     arm, one destination hanging off each server *)
  let n = (2 * arm) + 5 in
  let g = Mcgraph.Graph.create n in
  let chain_path start nodes =
    List.fold_left
      (fun prev v ->
        ignore (Mcgraph.Graph.add_edge g prev v);
        v)
      start nodes
  in
  let left_nodes = List.init arm (fun i -> 1 + i) in
  let right_nodes = List.init arm (fun i -> 1 + arm + i) in
  let left_end = chain_path 0 left_nodes in
  let right_end = chain_path 0 right_nodes in
  let s_left = (2 * arm) + 1 and s_right = (2 * arm) + 2 in
  let d_left = (2 * arm) + 3 and d_right = (2 * arm) + 4 in
  ignore (Mcgraph.Graph.add_edge g left_end s_left);
  ignore (Mcgraph.Graph.add_edge g right_end s_right);
  ignore (Mcgraph.Graph.add_edge g s_left d_left);
  ignore (Mcgraph.Graph.add_edge g s_right d_right);
  let topo = Topology.Topo.make ~name:"two-cluster" g in
  let net =
    Sdn.Network.make
      ~profile:
        (Sdn.Network.uniform_profile ~link_capacity:100_000.0
           ~server_capacity:12_000.0)
      ~rng ~servers:[ s_left; s_right ] topo
  in
  let bandwidths = [ 25.0; 50.0; 100.0; 150.0; 200.0 ] in
  let series_of k =
    let points =
      List.map
        (fun b ->
          let req =
            Sdn.Request.make ~id:0 ~source:0 ~destinations:[ d_left; d_right ]
              ~bandwidth:b
              ~chain:[ Sdn.Vnf.Nat; Sdn.Vnf.Firewall; Sdn.Vnf.Ids ]
          in
          match A.solve ~k net req with
          | Ok r -> (b, r.A.cost)
          | Error _ -> (b, nan))
        bandwidths
    in
    { Exp_common.label = Printf.sprintf "K=%d" k; points }
  in
  {
    Exp_common.id = "ablA2cluster";
    title = "K ablation: two destination clusters, server next to each";
    xlabel = "bandwidth (Mbps)";
    ylabel = "implementation cost";
    series = List.map series_of [ 1; 2 ];
    notes =
      [
        Printf.sprintf
          "arm length %d; chain <NAT,Firewall,IDS> = 145 MHz; crossover at b ≈ 145/(2·%d)·c"
          arm arm;
      ];
  }

(* joint optimisation (Appro_Multi) vs tree-first placement (Inline, the
   paper's Fig. 3 derivation) vs the §VI-A baseline; the three solvers
   compare per request, so they stay inside the per-size point *)
let placement_strategies ?(seed = 1) ?(requests = 40) ?(sizes = [ 50; 100; 150 ]) () =
  let labels =
    [ "Appro_Multi (joint)"; "Inline (tree-first)"; "Alg_One_Server" ]
  in
  let sizes_a = Array.of_list sizes in
  let points =
    Pool.map ~figure:"ablA3" ~seed (Array.length sizes_a) (fun ~rng i ->
        let n = sizes_a.(i) in
        let net = Exp_common.network rng ~n in
        let spec = { Workload.Gen.default_spec with dmax_ratio = Some 0.15 } in
        let reqs = Workload.Gen.sequence ~spec rng net ~count:requests in
        let totals = [| []; []; [] |] in
        List.iter
          (fun r ->
            match
              ( A.solve ~k:2 net r,
                Nfv_multicast.Inline_tree.solve ~k:2 net r,
                Nfv_multicast.One_server.solve net r )
            with
            | Ok a, Ok i, Ok o ->
              totals.(0) <- a.A.cost :: totals.(0);
              totals.(1) <- i.Nfv_multicast.Inline_tree.cost :: totals.(1);
              totals.(2) <- o.Nfv_multicast.One_server.cost :: totals.(2)
            | _ -> ())
          reqs;
        Array.map Exp_common.mean totals)
  in
  let points = Array.of_list points in
  {
    Exp_common.id = "ablA3";
    title = "placement strategy: joint vs tree-first vs baseline";
    xlabel = "|V|";
    ylabel = "mean cost";
    series =
      List.mapi
        (fun li l ->
          {
            Exp_common.label = l;
            points =
              List.mapi
                (fun si n -> (float_of_int n, points.(si).(li)))
                sizes;
          })
        labels;
    notes =
      [
        Printf.sprintf "Dmax/|V| = 0.15, K = 2, %d requests per point" requests;
      ];
  }

(* the K > 1 online variant (future-work direction): admitted requests
   vs K under sustained load. The four runs (K ∈ {1,2,3} and the SP
   reference) are independent, so each is a pool point that rebuilds
   the shared network and sequence from one seed. *)
let online_k ?(seed = 1) ?(requests = 800) ?(n = 100) () =
  let tasks = [| `K 1; `K 2; `K 3; `Sp |] in
  let shared = Pool.point_seed ~figure:"ablA4" ~index:0 ~seed in
  let admitted =
    Pool.map ~figure:"ablA4" ~seed (Array.length tasks) (fun ~rng:_ i ->
        let rng = Topology.Rng.create shared in
        let net = Exp_common.network rng ~n in
        let reqs = Workload.Gen.sequence rng net ~count:requests in
        match tasks.(i) with
        | `K k -> Nfv_multicast.Online_multi.run ~k net reqs
        | `Sp -> (Adm.run net Adm.Sp reqs).Adm.admitted)
  in
  let admitted = Array.of_list admitted in
  let ks = [ 1; 2; 3 ] in
  {
    Exp_common.id = "ablA4";
    title = "online multi-server placement: admitted vs K";
    xlabel = "K";
    ylabel = "admitted";
    series =
      [
        {
          Exp_common.label = "Online_Multi";
          points =
            List.mapi
              (fun i k -> (float_of_int k, float_of_int admitted.(i)))
              ks;
        };
        {
          Exp_common.label = "SP";
          points =
            List.map
              (fun k -> (float_of_int k, float_of_int admitted.(3)))
              ks;
        };
      ];
    notes =
      [
        Printf.sprintf
          "n = %d, %d requests; exponential prices, no σ thresholds (the K>1 \
           online setting the paper leaves open)"
          n requests;
      ];
  }

let run ?(seed = 1) ?requests () =
  (cost_model ~seed ?requests () :: k_sweep ~seed ?requests ())
  @ [
      two_cluster ~seed ();
      placement_strategies ~seed ?requests ();
      online_k ~seed ?requests ();
    ]
