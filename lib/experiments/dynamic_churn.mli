(** Dynamic churn sweep: steady-state survival under failures with
    Poisson arrivals {e and} departures, on the paper's two real
    topologies (GÉANT, AS1755). Each grid point runs
    [Nfv_multicast.Dynamic.run] with a time-stamped [Sdn.Fault]
    timeline merged into the event queue: evictions go through the
    repair tier ladder, drops enter a backlog, and every heal triggers
    a proactive restoration pass (smallest-first re-admission). Each
    topology is swept under two failure models drawn from the same
    generator — independent single-link cuts (singleton groups) and
    correlated SRLG cuts (coordinate clusters on GÉANT, a seeded
    partition on AS1755) — so the SRLG rows isolate exactly the cost
    of correlation.

    Determinism: networks, traces, partitions and timelines all derive
    from the per-point RNG; Dynamic/Repair draw no randomness and the
    latency columns are histogram quantiles, exact under the fake
    clock — every column is byte-identical across [--jobs] settings. *)

val spec : Spec.t
(** Registered as ["dynamic_churn"]; figures [dynchA]/[dynchB] (GÉANT
    independent/SRLG) and [dynchC]/[dynchD] (AS1755 independent/SRLG).
    X is the failure rate (cut events per arrival: 0.05, 0.1, 0.2);
    series are [<metric>@<load>] for two load levels, [--requests] and
    its half, with metrics: acceptance ratio, survival, the four
    [repair.*] tiers, restored count, restored fraction of drops, and
    p50/p99 repair latency. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Convenience wrapper: run the spec's instance directly. *)
