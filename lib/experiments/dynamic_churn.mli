(** Dynamic churn sweep: steady-state survival under failures with
    Poisson arrivals {e and} departures, on the paper's two real
    topologies (GÉANT, AS1755). Each grid point runs
    [Nfv_multicast.Dynamic.run] with a time-stamped [Sdn.Fault]
    timeline merged into the event queue: evictions go through the
    repair tier ladder, drops enter a backlog, and every heal triggers
    a proactive restoration pass (smallest-first re-admission). Each
    topology is swept under two failure models drawn from the same
    generator — independent single-link cuts (singleton groups) and
    correlated SRLG cuts (coordinate clusters on GÉANT, a seeded
    partition on AS1755) — so the SRLG rows isolate exactly the cost
    of correlation.

    Determinism: networks, traces, partitions and timelines all derive
    from the per-point RNG; Dynamic/Repair draw no randomness and the
    latency columns are histogram quantiles, exact under the fake
    clock — every column is byte-identical across [--jobs] settings. *)

(** {1 Grid building blocks}

    Exported for the availability sweep ({!Avail}), which re-runs this
    exact grid under non-zero exposure surcharges. Keeping one
    definition of the grid (and running it under {!sweep_key}) is what
    makes the matched-RNG contract hold: equal sweep key and point
    index give equal per-point seeds (see [Pool.point_seed]), so an
    [alpha = 0] avail cell is byte-identical to its dynamic-churn
    counterpart. *)

val nets : (string * char * (Topology.Rng.t -> Sdn.Network.t)) list
(** [(name, figure tag, builder)]: GÉANT ('A') and AS1755 ('C'). *)

val models : (string * bool) list
(** [("ind", false); ("srlg", true)] — whether the fault partition is
    the seeded SRLG clustering or matched singleton groups. *)

val rates : float list
(** Failure events per arrival: the sweep's x axis. *)

val default_requests : int
val mean_holding : float
val srlg_groups : int

val loads_of : int -> int list
(** The two offered-load levels for a [--requests] setting: its half,
    then itself. *)

val metrics : string list
(** Metric names every point result carries, in column order. *)

val sweep_key : string
(** ["dynamic_churn"] — the [Pool.point_seed] figure key. Any sweep
    re-running {!grid} points under this key gets the matched RNGs. *)

val grid :
  int ->
  ((Topology.Rng.t -> Sdn.Network.t) * bool * int * float) array
(** [grid requests] is the canonical point array
    [(make_net, srlg, load, rate)], nets × models × loads × rates in
    that nesting order; index with {!point_index}. *)

val point_index : ni:int -> mi:int -> li:int -> ri:int -> int
(** Flat index of (net, model, load, rate) grid coordinates. *)

val run_point :
  ?alpha:float ->
  ?reserve:float ->
  ?restore:Nfv_multicast.Restore.t ->
  ?mean_holding:float ->
  ?heal_div:float ->
  make_net:(Topology.Rng.t -> Sdn.Network.t) ->
  srlg:bool ->
  load:int ->
  rate:float ->
  rng:Topology.Rng.t ->
  unit ->
  Spec.point_result
(** One grid point: build the network, trace, partition and timeline
    from [rng], run [Dynamic.run] and report {!metrics}. [alpha] /
    [reserve] (defaults [0.]) switch on availability-aware pricing
    ({!Nfv_multicast.Online_cp.make_avail} over the same partition the
    timeline cuts); both zero pass no [?srlg] at all, so the point is
    bit-for-bit the baseline. [restore] swaps the restoration policy of
    the simulator's backlog pass (omitted: the default smallest-first
    heal-only pass, again bit-for-bit the baseline) — the {!Restore}
    family's treatment lever. [mean_holding] (default {!mean_holding})
    and [heal_div] (outages heal [horizon / heal_div] after striking;
    default [4.]) reshape the holding-time-vs-outage-length ratio —
    the {!Restore} family's stressed cells lengthen holdings and
    shorten outages so dropped sessions are still live at heal time
    and the returned capacity is contended. *)

val spec : Spec.t
(** Registered as ["dynamic_churn"]; figures [dynchA]/[dynchB] (GÉANT
    independent/SRLG) and [dynchC]/[dynchD] (AS1755 independent/SRLG).
    X is the failure rate (cut events per arrival: 0.05, 0.1, 0.2);
    series are [<metric>@<load>] for two load levels, [--requests] and
    its half, with metrics: acceptance ratio, survival, the four
    [repair.*] tiers, restored count, restored fraction of drops, and
    p50/p99 repair latency. *)

val run : ?seed:int -> ?requests:int -> unit -> Exp_common.figure list
(** Convenience wrapper: run the spec's instance directly. *)
