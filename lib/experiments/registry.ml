(* The one list every frontend enumerates. Order is presentation order:
   the paper's figures first, then the ablations and extensions, then
   the stress and churn telemetry sweeps. *)
let all : Spec.t list =
  [
    Fig5.spec;
    Fig6.spec;
    Fig7.spec;
    Fig8.spec;
    Fig9.spec;
    Ablation.spec;
    Dynamic_load.spec;
    Batch_order.spec;
    Delay_exp.spec;
    Table_exp.spec;
    Stress.spec;
    Churn.spec;
    Dynamic_churn.spec;
    Avail.spec;
    Restore.spec;
  ]

let ids = List.map (fun s -> s.Spec.id) all
let find id = List.find_opt (fun s -> String.equal s.Spec.id id) all
