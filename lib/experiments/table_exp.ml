module Adm = Nfv_multicast.Admission
module Rb = Nfv_multicast.Rule_budget

let algos = [ Adm.Online_cp_no_threshold; Adm.Sp ]
let capacities = [ 25; 50; 100; 200; 400 ]

(* One pool point = one per-switch rule capacity; both algorithms admit
   the same sequence under that budget, so they stay inside the point. *)

let run ?(seed = 1) ?(n = 100) ?(requests = 400) () =
  let caps_a = Array.of_list capacities in
  let points =
    Pool.map ~figure:"table" ~seed (Array.length caps_a) (fun ~rng i ->
        let cap = caps_a.(i) in
        let net = Exp_common.network rng ~n in
        let reqs = Workload.Gen.sequence rng net ~count:requests in
        List.map
          (fun algo ->
            Sdn.Network.reset net;
            let budget = Rb.create net ~capacity:cap in
            List.fold_left
              (fun k r ->
                match Rb.admit budget net algo r with
                | Ok _ -> k + 1
                | Error _ -> k)
              0 reqs)
          algos)
  in
  let points = Array.of_list points in
  [
    {
      Exp_common.id = "tableA";
      title = "forwarding-table budgets: admitted vs per-switch capacity";
      xlabel = "rules per switch";
      ylabel = "admitted";
      series =
        List.mapi
          (fun ai a ->
            {
              Exp_common.label = Adm.algorithm_to_string a;
              points =
                List.mapi
                  (fun ci cap ->
                    ( float_of_int cap,
                      float_of_int (List.nth points.(ci) ai) ))
                  capacities;
            })
          algos;
      notes = [ Printf.sprintf "n = %d, %d requests, K = 1" n requests ];
    };
  ]
