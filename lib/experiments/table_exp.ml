module Adm = Nfv_multicast.Admission
module Rb = Nfv_multicast.Rule_budget

let algos = [ Adm.Online_cp_no_threshold; Adm.Sp ]
let capacities = [ 25; 50; 100; 200; 400 ]

(* One pool point = one per-switch rule capacity; both algorithms admit
   the same sequence under that budget, so they stay inside the point. *)

let instance ?(n = 100) ?(requests = 400) () =
  let caps_a = Array.of_list capacities in
  let sweep =
    {
      Spec.key = "table";
      points = Array.length caps_a;
      point =
        (fun ~rng i ->
          let cap = caps_a.(i) in
          let net = Exp_common.network rng ~n in
          let reqs = Workload.Gen.sequence rng net ~count:requests in
          List.map
            (fun algo ->
              Sdn.Network.reset net;
              let budget = Rb.create net ~capacity:cap in
              let k =
                List.fold_left
                  (fun k r ->
                    match Rb.admit budget net algo r with
                    | Ok _ -> k + 1
                    | Error _ -> k)
                  0 reqs
              in
              ("adm_" ^ Adm.algorithm_to_string algo, float_of_int k))
            algos);
    }
  in
  let figures =
    [
      {
        Spec.fid = "tableA";
        title = "forwarding-table budgets: admitted vs per-switch capacity";
        xlabel = "rules per switch";
        ylabel = "admitted";
        series =
          List.map
            (fun a ->
              let name = Adm.algorithm_to_string a in
              {
                Spec.label = name;
                cells =
                  List.mapi
                    (fun ci cap ->
                      {
                        Spec.x = float_of_int cap;
                        sweep = 0;
                        point = ci;
                        metric = "adm_" ^ name;
                      })
                    capacities;
              })
            algos;
        notes = [ Printf.sprintf "n = %d, %d requests, K = 1" n requests ];
      };
    ]
  in
  { Spec.sweeps = [ sweep ]; figures }

let spec =
  Spec.make ~id:"tables"
    ~doc:"Extension: per-switch forwarding-table budgets"
    ~figure_ids:[ "tableA" ] ~default_requests:400
    (fun ~seed:_ ~requests -> instance ?requests ())

let run ?(seed = 1) ?n ?requests () =
  Runner.figures ~seed (instance ?n ?requests ())
