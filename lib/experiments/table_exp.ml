module Adm = Nfv_multicast.Admission
module Rb = Nfv_multicast.Rule_budget

let algos = [ Adm.Online_cp_no_threshold; Adm.Sp ]
let capacities = [ 25; 50; 100; 200; 400 ]

let run ?(seed = 1) ?(n = 100) ?(requests = 400) () =
  let acc = Hashtbl.create 4 in
  List.iter (fun a -> Hashtbl.replace acc a []) algos;
  List.iter
    (fun cap ->
      let rng = Topology.Rng.create seed in
      let net = Exp_common.network rng ~n in
      let reqs = Workload.Gen.sequence rng net ~count:requests in
      List.iter
        (fun algo ->
          Sdn.Network.reset net;
          let budget = Rb.create net ~capacity:cap in
          let admitted =
            List.fold_left
              (fun k r ->
                match Rb.admit budget net algo r with
                | Ok _ -> k + 1
                | Error _ -> k)
              0 reqs
          in
          Hashtbl.replace acc algo
            ((float_of_int cap, float_of_int admitted) :: Hashtbl.find acc algo))
        algos)
    capacities;
  [
    {
      Exp_common.id = "tableA";
      title = "forwarding-table budgets: admitted vs per-switch capacity";
      xlabel = "rules per switch";
      ylabel = "admitted";
      series =
        List.map
          (fun a ->
            {
              Exp_common.label = Adm.algorithm_to_string a;
              points = List.rev (Hashtbl.find acc a);
            })
          algos;
      notes = [ Printf.sprintf "n = %d, %d requests, K = 1" n requests ];
    };
  ]
