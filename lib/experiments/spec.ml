type point_result = (string * float) list

type sweep = {
  key : string;
  points : int;
  point : rng:Topology.Rng.t -> int -> point_result;
}

type cell = {
  x : float;
  sweep : int;
  point : int;
  metric : string;
}

type series_def = {
  label : string;
  cells : cell list;
}

type figure_def = {
  fid : string;
  title : string;
  xlabel : string;
  ylabel : string;
  notes : string list;
  series : series_def list;
}

type instance = {
  sweeps : sweep list;
  figures : figure_def list;
}

type t = {
  id : string;
  doc : string;
  figure_ids : string list;
  default_requests : int option;
  instance : seed:int -> requests:int option -> instance;
}

let make ~id ~doc ~figure_ids ?default_requests instance =
  { id; doc; figure_ids; default_requests; instance }

let concat_instances insts =
  let _, sweeps_rev, figures_rev =
    List.fold_left
      (fun (off, sweeps, figures) inst ->
        let shift (c : cell) = { c with sweep = c.sweep + off } in
        let shifted =
          List.map
            (fun (f : figure_def) ->
              {
                f with
                series =
                  List.map
                    (fun s -> { s with cells = List.map shift s.cells })
                    f.series;
              })
            inst.figures
        in
        ( off + List.length inst.sweeps,
          List.rev_append inst.sweeps sweeps,
          List.rev_append shifted figures ))
      (0, [], []) insts
  in
  { sweeps = List.rev sweeps_rev; figures = List.rev figures_rev }

(* a declared-shape error is a bug in the spec, not in the runner; fail
   with enough context to find the bad cell *)
let lookup results c =
  let sweep_results =
    try results.(c.sweep)
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "Spec: cell references sweep %d of %d" c.sweep
           (Array.length results))
  in
  let point_result =
    try sweep_results.(c.point)
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "Spec: cell references point %d of sweep %d" c.point
           c.sweep)
  in
  match List.assoc_opt c.metric point_result with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Spec: sweep %d point %d declared no metric %S" c.sweep
         c.point c.metric)

let assemble inst results =
  List.map
    (fun (f : figure_def) ->
      {
        Exp_common.id = f.fid;
        title = f.title;
        xlabel = f.xlabel;
        ylabel = f.ylabel;
        series =
          List.map
            (fun s ->
              {
                Exp_common.label = s.label;
                points = List.map (fun c -> (c.x, lookup results c)) s.cells;
              })
            f.series;
        notes = f.notes;
      })
    inst.figures
