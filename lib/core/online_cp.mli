(** Algorithm 2, [Online_CP]: online admission of NFV-enabled multicast
    requests with K = 1 and an O(log |V|) competitive ratio (§V).

    Per request: compute normalised exponential weights
    [w_e(k) = β^{1−B_e(k)/B_e} − 1] and [w_v(k) = α^{1−C_v(k)/C_v} − 1];
    for every server [v] below the node threshold, find a KMB Steiner
    tree over [{s_k, v} ∪ D_k]; check the edge threshold; account for the
    processed packet's backtrack from [v] to the aggregate lowest common
    ancestor [u = LCA(v, d_1, …)] (step 10); admit the cheapest
    candidate and reserve its resources.

    The [`Linear] mode replaces the exponential weights by load-oblivious
    unit costs and disables the thresholds — the ablation showing why the
    exponential model balances load (§V-A). *)

type params = {
  alpha : float;    (** node cost base, paper: 2|V| *)
  beta : float;     (** edge cost base, paper: 2|V| *)
  sigma_v : float;  (** node admission threshold, paper: |V| − 1 *)
  sigma_e : float;  (** edge admission threshold, paper: |V| − 1 *)
}

val default_params : Sdn.Network.t -> params

type rejection =
  | No_feasible_server   (** Case 1: computing residual insufficient everywhere *)
  | Unreachable          (** Case 2: no tree under the bandwidth residuals *)
  | Server_unreachable
      (** Case 2': destinations reachable from the source, but no usable
          server is — previously misreported as {!Unreachable}, which
          corrupted the [online_cp.rejected.*] attribution *)
  | Over_threshold       (** Case 3: every candidate violated σ_v or σ_e *)
  | Unallocatable        (** trees found but none could atomically reserve *)

val rejection_to_string : rejection -> string

type admitted = {
  tree : Pseudo_tree.t;
  server : int;
  lca : int;           (** the backtrack target [u] *)
  score : float;       (** normalised weight of the admitted structure *)
}

type outcome = Admitted of admitted | Rejected of rejection

(** {1 Availability-aware pricing}

    Admission is otherwise blind to the failure model the dynamic
    simulator injects: it prices links only by their own residuals, so
    correlated SRLG cuts land on trees that were routed straight through
    one shared-risk group. An {!avail} value — built from a
    {!Sdn.Fault.srlg_partition} (or any disjoint link grouping) — makes
    the failure model part of the price:

    - {e exposure surcharge}: each grouped link's traversal weight gains
      [alpha × exposure(group)], where exposure is the allocated
      fraction of the group's aggregate bandwidth (live traffic already
      riding the shared-risk group; confiscated capacity counts, so a
      group with an active fault reads heavily exposed). Exposure is
      derived from residuals alone and cached per
      {!Sdn.Network.weight_epoch}, so surcharged weights remain pure
      between equal epoch readings — {!Sp_window}'s exactness contract
      survives because {!weight_family} forks the engine family (stamp +
      [alpha] bits) exactly when the surcharge changes the weights.
    - {e spare-capacity floor}: with [reserve = r > 0], a candidate tree
      whose allocation would leave a touched group's aggregate residual
      below [r × group capacity] is rejected before allocating
      (telemetry: [avail.reserve_blocked]); a request whose every
      candidate is blocked rejects as {!Unallocatable}.

    With [alpha = 0] the surcharge term is never evaluated and the
    family key is unchanged; with [reserve = 0] the floor never fires —
    admission under such an [avail] is {e bit-identical} to the baseline
    (equivalence property in [test/test_avail.ml], same pattern as
    [?prune:false]). The [pruned.*] lower-bound screen stays sound under
    any [alpha]: the surcharge only adds non-negative per-edge terms, so
    [dist s v + w_v] under surcharged distances still lower-bounds the
    surcharged candidate score. *)

type avail
(** An SRLG-exposure pricing configuration over one network. *)

val make_avail :
  ?alpha:float ->
  ?reserve:float ->
  Sdn.Network.t ->
  int list array ->
  avail
(** [make_avail ~alpha ~reserve net groups] over disjoint link groups
    (empty groups are dropped; links absent from every group carry no
    surcharge and no floor). Defaults [alpha = 0.] and [reserve = 0.] —
    the provably-neutral configuration. Raises [Invalid_argument] when
    [alpha] is negative or non-finite, [reserve] is outside [0, 1), an
    edge id is out of range, or an edge appears in two groups. *)

val avail_alpha : avail -> float
val avail_reserve : avail -> float
val avail_group_count : avail -> int
(** Number of (non-empty) groups after normalization. *)

val avail_group_of : avail -> int -> int
(** Group index of an edge, [-1] for ungrouped or out-of-range ids. *)

val exposure : avail -> Sdn.Network.t -> int -> float
(** Allocated fraction of a group's aggregate bandwidth, in [[0, 1]]
    ([Σ (capacity − residual) / Σ capacity] over the group's links).
    Cached per {!Sdn.Network.weight_epoch}; the first read after an
    epoch bump refreshes every group (telemetry:
    [avail.exposure_refreshes]). *)

val reserve_admits : avail -> Sdn.Network.t -> Sdn.Network.allocation -> bool
(** Whether committing the allocation would keep every touched group's
    aggregate residual at or above [reserve × group capacity] (with the
    usual relative ULP slack). Always [true] when [reserve = 0]. *)

val reserve_admits_after :
  avail -> Sdn.Network.t -> Sdn.Network.allocation -> bool
(** The committed-view twin of {!reserve_admits}: the allocation is
    {e already} on the network, and the touched groups' residuals are
    checked as they stand (same floor, same ULP slack). Lets a caller
    that has just allocated test the floor without releasing and
    re-committing — the release/re-allocate dance bumps the weight
    epoch twice and flushes every {!Sp_window} engine even when the
    floor passes. Always [true] when [reserve = 0]. *)

(** {1 Pricing surface}

    The exact weight model {!admit} prices against, exported so other
    components (notably {!Repair}) can search with {e identical} prices
    and share {!Sp_window} engine families with admission — same family
    string + same weight closure at an equal epoch means the window's
    exactness contract lets cached Dijkstra trees flow both ways. *)

val link_weight :
  ?avail:avail ->
  mode:[ `Exponential | `Linear ] ->
  params:params ->
  Sdn.Network.t ->
  bandwidth:float ->
  int ->
  float
(** Traversal weight of one link for a request needing [bandwidth] Mbps:
    [infinity] when the residual cannot admit the bandwidth, otherwise
    the exponential ([β^{1−B_e(k)/B_e} − 1]) or linear unit cost, plus
    the hop epsilon that breaks zero-load ties toward fewer hops, plus —
    with [avail] at [alpha > 0] — the exposure surcharge
    [alpha × exposure(group)] on grouped links. Reads residual state —
    pure only between equal {!Sdn.Network.weight_epoch} readings (the
    exposure cache is keyed on the same epoch). *)

val server_weight :
  mode:[ `Exponential | `Linear ] ->
  params:params ->
  Sdn.Network.t ->
  demand:float ->
  int ->
  float
(** Placement weight of one server for a consolidated chain demand of
    [demand] MHz (exponential node weight, or unit cost × demand in
    [`Linear] mode). *)

val weight_family :
  ?avail:avail ->
  mode:[ `Exponential | `Linear ] ->
  params:params ->
  unit ->
  string
(** The {!Sp_window} family key under which {!admit} registers engines
    for {!link_weight} closures with these parameters ([β]'s bits are
    folded into the exponential key, so distinct params never share an
    engine). With [avail] at [alpha > 0] the key additionally carries
    the avail value's unique stamp and [alpha]'s bits — surcharged
    closures never share an engine with baseline ones, and two distinct
    [avail] values never share with each other; at [alpha = 0] the key
    is the baseline key, because the closures are extensionally equal. *)

val slack : float -> float
(** [slack x] relaxes a score bound by one part in 10⁹ (ULP drift guard):
    pruning a candidate only when its lower bound exceeds
    [slack incumbent] can never discard a candidate exact arithmetic
    would keep. Shared by admission's candidate pruning and Repair's
    migration screening. *)

val admit :
  ?mode:[ `Exponential | `Linear ] ->
  ?params:params ->
  ?window:Sp_window.t ->
  ?prune:bool ->
  ?avail:avail ->
  Sdn.Network.t ->
  Sdn.Request.t ->
  outcome
(** Decide one request; on admission the network's residuals are
    reduced by the tree's allocation.

    [?window] (default: a private per-request engine) lets an admission
    run share shortest-path engines across requests — cached Dijkstra
    trees survive from one admit to the next as long as the weight epoch
    does not move (see {!Sp_window} for why this is exact).

    [?prune] (default [true]) enables incumbent-based candidate-server
    pruning: usable servers are screened by the lower bound
    [dist s v + w_v] and only priced (KMB tree + backtrack) when the
    bound could still beat the best complete candidate. The bound is a
    true lower bound on the candidate score, so pruning is exact — the
    admitted tree, the allocation, and the rejection reason are
    identical with pruning on or off; only the [online_cp.pruned.*]
    telemetry and the amount of work differ. [?prune:false] exists for
    the equivalence tests and A/B telemetry.

    [?avail] (default: none) enables availability-aware pricing: the
    exposure surcharge joins the link weights (and the engine family
    key) and the spare-capacity floor gates each allocation attempt —
    see the {!avail} section above for the exactness and equivalence
    guarantees. *)
