(** Algorithm 2, [Online_CP]: online admission of NFV-enabled multicast
    requests with K = 1 and an O(log |V|) competitive ratio (§V).

    Per request: compute normalised exponential weights
    [w_e(k) = β^{1−B_e(k)/B_e} − 1] and [w_v(k) = α^{1−C_v(k)/C_v} − 1];
    for every server [v] below the node threshold, find a KMB Steiner
    tree over [{s_k, v} ∪ D_k]; check the edge threshold; account for the
    processed packet's backtrack from [v] to the aggregate lowest common
    ancestor [u = LCA(v, d_1, …)] (step 10); admit the cheapest
    candidate and reserve its resources.

    The [`Linear] mode replaces the exponential weights by load-oblivious
    unit costs and disables the thresholds — the ablation showing why the
    exponential model balances load (§V-A). *)

type params = {
  alpha : float;    (** node cost base, paper: 2|V| *)
  beta : float;     (** edge cost base, paper: 2|V| *)
  sigma_v : float;  (** node admission threshold, paper: |V| − 1 *)
  sigma_e : float;  (** edge admission threshold, paper: |V| − 1 *)
}

val default_params : Sdn.Network.t -> params

type rejection =
  | No_feasible_server   (** Case 1: computing residual insufficient everywhere *)
  | Unreachable          (** Case 2: no tree under the bandwidth residuals *)
  | Server_unreachable
      (** Case 2': destinations reachable from the source, but no usable
          server is — previously misreported as {!Unreachable}, which
          corrupted the [online_cp.rejected.*] attribution *)
  | Over_threshold       (** Case 3: every candidate violated σ_v or σ_e *)
  | Unallocatable        (** trees found but none could atomically reserve *)

val rejection_to_string : rejection -> string

type admitted = {
  tree : Pseudo_tree.t;
  server : int;
  lca : int;           (** the backtrack target [u] *)
  score : float;       (** normalised weight of the admitted structure *)
}

type outcome = Admitted of admitted | Rejected of rejection

(** {1 Pricing surface}

    The exact weight model {!admit} prices against, exported so other
    components (notably {!Repair}) can search with {e identical} prices
    and share {!Sp_window} engine families with admission — same family
    string + same weight closure at an equal epoch means the window's
    exactness contract lets cached Dijkstra trees flow both ways. *)

val link_weight :
  mode:[ `Exponential | `Linear ] ->
  params:params ->
  Sdn.Network.t ->
  bandwidth:float ->
  int ->
  float
(** Traversal weight of one link for a request needing [bandwidth] Mbps:
    [infinity] when the residual cannot admit the bandwidth, otherwise
    the exponential ([β^{1−B_e(k)/B_e} − 1]) or linear unit cost, plus
    the hop epsilon that breaks zero-load ties toward fewer hops. Reads
    residual state — pure only between equal {!Sdn.Network.weight_epoch}
    readings. *)

val server_weight :
  mode:[ `Exponential | `Linear ] ->
  params:params ->
  Sdn.Network.t ->
  demand:float ->
  int ->
  float
(** Placement weight of one server for a consolidated chain demand of
    [demand] MHz (exponential node weight, or unit cost × demand in
    [`Linear] mode). *)

val weight_family :
  mode:[ `Exponential | `Linear ] -> params:params -> string
(** The {!Sp_window} family key under which {!admit} registers engines
    for {!link_weight} closures with these parameters ([β]'s bits are
    folded into the exponential key, so distinct params never share an
    engine). *)

val slack : float -> float
(** [slack x] relaxes a score bound by one part in 10⁹ (ULP drift guard):
    pruning a candidate only when its lower bound exceeds
    [slack incumbent] can never discard a candidate exact arithmetic
    would keep. Shared by admission's candidate pruning and Repair's
    migration screening. *)

val admit :
  ?mode:[ `Exponential | `Linear ] ->
  ?params:params ->
  ?window:Sp_window.t ->
  ?prune:bool ->
  Sdn.Network.t ->
  Sdn.Request.t ->
  outcome
(** Decide one request; on admission the network's residuals are
    reduced by the tree's allocation.

    [?window] (default: a private per-request engine) lets an admission
    run share shortest-path engines across requests — cached Dijkstra
    trees survive from one admit to the next as long as the weight epoch
    does not move (see {!Sp_window} for why this is exact).

    [?prune] (default [true]) enables incumbent-based candidate-server
    pruning: usable servers are screened by the lower bound
    [dist s v + w_v] and only priced (KMB tree + backtrack) when the
    bound could still beat the best complete candidate. The bound is a
    true lower bound on the candidate score, so pruning is exact — the
    admitted tree, the allocation, and the rejection reason are
    identical with pruning on or off; only the [online_cp.pruned.*]
    telemetry and the amount of work differ. [?prune:false] exists for
    the equivalence tests and A/B telemetry. *)
