(** Tiered recovery of admitted multicast trees after a failure.

    When {!Sdn.Fault} takes a link or an NFV server down, every session
    whose pseudo-multicast tree touched the failed resource is evicted:
    its allocation has already been released in full, but its request is
    still live. [repair] tries to restore service with escalating
    effort, preferring the cheapest change to the running tree:

    + {e Local patch} ({!Patched}) — keep the surviving part of the old
      tree and re-attach every severed destination/server through
      current shortest paths (the same {!Sp_window} engines admission
      uses, so cached Dijkstra trees are shared).
    + {e Server migration} ({!Migrated}) — keep the surviving tree
      spanning the destinations but move the service chain to a new
      server, chosen by the pruned candidate machinery of
      {!Online_cp} (distance-lower-bound screening with the same ULP
      {!Online_cp.slack} guard).
    + {e Full re-admission} ({!Readmitted}) — forget the old tree and
      run {!Admission.admit_tree} from scratch.

    Each tier is budgeted (see {!budget}) and instrumented; a request
    that no tier can restore is {!Dropped} with nothing allocated.

    {2 Preconditions and exactness}

    The victim's old allocation must already be {e fully released}
    (exactly what {!Sdn.Fault.inject} guarantees), and failed resources
    must be unavailable in the network itself — Fault's confiscation
    leaves them with zero residual, so every weight function prices them
    at [infinity] and no tier can route through them. The [link_down] /
    [server_down] predicates only tell repair {e which parts of the old
    tree} to treat as lost; they do not influence pricing. On success
    the returned tree's allocation has been atomically committed; on
    {!Dropped} the network is exactly as the failure left it.

    {2 Determinism}

    Repair reads no clock (telemetry aside) and draws no randomness:
    candidate orders are (score, id)-sorted with fixed tie-breaks, so a
    given (network state, victim, predicates) always yields the same
    outcome — the property the churn experiment's [--jobs] invariance
    rests on.

    {2 Telemetry}

    Counters [repair.attempted], [repair.patched], [repair.migrated],
    [repair.readmitted], [repair.dropped] (every attempt increments
    exactly one terminal counter, so the four outcomes sum to
    [repair.attempted]) and [repair.migrate.pruned] for candidates
    screened out by the lower bound; span histograms [repair.patch],
    [repair.migrate], [repair.readmit] time each tier and
    [repair.attempt] the whole call. *)

type tier =
  | Patched  (** tier 1: severed subtrees re-attached, server kept *)
  | Migrated  (** tier 2: surviving tree kept, service chain moved *)
  | Readmitted  (** tier 3: fresh admission, old structure discarded *)

val tier_to_string : tier -> string

type outcome =
  | Repaired of { tree : Pseudo_tree.t; tier : tier }
      (** the new tree's resources are reserved in the network *)
  | Dropped of string  (** no tier succeeded; nothing is allocated *)

type budget = {
  max_patch_paths : int;
      (** tier 1 gives up when more than this many severed terminals
          need re-attaching *)
  max_migrate_candidates : int;
      (** tier 2 prices at most this many candidate servers (the
          bound-sorted prefix) *)
  allow_readmit : bool;  (** whether tier 3 may run at all *)
}

val default_budget : budget
(** [{ max_patch_paths = 8; max_migrate_candidates = 16;
      allow_readmit = true }]. *)

val repair :
  ?budget:budget ->
  ?algo:Admission.algorithm ->
  ?window:Sp_window.t ->
  ?avail:Online_cp.avail ->
  link_down:(int -> bool) ->
  server_down:(int -> bool) ->
  Sdn.Network.t ->
  Pseudo_tree.t ->
  outcome
(** [repair ~link_down ~server_down net victim] attempts the tiers in
    order on an evicted tree whose allocation is already released.
    [algo] (default {!Admission.Online_cp}) selects the pricing model:
    tiers 1–2 price links and servers with {!Online_cp.link_weight} /
    {!Online_cp.server_weight} in the matching mode, and tier 3 runs
    {!Admission.admit_tree} with the same algorithm
    ({!Admission.Online_cp_no_threshold} reuses
    {!Admission.no_threshold_params}). [window] shares shortest-path
    engines with the surrounding admission run — repair registers its
    engines under {!Online_cp.weight_family}, so patching after an
    admission burst starts from warm Dijkstra trees.

    [avail] threads availability-aware pricing through every tier:
    tiers 1–2 search under the surcharged link weights (and register
    their engines under the forked family, so they keep sharing with
    the surrounding availability-aware admission), and tier 3 passes it
    to {!Admission.admit_tree} — so re-admission is gated by the
    spare-capacity floor like any fresh admission. Tiers 1–2 allocate
    directly and are deliberately {e exempt} from the floor: keeping an
    evicted session alive in place outranks preserving headroom. With
    [alpha = 0] and no reserve the repair outcomes are bit-identical to
    the baseline, as for admission. *)
