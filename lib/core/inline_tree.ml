module G = Mcgraph.Graph
module Tree = Mcgraph.Tree
module Sp = Mcgraph.Sp_engine

let derive net request ~tree ~servers =
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let weight e = b *. Sdn.Network.link_unit_cost net e in
  let s = request.Sdn.Request.source in
  match Tree.of_edges g ~root:s tree with
  | exception Invalid_argument m -> Error ("not a tree rooted at the source: " ^ m)
  | rooted ->
    if servers = [] then Error "no servers supplied"
    else if not (List.for_all (Sdn.Network.is_server net) servers) then
      Error "a supplied node is not a server"
    else if not (List.for_all (Tree.mem rooted) servers) then
      Error "a supplied server is off the tree"
    else if
      not (List.for_all (Tree.mem rooted) request.Sdn.Request.destinations)
    then Error "a destination is off the tree"
    else begin
      let path_cost edges = List.fold_left (fun a e -> a +. weight e) 0.0 edges in
      (* each destination goes to its tree-nearest server *)
      let assign d =
        let best =
          List.fold_left
            (fun best v ->
              let p = Tree.path_between rooted v d in
              let c = path_cost p in
              match best with
              | Some (c', _, _) when c' <= c -> best
              | _ -> Some (c, v, p))
            None servers
        in
        match best with
        | Some (_, v, p) -> (d, v, p)
        | None -> assert false
      in
      let assignments = List.map assign request.Sdn.Request.destinations in
      let used =
        List.sort_uniq compare (List.map (fun (_, v, _) -> v) assignments)
      in
      (* unprocessed flow: the union of tree paths source → used server *)
      let t0 = Hashtbl.create 16 in
      List.iter
        (fun v ->
          List.iter
            (fun e -> Hashtbl.replace t0 e ())
            (Tree.path_up rooted v ~ancestor:s))
        used;
      (* processed flows: per server, the union of its fan-out paths *)
      let floods = Hashtbl.create 4 in
      List.iter (fun v -> Hashtbl.replace floods v (Hashtbl.create 16)) used;
      List.iter
        (fun (_, v, p) ->
          let fl = Hashtbl.find floods v in
          List.iter (fun e -> Hashtbl.replace fl e ()) p)
        assignments;
      let uses =
        Hashtbl.fold (fun e () acc -> e :: acc) t0 []
        @ List.concat_map
            (fun v -> Hashtbl.fold (fun e () acc -> e :: acc) (Hashtbl.find floods v) [])
            used
      in
      let routes =
        List.map
          (fun (d, v, p) ->
            let to_server = List.rev (Tree.path_up rooted v ~ancestor:s) in
            (d, { Pseudo_tree.to_server; server = v; onward = p }))
          assignments
      in
      Ok
        (Pseudo_tree.make ~request ~servers:used
           ~edge_uses:(Pseudo_tree.edge_uses_of_list uses)
           ~routes)
    end

type result = {
  tree : Pseudo_tree.t;
  servers : int list;
  cost : float;
}

let solve ?(k = 1) net request =
  if k < 1 then invalid_arg "Inline_tree.solve: K must be at least 1";
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let weight e = b *. Sdn.Network.link_unit_cost net e in
  let s = request.Sdn.Request.source in
  let terminals = s :: request.Sdn.Request.destinations in
  match Mcgraph.Steiner.kmb g ~weight ~terminals with
  | None -> Error "destinations unreachable"
  | Some base_tree ->
    let in_tree = Hashtbl.create 32 in
    Hashtbl.replace in_tree s ();
    List.iter
      (fun e ->
        let u, v = G.endpoints g e in
        Hashtbl.replace in_tree u ();
        Hashtbl.replace in_tree v ())
      base_tree;
    (* attachment path for off-tree servers: shortest path cut at the
       first node already on the tree. The lazy engine computes one tree
       per off-tree server (for the distances) plus one per chosen
       attachment point (for the path) — not one per graph node *)
    let eng =
      Sp.create g ~weight ~epoch:(fun () -> Sdn.Network.weight_epoch net)
    in
    let attach v =
      if Hashtbl.mem in_tree v then Some []
      else begin
        let best =
          Hashtbl.fold
            (fun x () best ->
              let d = Sp.dist eng v x in
              match best with
              | Some (d', _) when d' <= d -> best
              | _ when d = infinity -> best
              | _ -> Some (d, x))
            in_tree None
        in
        match best with
        | None -> None
        | Some (_, x) -> (
          match Sp.path eng x v with
          | None -> None
          | Some p ->
            (* cut at the first departure from the tree *)
            let rec take node acc = function
              | [] -> List.rev acc
              | e :: rest ->
                let nxt = G.other_endpoint g e node in
                if Hashtbl.mem in_tree nxt && nxt <> v then take nxt [] rest
                else take nxt (e :: acc) rest
            in
            Some (take x [] p))
      end
    in
    let candidates =
      List.filter_map
        (fun v -> Option.map (fun p -> (v, p)) (attach v))
        (Sdn.Network.servers net)
    in
    if candidates = [] then Error "no attachable server"
    else begin
      let best = ref None in
      Combinations.iter_subsets_up_to candidates k (fun subset ->
          let extended =
            List.sort_uniq compare
              (base_tree @ List.concat_map snd subset)
          in
          (* extensions may close cycles with each other; re-tree *)
          let treed = Mcgraph.Mst.kruskal_subset g ~weight ~edges:extended in
          let on_tree = Hashtbl.create 16 in
          List.iter
            (fun e ->
              let u, v = G.endpoints g e in
              Hashtbl.replace on_tree u ();
              Hashtbl.replace on_tree v ())
            treed;
          let servers =
            List.filter (fun (v, _) -> Hashtbl.mem on_tree v) subset
            |> List.map fst
          in
          if servers <> [] then
            match derive net request ~tree:treed ~servers with
            | Error _ -> ()
            | Ok pt ->
              let c = Pseudo_tree.cost net pt in
              (match !best with
              | Some (c', _) when c' <= c -> ()
              | _ -> best := Some (c, pt)))
        ;
      match !best with
      | None -> Error "no feasible in-line placement"
      | Some (c, pt) ->
        Ok { tree = pt; servers = pt.Pseudo_tree.servers; cost = c }
    end
