(** The paper's §III-B construction (Fig. 3): in-line servers on a
    multicast tree.

    Given a multicast tree rooted at the source and a set of servers
    lying on it, the data stream flows down the tree, is processed at a
    server {e in line}, and processed copies backtrack through tree
    ancestors to reach destinations on other branches — the
    pseudo-multicast tree [G_T] of the paper. [derive] performs exactly
    this derivation (each destination served by its tree-nearest chosen
    server); [solve] is the heuristic built on it: KMB multicast tree
    over [{s_k} ∪ D_k] first, chain placement grafted second. This is
    the "place the NFV on the tree" family the paper contrasts
    Appro_Multi's joint optimisation against. *)

val derive :
  Sdn.Network.t ->
  Sdn.Request.t ->
  tree:int list ->
  servers:int list ->
  (Pseudo_tree.t, string) result
(** [tree] must be a tree (edge ids) containing the source and all
    destinations; [servers] must be network servers lying on the tree.
    Each destination is assigned the server with the cheapest tree path
    to it; servers serving no destination are dropped. *)

type result = {
  tree : Pseudo_tree.t;
  servers : int list;
  cost : float;
}

val solve : ?k:int -> Sdn.Network.t -> Sdn.Request.t -> (result, string) Stdlib.result
(** Build a KMB multicast tree over [{s_k} ∪ D_k]; if a candidate server
    is off the tree, extend the tree with its shortest attachment path;
    evaluate every combination of at most [k] (default 1) servers via
    [derive] and keep the cheapest. *)
