(** Window-scoped shortest-path engine cache for batched admission.

    The online algorithms price each request with a per-request weight
    function and run lazy Dijkstras through {!Mcgraph.Sp_engine}. Before
    this module each admit created a {e fresh} engine, so cached trees
    never survived from one request to the next even when nothing about
    the network had changed — exactly the case after a rejection, which
    leaves {!Sdn.Network.weight_epoch} untouched. A window is created
    once per admission run ({!Admission.run}, {!Batch.plan}) and hands
    each admit an engine that persists across requests; only an
    [allocate]/[release]/[reset] that actually bumps the epoch causes
    the engine's cached trees to be swept (by the epoch contract of
    {!Mcgraph.Sp_engine}).

    {2 Exactness contract}

    Sharing is exact, not heuristic: two admits may share an engine only
    when their weight functions are {e extensionally equal}. The cache
    key has two parts the caller must choose accordingly:

    - [family] encodes everything that distinguishes weight functions
      {e other} than bandwidth-feasibility pruning: the algorithm and
      mode, plus any parameter the closure reads (callers embed e.g.
      [Int64.bits_of_float beta] in the string when a numeric parameter
      scales the weights). Availability-aware pricing follows the same
      discipline: {!Online_cp.weight_family} appends an
      ["+avail:<stamp>:<alpha-bits>"] token whenever an
      {!Online_cp.avail} with [alpha > 0] is in force, so surcharged
      and baseline weight functions never share an engine, and two
      distinct partitions (distinct stamps) never alias even at equal
      [alpha]. The surcharge itself is a per-epoch constant per link
      (group exposures are recomputed only when the weight epoch
      bumps), so within one epoch the keyed closure stays extensionally
      stable — the exactness argument below is unchanged.
    - [bucket] encodes the bandwidth-feasibility pruning itself: weight
      functions price a link at infinity when
      [not (Sdn.Network.link_admits net e b)]. Within one epoch the
      pruned set is a monotone function of [b] (sets are nested), so two
      bandwidths prune identically iff the same number of link residuals
      lies below them — the integer {!bucket} computes.

    Equal [(family, bucket)] at an equal epoch therefore implies equal
    weights, which is the contract {!Mcgraph.Sp_engine.renew} needs to
    swap closures without dropping valid trees. With the key discipline
    above, every admission outcome is bit-identical to the fresh-engine
    behaviour this module replaces. *)

type t
(** A per-(network, admission-window) engine cache. *)

type stats = {
  engines : int;       (** distinct (family, bucket) engines created *)
  acquisitions : int;  (** {!engine} calls served *)
  reuses : int;        (** acquisitions answered by an existing engine *)
}

val create : Sdn.Network.t -> t
(** A fresh window over [net]; no engines until the first {!engine}. *)

val net : t -> Sdn.Network.t

val bucket : t -> bandwidth:float -> int
(** The bandwidth's feasibility class under the current residuals:
    [|{e : not (link_admits net e bandwidth)}|], computed by binary
    search over a per-epoch sorted residual snapshot (rebuilt lazily on
    epoch change). Bit-compatible with [Sdn.Network.link_admits]'s
    tolerance. *)

val engine :
  t -> family:string -> bucket:int -> weight:(int -> float) -> Mcgraph.Sp_engine.t
(** [engine t ~family ~bucket ~weight] is the window's engine for the
    key [(family, bucket)], created on first use and re-armed with
    [weight] (see {!Mcgraph.Sp_engine.renew}) on reuse. The caller
    guarantees the keying discipline of the module header. Telemetry:
    [sp_window.engine_creates] / [sp_window.engine_reuses]. *)

val stats : t -> stats
(** Lifetime acquisition counters of this window (always live, not
    gated on [Nfv_obs.Obs.enabled]). *)
