module G = Mcgraph.Graph
module Paths = Mcgraph.Paths
module Sp = Mcgraph.Sp_engine

type t = {
  net : Sdn.Network.t;
  req : Sdn.Request.t;
  keep : int -> bool;
  edge_weight : int -> float;
  placement_cost : int -> float;
  ext : G.t;
  vnode : int;
  base_m : int;
  vedge_of_server : (int, int) Hashtbl.t;   (* server -> virtual edge id *)
  server_of_vedge : int array;              (* vedge id - base_m -> server *)
  wv : (int, float) Hashtbl.t;              (* server -> virtual edge weight *)
  engine : Sp.t;                            (* base graph, weight b·c_e, pruned *)
  candidates : int list;
  source_edges : (int, int list) Hashtbl.t; (* server -> kept base edges (s_k, v) *)
}

let base_weight t e = if t.keep e then t.edge_weight e else infinity

let build ?(keep = fun _ -> true) ?edge_weight ?placement_cost ?engine ~net
    ~request ~candidate_servers () =
  let g = Sdn.Network.graph net in
  let nn = G.n g and mm = G.m g in
  let ext = G.create (nn + 1) in
  G.iter_edges g (fun _ u v -> ignore (G.add_edge ext u v));
  let vedge_of_server = Hashtbl.create 16 in
  let server_of_vedge = Array.make (max (List.length candidate_servers) 1) (-1) in
  List.iteri
    (fun i v ->
      let e = G.add_edge ext nn v in
      Hashtbl.replace vedge_of_server v e;
      server_of_vedge.(i) <- v)
    candidate_servers;
  let edge_weight =
    match edge_weight with
    | Some w -> w
    | None ->
      fun e -> request.Sdn.Request.bandwidth *. Sdn.Network.link_unit_cost net e
  in
  let placement_cost =
    match placement_cost with
    | Some c -> c
    | None -> fun v -> Sdn.Network.chain_cost net v request.Sdn.Request.chain
  in
  let pruned_weight e = if keep e then edge_weight e else infinity in
  (* lazy per-source engine instead of eager all-pairs: only the request
     source, the candidate servers and the queried destinations ever get
     a Dijkstra tree. Bound to the network's weight epoch so residual-
     dependent [keep]/[edge_weight] closures invalidate after allocate.
     A caller that can prove weight-function equality across requests
     (Appro_multi over an Sp_window) acquires a shared engine instead. *)
  let engine =
    match engine with
    | Some acquire -> acquire ~weight:pruned_weight
    | None ->
      Sp.create g ~weight:pruned_weight
        ~epoch:(fun () -> Sdn.Network.weight_epoch net)
  in
  let t =
    {
      net;
      req = request;
      keep;
      edge_weight;
      placement_cost;
      ext;
      vnode = nn;
      base_m = mm;
      vedge_of_server;
      server_of_vedge;
      wv = Hashtbl.create 16;
      engine;
      candidates = candidate_servers;
      source_edges = Hashtbl.create 16;
    }
  in
  let s = request.Sdn.Request.source in
  List.iter
    (fun v ->
      let d = Sp.dist t.engine s v in
      let w =
        if d = infinity then infinity
        else d +. placement_cost v
      in
      Hashtbl.replace t.wv v w;
      let incident =
        List.filter_map
          (fun (nbr, e) -> if nbr = v && keep e then Some e else None)
          (G.neighbors g s)
      in
      if incident <> [] then Hashtbl.replace t.source_edges v incident)
    candidate_servers;
  t

let ext_graph t = t.ext
let virtual_node t = t.vnode
let base_edge_count t = t.base_m
let is_virtual_edge t e = e >= t.base_m
let server_of_virtual_edge t e =
  if not (is_virtual_edge t e) then invalid_arg "Aux_graph: not a virtual edge";
  t.server_of_vedge.(e - t.base_m)

let virtual_edge_of_server t v = Hashtbl.find_opt t.vedge_of_server v

let virtual_edge_weight t v =
  match Hashtbl.find_opt t.wv v with
  | Some w -> w
  | None -> invalid_arg "Aux_graph.virtual_edge_weight: not a candidate"

let reachable_servers t =
  List.filter (fun v -> virtual_edge_weight t v < infinity) t.candidates

let base_dist t u v = Sp.dist t.engine u v
let base_path t u v = Sp.path t.engine u v
let engine t = t.engine

(* ------------------------------------------------------------------ *)
(* subset metric: exact hub decomposition                               *)

type hub_move =
  | Base_leg                  (* shortest base path between the two hubs *)
  | Special of int            (* a single special edge id *)
  | Via of int                (* intermediate hub index (Floyd) *)

type subset_metric = {
  aux : t;
  subset : int list;
  hubs : int array;           (* node ids; hubs.(0) = s_k, hubs.(1) = s'_k *)
  hub_row : float array array; (* hubs.(i)'s engine dist array; [||] at s'_k *)
  hd : float array array;     (* hub-to-hub exact distances *)
  hmove : hub_move array array;
  zero_edges : (int, unit) Hashtbl.t;  (* base edges costing zero *)
}

let weight sm e =
  let t = sm.aux in
  if is_virtual_edge t e then begin
    let v = server_of_virtual_edge t e in
    if List.mem v sm.subset then virtual_edge_weight t v else infinity
  end
  else if Hashtbl.mem sm.zero_edges e then 0.0
  else base_weight t e

let subset_metric t subset =
  List.iter
    (fun v ->
      if not (Hashtbl.mem t.wv v) then
        invalid_arg "Aux_graph.subset_metric: not a candidate server")
    subset;
  (* The paper zeroes the cost of base edges (s_k, v) for v in the chosen
     combination (Algorithm 1, step 5). Under per-traversal resource
     accounting that rule lets Steiner trees transit server-adjacent
     edges for free — including for servers whose VM is never used — and
     systematically inflates the realised cost of multi-server trees, so
     we deliberately do not apply it (DESIGN.md §3). The table stays so
     tests can enable the paper-faithful behaviour explicitly. *)
  let zero_edges = Hashtbl.create 4 in
  let hubs = Array.of_list (t.req.Sdn.Request.source :: t.vnode :: subset) in
  let h = Array.length hubs in
  (* snapshot each hub's engine row once so the (hot) metric queries
     below read flat float arrays, not the cache; rows are shared with
     the engine across all subsets of the same request *)
  let hub_row =
    Array.map
      (fun hv ->
        if hv = t.vnode then [||] else (Sp.spt t.engine hv).Mcgraph.Paths.dist)
      hubs
  in
  let hd = Array.make_matrix h h infinity in
  let hmove = Array.make_matrix h h Base_leg in
  (* direct moves: base legs, zero edges (s_k ↔ subset server), virtual
     edges (s'_k ↔ subset server) *)
  for i = 0 to h - 1 do
    hd.(i).(i) <- 0.0;
    for j = 0 to h - 1 do
      if i <> j then begin
        let hi = hubs.(i) and hj = hubs.(j) in
        if hi <> t.vnode && hj <> t.vnode then begin
          hd.(i).(j) <- hub_row.(i).(hj);
          hmove.(i).(j) <- Base_leg
        end
      end
    done
  done;
  let set_special i j w e =
    if w < hd.(i).(j) then begin
      hd.(i).(j) <- w;
      hd.(j).(i) <- w;
      hmove.(i).(j) <- Special e;
      hmove.(j).(i) <- Special e
    end
  in
  Array.iteri
    (fun j hj ->
      if j >= 2 then begin
        (* hub j is a subset server: virtual edge to s'_k *)
        match virtual_edge_of_server t hj with
        | Some e -> set_special 1 j (virtual_edge_weight t hj) e
        | None -> ()
      end)
    hubs;
  (* Floyd–Warshall over the hubs *)
  for k = 0 to h - 1 do
    for i = 0 to h - 1 do
      for j = 0 to h - 1 do
        if hd.(i).(k) +. hd.(k).(j) < hd.(i).(j) then begin
          hd.(i).(j) <- hd.(i).(k) +. hd.(k).(j);
          hmove.(i).(j) <- Via k
        end
      done
    done
  done;
  { aux = t; subset; hubs; hub_row; hd; hmove; zero_edges }

(* distance between extended nodes; hubs.(1) is the virtual node *)
let dist sm x y =
  let t = sm.aux in
  let h = Array.length sm.hubs in
  let hub_index node =
    let rec find i = if i >= h then -1 else if sm.hubs.(i) = node then i else find (i + 1) in
    find 0
  in
  let best = ref infinity in
  let ix = hub_index x and iy = hub_index y in
  if ix >= 0 && iy >= 0 then best := sm.hd.(ix).(iy)
  else if ix >= 0 then begin
    for j = 0 to h - 1 do
      if sm.hubs.(j) <> t.vnode then begin
        let c = sm.hd.(ix).(j) +. sm.hub_row.(j).(y) in
        if c < !best then best := c
      end
    done
  end
  else if iy >= 0 then begin
    let rx = (Sp.spt t.engine x).Mcgraph.Paths.dist in
    for i = 0 to h - 1 do
      if sm.hubs.(i) <> t.vnode then begin
        let c = rx.(sm.hubs.(i)) +. sm.hd.(i).(iy) in
        if c < !best then best := c
      end
    done
  end
  else begin
    let rx = (Sp.spt t.engine x).Mcgraph.Paths.dist in
    best := rx.(y);
    for i = 0 to h - 1 do
      if sm.hubs.(i) <> t.vnode then
        for j = 0 to h - 1 do
          if sm.hubs.(j) <> t.vnode then begin
            let c =
              rx.(sm.hubs.(i))
              +. sm.hd.(i).(j)
              +. sm.hub_row.(j).(y)
            in
            if c < !best then best := c
          end
        done
    done
  end;
  !best

(* expand the hub-level move (i, j) into concrete edge ids *)
let rec expand_hub sm i j acc =
  if i = j then acc
  else
    match sm.hmove.(i).(j) with
    | Special e -> e :: acc
    | Base_leg -> (
      match Sp.path sm.aux.engine sm.hubs.(i) sm.hubs.(j) with
      | Some p -> List.rev_append (List.rev p) acc
      | None -> invalid_arg "Aux_graph: hub base leg without path")
    | Via k -> expand_hub sm i k (expand_hub sm k j acc)

let path sm x y =
  let t = sm.aux in
  if dist sm x y = infinity then None
  else if x = y then Some []
  else begin
    let h = Array.length sm.hubs in
    let hub_index node =
      let rec find i =
        if i >= h then -1 else if sm.hubs.(i) = node then i else find (i + 1)
      in
      find 0
    in
    let ix = hub_index x and iy = hub_index y in
    (* recompute the argmin of [dist] and expand it *)
    let best = ref infinity and choice = ref `None in
    if ix >= 0 && iy >= 0 then begin
      best := sm.hd.(ix).(iy);
      choice := `Hub (ix, iy)
    end
    else if ix >= 0 then begin
      for j = 0 to h - 1 do
        if sm.hubs.(j) <> t.vnode then begin
          let c = sm.hd.(ix).(j) +. sm.hub_row.(j).(y) in
          if c < !best then begin
            best := c;
            choice := `From_hub (ix, j)
          end
        end
      done
    end
    else if iy >= 0 then begin
      let rx = (Sp.spt t.engine x).Mcgraph.Paths.dist in
      for i = 0 to h - 1 do
        if sm.hubs.(i) <> t.vnode then begin
          let c = rx.(sm.hubs.(i)) +. sm.hd.(i).(iy) in
          if c < !best then begin
            best := c;
            choice := `To_hub (i, iy)
          end
        end
      done
    end
    else begin
      let rx = (Sp.spt t.engine x).Mcgraph.Paths.dist in
      best := rx.(y);
      choice := `Direct;
      for i = 0 to h - 1 do
        if sm.hubs.(i) <> t.vnode then
          for j = 0 to h - 1 do
            if sm.hubs.(j) <> t.vnode then begin
              let c =
                rx.(sm.hubs.(i))
                +. sm.hd.(i).(j)
                +. sm.hub_row.(j).(y)
              in
              if c < !best then begin
                best := c;
                choice := `Through (i, j)
              end
            end
          done
      done
    end;
    let base_path_exn a b =
      match Sp.path t.engine a b with
      | Some p -> p
      | None -> invalid_arg "Aux_graph.path: missing base path"
    in
    let edges =
      match !choice with
      | `None -> invalid_arg "Aux_graph.path: unreachable"
      | `Direct -> base_path_exn x y
      | `Hub (i, j) -> expand_hub sm i j []
      | `From_hub (i, j) -> expand_hub sm i j (base_path_exn sm.hubs.(j) y)
      | `To_hub (i, j) -> base_path_exn x sm.hubs.(i) @ expand_hub sm i j []
      | `Through (i, j) ->
        base_path_exn x sm.hubs.(i)
        @ expand_hub sm i j (base_path_exn sm.hubs.(j) y)
    in
    Some edges
  end

let steiner_tree sm =
  let t = sm.aux in
  let terminals = t.vnode :: t.req.Sdn.Request.destinations in
  Mcgraph.Steiner.kmb_with_metric t.ext ~weight:(weight sm) ~terminals
    ~dist:(dist sm) ~path:(path sm)

let tree_cost sm edges =
  List.fold_left (fun acc e -> acc +. weight sm e) 0.0 edges

let to_pseudo_tree t tree_edges =
  let req = t.req in
  let tree = Mcgraph.Tree.of_edges t.ext ~root:t.vnode tree_edges in
  let servers = ref [] in
  let uses = ref [] in
  List.iter
    (fun e ->
      if is_virtual_edge t e then begin
        let v = server_of_virtual_edge t e in
        servers := v :: !servers;
        match base_path t req.Sdn.Request.source v with
        | Some p -> uses := p @ !uses
        | None -> invalid_arg "Aux_graph.to_pseudo_tree: unreachable server"
      end
      else uses := e :: !uses)
    tree_edges;
  if !servers = [] then invalid_arg "Aux_graph.to_pseudo_tree: no server in tree";
  let route_of d =
    if not (Mcgraph.Tree.mem tree d) then
      invalid_arg "Aux_graph.to_pseudo_tree: destination not spanned";
    let down = List.rev (Mcgraph.Tree.path_up tree d ~ancestor:t.vnode) in
    match down with
    | first :: onward when is_virtual_edge t first ->
      let v = server_of_virtual_edge t first in
      let to_server =
        match base_path t req.Sdn.Request.source v with
        | Some p -> p
        | None -> assert false
      in
      (d, { Pseudo_tree.to_server; server = v; onward })
    | _ -> invalid_arg "Aux_graph.to_pseudo_tree: path does not start virtually"
  in
  let routes = List.map route_of req.Sdn.Request.destinations in
  Pseudo_tree.make ~request:req ~servers:!servers
    ~edge_uses:(Pseudo_tree.edge_uses_of_list !uses)
    ~routes

let materialize t ~subset =
  let sm = subset_metric t subset in
  (t.ext, weight sm)
