module G = Mcgraph.Graph

type action =
  | Forward of int
  | Deliver
  | To_vm

type rule = {
  switch : int;
  tagged : bool;
  in_edge : int option;
  actions : action list;
}

type t = {
  request_id : int;
  rules : rule list;
}

type key = int * bool * int option

let add_action tbl (key : key) action =
  let cur = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
  if not (List.mem action cur) then Hashtbl.replace tbl key (action :: cur)

(* walk an edge list from [start], calling [f node in_edge out_edge_opt]
   at every hop boundary; returns the final node *)
let walk g start edges f =
  let rec go node in_edge = function
    | [] ->
      f node in_edge None;
      node
    | e :: rest ->
      f node in_edge (Some e);
      go (G.other_endpoint g e node) (Some e) rest
  in
  go start None edges

let of_pseudo_tree net (pt : Pseudo_tree.t) =
  let g = Sdn.Network.graph net in
  let req = pt.Pseudo_tree.request in
  let tbl : (key, action list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (d, route) ->
      let v = route.Pseudo_tree.server in
      (* untagged leg: source → server, ending in the VM *)
      let reached =
        walk g req.Sdn.Request.source route.Pseudo_tree.to_server
          (fun node in_edge out ->
            match out with
            | Some e -> add_action tbl (node, false, in_edge) (Forward e)
            | None -> add_action tbl (node, false, in_edge) To_vm)
      in
      if reached <> v then
        invalid_arg "Flow_rules.of_pseudo_tree: witness does not reach its server";
      (* tagged leg: VM re-injects at the server with no ingress edge *)
      let reached =
        walk g v route.Pseudo_tree.onward (fun node in_edge out ->
            match out with
            | Some e -> add_action tbl (node, true, in_edge) (Forward e)
            | None -> add_action tbl (node, true, in_edge) Deliver)
      in
      if reached <> d then
        invalid_arg "Flow_rules.of_pseudo_tree: witness does not reach its destination")
    pt.Pseudo_tree.routes;
  let rules =
    Hashtbl.fold
      (fun (switch, tagged, in_edge) actions acc ->
        { switch; tagged; in_edge; actions = List.rev actions } :: acc)
      tbl []
  in
  let rules =
    List.sort
      (fun a b ->
        compare (a.switch, a.tagged, a.in_edge) (b.switch, b.tagged, b.in_edge))
      rules
  in
  { request_id = req.Sdn.Request.id; rules }

let rules_at t switch = List.filter (fun r -> r.switch = switch) t.rules

let switches_with_state t =
  List.sort_uniq compare (List.map (fun r -> r.switch) t.rules)

let table_size t switch = List.length (rules_at t switch)
let total_rules t = List.length t.rules

type delivery = {
  delivered : int list;
  processed_at : int list;
  link_loads : (int * int) list;
}

let simulate net t ~source =
  let g = Sdn.Network.graph net in
  let lookup = Hashtbl.create 32 in
  List.iter
    (fun r -> Hashtbl.replace lookup (r.switch, r.tagged, r.in_edge) r.actions)
    t.rules;
  let seen = Hashtbl.create 64 in
  let loads = Hashtbl.create 32 in
  let delivered = ref [] and processed = ref [] in
  let hops = ref 0 in
  let budget = 4 * (G.m g + 1) in
  let q = Queue.create () in
  Queue.add (source, false, None) q;
  while not (Queue.is_empty q) do
    let ((node, tagged, _in_edge) as ev) = Queue.pop q in
    if not (Hashtbl.mem seen ev) then begin
      Hashtbl.replace seen ev ();
      match Hashtbl.find_opt lookup ev with
      | None -> () (* no rule: the packet is dropped at this switch *)
      | Some actions ->
        List.iter
          (function
            | Deliver -> delivered := node :: !delivered
            | To_vm ->
              processed := node :: !processed;
              Queue.add (node, true, None) q
            | Forward e ->
              incr hops;
              if !hops > budget then
                invalid_arg "Flow_rules.simulate: forwarding loop";
              let cur = Option.value (Hashtbl.find_opt loads e) ~default:0 in
              Hashtbl.replace loads e (cur + 1);
              Queue.add (G.other_endpoint g e node, tagged, Some e) q)
          actions
    end
  done;
  {
    delivered = List.sort_uniq compare !delivered;
    processed_at = List.sort_uniq compare !processed;
    link_loads =
      List.sort compare (Hashtbl.fold (fun e c acc -> (e, c) :: acc) loads []);
  }

let verify net pt =
  let ( let* ) r f = Result.bind r f in
  let* t =
    match of_pseudo_tree net pt with
    | t -> Ok t
    | exception Invalid_argument msg -> Error msg
  in
  let req = pt.Pseudo_tree.request in
  let* d =
    match simulate net t ~source:req.Sdn.Request.source with
    | d -> Ok d
    | exception Invalid_argument msg -> Error msg
  in
  let* () =
    match
      List.find_opt
        (fun dest -> not (List.mem dest d.delivered))
        req.Sdn.Request.destinations
    with
    | Some dest ->
      Error (Printf.sprintf "destination %d never receives a processed copy" dest)
    | None -> Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun v -> not (List.mem v pt.Pseudo_tree.servers))
        d.processed_at
    with
    | Some v -> Error (Printf.sprintf "processing at unplaced node %d" v)
    | None -> Ok ()
  in
  let declared = pt.Pseudo_tree.edge_uses in
  List.fold_left
    (fun acc (e, load) ->
      let* () = acc in
      match List.assoc_opt e declared with
      | None -> Error (Printf.sprintf "traffic on edge %d outside the tree" e)
      | Some uses when load > uses ->
        Error
          (Printf.sprintf "edge %d carries %d traversals but reserves %d" e load
             uses)
      | Some _ -> Ok ())
    (Ok ()) d.link_loads

let pp ppf t =
  Format.fprintf ppf "flow-rules(req=%d, %d rules over %d switches)" t.request_id
    (total_rules t)
    (List.length (switches_with_state t))
