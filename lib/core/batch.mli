(** Offline batch planning — an extension of the paper's single-request
    setting: when a whole batch of NFV-enabled multicast requests is
    known in advance, the admission order interacts with capacities.
    [plan] admits a batch through {!Appro_multi.admit} under a chosen
    ordering policy; the classic observation (and our measured result)
    is that smallest-first admits more requests than arrival order,
    while largest-first packs fewer. *)

type order =
  | Arrival          (** the given sequence order *)
  | Smallest_first   (** ascending bandwidth × destination count *)
  | Largest_first    (** descending footprint — an adversarial baseline *)
  | Cheapest_first   (** ascending uncapacitated Appro_Multi cost — needs
                         one extra solve per request *)

val order_to_string : order -> string

val footprint : Sdn.Request.t -> float
(** [bandwidth × terminal count] — the ordering key of
    [Smallest_first]/[Largest_first], and {!Restore}'s knapsack
    weight. *)

type result = {
  order : order;
  admitted : int;
  rejected : int;
  total_cost : float;          (** Σ linear cost of admitted trees *)
  mean_link_utilization : float;
  trees : (int * Pseudo_tree.t) list;  (** request id → admitted tree *)
}

val reorder :
  ?k:int -> ?window:Sp_window.t -> Sdn.Network.t -> Sdn.Request.t list ->
  order -> Sdn.Request.t list
(** Apply an ordering policy without admitting anything: the exact
    reordering {!plan} uses. [Cheapest_first] prices every request with
    one uncapacitated {!Appro_multi.solve} against the network's
    {e current} residuals (through [window] when given, so pricing can
    share cached engines with a surrounding run); the other policies
    read only the requests. All sorts are stable, so equal keys keep
    their sequence order. Also the ordering stage of the dynamic
    simulator's heal-triggered restoration pass
    ({!Dynamic.run}~[faults]). *)

val plan :
  ?k:int -> ?reset:bool -> ?srlg:Online_cp.avail -> Sdn.Network.t ->
  Sdn.Request.t list -> order -> result
(** Resets the network (unless [reset:false]), reorders the batch, and
    admits greedily with [Appro_Multi_Cap]. The reset happens {e before}
    ordering, so [Cheapest_first] prices against the idle network; with
    [reset:false] ordering and admission both run against the network's
    current residuals (the caller owns that state). The whole plan —
    pricing and admission — shares one {!Sp_window} of cached
    shortest-path trees.

    [srlg] applies {!Online_cp.avail}'s spare-capacity floor to every
    admit: a request whose tree would leave some shared-risk group's
    pooled residual below [reserve × capacity] is rejected (counted
    under [avail.reserve_blocked]) and its allocation undone. The
    exposure {e surcharge} does not apply here — [Appro_Multi_Cap]
    prices with its own linear costs, not {!Online_cp.link_weight}.
    With no reserve the plan is bit-identical to one without [srlg]. *)

val compare_orders :
  ?k:int -> ?reset:bool -> ?srlg:Online_cp.avail -> Sdn.Network.t ->
  Sdn.Request.t list -> (order * result) list
(** {!plan} under every ordering policy, threading [reset] and [srlg]
    through each (they used to be silently dropped, so the comparison
    could not express the availability floor). With the default
    [reset:true] each plan starts from a fresh network; with
    [reset:false] each plan runs against the caller's residuals and its
    admitted trees are released again afterwards, so every order sees
    the same starting state and the network ends where it began (up to
    float round-off). *)
