(** Online admission with multi-server chain placement — the K > 1
    online setting the paper leaves open ("we propose an online algorithm
    … if K = 1").

    Per request: price every link with the normalised exponential weight
    [w_e(k)] (plus a hop epsilon) and every server with [w_v(k)] scaled
    into the same units, run Appro_Multi's auxiliary-graph machinery over
    all combinations of at most K servers under those prices, and admit
    the cheapest combination that can atomically reserve its resources.
    No σ thresholds are applied (see EXPERIMENTS.md on their measured
    conservatism); capacity feasibility is enforced by pruning and by the
    atomic allocation. *)

type admitted = {
  tree : Pseudo_tree.t;
  servers : int list;
  score : float;   (** auxiliary-tree weight under the online prices *)
}

type outcome = Admitted of admitted | Rejected of string

val admit : ?k:int -> ?alpha:float -> ?beta:float -> Sdn.Network.t -> Sdn.Request.t -> outcome
(** Default [k = 2], [alpha = beta = 2|V|]. On admission the network's
    residuals are reduced by the tree's allocation. *)

val run :
  ?k:int -> ?reset:bool -> Sdn.Network.t -> Sdn.Request.t list -> int
(** Convenience driver: number of admitted requests over a sequence. *)
