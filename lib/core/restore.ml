type value = Volume | Priced

type policy =
  | Replay of Batch.order
  | Knapsack of value
  | Deadline

type trigger = Heal | Heal_or_depart

type t = {
  policy : policy;
  trigger : trigger;
}

let default = { policy = Replay Batch.Smallest_first; trigger = Heal }

let make ?(policy = default.policy) ?(trigger = default.trigger) () =
  { policy; trigger }

let policy_to_string = function
  | Replay o -> "replay-" ^ Batch.order_to_string o
  | Knapsack Volume -> "knapsack-volume"
  | Knapsack Priced -> "knapsack-priced"
  | Deadline -> "deadline"

let trigger_to_string = function
  | Heal -> "heal"
  | Heal_or_depart -> "heal-or-depart"

let to_string t =
  match t.trigger with
  | Heal -> policy_to_string t.policy
  | Heal_or_depart -> policy_to_string t.policy ^ "+depart"

let on_depart t = t.trigger = Heal_or_depart

type entry = {
  request : Sdn.Request.t;
  depart_at : float;
}

(* every policy starts from the id-sorted backlog and refines it with
   stable sorts, so ties always resolve to ascending request ids — the
   determinism contract the hashtable-backed backlog needs *)
let by_id entries =
  List.stable_sort
    (fun a b -> compare a.request.Sdn.Request.id b.request.Sdn.Request.id)
    entries

let select ?k ?window ~returned net t entries =
  let base = by_id entries in
  match t.policy with
  | Replay order ->
    Batch.reorder ?k ?window net (List.map (fun e -> e.request) base) order
  | Deadline ->
    List.map
      (fun e -> e.request)
      (List.stable_sort (fun a b -> compare a.depart_at b.depart_at) base)
  | Knapsack v ->
    (* one greedy pass of the classic value-density heuristic: entries
       whose footprint fits the returned headroom come first (they can
       plausibly be paid for by the heal alone), descending density
       within each class. Densities are computed before sorting so
       Priced runs exactly one solve per entry. *)
    let fits fp = fp <= returned *. (1.0 +. 1e-9) in
    let scored =
      List.map
        (fun e ->
          let fp = Batch.footprint e.request in
          let density =
            match v with
            | Volume -> fp
            | Priced -> (
              match Appro_multi.solve ?k ?window net e.request with
              | Ok res when res.Appro_multi.cost > 0.0 ->
                fp /. res.Appro_multi.cost
              | Ok _ -> infinity (* free tree: infinitely dense *)
              | Error _ -> 0.0 (* unpriceable: attempt last, never skip *))
          in
          (fits fp, density, e.request))
        base
    in
    List.map
      (fun (_, _, r) -> r)
      (List.stable_sort
         (fun (fa, da, _) (fb, db, _) ->
           match (fa, fb) with
           | true, false -> -1
           | false, true -> 1
           | _ -> compare db da)
         scored)
