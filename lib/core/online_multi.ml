type admitted = {
  tree : Pseudo_tree.t;
  servers : int list;
  score : float;
}

type outcome = Admitted of admitted | Rejected of string

let admit ?(k = 2) ?alpha ?beta net request =
  let alpha = Option.value alpha ~default:(Cost_model.default_base net) in
  let beta = Option.value beta ~default:(Cost_model.default_base net) in
  let b = request.Sdn.Request.bandwidth in
  let demand = Sdn.Request.demand_mhz request in
  let hop_epsilon = 1e-6 in
  let keep e = Sdn.Network.link_admits net e b in
  let edge_weight e = Cost_model.link_weight net ~base:beta e +. hop_epsilon in
  (* server weight scaled by its utilisation increment so it is
     commensurable with the edge weights (both are load-sensitive,
     dimensionless prices) *)
  let placement_cost v =
    Cost_model.server_weight net ~base:alpha v
    +. (demand /. Sdn.Network.server_capacity net v)
  in
  let usable =
    List.filter
      (fun v -> Sdn.Network.server_admits net v demand)
      (Sdn.Network.servers net)
  in
  if usable = [] then Rejected "no server with enough computing residual"
  else begin
    (* The load-dependent weights are read through the per-request lazy
       engine inside Aux_graph. Trying candidates in order below stays
       consistent with the prices they were scored at: a failed allocate
       changes nothing (atomic) and does not bump the weight epoch. *)
    let cands =
      Appro_multi.candidates ~k ~keep ~usable_servers:usable net request
        ~edge_weight ~placement_cost
    in
    let rec try_cands = function
      | [] -> Rejected "no allocatable combination"
      | (score, _, aux, edges) :: rest -> (
        let tree = Aux_graph.to_pseudo_tree aux edges in
        match Sdn.Network.allocate net (Pseudo_tree.allocation tree) with
        | Ok () ->
          Admitted { tree; servers = tree.Pseudo_tree.servers; score }
        | Error _ -> try_cands rest)
    in
    match cands with
    | [] -> Rejected "destinations unreachable under bandwidth residuals"
    | _ -> try_cands cands
  end

let run ?k ?(reset = true) net requests =
  if reset then Sdn.Network.reset net;
  List.fold_left
    (fun acc r ->
      match admit ?k net r with Admitted _ -> acc + 1 | Rejected _ -> acc)
    0 requests
