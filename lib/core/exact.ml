module Sp = Mcgraph.Sp_engine

type result = {
  tree : Pseudo_tree.t;
  server : int;
  cost : float;
}

type multi_result = {
  mtree : Pseudo_tree.t;
  servers : int list;
  assignment : (int * int) list;
  mcost : float;
}

let optimal ?(k = 3) net request =
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let s = request.Sdn.Request.source in
  let dests = request.Sdn.Request.destinations in
  if List.length dests > 6 then
    invalid_arg "Exact.optimal: destination set too large";
  if k < 1 then invalid_arg "Exact.optimal: K must be at least 1";
  let weight e = b *. Sdn.Network.link_unit_cost net e in
  (* memoised exact Steiner trees keyed by the sorted terminal set *)
  let memo = Hashtbl.create 64 in
  let steiner terminals =
    let key = List.sort_uniq compare terminals in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let r =
        match Mcgraph.Steiner.exact g ~weight ~terminals:key with
        | None -> None
        | Some edges -> Some (edges, Mcgraph.Steiner.tree_cost ~weight edges)
      in
      Hashtbl.add memo key r;
      r
  in
  (* enumerate destination assignments onto the subset's servers; every
     server must serve someone (unused servers belong to smaller subsets) *)
  let best = ref None in
  let consider subset =
    let slots = Array.of_list subset in
    let l = Array.length slots in
    let buckets = Array.make l [] in
    let rec assign = function
      | [] ->
        if Array.for_all (fun b -> b <> []) buckets then begin
          match steiner (s :: subset) with
          | None -> ()
          | Some (t0, c0) ->
            let ok = ref true and total = ref c0 and parts = ref [] in
            Array.iteri
              (fun i bucket ->
                if !ok then begin
                  let v = slots.(i) in
                  match steiner (v :: bucket) with
                  | None -> ok := false
                  | Some (tv, cv) ->
                    total :=
                      !total +. cv +. Sdn.Network.chain_cost net v request.Sdn.Request.chain;
                    parts := (v, bucket, tv) :: !parts
                end)
              buckets;
            if !ok then begin
              match !best with
              | Some (c, _, _, _) when c <= !total -> ()
              | _ -> best := Some (!total, subset, t0, !parts)
            end
        end
      | d :: rest ->
        for i = 0 to l - 1 do
          buckets.(i) <- d :: buckets.(i);
          assign rest;
          buckets.(i) <- List.tl buckets.(i)
        done
    in
    assign dests
  in
  Combinations.iter_subsets_up_to (Sdn.Network.servers net) k consider;
  match !best with
  | None -> Error "no reachable server set spanning the destinations"
  | Some (cost, subset, t0, parts) ->
    let unprocessed = Mcgraph.Tree.of_edges g ~root:s t0 in
    let routes =
      List.concat_map
        (fun (v, bucket, tv) ->
          let to_server =
            List.rev (Mcgraph.Tree.path_up unprocessed v ~ancestor:s)
          in
          let rooted = Mcgraph.Tree.of_edges g ~root:v tv in
          List.map
            (fun d ->
              let onward = List.rev (Mcgraph.Tree.path_up rooted d ~ancestor:v) in
              (d, { Pseudo_tree.to_server; server = v; onward }))
            bucket)
        parts
    in
    let uses = t0 @ List.concat_map (fun (_, _, tv) -> tv) parts in
    let tree =
      Pseudo_tree.make ~request ~servers:subset
        ~edge_uses:(Pseudo_tree.edge_uses_of_list uses)
        ~routes
    in
    Ok
      {
        mtree = tree;
        servers = List.sort compare subset;
        assignment =
          List.concat_map (fun (v, bucket, _) -> List.map (fun d -> (d, v)) bucket) parts
          |> List.sort compare;
        mcost = cost;
      }

let optimal_one_server net request =
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let s = request.Sdn.Request.source in
  let weight e = b *. Sdn.Network.link_unit_cost net e in
  (* only distances/paths from the source are needed: one lazy Dijkstra *)
  let eng =
    Sp.create g ~weight ~epoch:(fun () -> Sdn.Network.weight_epoch net)
  in
  let consider best v =
    let d_sv = Sp.dist eng s v in
    if d_sv = infinity then best
    else begin
      let terminals = v :: request.Sdn.Request.destinations in
      match Mcgraph.Steiner.exact g ~weight ~terminals with
      | None -> best
      | Some tree_edges ->
        let c =
          d_sv
          +. Sdn.Network.chain_cost net v request.Sdn.Request.chain
          +. Mcgraph.Steiner.tree_cost ~weight tree_edges
        in
        (match best with
        | Some (c', _, _) when c' <= c -> best
        | _ -> Some (c, v, tree_edges))
    end
  in
  match List.fold_left consider None (Sdn.Network.servers net) with
  | None -> Error "no reachable server spanning the destinations"
  | Some (_, v, tree_edges) ->
    let to_server = Option.get (Sp.path eng s v) in
    let rooted = Mcgraph.Tree.of_edges g ~root:v tree_edges in
    let routes =
      List.map
        (fun d ->
          let onward = List.rev (Mcgraph.Tree.path_up rooted d ~ancestor:v) in
          (d, { Pseudo_tree.to_server; server = v; onward }))
        request.Sdn.Request.destinations
    in
    let tree =
      Pseudo_tree.make ~request ~servers:[ v ]
        ~edge_uses:(Pseudo_tree.edge_uses_of_list (to_server @ tree_edges))
        ~routes
    in
    Ok { tree; server = v; cost = Pseudo_tree.cost net tree }
