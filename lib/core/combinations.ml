let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let subsets_of_size items k =
  let rec go items k =
    if k = 0 then [ [] ]
    else
      match items with
      | [] -> []
      | x :: rest ->
        let with_x = List.map (fun s -> x :: s) (go rest (k - 1)) in
        with_x @ go rest k
  in
  if k < 0 then [] else go items k

let subsets_up_to items k =
  List.concat_map (fun l -> subsets_of_size items l) (List.init k (fun i -> i + 1))

let count_up_to n k =
  let acc = ref 0 in
  for l = 1 to k do
    acc := !acc + choose n l
  done;
  !acc

let iter_subsets_up_to items k f =
  match items with
  | [] -> ()
  | first :: _ ->
    let arr = Array.of_list items in
    let n = Array.length arr in
    let buf = Array.make (max k 1) first in
    let rec go depth start target =
      if depth = target then f (Array.to_list (Array.sub buf 0 target))
      else
        for i = start to n - 1 do
          buf.(depth) <- arr.(i);
          go (depth + 1) (i + 1) target
        done
    in
    for l = 1 to min k n do
      go 0 0 l
    done
