type t = {
  cap : int;
  used_at : int array;
}

let create net ~capacity =
  if capacity < 0 then invalid_arg "Rule_budget.create: negative capacity";
  { cap = capacity; used_at = Array.make (Sdn.Network.n net) 0 }

let capacity t = t.cap

let check t v name =
  if v < 0 || v >= Array.length t.used_at then invalid_arg (name ^ ": bad switch")

let used t v =
  check t v "Rule_budget.used";
  t.used_at.(v)

let residual t v = t.cap - used t v
let total_used t = Array.fold_left ( + ) 0 t.used_at

let demand_of rules =
  List.map
    (fun v -> (v, Flow_rules.table_size rules v))
    (Flow_rules.switches_with_state rules)

let fits t rules =
  List.for_all (fun (v, d) -> t.used_at.(v) + d <= t.cap) (demand_of rules)

let install t rules =
  match
    List.find_opt (fun (v, d) -> t.used_at.(v) + d > t.cap) (demand_of rules)
  with
  | Some (v, d) ->
    Error
      (Printf.sprintf "switch %d: needs %d rules, %d of %d free" v d
         (t.cap - t.used_at.(v)) t.cap)
  | None ->
    List.iter (fun (v, d) -> t.used_at.(v) <- t.used_at.(v) + d) (demand_of rules);
    Ok ()

let uninstall t rules =
  List.iter
    (fun (v, d) ->
      if t.used_at.(v) < d then invalid_arg "Rule_budget.uninstall: over-release")
    (demand_of rules);
  List.iter (fun (v, d) -> t.used_at.(v) <- t.used_at.(v) - d) (demand_of rules)

let reset t = Array.fill t.used_at 0 (Array.length t.used_at) 0

let admit t net algo request =
  match Admission.admit_tree net algo request with
  | Error _ as e -> e
  | Ok tree -> (
    let rules = Flow_rules.of_pseudo_tree net tree in
    match install t rules with
    | Ok () -> Ok (tree, rules)
    | Error msg ->
      Sdn.Network.release net (Pseudo_tree.allocation tree);
      Error ("forwarding table overflow: " ^ msg))
