(* Window-scoped shortest-path engine cache. See sp_window.mli for the
   exactness contract; the short version: an engine may be shared by two
   admits iff their weight functions are extensionally equal, and within
   one weight epoch that equality is decidable from a cheap key — the
   caller-chosen family string plus the bandwidth's feasibility bucket
   (two bandwidths prune the same saturated-link set iff the same number
   of residuals lies below them, because the pruned sets are nested). *)

module Sp = Mcgraph.Sp_engine
module Obs = Nfv_obs.Obs

let c_creates = Obs.Counter.make "sp_window.engine_creates"
let c_reuses = Obs.Counter.make "sp_window.engine_reuses"

type stats = { engines : int; acquisitions : int; reuses : int }

type t = {
  net : Sdn.Network.t;
  engines : (string * int, Sp.t) Hashtbl.t;
  mutable residuals_epoch : int;      (* epoch [sorted_residuals] is valid at *)
  mutable sorted_residuals : float array;
  mutable acquisitions : int;
  mutable reuses : int;
}

let create net =
  {
    net;
    engines = Hashtbl.create 8;
    residuals_epoch = min_int;
    sorted_residuals = [||];
    acquisitions = 0;
    reuses = 0;
  }

let net t = t.net

(* The bucket of bandwidth [b] is |{e : not (link_admits net e b)}| under
   the current residuals. [Sdn.Network.link_admits] accepts when
   [residual >= b -. 1e-9], so a link is pruned iff its residual sorts
   strictly below [b -. 1e-9] — replicating that exact float expression
   keeps the bucket decision bit-compatible with the weight functions
   that call [link_admits]. Because the pruned sets are nested as [b]
   grows, an equal count implies an equal set. *)
let bucket t ~bandwidth =
  let epoch = Sdn.Network.weight_epoch t.net in
  if epoch <> t.residuals_epoch then begin
    let r = Array.init (Sdn.Network.m t.net) (Sdn.Network.link_residual t.net) in
    Array.sort compare r;
    t.sorted_residuals <- r;
    t.residuals_epoch <- epoch
  end;
  let r = t.sorted_residuals in
  let threshold = bandwidth -. 1e-9 in
  let lo = ref 0 and hi = ref (Array.length r) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if r.(mid) < threshold then lo := mid + 1 else hi := mid
  done;
  !lo

let engine t ~family ~bucket:bkt ~weight =
  t.acquisitions <- t.acquisitions + 1;
  let key = (family, bkt) in
  match Hashtbl.find_opt t.engines key with
  | Some eng ->
    (* same key: either the epoch is unchanged (closures extensionally
       equal by the caller's keying, cached trees stay valid) or it
       moved (renew sweeps before swapping the closure) *)
    Sp.renew eng ~weight;
    t.reuses <- t.reuses + 1;
    Obs.Counter.incr c_reuses;
    eng
  | None ->
    let eng =
      Sp.create (Sdn.Network.graph t.net) ~weight
        ~epoch:(fun () -> Sdn.Network.weight_epoch t.net)
    in
    Hashtbl.replace t.engines key eng;
    Obs.Counter.incr c_creates;
    eng

let stats t =
  { engines = Hashtbl.length t.engines; acquisitions = t.acquisitions; reuses = t.reuses }
