(** Resource cost models (§V-A of the paper).

    The {e linear} model charges usage proportionally to the amount
    consumed, regardless of load. The {e exponential} model of Eq. (1)
    and (2) charges

    {v c_v(k) = C_v·(α^{1 − C_v(k)/C_v} − 1)
   c_e(k) = B_e·(β^{1 − B_e(k)/B_e} − 1) v}

    so that nearly-exhausted resources become expensive, steering online
    admissions toward under-utilised servers and links. The normalised
    weights [w = α^{util} − 1] (cost divided by capacity) drive the
    admission thresholds [σ_v = σ_e = |V| − 1], with [α = β = 2|V|]. *)

val exponential_cost : capacity:float -> residual:float -> base:float -> float
(** Raw exponential cost of a resource at its current load. Raises
    [Invalid_argument] unless [base > 1] and [0 ≤ residual ≤ capacity]. *)

val normalized_weight : capacity:float -> residual:float -> base:float -> float
(** [exponential_cost / capacity] = [base^{utilisation} − 1]; 0 when
    idle, [base − 1] when exhausted. *)

val default_base : Sdn.Network.t -> float
(** [α = β = 2|V|] (Theorem 2). *)

val default_sigma : Sdn.Network.t -> float
(** [σ_v = σ_e = |V| − 1]. *)

val link_weight : Sdn.Network.t -> base:float -> int -> float
(** Normalised exponential weight of a link at its current residual. *)

val server_weight : Sdn.Network.t -> base:float -> int -> float

val link_cost : Sdn.Network.t -> base:float -> int -> float
(** Raw exponential link cost [c_e(k)]. *)

val server_cost : Sdn.Network.t -> base:float -> int -> float

val linear_link_weight : Sdn.Network.t -> int -> float
(** Load-oblivious weight (the per-Mbps unit cost [c_e]) used by the
    linear-cost ablation and by the offline operational-cost objective. *)
