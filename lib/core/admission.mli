(** Online admission simulation: feed a request sequence to an online
    algorithm over a capacitated network and collect throughput and
    load-balance statistics (the measurements behind Figs. 8–9). *)

type algorithm =
  | Online_cp             (** Algorithm 2, exponential cost model,
                              literal thresholds [σ_v = σ_e = |V| − 1] *)
  | Online_cp_no_threshold
      (** Algorithm 2 with the admission thresholds disabled (pure
          load-aware routing + capacity feasibility) — our measurements
          show the literal thresholds are conservative, see
          EXPERIMENTS.md *)
  | Online_linear         (** Algorithm 2's structure with linear costs — ablation *)
  | Sp                    (** shortest-path heuristic baseline *)

val algorithm_to_string : algorithm -> string

val no_threshold_params : Sdn.Network.t -> Online_cp.params
(** {!Online_cp.default_params} with both admission thresholds set to
    [infinity] — the parameterisation behind {!Online_cp_no_threshold},
    shared with {!Repair}'s re-admission tier so the "no thresholds"
    variant is defined in exactly one place. *)

type record = {
  request_id : int;
  admitted : bool;
  server : int option;
  cost : float option;        (** linear implementation cost when admitted *)
  detail : string;            (** rejection reason when rejected *)
}

type stats = {
  algorithm : algorithm;
  total : int;
  admitted : int;
  rejected : int;
  acceptance_ratio : float;
  mean_link_utilization : float;   (** at the end of the run *)
  max_link_utilization : float;
  jain_fairness : float;
  total_cost : float;              (** Σ admitted linear costs *)
  runtime_s : float;               (** CPU time of the whole run *)
  records : record list;           (** in arrival order *)
}

val run :
  ?reset:bool ->
  ?srlg:Online_cp.avail ->
  Sdn.Network.t ->
  algorithm ->
  Sdn.Request.t list ->
  stats
(** Process the sequence in order. [reset] (default [true]) restores the
    network's residuals before starting. The whole run shares one
    {!Sp_window}, so consecutive requests that leave the weight epoch
    unchanged (rejections) reuse each other's cached Dijkstra trees;
    outcomes are identical to per-request engines (see {!Sp_window}).

    [srlg] threads an {!Online_cp.avail} (SRLG-exposure surcharge +
    spare-capacity floor) through every Online_cp-family admit; the
    [Sp] baseline ignores it (its load-oblivious pricing is the
    ablation). With [alpha = 0] and no reserve the run is bit-identical
    to one without [srlg]. *)

val admit_tree :
  ?window:Sp_window.t ->
  ?srlg:Online_cp.avail ->
  Sdn.Network.t -> algorithm -> Sdn.Request.t -> (Pseudo_tree.t, string) result
(** Decide one request and return the admitted pseudo-multicast tree (the
    network's residuals are reduced), or the rejection reason. Used by
    the dynamic simulator, which must release the tree's allocation when
    the request departs. [srlg] as in {!run}. *)

val admitted_after : stats -> int -> int
(** Number of admissions among the first [n] arrivals — used to draw the
    "admitted vs number of requests" curves of Fig. 9. *)
