(** Enumeration of the server combinations explored by [Appro_Multi].

    Algorithm 1 iterates over every combination of at most [K] servers
    out of [V_S] (its Fig. 4 example enumerates all subsets of size 1 and
    2 for K = 2). *)

val choose : int -> int -> int
(** Binomial coefficient C(n, k); 0 when [k > n] or [k < 0]. *)

val subsets_of_size : 'a list -> int -> 'a list list
(** All size-[k] subsets, preserving element order within a subset. *)

val subsets_up_to : 'a list -> int -> 'a list list
(** All subsets of size 1..[k], smallest sizes first — the iteration
    space of Algorithm 1. *)

val count_up_to : int -> int -> int
(** [count_up_to n k] = Σ_{l=1..k} C(n, l): how many auxiliary graphs
    Algorithm 1 builds. *)

val iter_subsets_up_to : 'a list -> int -> ('a list -> unit) -> unit
(** Allocation-light iteration over [subsets_up_to]. *)
