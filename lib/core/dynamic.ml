module Rng = Topology.Rng
module Pq = Mcgraph.Pqueue

type arrival = {
  at : float;
  holding : float;
  request : Sdn.Request.t;
}

type trace = arrival list

let exponential rng mean =
  let u = Float.max 1e-12 (Rng.float rng 1.0) in
  -.mean *. log u

let poisson_trace ?spec rng net ~rate ~mean_holding ~count =
  if rate <= 0.0 || mean_holding <= 0.0 then
    invalid_arg "Dynamic.poisson_trace: non-positive rate or holding";
  let now = ref 0.0 in
  List.init count (fun id ->
      now := !now +. exponential rng (1.0 /. rate);
      {
        at = !now;
        holding = exponential rng mean_holding;
        request = Workload.Gen.request ?spec rng net ~id;
      })

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  completed : int;
  acceptance_ratio : float;
  peak_concurrent : int;
  mean_concurrent : float;
  mean_utilization : float;
  horizon : float;
}

type event =
  | Arrive of arrival
  | Depart of Pseudo_tree.t

let run ?(reset = true) net algo trace =
  if reset then Sdn.Network.reset net;
  let q = ref (Pq.of_list (List.map (fun a -> (a.at, Arrive a)) trace)) in
  let admitted = ref 0 and rejected = ref 0 and completed = ref 0 in
  let concurrent = ref 0 and peak = ref 0 in
  let last_time = ref 0.0 in
  let conc_integral = ref 0.0 and util_integral = ref 0.0 in
  let step now =
    let dt = now -. !last_time in
    conc_integral := !conc_integral +. (dt *. float_of_int !concurrent);
    util_integral := !util_integral +. (dt *. Sdn.Network.mean_link_utilization net);
    last_time := now
  in
  let rec drain () =
    match Pq.pop !q with
    | None -> ()
    | Some (now, ev, rest) ->
      q := rest;
      step now;
      (match ev with
      | Arrive a -> (
        match Admission.admit_tree net algo a.request with
        | Ok tree ->
          incr admitted;
          incr concurrent;
          if !concurrent > !peak then peak := !concurrent;
          q := Pq.insert !q (now +. a.holding) (Depart tree)
        | Error _ -> incr rejected)
      | Depart tree ->
        (* release reprices every load-dependent weight; it bumps the
           network's weight epoch, so the next arrival's shortest-path
           engine cannot serve trees computed under the old prices *)
        Sdn.Network.release net (Pseudo_tree.allocation tree);
        decr concurrent;
        incr completed);
      drain ()
  in
  drain ();
  let arrivals = List.length trace in
  let horizon = !last_time in
  {
    arrivals;
    admitted = !admitted;
    rejected = !rejected;
    completed = !completed;
    acceptance_ratio =
      (if arrivals = 0 then 1.0 else float_of_int !admitted /. float_of_int arrivals);
    peak_concurrent = !peak;
    mean_concurrent = (if horizon > 0.0 then !conc_integral /. horizon else 0.0);
    mean_utilization = (if horizon > 0.0 then !util_integral /. horizon else 0.0);
    horizon;
  }
