module Rng = Topology.Rng
module Pq = Mcgraph.Pqueue
module Obs = Nfv_obs.Obs

(* heal-triggered restoration telemetry: one attempted per re-admission
   try, exactly one of restored/failed per attempt *)
let c_restore_attempted = Obs.Counter.make "restoration.attempted"
let c_restore_restored = Obs.Counter.make "restoration.restored"
let c_restore_failed = Obs.Counter.make "restoration.failed"

type arrival = {
  at : float;
  holding : float;
  request : Sdn.Request.t;
}

type trace = arrival list

let exponential rng mean =
  let u = Float.max 1e-12 (Rng.float rng 1.0) in
  -.mean *. log u

let poisson_trace ?spec rng net ~rate ~mean_holding ~count =
  if rate <= 0.0 || mean_holding <= 0.0 then
    invalid_arg "Dynamic.poisson_trace: non-positive rate or holding";
  let now = ref 0.0 in
  List.init count (fun id ->
      now := !now +. exponential rng (1.0 /. rate);
      {
        at = !now;
        holding = exponential rng mean_holding;
        request = Workload.Gen.request ?spec rng net ~id;
      })

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  completed : int;
  acceptance_ratio : float;
  peak_concurrent : int;
  mean_concurrent : float;
  mean_utilization : float;
  horizon : float;
  evicted : int;
  repaired : int;
  dropped : int;
  restored : int;
}

type faults = {
  timeline : Sdn.Fault.timeline;
  controller : Sdn.Fault.t option;
  budget : Repair.budget;
  restore : Restore.t option;
}

let make_faults ?controller ?(budget = Repair.default_budget)
    ?(restore = Some Restore.default) timeline =
  { timeline; controller; budget; restore }

type happened =
  | Arrived of { id : int; tree : Pseudo_tree.t option }
  | Departed of { id : int; released : bool }
  | Fault_fired of { event : Sdn.Fault.event; victims : int list }
  | Repaired of { id : int; tier : Repair.tier; tree : Pseudo_tree.t }
  | Dropped of { id : int }
  | Restored of { id : int; tree : Pseudo_tree.t }

type event =
  | Arrive of arrival
  | Depart of int
  | Strike of Sdn.Fault.event

let run ?(reset = true) ?faults ?srlg ?(observe = fun _ _ -> ()) net algo trace
    =
  if reset then Sdn.Network.reset net;
  let fault =
    match faults with
    | None -> None
    | Some f ->
      Some (match f.controller with
           | Some c -> c
           | None -> Sdn.Fault.create net)
  in
  let window = Sp_window.create net in
  let q = ref (Pq.of_list (List.map (fun a -> (a.at, Arrive a)) trace)) in
  (match faults with
  | None -> ()
  | Some f ->
    List.iter
      (fun (s : Sdn.Fault.stamped) ->
        q := Pq.insert !q s.Sdn.Fault.at (Strike s.Sdn.Fault.event))
      f.timeline);
  let admitted = ref 0 and rejected = ref 0 and completed = ref 0 in
  let evicted = ref 0 and repaired = ref 0 in
  let dropped = ref 0 and restored = ref 0 in
  let concurrent = ref 0 and peak = ref 0 in
  (* sessions currently holding resources, and evicted-but-droppped
     sessions whose natural lifetime has not ended yet (the restoration
     backlog); both keyed by request id, which must be distinct *)
  let live : (int, Pseudo_tree.t) Hashtbl.t = Hashtbl.create 64 in
  let backlog : (int, Sdn.Request.t) Hashtbl.t = Hashtbl.create 16 in
  (* scheduled natural departure time per admitted session; kept while
     the session sits in the restoration backlog so deadline-aware
     policies can read remaining lifetimes, retired at departure *)
  let depart_of : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let last_time = ref 0.0 in
  let conc_integral = ref 0.0 and util_integral = ref 0.0 in
  let step now =
    let dt = now -. !last_time in
    conc_integral := !conc_integral +. (dt *. float_of_int !concurrent);
    util_integral := !util_integral +. (dt *. Sdn.Network.mean_link_utilization net);
    last_time := now
  in
  let enter id tree =
    Hashtbl.replace live id tree;
    incr concurrent;
    if !concurrent > !peak then peak := !concurrent
  in
  let sorted_live () =
    Hashtbl.fold (fun id tree acc -> (id, tree) :: acc) live []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* one proactive re-admission pass over the dropped backlog, in the
     policy's order. [returned] is the trigger's estimate of the
     bandwidth it just gave back (only knapsack policies read it). The
     span only opens on a nonempty backlog, exactly like the historical
     hard-coded pass. *)
  let restore_pass now (rcfg : Restore.t) ~returned =
    if Hashtbl.length backlog > 0 then
      Obs.Span.run "restoration.pass" @@ fun () ->
      let entries =
        Hashtbl.fold
          (fun id r acc ->
            {
              Restore.request = r;
              depart_at =
                Option.value ~default:infinity (Hashtbl.find_opt depart_of id);
            }
            :: acc)
          backlog []
      in
      List.iter
        (fun (r : Sdn.Request.t) ->
          Obs.Counter.incr c_restore_attempted;
          match Admission.admit_tree ~window ?srlg net algo r with
          | Ok tree ->
            Obs.Counter.incr c_restore_restored;
            Hashtbl.remove backlog r.Sdn.Request.id;
            incr restored;
            enter r.Sdn.Request.id tree;
            observe now (Restored { id = r.Sdn.Request.id; tree })
          | Error _ -> Obs.Counter.incr c_restore_failed)
        (Restore.select ~window ~returned net rcfg entries)
  in
  let strike now ev =
    let fault = Option.get fault and cfg = Option.get faults in
    (* the heal's returned-bandwidth estimate must be read before
       [inject] clears the confiscation ledger *)
    let returned =
      match ev with
      | Sdn.Fault.Link_up e -> Sdn.Fault.confiscated_link fault e
      | _ -> 0.0
    in
    let holders = sorted_live () in
    let allocations =
      List.map (fun (id, t) -> (id, Pseudo_tree.allocation t)) holders
    in
    let victims = Sdn.Fault.inject fault ~live:allocations ev in
    evicted := !evicted + List.length victims;
    observe now (Fault_fired { event = ev; victims });
    List.iter
      (fun vid ->
        let vtree = Hashtbl.find live vid in
        Hashtbl.remove live vid;
        match
          Repair.repair ~budget:cfg.budget ~algo ~window ?avail:srlg
            ~link_down:(Sdn.Fault.link_is_down fault)
            ~server_down:(Sdn.Fault.server_is_down fault)
            net vtree
        with
        | Repair.Repaired { tree; tier } ->
          incr repaired;
          Hashtbl.replace live vid tree;
          observe now (Repaired { id = vid; tier; tree })
        | Repair.Dropped _ ->
          incr dropped;
          decr concurrent;
          Hashtbl.replace backlog vid vtree.Pseudo_tree.request;
          observe now (Dropped { id = vid }))
      victims;
    (* a heal returns capacity: proactively re-admit the dropped backlog
       under the run's restoration policy (each survivor keeps its
       original departure time, still scheduled in the queue) *)
    match (ev, cfg.restore) with
    | (Sdn.Fault.Link_up _ | Sdn.Fault.Server_up _), Some rcfg ->
      restore_pass now rcfg ~returned
    | _ -> ()
  in
  let rec drain () =
    match Pq.pop !q with
    | None -> ()
    | Some (now, ev, rest) ->
      q := rest;
      step now;
      (match ev with
      | Arrive a -> (
        let id = a.request.Sdn.Request.id in
        match Admission.admit_tree ~window ?srlg net algo a.request with
        | Ok tree ->
          incr admitted;
          enter id tree;
          Hashtbl.replace depart_of id (now +. a.holding);
          q := Pq.insert !q (now +. a.holding) (Depart id);
          observe now (Arrived { id; tree = Some tree })
        | Error _ ->
          incr rejected;
          observe now (Arrived { id; tree = None }))
      | Depart id -> (
        match Hashtbl.find_opt live id with
        | Some tree ->
          (* release reprices every load-dependent weight; it bumps the
             network's weight epoch, so the next arrival's shortest-path
             engine cannot serve trees computed under the old prices *)
          let alloc = Pseudo_tree.allocation tree in
          Sdn.Network.release net alloc;
          Hashtbl.remove live id;
          Hashtbl.remove depart_of id;
          decr concurrent;
          incr completed;
          observe now (Departed { id; released = true });
          (* a departure returns capacity too: under [Heal_or_depart]
             it triggers the same restoration pass a heal would, with
             the departed session's link bandwidth as the returned
             estimate *)
          (match faults with
          | Some { restore = Some rcfg; _ } when Restore.on_depart rcfg ->
            let returned =
              List.fold_left
                (fun acc (_, amt) -> acc +. amt)
                0.0 alloc.Sdn.Network.links
            in
            restore_pass now rcfg ~returned
          | _ -> ())
        | None ->
          (* evicted by a fault and never restored: its allocation was
             already released at eviction, so there is nothing to give
             back (releasing again would double-free); its lifetime is
             over, so it also leaves the restoration backlog *)
          Hashtbl.remove backlog id;
          Hashtbl.remove depart_of id;
          observe now (Departed { id; released = false }))
      | Strike ev -> strike now ev);
      drain ()
  in
  drain ();
  let arrivals = List.length trace in
  let horizon = !last_time in
  {
    arrivals;
    admitted = !admitted;
    rejected = !rejected;
    completed = !completed;
    acceptance_ratio =
      (if arrivals = 0 then 1.0 else float_of_int !admitted /. float_of_int arrivals);
    peak_concurrent = !peak;
    mean_concurrent = (if horizon > 0.0 then !conc_integral /. horizon else 0.0);
    mean_utilization = (if horizon > 0.0 then !util_integral /. horizon else 0.0);
    horizon;
    evicted = !evicted;
    repaired = !repaired;
    dropped = !dropped;
    restored = !restored;
  }
