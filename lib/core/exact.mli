(** Exact optima on small instances — test oracles and ratio studies.

    For K = 1 the optimal pseudo-multicast tree decomposes exactly:
    traffic must reach some server [v] (cheapest: a shortest path) and
    then span [D_k] from [v] (cheapest: an optimal Steiner tree), every
    traversal paying for bandwidth. Hence

    OPT₁ = min_v [ b·d(s, v) + c_v(SC) + SteinerOPT({v} ∪ D) ].

    The Steiner optimum comes from {!Mcgraph.Steiner.exact}
    (Dreyfus–Wagner), so instances must keep [|D_k| + 1 ≤ 15]. *)

type result = {
  tree : Pseudo_tree.t;
  server : int;
  cost : float;
}

val optimal_one_server : Sdn.Network.t -> Sdn.Request.t -> (result, string) Stdlib.result
(** The exact K = 1 optimum under the linear (per-traversal) cost model.
    Raises [Invalid_argument] when the destination set is too large for
    Dreyfus–Wagner. *)

type multi_result = {
  mtree : Pseudo_tree.t;
  servers : int list;
  assignment : (int * int) list;   (** destination → serving server *)
  mcost : float;
}

val optimal : ?k:int -> Sdn.Network.t -> Sdn.Request.t -> (multi_result, string) Stdlib.result
(** The exact optimum with at most [k] (default 3) servers, over the
    fully general structure family: an optimal Steiner tree carries the
    unprocessed stream from the source to the chosen servers (sharing
    common prefixes), and each server distributes the processed stream
    over an optimal Steiner tree to its assigned destinations. Every
    pseudo-multicast routing decomposes into (and is dominated by) such
    a structure, so this is a true lower bound realised by a valid
    routing — the reference for the 2K-approximation property test.

    Exponential in [|D_k|] and the server count; raises
    [Invalid_argument] when [|D_k| > 6]. *)
