module Obs = Nfv_obs.Obs

(* same instrument Online_cp's floor counts under (Counter.make is
   idempotent per name) *)
let c_avail_blocked = Obs.Counter.make "avail.reserve_blocked"

type order =
  | Arrival
  | Smallest_first
  | Largest_first
  | Cheapest_first

let order_to_string = function
  | Arrival -> "arrival"
  | Smallest_first -> "smallest-first"
  | Largest_first -> "largest-first"
  | Cheapest_first -> "cheapest-first"

type result = {
  order : order;
  admitted : int;
  rejected : int;
  total_cost : float;
  mean_link_utilization : float;
  trees : (int * Pseudo_tree.t) list;
}

let footprint r =
  r.Sdn.Request.bandwidth *. float_of_int (Sdn.Request.terminal_count r)

let reorder ?k ?window net requests = function
  | Arrival -> requests
  | Smallest_first ->
    List.stable_sort (fun a b -> compare (footprint a) (footprint b)) requests
  | Largest_first ->
    List.stable_sort (fun a b -> compare (footprint b) (footprint a)) requests
  | Cheapest_first ->
    let priced =
      List.map
        (fun r ->
          let price =
            match Appro_multi.solve ?k ?window net r with
            | Ok res -> res.Appro_multi.cost
            | Error _ -> infinity
          in
          (price, r))
        requests
    in
    List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) priced)

let plan ?k ?(reset = true) ?srlg net requests order =
  (* Reset strictly before pricing: Cheapest_first's solves must see the
     idle network, not whatever residuals the previous run left behind
     (they used to run first, making the promised idle-network pricing a
     lie whenever [plan] followed another run on the same network). With
     [~reset:false] the caller deliberately keeps the current residuals,
     and pricing sees exactly those. *)
  if reset then Sdn.Network.reset net;
  (* one engine window across pricing and admission: every Cheapest_first
     solve runs before the first allocation, so same-bandwidth requests
     share cached Dijkstra trees for the whole pricing pass *)
  let window = Sp_window.create net in
  let ordered = reorder ?k ~window net requests order in
  let admitted = ref 0 and rejected = ref 0 and total = ref 0.0 in
  let trees = ref [] in
  (* the offline planner prices with Appro_Multi's linear costs, so the
     exposure surcharge does not apply here; [srlg]'s spare-capacity
     floor does. [Appro_multi.admit] has already committed the
     allocation when it returns [Ok], so the floor is asked on the
     committed residuals ({!Online_cp.reserve_admits_after}) and the
     allocation only released on an actual block — a passing floor
     touches nothing, so it cannot bump the weight epoch or flush the
     plan's Sp_window engines (the old release / check / re-commit
     dance churned the epoch twice per admitted request). *)
  let floor_blocks alloc =
    match srlg with
    | Some av when Online_cp.avail_reserve av > 0.0 ->
      if Online_cp.reserve_admits_after av net alloc then false
      else begin
        Sdn.Network.release net alloc;
        Obs.Counter.incr c_avail_blocked;
        true
      end
    | _ -> false
  in
  List.iter
    (fun r ->
      match Appro_multi.admit ?k ~window net r with
      | Ok res ->
        if floor_blocks (Pseudo_tree.allocation res.Appro_multi.tree) then
          incr rejected
        else begin
          incr admitted;
          total := !total +. res.Appro_multi.cost;
          trees := (r.Sdn.Request.id, res.Appro_multi.tree) :: !trees
        end
      | Error _ -> incr rejected)
    ordered;
  {
    order;
    admitted = !admitted;
    rejected = !rejected;
    total_cost = !total;
    mean_link_utilization = Sdn.Network.mean_link_utilization net;
    trees = List.rev !trees;
  }

let compare_orders ?k ?(reset = true) ?srlg net requests =
  (* [?srlg]/[?reset] used to be dropped on the floor here, so the
     comparison could not express the availability floor [plan]
     supports. With [reset:false] every order must still start from the
     caller's residuals, so each plan's admitted trees are released
     again before the next order runs (exact up to float round-off —
     release returns precisely the amounts allocate subtracted, in the
     same per-link aggregation). *)
  List.map
    (fun o ->
      let r = plan ?k ~reset ?srlg net requests o in
      if not reset then
        List.iter
          (fun (_, t) -> Sdn.Network.release net (Pseudo_tree.allocation t))
          r.trees;
      (o, r))
    [ Arrival; Smallest_first; Largest_first; Cheapest_first ]
