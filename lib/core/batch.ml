type order =
  | Arrival
  | Smallest_first
  | Largest_first
  | Cheapest_first

let order_to_string = function
  | Arrival -> "arrival"
  | Smallest_first -> "smallest-first"
  | Largest_first -> "largest-first"
  | Cheapest_first -> "cheapest-first"

type result = {
  order : order;
  admitted : int;
  rejected : int;
  total_cost : float;
  mean_link_utilization : float;
  trees : (int * Pseudo_tree.t) list;
}

let footprint r =
  r.Sdn.Request.bandwidth *. float_of_int (Sdn.Request.terminal_count r)

let reorder ?k net requests = function
  | Arrival -> requests
  | Smallest_first ->
    List.stable_sort (fun a b -> compare (footprint a) (footprint b)) requests
  | Largest_first ->
    List.stable_sort (fun a b -> compare (footprint b) (footprint a)) requests
  | Cheapest_first ->
    let priced =
      List.map
        (fun r ->
          let price =
            match Appro_multi.solve ?k net r with
            | Ok res -> res.Appro_multi.cost
            | Error _ -> infinity
          in
          (price, r))
        requests
    in
    List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) priced)

let plan ?k ?(reset = true) net requests order =
  (* price before any allocation so Cheapest_first sees the idle network *)
  let ordered = reorder ?k net requests order in
  if reset then Sdn.Network.reset net;
  let admitted = ref 0 and rejected = ref 0 and total = ref 0.0 in
  let trees = ref [] in
  List.iter
    (fun r ->
      match Appro_multi.admit ?k net r with
      | Ok res ->
        incr admitted;
        total := !total +. res.Appro_multi.cost;
        trees := (r.Sdn.Request.id, res.Appro_multi.tree) :: !trees
      | Error _ -> incr rejected)
    ordered;
  {
    order;
    admitted = !admitted;
    rejected = !rejected;
    total_cost = !total;
    mean_link_utilization = Sdn.Network.mean_link_utilization net;
    trees = List.rev !trees;
  }

let compare_orders ?k net requests =
  List.map
    (fun o -> (o, plan ?k net requests o))
    [ Arrival; Smallest_first; Largest_first; Cheapest_first ]
