module G = Mcgraph.Graph
module Paths = Mcgraph.Paths
module Sp = Mcgraph.Sp_engine
module Tree = Mcgraph.Tree
module Obs = Nfv_obs.Obs

let c_attempted = Obs.Counter.make "repair.attempted"
let c_patched = Obs.Counter.make "repair.patched"
let c_migrated = Obs.Counter.make "repair.migrated"
let c_readmitted = Obs.Counter.make "repair.readmitted"
let c_dropped = Obs.Counter.make "repair.dropped"
let c_migrate_pruned = Obs.Counter.make "repair.migrate.pruned"

(* whole-call latency; recorded manually (not via Span.run) so nesting
   inside a caller's span cannot rename it (spans join nested names
   with "/"), while the per-tier spans below are fine to nest under it *)
let h_attempt = Obs.Histogram.make "repair.attempt"

type tier = Patched | Migrated | Readmitted

let tier_to_string = function
  | Patched -> "patched"
  | Migrated -> "migrated"
  | Readmitted -> "readmitted"

type outcome =
  | Repaired of { tree : Pseudo_tree.t; tier : tier }
  | Dropped of string

type budget = {
  max_patch_paths : int;
  max_migrate_candidates : int;
  allow_readmit : bool;
}

let default_budget =
  { max_patch_paths = 8; max_migrate_candidates = 16; allow_readmit = true }

(* the weight model each admission algorithm prices with; repair must
   search under the *same* prices so its engines can share Sp_window
   families with the surrounding admission run *)
let pricing_of_algo net = function
  | Admission.Online_cp -> (`Exponential, Online_cp.default_params net)
  | Admission.Online_cp_no_threshold ->
    (`Exponential, Admission.no_threshold_params net)
  | Admission.Online_linear | Admission.Sp ->
    (`Linear, Online_cp.default_params net)

let repair_engine ?window ?avail ~mode ~params net ~bandwidth =
  let link_w e = Online_cp.link_weight ?avail ~mode ~params net ~bandwidth e in
  match window with
  | Some w ->
    Sp_window.engine w
      ~family:(Online_cp.weight_family ?avail ~mode ~params ())
      ~bucket:(Sp_window.bucket w ~bandwidth)
      ~weight:link_w
  | None ->
    Sp.create (Sdn.Network.graph net) ~weight:link_w
      ~epoch:(fun () -> Sdn.Network.weight_epoch net)

(* ---- shared tree surgery ---------------------------------------------- *)

(* breadth-first sweep of the source's component of [edges]; marks
   reached nodes in [visited] and returns the component's edges *)
let component g ~edges ~from visited =
  let adj = Array.make (G.n g) [] in
  List.iter
    (fun e ->
      let u, v = G.endpoints g e in
      adj.(u) <- (e, v) :: adj.(u);
      adj.(v) <- (e, u) :: adj.(v))
    edges;
  let keep = ref [] in
  let q = Queue.create () in
  visited.(from) <- true;
  Queue.add from q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (e, v) ->
        if not visited.(v) then begin
          visited.(v) <- true;
          keep := e :: !keep;
          Queue.add v q
        end)
      adj.(u)
  done;
  !keep

(* repeatedly drop leaves outside [keep_nodes], returning the rooted
   remainder and its edge list *)
let prune_to g ~root ~keep_nodes edges =
  let rec go edges =
    let t = Tree.of_edges g ~root edges in
    let removable =
      List.filter
        (fun v -> v <> root && not (List.mem v keep_nodes))
        (Tree.leaves t)
    in
    if removable = [] then (t, edges)
    else begin
      let drop = List.map (fun v -> Tree.parent_edge t v) removable in
      go (List.filter (fun e -> not (List.mem e drop)) edges)
    end
  in
  go edges

(* witness routes + per-server backtracks for a rooted repaired tree;
   [server_of d] chooses the serving server (must be a tree node) *)
let finish_tree ~rooted ~support ~request ~server_of =
  let s = request.Sdn.Request.source in
  let dests = request.Sdn.Request.destinations in
  let routes =
    List.map
      (fun d ->
        let v = server_of d in
        ( d,
          {
            Pseudo_tree.to_server = Tree.path_between rooted s v;
            server = v;
            onward = Tree.path_between rooted v d;
          } ))
      dests
  in
  let used_servers =
    List.sort_uniq compare (List.map (fun (_, r) -> r.Pseudo_tree.server) routes)
  in
  let backtracks =
    List.concat_map
      (fun v ->
        let served =
          List.filter_map
            (fun (d, r) -> if r.Pseudo_tree.server = v then Some d else None)
            routes
        in
        let u = Tree.lca_many rooted (v :: served) in
        Tree.path_up rooted v ~ancestor:u)
      used_servers
  in
  Pseudo_tree.make ~request ~servers:used_servers
    ~edge_uses:(Pseudo_tree.edge_uses_of_list (support @ backtracks))
    ~routes

(* ---- tier 1: local patch ---------------------------------------------- *)

exception Infeasible

(* re-attach every severed terminal of the old tree through current
   shortest paths; the old server assignment is kept *)
let try_patch ~budget ~eng ~link_down ~server_down net (victim : Pseudo_tree.t)
    =
  let g = Sdn.Network.graph net in
  let request = victim.Pseudo_tree.request in
  let s = request.Sdn.Request.source in
  let dests = request.Sdn.Request.destinations in
  if List.exists server_down victim.Pseudo_tree.servers then None
  else begin
    let support = List.map fst victim.Pseudo_tree.edge_uses in
    let down, surviving = List.partition link_down support in
    if down = [] then
      (* no structural loss (the session was evicted by a degradation):
         try to re-establish the identical tree under the new residuals *)
      match Sdn.Network.allocate net (Pseudo_tree.allocation victim) with
      | Ok () -> Some victim
      | Error _ -> None
    else begin
      let in_tree = Array.make (G.n g) false in
      let keep = component g ~edges:surviving ~from:s in_tree in
      let must_reach =
        List.sort_uniq compare (victim.Pseudo_tree.servers @ dests)
      in
      let severed = List.filter (fun v -> not in_tree.(v)) must_reach in
      if List.length severed > budget.max_patch_paths then None
      else
        try
          (* Each severed terminal gets a shortest path to the closest
             node already in the tree (tie: smallest id). Intermediate
             path nodes are strictly closer to the terminal than the
             chosen attach point, hence not yet in the tree — so the
             paths are edge-disjoint from the kept tree and from each
             other, and the union stays acyclic. *)
          let patches = ref [] in
          List.iter
            (fun tgt ->
              let spt = Sp.spt eng tgt in
              let best = ref (-1) and bd = ref infinity in
              Array.iteri
                (fun u inside ->
                  if inside && spt.Paths.dist.(u) < !bd then begin
                    best := u;
                    bd := spt.Paths.dist.(u)
                  end)
                in_tree;
              if !best < 0 then raise Infeasible;
              match Paths.path_edges g spt !best with
              | None -> raise Infeasible
              | Some path ->
                patches := List.rev_append path !patches;
                let cur = ref tgt in
                in_tree.(tgt) <- true;
                List.iter
                  (fun e ->
                    cur := G.other_endpoint g e !cur;
                    in_tree.(!cur) <- true)
                  path)
            severed;
          let candidate = keep @ !patches in
          let rooted, support =
            prune_to g ~root:s ~keep_nodes:(s :: must_reach) candidate
          in
          let server_of d =
            match List.assoc_opt d victim.Pseudo_tree.routes with
            | Some r -> r.Pseudo_tree.server
            | None -> List.hd victim.Pseudo_tree.servers
          in
          let tree = finish_tree ~rooted ~support ~request ~server_of in
          match Sdn.Network.allocate net (Pseudo_tree.allocation tree) with
          | Ok () -> Some tree
          | Error _ -> None
        with Infeasible | Invalid_argument _ -> None
    end
  end

(* ---- tier 2: server migration ----------------------------------------- *)

(* keep the surviving tree over the destinations, move the service chain
   to the cheapest reachable server. Candidate servers are screened by
   the triangle-inequality lower bound [w_v + max 0 (dist s v - maxd)]
   before the per-candidate Dijkstra runs, with Online_cp's ULP slack so
   screening never reorders the exact outcome. *)
let try_migrate ~budget ~eng ~mode ~params ~link_down ~server_down net
    (victim : Pseudo_tree.t) =
  match victim.Pseudo_tree.servers with
  | [] | _ :: _ :: _ -> None
  | [ _v0 ] ->
    let g = Sdn.Network.graph net in
    let request = victim.Pseudo_tree.request in
    let s = request.Sdn.Request.source in
    let dests = request.Sdn.Request.destinations in
    let demand = Sdn.Request.demand_mhz request in
    let support = List.map fst victim.Pseudo_tree.edge_uses in
    let surviving = List.filter (fun e -> not (link_down e)) support in
    let in_tree = Array.make (G.n g) false in
    let keep = component g ~edges:surviving ~from:s in_tree in
    if not (List.for_all (fun d -> in_tree.(d)) dests) then None
    else begin
      try
        let rooted, kept =
          prune_to g ~root:s ~keep_nodes:(s :: dests) keep
        in
        let tree_nodes = Tree.nodes rooted in
        let spt_s = Sp.spt eng s in
        let maxd =
          List.fold_left
            (fun acc v -> Float.max acc spt_s.Paths.dist.(v))
            0.0 tree_nodes
        in
        let w_v v = Online_cp.server_weight ~mode ~params net ~demand v in
        let screened =
          List.filter_map
            (fun v ->
              if server_down v || not (Sdn.Network.server_admits net v demand)
              then None
              else begin
                let dsv = spt_s.Paths.dist.(v) in
                let bound =
                  if dsv = infinity then
                    if maxd = infinity then w_v v else infinity
                  else w_v v +. Float.max 0.0 (dsv -. maxd)
                in
                Some (bound, v)
              end)
            (Sdn.Network.servers net)
          |> List.sort compare
        in
        (* price candidates in bound order, best-first under the budget *)
        let priced = ref [] in
        let incumbent = ref infinity in
        let considered = ref 0 in
        List.iter
          (fun (bound, v) ->
            if
              bound = infinity
              || bound > Online_cp.slack !incumbent
              || !considered >= budget.max_migrate_candidates
            then Obs.Counter.incr c_migrate_pruned
            else begin
              incr considered;
              let spt_v = Sp.spt eng v in
              let best = ref (-1) and bd = ref infinity in
              List.iter
                (fun u ->
                  if spt_v.Paths.dist.(u) < !bd then begin
                    best := u;
                    bd := spt_v.Paths.dist.(u)
                  end
                  else if
                    spt_v.Paths.dist.(u) = !bd && !best >= 0 && u < !best
                  then best := u)
                (List.sort compare tree_nodes);
              if !best >= 0 && !bd < infinity then begin
                let score = w_v v +. !bd in
                if score < !incumbent then incumbent := score;
                priced := (score, v, !best) :: !priced
              end
            end)
          screened;
        let ranked = List.sort compare !priced in
        let rec attempt = function
          | [] -> None
          | (_score, v, attach) :: rest -> (
            let spt_v = Sp.spt eng v in
            match Paths.path_edges g spt_v attach with
            | None -> attempt rest
            | Some path -> (
              match
                let rooted2 = Tree.of_edges g ~root:s (kept @ path) in
                let tree =
                  finish_tree ~rooted:rooted2 ~support:(kept @ path)
                    ~request ~server_of:(fun _ -> v)
                in
                (tree, Sdn.Network.allocate net (Pseudo_tree.allocation tree))
              with
              | tree, Ok () -> Some tree
              | _, Error _ -> attempt rest
              | exception Invalid_argument _ -> attempt rest))
        in
        attempt ranked
      with Invalid_argument _ -> None
    end

(* ---- the escalation ladder -------------------------------------------- *)

let repair ?(budget = default_budget) ?(algo = Admission.Online_cp) ?window
    ?avail ~link_down ~server_down net (victim : Pseudo_tree.t) =
  Obs.Counter.incr c_attempted;
  let t0 = if !Obs.enabled then !Obs.clock () else 0.0 in
  let mode, params = pricing_of_algo net algo in
  let eng =
    repair_engine ?window ?avail ~mode ~params net
      ~bandwidth:victim.Pseudo_tree.request.Sdn.Request.bandwidth
  in
  let patched =
    Obs.Span.run "repair.patch" @@ fun () ->
    try_patch ~budget ~eng ~link_down ~server_down net victim
  in
  let result =
    match patched with
    | Some tree ->
      Obs.Counter.incr c_patched;
      Repaired { tree; tier = Patched }
    | None -> (
      let migrated =
        Obs.Span.run "repair.migrate" @@ fun () ->
        try_migrate ~budget ~eng ~mode ~params ~link_down ~server_down net
          victim
      in
      match migrated with
      | Some tree ->
        Obs.Counter.incr c_migrated;
        Repaired { tree; tier = Migrated }
      | None ->
        if not budget.allow_readmit then begin
          Obs.Counter.incr c_dropped;
          Dropped "patch and migration failed; re-admission disabled"
        end
        else begin
          let readmitted =
            Obs.Span.run "repair.readmit" @@ fun () ->
            Admission.admit_tree ?window ?srlg:avail net algo
              victim.Pseudo_tree.request
          in
          match readmitted with
          | Ok tree ->
            Obs.Counter.incr c_readmitted;
            Repaired { tree; tier = Readmitted }
          | Error msg ->
            Obs.Counter.incr c_dropped;
            Dropped msg
        end)
  in
  if !Obs.enabled then Obs.Histogram.observe h_attempt (!Obs.clock () -. t0);
  result
