(** The auxiliary undirected graph [G_k^i] of Algorithm 1 (§IV-B).

    For a request [r_k] the extended graph adds a virtual source [s'_k]
    and one virtual edge [(s'_k, v)] per candidate server [v], weighted
    [b_k·d_G(s_k, v) + c_v(SC_k)]; base edges cost [b_k·c_e]; edges
    [(s_k, v)] with [v] in the chosen server combination cost zero.

    Instead of materialising one graph per server combination and
    re-running Dijkstra (the naive [O(|V_S|^K)] Dijkstra blow-up), the
    module evaluates each combination's metric exactly through a {e hub
    decomposition}: every special edge (virtual or zeroed) is incident
    to [s_k] or [s'_k], so any shortest path is base legs stitched at the
    hubs [{s_k, s'_k} ∪ subset]. A small Floyd–Warshall over the hubs
    yields exact distances and reconstructible paths. Base-graph legs
    come from a lazy {!Mcgraph.Sp_engine}: one Dijkstra tree per queried
    source (the request source, candidate servers, destinations), cached
    across all combinations and keyed by the network's weight epoch —
    never the former eager O(V²) all-pairs tables. Tests check this
    against Dijkstra on a materialised auxiliary graph. *)

type t

val build :
  ?keep:(int -> bool) ->
  ?edge_weight:(int -> float) ->
  ?placement_cost:(int -> float) ->
  ?engine:(weight:(int -> float) -> Mcgraph.Sp_engine.t) ->
  net:Sdn.Network.t ->
  request:Sdn.Request.t ->
  candidate_servers:int list ->
  unit ->
  t
(** [keep] filters usable base edges (capacity pruning); default keeps
    all. [edge_weight] prices a base edge (default [b_k·c_e] — override
    with exponential weights for online use); [placement_cost] prices a
    server (default [c_v(SC_k)]). [candidate_servers] are the servers
    considered for hosting the chain (already filtered for computing
    capacity by the caller). [engine] lets the caller supply the
    shortest-path engine for the pruned base weights instead of a
    private one — used to share a window-scoped engine across requests;
    the supplied engine must answer exactly as a fresh engine over
    [weight] would (the {!Sp_window} contract). *)

val ext_graph : t -> Mcgraph.Graph.t
(** Base graph plus virtual node and virtual edges; base edge ids are
    preserved. *)

val virtual_node : t -> int

val base_edge_count : t -> int
(** Edges with id below this bound are base edges. *)

val is_virtual_edge : t -> int -> bool

val server_of_virtual_edge : t -> int -> int

val virtual_edge_of_server : t -> int -> int option

val virtual_edge_weight : t -> int -> float
(** [b_k·d(s_k, v) + c_v(SC_k)] for a candidate server; [infinity] when
    the server is unreachable from the source. *)

val reachable_servers : t -> int list
(** Candidate servers with finite virtual-edge weight. *)

val base_dist : t -> int -> int -> float
(** Shortest-path distance in the (pruned) base graph, in units of
    [b_k·c_e]. Served by the lazy engine: the first query from a source
    costs one Dijkstra, later queries from it are O(1). *)

val base_path : t -> int -> int -> int list option

val engine : t -> Mcgraph.Sp_engine.t
(** The underlying per-source engine over the pruned base graph — epoch-
    bound to the network, exposed for instrumentation and tests. *)

type subset_metric
(** The exact metric of [G_k^i] for one server combination. *)

val subset_metric : t -> int list -> subset_metric
(** Raises [Invalid_argument] if the subset contains a non-candidate. *)

val weight : subset_metric -> int -> float
(** Per-edge weight of the auxiliary graph under this combination
    ([infinity] for pruned base edges and other combinations' virtual
    edges; [0] for zeroed source–server edges). *)

val dist : subset_metric -> int -> int -> float
(** Exact shortest-path distance in [G_k^i] between any two extended
    nodes (the virtual node included). *)

val path : subset_metric -> int -> int -> int list option
(** Edge ids realising [dist], in travel order. *)

val steiner_tree : subset_metric -> int list option
(** KMB Steiner tree spanning [{s'_k} ∪ D_k] in [G_k^i]; [None] when a
    terminal is unreachable. *)

val tree_cost : subset_metric -> int list -> float
(** Cost of an edge set under this combination's weights. *)

val to_pseudo_tree : t -> int list -> Pseudo_tree.t
(** Map an auxiliary Steiner tree (rooted at the virtual source) back to
    a pseudo-multicast tree of the SDN: virtual edges expand into
    shortest source → server paths, witnesses are read off the tree.
    Raises [Invalid_argument] if the edge set is not a tree rooted at
    the virtual source spanning all destinations. *)

val materialize : t -> subset:int list -> Mcgraph.Graph.t * (int -> float)
(** A concrete copy of [G_k^i] with its weight function — used by tests
    to validate [dist] against a plain Dijkstra. *)
