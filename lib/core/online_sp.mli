(** The [SP] online baseline (§VI-A).

    For each request: remove links and servers without enough residual
    resources, give every remaining link the same unit weight, and for
    each candidate server [v] combine a shortest path [s_k → v] with a
    single-source shortest-path tree rooted at [v] spanning the
    destinations. The cheapest (fewest total edges) combination is
    admitted. Load-oblivious by design — the foil for [Online_CP]. *)

type admitted = {
  tree : Pseudo_tree.t;
  server : int;
  hops : int;   (** total edge count of path + tree (the SP objective) *)
}

type outcome = Admitted of admitted | Rejected of string

val admit : ?window:Sp_window.t -> Sdn.Network.t -> Sdn.Request.t -> outcome
(** Decide one request; on admission the network's residuals are
    reduced. [?window] shares the per-server shortest-path trees across
    the requests of an admission run (exact — see {!Sp_window}); by
    default every call builds a private engine. *)
