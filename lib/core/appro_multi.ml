type result = {
  tree : Pseudo_tree.t;
  subset : int list;
  aux_cost : float;
  cost : float;
  combinations : int;
}

module Obs = Nfv_obs.Obs

let c_dijkstra_runs = Obs.Counter.make "dijkstra.runs"
let c_dijkstra_relax = Obs.Counter.make "dijkstra.relaxations"
let c_dijkstras = Obs.Counter.make "appro_multi.dijkstras"
let c_relaxations = Obs.Counter.make "appro_multi.relaxations"
let c_solved = Obs.Counter.make "appro_multi.solved"
let c_infeasible = Obs.Counter.make "appro_multi.infeasible"
let c_admitted = Obs.Counter.make "appro_multi.admitted"
let c_rejected = Obs.Counter.make "appro_multi.rejected"

(* span + Dijkstra attribution + outcome count around one solve/admit *)
let observe span ~ok ~err f =
  Obs.Span.run span @@ fun () ->
  let runs0 = Obs.Counter.value c_dijkstra_runs in
  let relax0 = Obs.Counter.value c_dijkstra_relax in
  let result = f () in
  Obs.Counter.add c_dijkstras (Obs.Counter.value c_dijkstra_runs - runs0);
  Obs.Counter.add c_relaxations (Obs.Counter.value c_dijkstra_relax - relax0);
  Obs.Counter.incr (match result with Ok _ -> ok | Error _ -> err);
  result

let default_k = 3

(* Engine sharing across a window is keyed per Sp_window's exactness
   contract: the default base weights are [b_k · c_e] (so the bandwidth's
   float bits go into the family) pruned by [link_admits _ b_k] (covered
   by the feasibility bucket). Callers overriding [edge_weight] or
   [placement_cost] never reach this path — they keep private engines. *)
let acquire_engine window ~bandwidth ~capacitated =
  Option.map
    (fun w ->
      let bits = Int64.to_string (Int64.bits_of_float bandwidth) in
      let family, bucket =
        if capacitated then
          ("appro.cap:" ^ bits, Sp_window.bucket w ~bandwidth)
        else ("appro.all:" ^ bits, -1)
      in
      fun ~weight -> Sp_window.engine w ~family ~bucket ~weight)
    window

let candidates_impl ?(k = default_k) ?engine ?edge_weight ?placement_cost ~keep
    ~usable_servers net request =
  if k < 1 then invalid_arg "Appro_multi: K must be at least 1";
  let aux =
    Aux_graph.build ~keep ?edge_weight ?placement_cost ?engine ~net ~request
      ~candidate_servers:usable_servers ()
  in
  let reachable = Aux_graph.reachable_servers aux in
  let found = ref [] in
  Combinations.iter_subsets_up_to reachable k (fun subset ->
      let sm = Aux_graph.subset_metric aux subset in
      match Aux_graph.steiner_tree sm with
      | None -> ()
      | Some edges ->
        let c = Aux_graph.tree_cost sm edges in
        if c < infinity then found := (c, subset, aux, edges) :: !found);
  (* deterministic order: cost, then subset size, then the subset itself
     (equal-cost trees are common — a superset whose extra servers go
     unused costs the same as its subset) *)
  List.sort
    (fun (ca, sa, _, _) (cb, sb, _, _) ->
      compare (ca, List.length sa, sa) (cb, List.length sb, sb))
    !found

(* The [combinations] field always reports the size of the explored
   search space: the number of non-empty server subsets of size ≤ K drawn
   from the reachable candidate servers, feasible or not. *)
let combinations_explored ?k aux =
  Combinations.count_up_to
    (List.length (Aux_graph.reachable_servers aux))
    (Option.value k ~default:default_k)

let candidates ?k ?edge_weight ?placement_cost ~keep ~usable_servers net
    request =
  candidates_impl ?k ?edge_weight ?placement_cost ~keep ~usable_servers net
    request

let solve_with ?k ?engine ~keep ~usable_servers net request =
  observe "appro_multi.solve" ~ok:c_solved ~err:c_infeasible @@ fun () ->
  if usable_servers = [] then Error "no usable server"
  else
    match candidates_impl ?k ?engine ~keep ~usable_servers net request with
    | [] -> Error "no feasible pseudo-multicast tree"
    | (aux_cost, subset, aux, edges) :: _ ->
      let tree = Aux_graph.to_pseudo_tree aux edges in
      let combinations = combinations_explored ?k aux in
      Ok
        {
          tree;
          subset = List.sort compare subset;
          aux_cost;
          cost = Pseudo_tree.cost net tree;
          combinations;
        }

let solve ?k ?window net request =
  let engine =
    acquire_engine window ~bandwidth:request.Sdn.Request.bandwidth
      ~capacitated:false
  in
  solve_with ?k ?engine ~keep:(fun _ -> true)
    ~usable_servers:(Sdn.Network.servers net) net request

let capacitated_filters net request =
  let b = request.Sdn.Request.bandwidth in
  let demand = Sdn.Request.demand_mhz request in
  let keep e = Sdn.Network.link_admits net e b in
  let usable =
    List.filter (fun v -> Sdn.Network.server_admits net v demand) (Sdn.Network.servers net)
  in
  (keep, usable)

let solve_capacitated ?k ?window net request =
  let keep, usable = capacitated_filters net request in
  let engine =
    acquire_engine window ~bandwidth:request.Sdn.Request.bandwidth
      ~capacitated:true
  in
  solve_with ?k ?engine ~keep ~usable_servers:usable net request

let admit ?k ?window net request =
  observe "appro_multi.admit" ~ok:c_admitted ~err:c_rejected @@ fun () ->
  let keep, usable = capacitated_filters net request in
  if usable = [] then Error "no usable server"
  else begin
    let engine =
      acquire_engine window ~bandwidth:request.Sdn.Request.bandwidth
        ~capacitated:true
    in
    let cands = candidates_impl ?k ?engine ~keep ~usable_servers:usable net request in
    let rec try_cands = function
      | [] -> Error "no allocatable pseudo-multicast tree"
      | (aux_cost, subset, aux, edges) :: rest -> (
        let tree = Aux_graph.to_pseudo_tree aux edges in
        match Sdn.Network.allocate net (Pseudo_tree.allocation tree) with
        | Ok () ->
          Ok
            {
              tree;
              subset = List.sort compare subset;
              aux_cost;
              cost = Pseudo_tree.cost net tree;
              combinations = combinations_explored ?k aux;
            }
        | Error _ -> try_cands rest)
    in
    try_cands cands
  end
