(** Algorithm 1, [Appro_Multi]: the 2K-approximation for the NFV-enabled
    multicasting problem (§IV), and its capacity-constrained variant
    [Appro_Multi_Cap] (§IV-C).

    For every combination of at most [K] candidate servers the algorithm
    builds the auxiliary graph [G_k^i] (see {!Aux_graph}), finds a KMB
    Steiner tree spanning the virtual source and all destinations, and
    keeps the cheapest tree over all combinations, mapped back to a
    pseudo-multicast tree of the SDN. *)

type result = {
  tree : Pseudo_tree.t;
  subset : int list;     (** the winning server combination *)
  aux_cost : float;      (** tree cost in the auxiliary graph — the
                             objective Algorithm 1 minimises, with its
                             zero-cost source–server edges *)
  cost : float;          (** honest linear implementation cost of the
                             pseudo-multicast tree (every traversal and
                             every placement charged); ≥ [aux_cost] *)
  combinations : int;    (** size of the explored search space: the
                             number of non-empty server subsets of size
                             ≤ [K] drawn from the reachable candidate
                             servers, whether or not they yielded a
                             feasible tree. [solve_with] and [admit]
                             report the same quantity. *)
}

val solve :
  ?k:int -> ?window:Sp_window.t -> Sdn.Network.t -> Sdn.Request.t ->
  (result, string) Stdlib.result
(** Uncapacitated [Appro_Multi] with at most [k] (default 3, as in the
    paper's evaluation) servers per request. [?window] shares the base
    shortest-path engine across requests of equal bandwidth (the default
    weights are [b_k·c_e], so the bandwidth keys the engine family) —
    results are identical to the default private engine. *)

val solve_capacitated :
  ?k:int -> ?window:Sp_window.t -> Sdn.Network.t -> Sdn.Request.t ->
  (result, string) Stdlib.result
(** [Appro_Multi_Cap]: links without residual bandwidth [b_k] and servers
    without residual computing [C(SC_k)] are pruned before running
    Algorithm 1. Does not allocate. [?window] as in {!solve}, with the
    capacity pruning folded into the engine key. *)

val admit :
  ?k:int -> ?window:Sp_window.t -> Sdn.Network.t -> Sdn.Request.t ->
  (result, string) Stdlib.result
(** [solve_capacitated] followed by an atomic allocation of the winning
    tree's resources. Candidate combinations are tried in cost order
    until one fits (a tree may need [2·b_k] on an edge it traverses
    twice, which pruning alone does not guarantee). *)

val candidates :
  ?k:int ->
  ?edge_weight:(int -> float) ->
  ?placement_cost:(int -> float) ->
  keep:(int -> bool) ->
  usable_servers:int list ->
  Sdn.Network.t ->
  Sdn.Request.t ->
  (float * int list * Aux_graph.t * int list) list
(** All feasible [(aux_cost, subset, aux, tree_edges)] candidates in
    increasing cost order — exposed for the online multi-server variant,
    ablations and tests. Custom prices ([edge_weight], [placement_cost])
    replace the default linear [b_k·c_e] / [c_v(SC_k)] objective. *)
