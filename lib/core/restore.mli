(** Restoration policy engine — how the dynamic simulator's proactive
    re-admission pass selects from the dropped-session backlog.

    When a fault drops a session that no {!Repair} tier can restore, its
    request enters a backlog until its natural departure time passes.
    Returned capacity (a heal, or optionally a departure) triggers a
    restoration pass that re-attempts the backlog through
    {!Admission.admit_tree} — and the order of those attempts decides
    who gets the scarce returned capacity. This module makes that order
    (and the trigger set) a first-class policy instead of the
    hard-coded [Batch.Smallest_first] replay the pass shipped with:
    related work frames restoration as a value-maximisation problem
    under shared capacity (service overlay forest embedding, the NFV
    service distribution problem), so the selection rule deserves to be
    a measured treatment, not a constant.

    {2 Determinism}

    [select] is a pure function of the network state, the backlog and
    the policy: candidates are pre-sorted by request id before any
    policy-specific stable sort, so equal keys always resolve to
    ascending request ids regardless of backlog hashtable layout — the
    same contract the hard-coded pass honoured. No policy draws
    randomness; runs replay bit-identically for a fixed
    (network, trace, faults) triple. *)

(** What the knapsack greedy counts as a backlog entry's value. *)
type value =
  | Volume  (** bandwidth × terminal count — restore the most traffic *)
  | Priced
      (** bandwidth × terminal count per unit admission price, priced
          with one uncapacitated {!Appro_multi.solve} against current
          residuals (through the pass's shared {!Sp_window});
          unpriceable requests (no feasible tree) score zero and sort
          last, so an infeasible entry can never wedge the pass *)

(** How a restoration pass orders the backlog. *)
type policy =
  | Replay of Batch.order
      (** exactly the historical behaviour: id-sorted backlog through
          {!Batch.reorder} under the given order *)
  | Knapsack of value
      (** value-density greedy against the estimate of just-returned
          capacity: entries whose footprint fits the returned headroom
          rank before entries that overshoot it, and within each class
          higher density goes first *)
  | Deadline
      (** least remaining lifetime first — sessions about to naturally
          depart are restore-now-or-never, so they are not wasted
          attempts at the back of the queue *)

(** Which events trigger a restoration pass. *)
type trigger =
  | Heal  (** [Link_up]/[Server_up] only — the historical trigger set *)
  | Heal_or_depart
      (** also after every resource-releasing departure, so a nonempty
          backlog cannot starve on a heal-free tail of the timeline *)

type t = {
  policy : policy;
  trigger : trigger;
}

val default : t
(** [{ policy = Replay Batch.Smallest_first; trigger = Heal }] — the
    configuration provably bit-identical to the pre-policy pass
    (pinned in [test/test_restore.ml]). *)

val make : ?policy:policy -> ?trigger:trigger -> unit -> t
(** Defaults are {!default}'s fields. *)

val policy_to_string : policy -> string
(** ["replay-<order>"], ["knapsack-volume"], ["knapsack-priced"] or
    ["deadline"] — stable labels for CSV series and CLI output. *)

val trigger_to_string : trigger -> string
(** ["heal"] or ["heal-or-depart"]. *)

val to_string : t -> string
(** [policy_to_string], with ["+depart"] appended under
    [Heal_or_depart]. *)

val on_depart : t -> bool
(** Whether the trigger set includes departures. *)

type entry = {
  request : Sdn.Request.t;
  depart_at : float;
      (** the session's scheduled natural departure time ([infinity]
          when unknown); only {!Deadline} reads it, and only its order
          matters — the pass time cancels out of the comparison *)
}

val select :
  ?k:int ->
  ?window:Sp_window.t ->
  returned:float ->
  Sdn.Network.t ->
  t ->
  entry list ->
  Sdn.Request.t list
(** The attempt order for one restoration pass. [returned] is the
    pass's estimate of just-returned bandwidth (the healed link's
    confiscation, or a departing session's summed link allocation);
    only {!Knapsack} reads it, classifying entries as fitting
    ([Batch.footprint] ≤ [returned], with relative ULP slack) or
    overshooting. A [Server_up] heal returns compute rather than
    bandwidth, so its passes run with [returned = 0.] and the knapsack
    degenerates to pure density order — still deterministic, just
    unclassified. [window] lets {!Priced} (and [Replay Cheapest_first])
    share the surrounding run's cached shortest-path engines.

    [select t] with [t = default] returns exactly
    [Batch.reorder ?k ?window net (id-sorted requests)
     Batch.Smallest_first] — the bit-identity anchor. *)
