module G = Mcgraph.Graph

type route = {
  to_server : int list;
  server : int;
  onward : int list;
}

type t = {
  request : Sdn.Request.t;
  servers : int list;
  edge_uses : (int * int) list;
  routes : (int * route) list;
}

let edge_uses_of_list edges =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value (Hashtbl.find_opt tbl e) ~default:0 in
      Hashtbl.replace tbl e (cur + 1))
    edges;
  List.sort compare (Hashtbl.fold (fun e c acc -> (e, c) :: acc) tbl [])

let make ~request ~servers ~edge_uses ~routes =
  if servers = [] then invalid_arg "Pseudo_tree.make: no servers";
  List.iter
    (fun (_, c) ->
      if c <= 0 then invalid_arg "Pseudo_tree.make: non-positive multiplicity")
    edge_uses;
  let merged =
    edge_uses_of_list
      (List.concat_map (fun (e, c) -> List.init c (fun _ -> e)) edge_uses)
  in
  { request; servers = List.sort_uniq compare servers; edge_uses = merged; routes }

let cost net t =
  let b = t.request.Sdn.Request.bandwidth in
  let bw =
    List.fold_left
      (fun acc (e, uses) ->
        acc +. (float_of_int uses *. b *. Sdn.Network.link_unit_cost net e))
      0.0 t.edge_uses
  in
  let cpu =
    List.fold_left
      (fun acc v -> acc +. Sdn.Network.chain_cost net v t.request.Sdn.Request.chain)
      0.0 t.servers
  in
  bw +. cpu

let bandwidth_cost net t =
  let b = t.request.Sdn.Request.bandwidth in
  List.fold_left
    (fun acc (e, uses) ->
      acc +. (float_of_int uses *. b *. Sdn.Network.link_unit_cost net e))
    0.0 t.edge_uses

let computing_cost net t =
  List.fold_left
    (fun acc v -> acc +. Sdn.Network.chain_cost net v t.request.Sdn.Request.chain)
    0.0 t.servers

let server_count t = List.length t.servers

let total_edge_traversals t =
  List.fold_left (fun acc (_, c) -> acc + c) 0 t.edge_uses

let allocation t =
  let b = t.request.Sdn.Request.bandwidth in
  let demand = Sdn.Request.demand_mhz t.request in
  {
    Sdn.Network.links =
      List.map (fun (e, uses) -> (e, float_of_int uses *. b)) t.edge_uses;
    nodes = List.map (fun v -> (v, demand)) t.servers;
  }

(* walk an edge-id list from [start]; return the final node or an error *)
let walk g start edges =
  let rec go node = function
    | [] -> Ok node
    | e :: rest ->
      if e < 0 || e >= G.m g then Error (Printf.sprintf "bad edge id %d" e)
      else begin
        let u, v = G.endpoints g e in
        if u = node then go v rest
        else if v = node then go u rest
        else Error (Printf.sprintf "edge %d not incident to node %d" e node)
      end
  in
  go start edges

let validate net t =
  let g = Sdn.Network.graph net in
  let req = t.request in
  let support = Hashtbl.create 16 in
  List.iter (fun (e, _) -> Hashtbl.replace support e ()) t.edge_uses;
  let ( let* ) r f = Result.bind r f in
  let* () =
    if List.for_all (Sdn.Network.is_server net) t.servers then Ok ()
    else Error "a chosen placement is not a server"
  in
  let* () =
    match
      List.find_opt (fun (e, _) -> e < 0 || e >= G.m g) t.edge_uses
    with
    | Some (e, _) -> Error (Printf.sprintf "invalid edge id %d" e)
    | None -> Ok ()
  in
  let check_dest d =
    match List.assoc_opt d t.routes with
    | None -> Error (Printf.sprintf "destination %d has no witness route" d)
    | Some r ->
      let* () =
        if List.mem r.server t.servers then Ok ()
        else Error (Printf.sprintf "witness for %d uses unplaced server %d" d r.server)
      in
      let* reached = walk g req.Sdn.Request.source r.to_server in
      let* () =
        if reached = r.server then Ok ()
        else
          Error
            (Printf.sprintf "witness for %d: to_server ends at %d, not server %d"
               d reached r.server)
      in
      let* reached = walk g r.server r.onward in
      let* () =
        if reached = d then Ok ()
        else
          Error
            (Printf.sprintf "witness for %d: onward ends at %d" d reached)
      in
      if List.for_all (Hashtbl.mem support) (r.to_server @ r.onward) then Ok ()
      else Error (Printf.sprintf "witness for %d leaves the edge-use support" d)
  in
  List.fold_left
    (fun acc d -> Result.bind acc (fun () -> check_dest d))
    (Ok ())
    req.Sdn.Request.destinations

let pp ppf t =
  Format.fprintf ppf "pseudo-tree(req=%d, servers={%s}, traversals=%d)"
    t.request.Sdn.Request.id
    (String.concat "," (List.map string_of_int t.servers))
    (total_edge_traversals t)
