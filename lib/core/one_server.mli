(** The [Alg_One_Server] baseline (Zhang et al., evaluated against
    [Appro_Multi] in §VI-B).

    For each candidate server [v]: route the source's traffic to [v]
    along a shortest path, expand an MST of the metric closure over
    [{v} ∪ D_k] into a multicast tree rooted at [v] (the KMB expansion),
    and keep the cheapest (server, tree) combination. Exactly one server
    implements the chain. *)

type result = {
  tree : Pseudo_tree.t;
  server : int;
  cost : float;   (** linear implementation cost of the pseudo-tree *)
}

val solve : Sdn.Network.t -> Sdn.Request.t -> (result, string) Stdlib.result
(** Uncapacitated, as in the paper's comparison. *)
