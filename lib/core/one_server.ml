module Sp = Mcgraph.Sp_engine
module Obs = Nfv_obs.Obs

let c_dijkstra_runs = Obs.Counter.make "dijkstra.runs"
let c_dijkstra_relax = Obs.Counter.make "dijkstra.relaxations"
let c_dijkstras = Obs.Counter.make "one_server.dijkstras"
let c_relaxations = Obs.Counter.make "one_server.relaxations"
let c_solved = Obs.Counter.make "one_server.solved"
let c_infeasible = Obs.Counter.make "one_server.infeasible"

type result = {
  tree : Pseudo_tree.t;
  server : int;
  cost : float;
}

(* As described in §VI-A: find an MST of the metric closure over the
   destinations alone and expand each closure edge into its shortest
   path ("expands the MST into its corresponding subgraph") — without
   Appro_Multi's second MST/pruning refinement, so overlapping
   expansions are paid for. For each candidate server, add the shortest
   path source → server and the server's cheapest attachment to the
   subgraph; keep the cheapest combination. The structure is
   server-oblivious — the weakness Appro_Multi's joint optimisation
   exploits. *)
let solve_impl net request =
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let s = request.Sdn.Request.source in
  let weight e = b *. Sdn.Network.link_unit_cost net e in
  (* lazy engine: trees only for the sources actually queried — the
     destinations (metric closure), the request source and the candidate
     servers — instead of |V| eager Dijkstras *)
  let eng =
    Sp.create g ~weight ~epoch:(fun () -> Sdn.Network.weight_epoch net)
  in
  let dist u v = Sp.dist eng u v in
  let path u v = Sp.path eng u v in
  let destinations = List.sort_uniq compare request.Sdn.Request.destinations in
  let points = Array.of_list destinations in
  match Mcgraph.Mst.prim_metric ~points ~dist with
  | None -> Error "destinations not mutually reachable"
  | Some closure_mst ->
    let subgraph =
      let seen = Hashtbl.create 32 in
      List.iter
        (fun (a, c) ->
          List.iter (fun e -> Hashtbl.replace seen e ()) (Option.get (path a c)))
        closure_mst;
      Hashtbl.fold (fun e () acc -> e :: acc) seen []
    in
    let tree_nodes = Hashtbl.create 16 in
    List.iter (fun d -> Hashtbl.replace tree_nodes d ()) destinations;
    List.iter
      (fun e ->
        let u, v = Mcgraph.Graph.endpoints g e in
        Hashtbl.replace tree_nodes u ();
        Hashtbl.replace tree_nodes v ())
      subgraph;
    let subgraph_cost = Mcgraph.Steiner.tree_cost ~weight subgraph in
    let consider best v =
      if dist s v = infinity then best
      else begin
        let attach =
          Hashtbl.fold
            (fun x () best ->
              match best with
              | Some (dx, _) when dx <= dist v x -> best
              | _ when dist v x = infinity -> best
              | _ -> Some (dist v x, x))
            tree_nodes None
        in
        match attach with
        | None -> best
        | Some (d_attach, x) ->
          let c =
            dist s v
            +. Sdn.Network.chain_cost net v request.Sdn.Request.chain
            +. d_attach +. subgraph_cost
          in
          (match best with
          | Some (c', _, _) when c' <= c -> best
          | _ -> Some (c, v, x))
      end
    in
    (match List.fold_left consider None (Sdn.Network.servers net) with
    | None -> Error "no reachable server"
    | Some (_, v, x) ->
      let to_server = Option.get (path s v) in
      let v_to_x = Option.get (path v x) in
      (* route witnesses over a spanning tree of the (possibly redundant)
         subgraph; the full subgraph is charged, as the baseline floods it *)
      let spanning = Mcgraph.Mst.kruskal_subset g ~weight ~edges:subgraph in
      let rooted = Mcgraph.Tree.of_edges g ~root:x spanning in
      let routes =
        List.map
          (fun d ->
            let onward =
              v_to_x @ List.rev (Mcgraph.Tree.path_up rooted d ~ancestor:x)
            in
            (d, { Pseudo_tree.to_server; server = v; onward }))
          request.Sdn.Request.destinations
      in
      let tree =
        Pseudo_tree.make ~request ~servers:[ v ]
          ~edge_uses:
            (Pseudo_tree.edge_uses_of_list (to_server @ v_to_x @ subgraph))
          ~routes
      in
      Ok { tree; server = v; cost = Pseudo_tree.cost net tree })

let solve net request =
  Obs.Span.run "one_server.solve" @@ fun () ->
  let runs0 = Obs.Counter.value c_dijkstra_runs in
  let relax0 = Obs.Counter.value c_dijkstra_relax in
  let result = solve_impl net request in
  Obs.Counter.add c_dijkstras (Obs.Counter.value c_dijkstra_runs - runs0);
  Obs.Counter.add c_relaxations (Obs.Counter.value c_dijkstra_relax - relax0);
  (match result with
  | Ok _ -> Obs.Counter.incr c_solved
  | Error _ -> Obs.Counter.incr c_infeasible);
  result
