module Obs = Nfv_obs.Obs

let c_sp_hits = Obs.Counter.make "sp_engine.cache_hits"
let c_sp_misses = Obs.Counter.make "sp_engine.cache_misses"
let c_dijkstra_runs = Obs.Counter.make "dijkstra.runs"
let t_run = Obs.Timer.make "admission.run"
let g_mean_util = Obs.Gauge.make "network.mean_link_utilization"

type algorithm =
  | Online_cp
  | Online_cp_no_threshold
  | Online_linear
  | Sp

let algorithm_to_string = function
  | Online_cp -> "Online_CP"
  | Online_cp_no_threshold -> "Online_CP_noSigma"
  | Online_linear -> "Online_Linear"
  | Sp -> "SP"

type record = {
  request_id : int;
  admitted : bool;
  server : int option;
  cost : float option;
  detail : string;
}

type stats = {
  algorithm : algorithm;
  total : int;
  admitted : int;
  rejected : int;
  acceptance_ratio : float;
  mean_link_utilization : float;
  max_link_utilization : float;
  jain_fairness : float;
  total_cost : float;
  runtime_s : float;
  records : record list;
}

let record_of_cp net request = function
  | Online_cp.Admitted a ->
    {
      request_id = request.Sdn.Request.id;
      admitted = true;
      server = Some a.Online_cp.server;
      cost = Some (Pseudo_tree.cost net a.Online_cp.tree);
      detail = "";
    }
  | Online_cp.Rejected r ->
    {
      request_id = request.Sdn.Request.id;
      admitted = false;
      server = None;
      cost = None;
      detail = Online_cp.rejection_to_string r;
    }

(* default parameters with both admission thresholds disabled — the
   single definition behind the Online_cp_no_threshold variant here and
   Repair's re-admission tier *)
let no_threshold_params net =
  let p = Online_cp.default_params net in
  { p with Online_cp.sigma_v = infinity; sigma_e = infinity }

(* [srlg] reaches the three Online_cp-family variants as their [?avail]
   pricing; the SP baseline keeps its own load-oblivious weights (it
   exists to show what ignoring load costs — ignoring the failure model
   is the same ablation), so [srlg] does not apply to it. *)
let decide ?window ?srlg net algo request =
  match algo with
  | Online_cp_no_threshold ->
    let params = no_threshold_params net in
    record_of_cp net request
      (Online_cp.admit ~mode:`Exponential ~params ?window ?avail:srlg net
         request)
  | Online_cp ->
    record_of_cp net request
      (Online_cp.admit ~mode:`Exponential ?window ?avail:srlg net request)
  | Online_linear ->
    record_of_cp net request
      (Online_cp.admit ~mode:`Linear ?window ?avail:srlg net request)
  | Sp -> (
    match Online_sp.admit ?window net request with
    | Online_sp.Admitted a ->
      {
        request_id = request.Sdn.Request.id;
        admitted = true;
        server = Some a.Online_sp.server;
        cost = Some (Pseudo_tree.cost net a.Online_sp.tree);
        detail = "";
      }
    | Online_sp.Rejected msg ->
      {
        request_id = request.Sdn.Request.id;
        admitted = false;
        server = None;
        cost = None;
        detail = msg;
      })

(* Each admit below prices the request against the network's current
   residuals; a successful allocate bumps [Sdn.Network.weight_epoch], so
   shortest-path engines never serve stale distances — a per-run
   [Sp_window] only lets cached trees survive while the epoch stands
   still (request bursts that end in rejection). *)
let admit_tree ?window ?srlg net algo request =
  let of_cp = function
    | Online_cp.Admitted a -> Ok a.Online_cp.tree
    | Online_cp.Rejected r -> Error (Online_cp.rejection_to_string r)
  in
  match algo with
  | Online_cp ->
    of_cp (Online_cp.admit ~mode:`Exponential ?window ?avail:srlg net request)
  | Online_linear ->
    of_cp (Online_cp.admit ~mode:`Linear ?window ?avail:srlg net request)
  | Online_cp_no_threshold ->
    let params = no_threshold_params net in
    of_cp
      (Online_cp.admit ~mode:`Exponential ~params ?window ?avail:srlg net
         request)
  | Sp -> (
    match Online_sp.admit ?window net request with
    | Online_sp.Admitted a -> Ok a.Online_sp.tree
    | Online_sp.Rejected msg -> Error msg)

(* Per-variant telemetry: the algorithm modules count under their own
   names ("online_cp.…"), but one Online_cp module serves three
   admission variants; diffing the process-wide counters around the
   whole run separates them ("admission.Online_CP_noSigma.…"). *)
let publish_run_counters algo ~dijkstras ~sp_hits ~sp_misses ~admitted =
  let prefix = "admission." ^ algorithm_to_string algo in
  Obs.Counter.add (Obs.Counter.make (prefix ^ ".dijkstras")) dijkstras;
  Obs.Counter.add (Obs.Counter.make (prefix ^ ".sp_hits")) sp_hits;
  Obs.Counter.add (Obs.Counter.make (prefix ^ ".sp_misses")) sp_misses;
  Obs.Counter.add (Obs.Counter.make (prefix ^ ".admitted")) admitted

let run ?(reset = true) ?srlg net algo requests =
  if reset then Sdn.Network.reset net;
  let dij0 = Obs.Counter.value c_dijkstra_runs in
  let hits0 = Obs.Counter.value c_sp_hits in
  let misses0 = Obs.Counter.value c_sp_misses in
  (* one engine window for the whole run: requests between two epoch
     bumps (i.e. after a rejection) reuse each other's Dijkstra trees
     instead of starting from a cold per-request engine *)
  let window = Sp_window.create net in
  (* [Obs.clock] (default [Sys.time]) rather than [Sys.time] directly,
     so the determinism tests can substitute a per-domain fake clock *)
  let started = !Obs.clock () in
  let records = List.map (decide ~window ?srlg net algo) requests in
  let runtime_s = !Obs.clock () -. started in
  let admitted =
    List.length (List.filter (fun (r : record) -> r.admitted) records)
  in
  Obs.Timer.add t_run runtime_s;
  Obs.Gauge.set g_mean_util (Sdn.Network.mean_link_utilization net);
  if !Obs.enabled then
    publish_run_counters algo
      ~dijkstras:(Obs.Counter.value c_dijkstra_runs - dij0)
      ~sp_hits:(Obs.Counter.value c_sp_hits - hits0)
      ~sp_misses:(Obs.Counter.value c_sp_misses - misses0)
      ~admitted;
  let total = List.length records in
  let total_cost =
    List.fold_left
      (fun acc r -> acc +. Option.value r.cost ~default:0.0)
      0.0 records
  in
  {
    algorithm = algo;
    total;
    admitted;
    rejected = total - admitted;
    acceptance_ratio =
      (if total = 0 then 1.0 else float_of_int admitted /. float_of_int total);
    mean_link_utilization = Sdn.Network.mean_link_utilization net;
    max_link_utilization = Sdn.Network.max_link_utilization net;
    jain_fairness = Sdn.Network.jain_fairness net;
    total_cost;
    runtime_s;
    records;
  }

let admitted_after stats n =
  let rec go count i = function
    | [] -> count
    | (r : record) :: rest ->
      if i >= n then count
      else go (if r.admitted then count + 1 else count) (i + 1) rest
  in
  go 0 0 stats.records
