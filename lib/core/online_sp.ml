module Paths = Mcgraph.Paths
module Sp = Mcgraph.Sp_engine
module Obs = Nfv_obs.Obs

let c_dijkstra_runs = Obs.Counter.make "dijkstra.runs"
let c_dijkstra_relax = Obs.Counter.make "dijkstra.relaxations"
let c_dijkstras = Obs.Counter.make "online_sp.dijkstras"
let c_relaxations = Obs.Counter.make "online_sp.relaxations"
let c_admitted = Obs.Counter.make "online_sp.admitted"
let c_rejected = Obs.Counter.make "online_sp.rejected"

type admitted = {
  tree : Pseudo_tree.t;
  server : int;
  hops : int;
}

type outcome = Admitted of admitted | Rejected of string

type candidate = {
  cand_server : int;
  cand_path : int list;       (* s_k → v *)
  cand_tree : int list;       (* union of v → d paths *)
  cand_spt : Paths.spt;
  cand_hops : int;
}

let admit_impl ~window net request =
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let s = request.Sdn.Request.source in
  let demand = Sdn.Request.demand_mhz request in
  let weight e = if Sdn.Network.link_admits net e b then 1.0 else infinity in
  let usable =
    List.filter (fun v -> Sdn.Network.server_admits net v demand) (Sdn.Network.servers net)
  in
  if usable = [] then Rejected "no server with enough computing residual"
  else begin
    (* unit weights are fully determined by the feasibility pruning, so
       the bandwidth bucket alone keys the engine within a window *)
    let eng =
      match window with
      | Some w ->
        Sp_window.engine w ~family:"online_sp"
          ~bucket:(Sp_window.bucket w ~bandwidth:b)
          ~weight
      | None ->
        Sp.create g ~weight ~epoch:(fun () -> Sdn.Network.weight_epoch net)
    in
    let consider acc v =
      let spt = Sp.spt eng v in
      if spt.Paths.dist.(s) = infinity then acc
      else if
        List.exists
          (fun d -> spt.Paths.dist.(d) = infinity)
          request.Sdn.Request.destinations
      then acc
      else begin
        let to_v =
          List.rev (Option.get (Paths.path_edges g spt s))  (* s → v *)
        in
        let union = Hashtbl.create 32 in
        List.iter
          (fun d ->
            List.iter
              (fun e -> Hashtbl.replace union e ())
              (Option.get (Paths.path_edges g spt d)))
          request.Sdn.Request.destinations;
        let tree_edges = Hashtbl.fold (fun e () acc -> e :: acc) union [] in
        let hops = List.length to_v + List.length tree_edges in
        {
          cand_server = v;
          cand_path = to_v;
          cand_tree = tree_edges;
          cand_spt = spt;
          cand_hops = hops;
        }
        :: acc
      end
    in
    let cands = List.fold_left consider [] usable in
    match cands with
    | [] -> Rejected "destinations unreachable under residual resources"
    | _ ->
      let sorted = List.sort (fun a b -> compare a.cand_hops b.cand_hops) cands in
      let rec try_cands = function
        | [] -> Rejected "no candidate could reserve its resources"
        | c :: rest -> (
          let v = c.cand_server in
          let route_of d =
            let onward = Option.get (Paths.path_edges g c.cand_spt d) in
            (d, { Pseudo_tree.to_server = c.cand_path; server = v; onward })
          in
          let routes = List.map route_of request.Sdn.Request.destinations in
          let tree =
            Pseudo_tree.make ~request ~servers:[ v ]
              ~edge_uses:
                (Pseudo_tree.edge_uses_of_list (c.cand_path @ c.cand_tree))
              ~routes
          in
          match Sdn.Network.allocate net (Pseudo_tree.allocation tree) with
          | Ok () -> Admitted { tree; server = v; hops = c.cand_hops }
          | Error _ -> try_cands rest)
      in
      try_cands sorted
  end

let admit ?window net request =
  Obs.Span.run "online_sp.admit" @@ fun () ->
  let runs0 = Obs.Counter.value c_dijkstra_runs in
  let relax0 = Obs.Counter.value c_dijkstra_relax in
  let outcome = admit_impl ~window net request in
  Obs.Counter.add c_dijkstras (Obs.Counter.value c_dijkstra_runs - runs0);
  Obs.Counter.add c_relaxations (Obs.Counter.value c_dijkstra_relax - relax0);
  (match outcome with
  | Admitted _ -> Obs.Counter.incr c_admitted
  | Rejected _ -> Obs.Counter.incr c_rejected);
  outcome
