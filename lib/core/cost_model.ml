let check ~capacity ~residual ~base =
  if base <= 1.0 then invalid_arg "Cost_model: base must exceed 1";
  if capacity <= 0.0 then invalid_arg "Cost_model: non-positive capacity";
  if residual < -1e-6 || residual > capacity +. 1e-6 then
    invalid_arg "Cost_model: residual outside [0, capacity]"

let utilization ~capacity ~residual =
  Float.max 0.0 (Float.min 1.0 (1.0 -. (residual /. capacity)))

let normalized_weight ~capacity ~residual ~base =
  check ~capacity ~residual ~base;
  (base ** utilization ~capacity ~residual) -. 1.0

let exponential_cost ~capacity ~residual ~base =
  capacity *. normalized_weight ~capacity ~residual ~base

let default_base net = 2.0 *. float_of_int (Sdn.Network.n net)
let default_sigma net = float_of_int (Sdn.Network.n net) -. 1.0

let link_weight net ~base e =
  normalized_weight
    ~capacity:(Sdn.Network.link_capacity net e)
    ~residual:(Sdn.Network.link_residual net e)
    ~base

let server_weight net ~base v =
  normalized_weight
    ~capacity:(Sdn.Network.server_capacity net v)
    ~residual:(Sdn.Network.server_residual net v)
    ~base

let link_cost net ~base e =
  exponential_cost
    ~capacity:(Sdn.Network.link_capacity net e)
    ~residual:(Sdn.Network.link_residual net e)
    ~base

let server_cost net ~base v =
  exponential_cost
    ~capacity:(Sdn.Network.server_capacity net v)
    ~residual:(Sdn.Network.server_residual net v)
    ~base

let linear_link_weight net e = Sdn.Network.link_unit_cost net e
