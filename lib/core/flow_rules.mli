(** Compilation of multicast routing structures into SDN forwarding
    state, and an independent data-plane check.

    The SDN controller realises a pseudo-multicast tree as per-switch
    rules. Because the same physical link can carry the request's
    traffic twice (unprocessed towards a server, processed away from
    it), rules match on a {e processed} tag — the standard
    NFV-steering trick (cf. SIMPLE [19]): the VM sets the tag, switches
    forward tagged and untagged packets independently.

    [simulate] floods a packet through the compiled rules and reports
    which nodes received a processed copy — an end-to-end check of the
    control state that is completely independent of how the tree was
    computed (used by the test suite as a second validator). *)

type action =
  | Forward of int          (** output on edge id *)
  | Deliver                 (** hand the (processed) packet to this node *)
  | To_vm                   (** divert into the local service-chain VM;
                                the VM re-injects the packet tagged *)

type rule = {
  switch : int;
  tagged : bool;            (** matches processed (tagged) packets? *)
  in_edge : int option;     (** match on ingress edge; [None] = the
                                packet originates at this switch *)
  actions : action list;
}

type t = {
  request_id : int;
  rules : rule list;
}

val of_pseudo_tree : Sdn.Network.t -> Pseudo_tree.t -> t
(** Compile witness routes into forwarding rules. Rules for the same
    (switch, tag, ingress) are merged; duplicate actions are removed. *)

val rules_at : t -> int -> rule list

val switches_with_state : t -> int list
(** Switches holding at least one rule, ascending. *)

val table_size : t -> int -> int
(** Number of rules installed at a switch — the forwarding-table
    footprint that node-capacity-aware SDN work (e.g. Huang et al.,
    INFOCOM'16) budgets. *)

val total_rules : t -> int

type delivery = {
  delivered : int list;         (** nodes that received a processed copy *)
  processed_at : int list;      (** nodes whose VM processed the packet *)
  link_loads : (int * int) list;(** edge id → number of traversals *)
}

val simulate : Sdn.Network.t -> t -> source:int -> delivery
(** Inject an untagged packet at [source] and follow the rules. Raises
    [Invalid_argument] on a forwarding loop (more than [4·|E|] packet
    hops) — compiled state from a valid pseudo-tree never loops. *)

val verify : Sdn.Network.t -> Pseudo_tree.t -> (unit, string) result
(** Compile + simulate + check: every destination receives a processed
    copy, processing only happens at the tree's chosen servers, and no
    link carries more traversals than the tree's edge-use multiset
    declares. *)

val pp : Format.formatter -> t -> unit
