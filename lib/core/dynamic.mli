(** Event-driven simulation with request departures.

    The paper's online model admits requests that hold their resources
    forever; real NFV multicast sessions (conferences, streams) end and
    release capacity. This extension drives any online algorithm through
    a Poisson arrival process with exponential holding times and reports
    steady-state acceptance — the natural "future work" regime for
    Algorithm 2. Every stochastic draw flows through the supplied
    {!Topology.Rng.t}, so traces are reproducible. *)

type arrival = {
  at : float;             (** arrival time *)
  holding : float;        (** session duration *)
  request : Sdn.Request.t;
}

type trace = arrival list
(** In arrival-time order. *)

val poisson_trace :
  ?spec:Workload.Gen.spec ->
  Topology.Rng.t ->
  Sdn.Network.t ->
  rate:float ->
  mean_holding:float ->
  count:int ->
  trace
(** [count] arrivals with exponential(rate) inter-arrival gaps and
    exponential(1/mean_holding) durations. Offered load is
    [rate · mean_holding] concurrent sessions in expectation. *)

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  completed : int;              (** sessions that departed before the end *)
  acceptance_ratio : float;
  peak_concurrent : int;
  mean_concurrent : float;      (** time-averaged admitted sessions *)
  mean_utilization : float;     (** time-averaged mean link utilisation *)
  horizon : float;              (** time of the last event *)
}

val run : ?reset:bool -> Sdn.Network.t -> Admission.algorithm -> trace -> stats
(** Interleave arrivals and departures in time order; admitted requests
    allocate their pseudo-multicast tree's resources and release them at
    departure. The network ends with all remaining sessions still
    allocated. *)
