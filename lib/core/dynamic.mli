(** Event-driven simulation with request departures and failures.

    The paper's online model admits requests that hold their resources
    forever; real NFV multicast sessions (conferences, streams) end and
    release capacity — and the substrate under them loses links and
    servers while they run. This module drives any online algorithm
    through a Poisson arrival process with exponential holding times
    and, optionally, a time-stamped {!Sdn.Fault.timeline} merged into
    the same event queue: arrivals, departures, failures and heals are
    processed in one global time order. Every stochastic draw flows
    through the supplied {!Topology.Rng.t}, so traces are reproducible.

    {2 Failure semantics}

    When a fault fires, every session whose tree holds the failed
    resource is evicted ({!Sdn.Fault.inject} releases its allocation in
    full) and immediately pushed through {!Repair.repair}'s tier ladder
    under the run's pricing algorithm. A session no tier can restore is
    {e dropped}: it keeps no resources, but its request stays in a
    restoration backlog until its natural departure time passes. When a
    heal ([Link_up]/[Server_up]) returns capacity — or, under a
    {!Restore.Heal_or_depart} trigger, when a live session departs — a
    proactive restoration pass re-admits the backlog in the order a
    {!Restore.t} policy chooses (default: the historical
    [Smallest_first] replay) — the recoverable tail is measured, not
    lost. Restored sessions keep their original departure times.

    A dropped session's departure event still fires; it is a no-op on
    the network (the allocation was already released at eviction — no
    double free) and retires the session from the backlog. *)

type arrival = {
  at : float;             (** arrival time *)
  holding : float;        (** session duration *)
  request : Sdn.Request.t;
}

type trace = arrival list
(** In arrival-time order, with distinct request ids. *)

val poisson_trace :
  ?spec:Workload.Gen.spec ->
  Topology.Rng.t ->
  Sdn.Network.t ->
  rate:float ->
  mean_holding:float ->
  count:int ->
  trace
(** [count] arrivals with exponential(rate) inter-arrival gaps and
    exponential(1/mean_holding) durations. Offered load is
    [rate · mean_holding] concurrent sessions in expectation. *)

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  completed : int;              (** sessions that departed while live *)
  acceptance_ratio : float;
  peak_concurrent : int;
  mean_concurrent : float;      (** time-averaged live sessions *)
  mean_utilization : float;     (** time-averaged mean link utilisation *)
  horizon : float;              (** time of the last event *)
  evicted : int;                (** fault evictions (a session can count twice) *)
  repaired : int;               (** evictions a repair tier restored in place *)
  dropped : int;                (** evictions no tier could restore *)
  restored : int;               (** backlog re-admissions at heals *)
}
(** On a fault-free trace [evicted = repaired = dropped = restored = 0]
    and every other field is exactly what the pre-fault simulator
    reported (pinned by the regression suite in
    [test/test_dynamic_churn.ml]). *)

type faults = {
  timeline : Sdn.Fault.timeline;
      (** time-stamped events merged into the arrival/departure queue *)
  controller : Sdn.Fault.t option;
      (** the fault controller to apply them through; [None] creates a
          fresh one over the run's network. Pass an explicit controller
          to inspect confiscations afterwards (or to start from
          pre-existing faults). *)
  budget : Repair.budget;  (** per-eviction repair effort *)
  restore : Restore.t option;
      (** selection policy and trigger set for the restoration pass;
          [None] disables proactive restoration (reactive repair only) *)
}

val make_faults :
  ?controller:Sdn.Fault.t ->
  ?budget:Repair.budget ->
  ?restore:Restore.t option ->
  Sdn.Fault.timeline ->
  faults
(** Defaults: fresh controller, {!Repair.default_budget},
    [Some Restore.default] — the smallest-first heal-only pass,
    bit-identical to the pre-policy simulator. *)

(** What one merged event did — the observation stream for tests and
    tracing. Events fire in simulation order; a fault's eviction
    outcomes ({!Repaired}/{!Dropped}) and any restoration follow its
    {!Fault_fired} immediately, at the same timestamp. *)
type happened =
  | Arrived of { id : int; tree : Pseudo_tree.t option }
      (** [tree = None] when the algorithm rejected the request *)
  | Departed of { id : int; released : bool }
      (** [released = false]: the session was evicted earlier and held
          nothing (its backlog entry, if any, is retired) *)
  | Fault_fired of { event : Sdn.Fault.event; victims : int list }
      (** emitted after {!Sdn.Fault.inject}: victims' allocations are
          already released and the confiscation is in place *)
  | Repaired of { id : int; tier : Repair.tier; tree : Pseudo_tree.t }
  | Dropped of { id : int }
  | Restored of { id : int; tree : Pseudo_tree.t }

val run :
  ?reset:bool ->
  ?faults:faults ->
  ?srlg:Online_cp.avail ->
  ?observe:(float -> happened -> unit) ->
  Sdn.Network.t ->
  Admission.algorithm ->
  trace ->
  stats
(** Interleave arrivals, departures and (with [faults]) failure events
    in time order; admitted requests allocate their pseudo-multicast
    tree's resources and release them at departure, evictions go
    through repair and heals through restoration as described above.
    Ties on the clock resolve deterministically (the queue is a pure
    value), so a (network, trace, faults) triple always replays the
    same event sequence. The whole run — admission, repair and
    restoration — shares one {!Sp_window} of cached shortest-path
    engines; outcomes are identical to per-request engines.

    With [reset:false] the network's current residuals are kept (the
    caller owns that state); the network ends with exactly the
    still-live sessions allocated on top of them (plus any
    unhealed confiscations when [faults] fired). [observe] (default a
    no-op) sees every {!happened} with its timestamp, in order.

    [srlg] threads an {!Online_cp.avail} through the whole run:
    arrivals and restoration re-admissions price links with the
    SRLG-exposure surcharge and are gated by the spare-capacity floor
    ({!Admission.admit_tree}~[?srlg]), and every eviction repair
    searches under the same surcharged weights
    ({!Repair.repair}~[?avail] — tiers 1–2 are exempt from the floor).
    Typically built from the same partition the fault timeline cuts,
    so admission prices the very correlations the simulator will
    inject. With [alpha = 0] and no reserve the run is bit-identical
    to one without [srlg].

    Restoration passes run under [faults.restore]'s {!Restore.t}:
    {!Restore.select} orders the backlog (the knapsack policies read a
    returned-bandwidth estimate — a healed link's confiscation, a
    departing session's summed link allocation, [0.] for [Server_up])
    and each candidate is re-attempted through
    {!Admission.admit_tree}. With the default policy the pass — trigger
    set, order, counters and span — is bit-identical to the historical
    hard-coded smallest-first pass (pinned in [test/test_restore.ml]).

    Telemetry: restoration attempts count under
    [restoration.attempted] with exactly one of
    [restoration.restored]/[restoration.failed] each, and each pass
    runs in a [restoration.pass] span; evictions and repair tiers land
    in the usual [fault.*]/[repair.*] instruments. *)
