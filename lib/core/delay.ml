let path_delay net edges =
  List.fold_left (fun acc e -> acc +. Sdn.Network.link_delay net e) 0.0 edges

let route_delay_ms net chain (r : Pseudo_tree.route) =
  path_delay net r.Pseudo_tree.to_server
  +. Sdn.Vnf.chain_delay_ms chain
  +. path_delay net r.Pseudo_tree.onward

let destination_delay_ms net (pt : Pseudo_tree.t) d =
  match List.assoc_opt d pt.Pseudo_tree.routes with
  | None -> invalid_arg "Delay.destination_delay_ms: no witness for destination"
  | Some r -> route_delay_ms net pt.Pseudo_tree.request.Sdn.Request.chain r

let worst_delay_ms net (pt : Pseudo_tree.t) =
  List.fold_left
    (fun acc (_, r) ->
      Float.max acc (route_delay_ms net pt.Pseudo_tree.request.Sdn.Request.chain r))
    0.0 pt.Pseudo_tree.routes

let meets_deadline net (pt : Pseudo_tree.t) =
  match pt.Pseudo_tree.request.Sdn.Request.deadline with
  | None -> true
  | Some bound -> worst_delay_ms net pt <= bound +. 1e-9

let admit net algo request =
  match Admission.admit_tree net algo request with
  | Error _ as e -> e
  | Ok tree ->
    if meets_deadline net tree then Ok tree
    else begin
      Sdn.Network.release net (Pseudo_tree.allocation tree);
      Error
        (Printf.sprintf "deadline violated: worst destination latency %.2f ms"
           (worst_delay_ms net tree))
    end
