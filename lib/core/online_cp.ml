module Paths = Mcgraph.Paths
module Sp = Mcgraph.Sp_engine
module Tree = Mcgraph.Tree
module Obs = Nfv_obs.Obs

(* shared process-wide counters ([Obs.Counter.make] is idempotent per
   name), diffed around each solve to attribute Dijkstra work here *)
let c_dijkstra_runs = Obs.Counter.make "dijkstra.runs"
let c_dijkstra_relax = Obs.Counter.make "dijkstra.relaxations"
let c_dijkstras = Obs.Counter.make "online_cp.dijkstras"
let c_relaxations = Obs.Counter.make "online_cp.relaxations"
let c_admitted = Obs.Counter.make "online_cp.admitted"
let c_rej_no_server = Obs.Counter.make "online_cp.rejected.no_feasible_server"
let c_rej_unreachable = Obs.Counter.make "online_cp.rejected.unreachable"
let c_rej_threshold = Obs.Counter.make "online_cp.rejected.over_threshold"
let c_rej_unallocatable = Obs.Counter.make "online_cp.rejected.unallocatable"

type params = {
  alpha : float;
  beta : float;
  sigma_v : float;
  sigma_e : float;
}

let default_params net =
  let base = Cost_model.default_base net in
  let sigma = Cost_model.default_sigma net in
  { alpha = base; beta = base; sigma_v = sigma; sigma_e = sigma }

type rejection =
  | No_feasible_server
  | Unreachable
  | Over_threshold
  | Unallocatable

let rejection_to_string = function
  | No_feasible_server -> "no server with enough computing residual"
  | Unreachable -> "destinations unreachable under bandwidth residuals"
  | Over_threshold -> "all candidates above admission thresholds"
  | Unallocatable -> "no candidate tree could reserve its resources"

type admitted = {
  tree : Pseudo_tree.t;
  server : int;
  lca : int;
  score : float;
}

type outcome = Admitted of admitted | Rejected of rejection

type candidate = {
  cand_server : int;
  cand_tree : int list;
  cand_backtrack : int list;  (* edges of the v → u return path *)
  cand_lca : int;
  cand_score : float;
}

let admit_impl ~mode ~params net request =
  let params =
    match params with Some p -> p | None -> default_params net
  in
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let s = request.Sdn.Request.source in
  let demand = Sdn.Request.demand_mhz request in
  (* At zero load every exponential weight is exactly 0, which makes all
     trees tie and routing hop-oblivious; a tiny per-edge epsilon breaks
     ties toward fewer hops without affecting the thresholds. *)
  let hop_epsilon = 1e-6 in
  let link_w e =
    if not (Sdn.Network.link_admits net e b) then infinity
    else
      match mode with
      | `Exponential -> Cost_model.link_weight net ~base:params.beta e +. hop_epsilon
      | `Linear -> Cost_model.linear_link_weight net e
  in
  let server_w v =
    match mode with
    | `Exponential -> Cost_model.server_weight net ~base:params.alpha v
    | `Linear -> Sdn.Network.server_unit_cost net v *. demand
  in
  let thresholds_on = mode = `Exponential in
  let usable =
    List.filter (fun v -> Sdn.Network.server_admits net v demand) (Sdn.Network.servers net)
  in
  if usable = [] then Rejected No_feasible_server
  else begin
    (* one lazy Dijkstra per terminal, shared by every candidate server;
       the engine is keyed by the network's weight epoch, so the
       load-dependent exponential weights invalidate on allocate/release
       rather than the caller rebuilding state from scratch *)
    let terminals = List.sort_uniq compare (s :: request.Sdn.Request.destinations) in
    let eng =
      Sp.create g ~weight:link_w
        ~epoch:(fun () -> Sdn.Network.weight_epoch net)
    in
    List.iter (fun t -> ignore (Sp.spt eng t)) terminals;
    (* non-terminal sources (candidate servers) answer from the terminal
       end's tree by symmetry, so servers never cost a Dijkstra *)
    let dist x y =
      match Sp.peek eng x with
      | Some spt -> spt.Paths.dist.(y)
      | None -> (Sp.spt eng y).Paths.dist.(x)
    in
    let path x y =
      match Sp.peek eng x with
      | Some spt -> Paths.path_edges g spt y
      | None -> Option.map List.rev (Paths.path_edges g (Sp.spt eng y) x)
    in
    let reachable =
      let spt_s = Sp.spt eng s in
      List.for_all
        (fun d -> spt_s.Paths.dist.(d) < infinity)
        request.Sdn.Request.destinations
    in
    if not reachable then Rejected Unreachable
    else begin
      let saw_threshold_violation = ref false in
      let consider acc v =
        let wv = server_w v in
        if thresholds_on && wv >= params.sigma_v then begin
          saw_threshold_violation := true;
          acc
        end
        else if dist s v = infinity then acc
        else begin
          let terms = List.sort_uniq compare (v :: terminals) in
          match
            Mcgraph.Steiner.kmb_with_metric g ~weight:link_w ~terminals:terms
              ~dist ~path
          with
          | None -> acc
          | Some tree_edges ->
            let w_tree = Mcgraph.Steiner.tree_cost ~weight:link_w tree_edges in
            if thresholds_on && w_tree >= params.sigma_e then begin
              saw_threshold_violation := true;
              acc
            end
            else begin
              let rooted = Tree.of_edges g ~root:s tree_edges in
              let u = Tree.lca_many rooted (v :: request.Sdn.Request.destinations) in
              let backtrack = Tree.path_up rooted v ~ancestor:u in
              let w_back = Mcgraph.Steiner.tree_cost ~weight:link_w backtrack in
              let score = w_tree +. w_back +. wv in
              {
                cand_server = v;
                cand_tree = tree_edges;
                cand_backtrack = backtrack;
                cand_lca = u;
                cand_score = score;
              }
              :: acc
            end
        end
      in
      let cands = List.fold_left consider [] usable in
      match cands with
      | [] ->
        if !saw_threshold_violation then Rejected Over_threshold
        else Rejected Unreachable
      | _ ->
        let sorted =
          List.sort (fun a b -> compare a.cand_score b.cand_score) cands
        in
        let rec try_cands = function
          | [] -> Rejected Unallocatable
          | c :: rest -> (
            let v = c.cand_server in
            let rooted = Tree.of_edges g ~root:s c.cand_tree in
            let to_server = List.rev (Tree.path_up rooted v ~ancestor:s) in
            let route_of d =
              (* the processed copy climbs only to LCA(v, d) — a prefix of
                 the reserved v → u backtrack — before descending, so no
                 edge carries more traffic than Algorithm 2 accounts for *)
              let onward = Tree.path_between rooted v d in
              (d, { Pseudo_tree.to_server; server = v; onward })
            in
            let routes = List.map route_of request.Sdn.Request.destinations in
            let tree =
              Pseudo_tree.make ~request ~servers:[ v ]
                ~edge_uses:
                  (Pseudo_tree.edge_uses_of_list (c.cand_tree @ c.cand_backtrack))
                ~routes
            in
            match Sdn.Network.allocate net (Pseudo_tree.allocation tree) with
            | Ok () ->
              Admitted { tree; server = v; lca = c.cand_lca; score = c.cand_score }
            | Error _ -> try_cands rest)
        in
        try_cands sorted
    end
  end

let admit ?(mode = `Exponential) ?params net request =
  Obs.Span.run "online_cp.admit" @@ fun () ->
  let runs0 = Obs.Counter.value c_dijkstra_runs in
  let relax0 = Obs.Counter.value c_dijkstra_relax in
  let outcome = admit_impl ~mode ~params net request in
  Obs.Counter.add c_dijkstras (Obs.Counter.value c_dijkstra_runs - runs0);
  Obs.Counter.add c_relaxations (Obs.Counter.value c_dijkstra_relax - relax0);
  (match outcome with
  | Admitted _ -> Obs.Counter.incr c_admitted
  | Rejected No_feasible_server -> Obs.Counter.incr c_rej_no_server
  | Rejected Unreachable -> Obs.Counter.incr c_rej_unreachable
  | Rejected Over_threshold -> Obs.Counter.incr c_rej_threshold
  | Rejected Unallocatable -> Obs.Counter.incr c_rej_unallocatable);
  outcome
