module Paths = Mcgraph.Paths
module Sp = Mcgraph.Sp_engine
module Tree = Mcgraph.Tree
module Obs = Nfv_obs.Obs

(* shared process-wide counters ([Obs.Counter.make] is idempotent per
   name), diffed around each solve to attribute Dijkstra work here *)
let c_dijkstra_runs = Obs.Counter.make "dijkstra.runs"
let c_dijkstra_relax = Obs.Counter.make "dijkstra.relaxations"
let c_dijkstras = Obs.Counter.make "online_cp.dijkstras"
let c_relaxations = Obs.Counter.make "online_cp.relaxations"
let c_admitted = Obs.Counter.make "online_cp.admitted"
let c_rej_no_server = Obs.Counter.make "online_cp.rejected.no_feasible_server"
let c_rej_unreachable = Obs.Counter.make "online_cp.rejected.unreachable"
let c_rej_server_unreachable =
  Obs.Counter.make "online_cp.rejected.server_unreachable"
let c_rej_threshold = Obs.Counter.make "online_cp.rejected.over_threshold"
let c_rej_unallocatable = Obs.Counter.make "online_cp.rejected.unallocatable"

(* candidate-server pruning: servers whose distance lower bound lost to
   the incumbent and were never priced (KMB skipped), vs. servers priced
   late because the allocation fallback reached their bound after all *)
let c_pruned = Obs.Counter.make "online_cp.pruned.servers"
let c_pruned_late = Obs.Counter.make "online_cp.pruned.computed_late"

(* availability-aware pricing: per-epoch exposure recomputations and
   candidates blocked by the per-group spare-capacity floor *)
let c_avail_refreshes = Obs.Counter.make "avail.exposure_refreshes"
let c_avail_blocked = Obs.Counter.make "avail.reserve_blocked"

type params = {
  alpha : float;
  beta : float;
  sigma_v : float;
  sigma_e : float;
}

let default_params net =
  let base = Cost_model.default_base net in
  let sigma = Cost_model.default_sigma net in
  { alpha = base; beta = base; sigma_v = sigma; sigma_e = sigma }

(* ---- availability-aware pricing ----------------------------------------

   An [avail] value carries an SRLG partition (Fault.srlg_partition
   output, or any disjoint link grouping) and turns it into admission
   pressure two ways:

   - an exposure surcharge: each link's traversal weight gains
     [alpha * exposure(group)], where exposure is the allocated fraction
     of the group's aggregate bandwidth — traffic already riding the
     shared-risk group. Exposure is derived purely from the network's
     residuals, so it is a function of [Sdn.Network.weight_epoch]: the
     per-group cache below is recomputed exactly once per epoch and the
     surcharged weights stay pure between equal epoch readings, which is
     what keeps Sp_window's exactness contract intact (the [avail] value
     is folded into the family key whenever it changes the weights).

   - a spare-capacity floor: with [reserve = r > 0], a candidate whose
     allocation would leave some touched group's aggregate residual
     below [r * group capacity] is rejected before it can allocate.

   With [alpha = 0] the surcharge term is never evaluated and the family
   key is unchanged, so pricing — and every cached engine — is
   bit-identical to the baseline; with [reserve = 0] the floor never
   fires. That is the provable-equivalence switch the tests pin. *)

type avail = {
  av_groups : int array array;   (* normalized non-empty groups *)
  av_group_of : int array;       (* edge id -> group index, -1 = ungrouped *)
  av_group_cap : float array;    (* Σ link capacity per group, Mbps *)
  av_alpha : float;              (* surcharge per unit exposure *)
  av_reserve : float;            (* spare fraction kept free per group *)
  av_stamp : int;                (* distinguishes avail values in family keys *)
  mutable av_epoch : int;        (* epoch the exposure cache is valid at *)
  av_exposure : float array;     (* allocated fraction per group, in [0, 1] *)
}

(* family-key uniqueness across domains: Pool workers build their own
   avail values, so the stamp source must be race-free *)
let av_stamps = Atomic.make 0

let make_avail ?(alpha = 0.0) ?(reserve = 0.0) net groups =
  if not (Float.is_finite alpha) || alpha < 0.0 then
    invalid_arg "Online_cp.make_avail: alpha must be finite and >= 0";
  if not (reserve >= 0.0 && reserve < 1.0) then
    invalid_arg "Online_cp.make_avail: reserve outside [0, 1)";
  let m = Sdn.Network.m net in
  let group_of = Array.make m (-1) in
  let nonempty =
    Array.of_list
      (List.filter (fun l -> l <> []) (Array.to_list groups))
  in
  let groups_arr =
    Array.mapi
      (fun gi links ->
        List.iter
          (fun e ->
            if e < 0 || e >= m then
              invalid_arg "Online_cp.make_avail: edge id out of range";
            if group_of.(e) >= 0 then
              invalid_arg "Online_cp.make_avail: edge in two groups";
            group_of.(e) <- gi)
          links;
        Array.of_list links)
      nonempty
  in
  let group_cap =
    Array.map
      (Array.fold_left
         (fun acc e -> acc +. Sdn.Network.link_capacity net e)
         0.0)
      groups_arr
  in
  {
    av_groups = groups_arr;
    av_group_of = group_of;
    av_group_cap = group_cap;
    av_alpha = alpha;
    av_reserve = reserve;
    av_stamp = Atomic.fetch_and_add av_stamps 1;
    av_epoch = min_int;
    av_exposure = Array.make (Array.length groups_arr) 0.0;
  }

let avail_alpha av = av.av_alpha
let avail_reserve av = av.av_reserve
let avail_group_count av = Array.length av.av_groups
let avail_group_of av e =
  if e < 0 || e >= Array.length av.av_group_of then -1 else av.av_group_of.(e)

(* allocated fraction of group [gi]'s aggregate bandwidth, from the
   residuals alone (confiscated capacity counts as exposure: a group
   with a live fault reads as heavily exposed, which is the right
   steering signal). Epoch-keyed: all groups refresh together on the
   first read after any allocate/release/reset. *)
let exposure av net gi =
  let epoch = Sdn.Network.weight_epoch net in
  if av.av_epoch <> epoch then begin
    Array.iteri
      (fun i links ->
        let used =
          Array.fold_left
            (fun acc e ->
              acc
              +. (Sdn.Network.link_capacity net e
                 -. Sdn.Network.link_residual net e))
            0.0 links
        in
        av.av_exposure.(i) <-
          (if av.av_group_cap.(i) > 0.0 then used /. av.av_group_cap.(i)
           else 0.0))
      av.av_groups;
    av.av_epoch <- epoch;
    Obs.Counter.incr c_avail_refreshes
  end;
  av.av_exposure.(gi)

(* would this allocation leave every touched group's aggregate residual
   at or above its reserve floor? Groups the allocation does not touch
   cannot move, so only touched groups are summed. The floor comparison
   carries the usual relative ULP slack so a no-op reserve can never
   reject on float drift. *)
let reserve_admits av net (alloc : Sdn.Network.allocation) =
  if av.av_reserve <= 0.0 then true
  else begin
    let extra = Array.make (Array.length av.av_groups) 0.0 in
    let touched = ref [] in
    List.iter
      (fun (e, amt) ->
        let gi = avail_group_of av e in
        if gi >= 0 && amt > 0.0 then begin
          if extra.(gi) = 0.0 then touched := gi :: !touched;
          extra.(gi) <- extra.(gi) +. amt
        end)
      alloc.Sdn.Network.links;
    List.for_all
      (fun gi ->
        let residual =
          Array.fold_left
            (fun acc e -> acc +. Sdn.Network.link_residual net e)
            0.0 av.av_groups.(gi)
        in
        let floor = av.av_reserve *. av.av_group_cap.(gi) in
        residual -. extra.(gi) +. (1e-9 *. Float.max 1.0 floor) >= floor)
      !touched
  end

(* the committed-view twin of [reserve_admits]: the allocation already
   sits on the network, so the touched groups' residuals are read as
   they stand — no hypothetical subtraction. Callers holding a freshly
   committed allocation (Batch.plan's floor) can ask this directly
   instead of release / check / re-allocate, which bumped the weight
   epoch twice and flushed every Sp_window engine even when the floor
   passed. *)
let reserve_admits_after av net (alloc : Sdn.Network.allocation) =
  if av.av_reserve <= 0.0 then true
  else begin
    let seen = Array.make (Array.length av.av_groups) false in
    let touched = ref [] in
    List.iter
      (fun (e, amt) ->
        let gi = avail_group_of av e in
        if gi >= 0 && amt > 0.0 && not seen.(gi) then begin
          seen.(gi) <- true;
          touched := gi :: !touched
        end)
      alloc.Sdn.Network.links;
    List.for_all
      (fun gi ->
        let residual =
          Array.fold_left
            (fun acc e -> acc +. Sdn.Network.link_residual net e)
            0.0 av.av_groups.(gi)
        in
        let floor = av.av_reserve *. av.av_group_cap.(gi) in
        residual +. (1e-9 *. Float.max 1.0 floor) >= floor)
      !touched
  end

type rejection =
  | No_feasible_server
  | Unreachable
  | Server_unreachable
  | Over_threshold
  | Unallocatable

let rejection_to_string = function
  | No_feasible_server -> "no server with enough computing residual"
  | Unreachable -> "destinations unreachable under bandwidth residuals"
  | Server_unreachable ->
    "destinations reachable but every usable server is not"
  | Over_threshold -> "all candidates above admission thresholds"
  | Unallocatable -> "no candidate tree could reserve its resources"

type admitted = {
  tree : Pseudo_tree.t;
  server : int;
  lca : int;
  score : float;
}

type outcome = Admitted of admitted | Rejected of rejection

type candidate = {
  cand_server : int;
  cand_pos : int;             (* index in the usable-server order *)
  cand_tree : int list;
  cand_backtrack : int list;  (* edges of the v → u return path *)
  cand_lca : int;
  cand_score : float;
}

(* a server that survived the cheap checks but whose pricing (KMB tree)
   is deferred behind the incumbent bound *)
type pending = { p_pos : int; p_server : int; p_wv : float; p_bound : float }

(* Candidates used to be accumulated front-first over the usable order
   and stably sorted by score, so equal scores ranked by *descending*
   usable position; the explicit comparator preserves that tie-break now
   that pruning computes candidates out of order. *)
let cand_order a b =
  let c = compare a.cand_score b.cand_score in
  if c <> 0 then c else compare b.cand_pos a.cand_pos

let pending_order a b =
  let c = compare a.p_bound b.p_bound in
  if c <> 0 then c else compare b.p_pos a.p_pos

let min_by order = function
  | [] -> invalid_arg "Online_cp.min_by: empty"
  | x :: rest ->
    List.fold_left (fun m y -> if order y m < 0 then y else m) x rest

(* The pruning bound [dist s v + w_v] is a true lower bound on the
   candidate score [w_tree + w_back + w_v] in exact arithmetic (the KMB
   tree connects s and v, so w_tree ≥ dist s v, and w_back ≥ 0), but
   both sides are float sums taken in different orders; a relative slack
   absorbs that ULP drift so no candidate the exact bound would keep is
   ever skipped. The sliver of extra work is a few spurious KMB runs,
   never a changed outcome. *)
let slack x = x +. (1e-9 *. Float.max 1.0 (Float.abs x))

(* At zero load the exponential weights are exactly 0 and the linear
   unit costs are uniform on many topologies, which makes trees tie and
   routing hop-oblivious; a tiny per-edge epsilon breaks ties toward
   fewer hops in both modes without affecting the thresholds. *)
let hop_epsilon = 1e-6

let link_weight ?avail ~mode ~params net ~bandwidth e =
  if not (Sdn.Network.link_admits net e bandwidth) then infinity
  else
    let base =
      match mode with
      | `Exponential -> Cost_model.link_weight net ~base:params.beta e +. hop_epsilon
      | `Linear -> Cost_model.linear_link_weight net e +. hop_epsilon
    in
    (* [alpha = 0] takes the [_] branch: the surcharge term is never
       evaluated, so the result is the bit-identical baseline weight *)
    match avail with
    | Some av when av.av_alpha > 0.0 ->
      let gi = av.av_group_of.(e) in
      if gi < 0 then base else base +. (av.av_alpha *. exposure av net gi)
    | _ -> base

let server_weight ~mode ~params net ~demand v =
  match mode with
  | `Exponential -> Cost_model.server_weight net ~base:params.alpha v
  | `Linear -> Sdn.Network.server_unit_cost net v *. demand

let weight_family ?avail ~mode ~params () =
  let base =
    match mode with
    | `Exponential ->
      (* the exponential weights read [beta]; fold its bits into the key
         so different params never share an engine *)
      "online_cp.exp:" ^ Int64.to_string (Int64.bits_of_float params.beta)
    | `Linear -> "online_cp.lin"
  in
  (* the surcharge changes the weight function iff [alpha > 0]; only
     then does the family fork (stamp + alpha bits), so zero-alpha
     admits keep sharing engines with the baseline — the other half of
     the bit-identity argument above *)
  match avail with
  | Some av when av.av_alpha > 0.0 ->
    Printf.sprintf "%s+avail:%d:%s" base av.av_stamp
      (Int64.to_string (Int64.bits_of_float av.av_alpha))
  | _ -> base

let admit_impl ~mode ~params ~window ~prune ~avail net request =
  let params =
    match params with Some p -> p | None -> default_params net
  in
  let g = Sdn.Network.graph net in
  let b = request.Sdn.Request.bandwidth in
  let s = request.Sdn.Request.source in
  let demand = Sdn.Request.demand_mhz request in
  let link_w e = link_weight ?avail ~mode ~params net ~bandwidth:b e in
  let server_w v = server_weight ~mode ~params net ~demand v in
  let thresholds_on = mode = `Exponential in
  let usable =
    List.filter (fun v -> Sdn.Network.server_admits net v demand) (Sdn.Network.servers net)
  in
  if usable = [] then Rejected No_feasible_server
  else begin
    (* one lazy Dijkstra per terminal, shared by every candidate server;
       the engine is keyed by the network's weight epoch, so the
       load-dependent exponential weights invalidate on allocate/release
       rather than the caller rebuilding state from scratch. When the
       caller runs a whole admission window, the engine itself is shared
       across requests of the same weight class (Sp_window's exactness
       contract), so a request following a rejection reuses cached trees
       instead of starting cold. *)
    let terminals = List.sort_uniq compare (s :: request.Sdn.Request.destinations) in
    let eng =
      match window with
      | Some w ->
        let family = weight_family ?avail ~mode ~params () in
        Sp_window.engine w ~family
          ~bucket:(Sp_window.bucket w ~bandwidth:b)
          ~weight:link_w
      | None ->
        Sp.create g ~weight:link_w
          ~epoch:(fun () -> Sdn.Network.weight_epoch net)
    in
    List.iter (fun t -> ignore (Sp.spt eng t)) terminals;
    (* non-terminal sources (candidate servers) answer from the terminal
       end's tree by symmetry, so servers never cost a Dijkstra. The
       split is on membership in *this* request's terminal set, not on
       what the engine happens to have cached: a shared engine may hold
       trees for other requests' terminals, and answering from those
       would pick different (equal-cost) paths than the per-request
       engine did. *)
    let is_terminal x = List.mem x terminals in
    let dist x y =
      if is_terminal x then (Sp.spt eng x).Paths.dist.(y)
      else (Sp.spt eng y).Paths.dist.(x)
    in
    let path x y =
      if is_terminal x then Paths.path_edges g (Sp.spt eng x) y
      else Option.map List.rev (Paths.path_edges g (Sp.spt eng y) x)
    in
    let reachable =
      let spt_s = Sp.spt eng s in
      List.for_all
        (fun d -> spt_s.Paths.dist.(d) < infinity)
        request.Sdn.Request.destinations
    in
    if not reachable then Rejected Unreachable
    else begin
      let saw_threshold_violation = ref false in
      let saw_server_unreachable = ref false in
      (* cheap screening pass: node threshold and source-to-server
         reachability (an O(1) read off s's tree). The expensive part —
         the KMB tree and the backtrack — is deferred per server. *)
      let screen pos v =
        let wv = server_w v in
        if thresholds_on && wv >= params.sigma_v then begin
          saw_threshold_violation := true;
          None
        end
        else begin
          let dsv = dist s v in
          if dsv = infinity then begin
            saw_server_unreachable := true;
            None
          end
          else Some { p_pos = pos; p_server = v; p_wv = wv; p_bound = dsv +. wv }
        end
      in
      let screened = List.filter_map Fun.id (List.mapi screen usable) in
      let compute p =
        let v = p.p_server in
        let terms = List.sort_uniq compare (v :: terminals) in
        match
          Mcgraph.Steiner.kmb_with_metric g ~weight:link_w ~terminals:terms
            ~dist ~path
        with
        | None -> None
        | Some tree_edges ->
          let w_tree = Mcgraph.Steiner.tree_cost ~weight:link_w tree_edges in
          if thresholds_on && w_tree >= params.sigma_e then begin
            saw_threshold_violation := true;
            None
          end
          else begin
            let rooted = Tree.of_edges g ~root:s tree_edges in
            let u = Tree.lca_many rooted (v :: request.Sdn.Request.destinations) in
            let backtrack = Tree.path_up rooted v ~ancestor:u in
            let w_back = Mcgraph.Steiner.tree_cost ~weight:link_w backtrack in
            let score = w_tree +. w_back +. p.p_wv in
            Some
              {
                cand_server = v;
                cand_pos = p.p_pos;
                cand_tree = tree_edges;
                cand_backtrack = backtrack;
                cand_lca = u;
                cand_score = score;
              }
          end
      in
      (* price servers in usable order, skipping any whose lower bound
         already loses to the best complete candidate so far; the
         incumbent only improves, so a deferred server's bound also
         exceeds the final best score *)
      let computed = ref [] in
      let deferred = ref [] in
      let incumbent = ref infinity in
      List.iter
        (fun p ->
          if prune && p.p_bound > slack !incumbent then
            deferred := p :: !deferred
          else
            match compute p with
            | None -> ()
            | Some c ->
              if c.cand_score < !incumbent then incumbent := c.cand_score;
              computed := c :: !computed)
        screened;
      let try_alloc c =
        let v = c.cand_server in
        let rooted = Tree.of_edges g ~root:s c.cand_tree in
        let to_server = List.rev (Tree.path_up rooted v ~ancestor:s) in
        let route_of d =
          (* the processed copy climbs only to LCA(v, d) — a prefix of
             the reserved v → u backtrack — before descending, so no
             edge carries more traffic than Algorithm 2 accounts for *)
          let onward = Tree.path_between rooted v d in
          (d, { Pseudo_tree.to_server; server = v; onward })
        in
        let routes = List.map route_of request.Sdn.Request.destinations in
        let tree =
          Pseudo_tree.make ~request ~servers:[ v ]
            ~edge_uses:
              (Pseudo_tree.edge_uses_of_list (c.cand_tree @ c.cand_backtrack))
            ~routes
        in
        let alloc = Pseudo_tree.allocation tree in
        (* the spare-capacity floor fires before the allocation attempt:
           a blocked candidate behaves exactly like a failed allocation
           (no side effects, the select loop moves on), so a run that
           ends with every candidate blocked is an ordinary
           [Unallocatable] rejection *)
        let blocked =
          match avail with
          | Some av when not (reserve_admits av net alloc) ->
            Obs.Counter.incr c_avail_blocked;
            true
          | _ -> false
        in
        if blocked then None
        else
          match Sdn.Network.allocate net alloc with
          | Ok () ->
            Some (Admitted { tree; server = v; lca = c.cand_lca; score = c.cand_score })
          | Error _ -> None
      in
      (* Walk candidates in score order (ties by the historical order,
         see [cand_order]) attempting allocation, materialising deferred
         servers whenever their bound says they could still rank at or
         before the current front-runner. Failed allocations have no
         side effects, so skipping servers that would only have been
         failed attempts is unobservable. *)
      let rec select computed deferred =
        match computed with
        | [] -> (
          match deferred with
          | [] -> Rejected Unallocatable
          | _ ->
            (* the fallback chain outlived every priced candidate;
               materialise the most promising deferred server *)
            let next = min_by pending_order deferred in
            let deferred = List.filter (fun p -> p.p_pos <> next.p_pos) deferred in
            Obs.Counter.incr c_pruned_late;
            (match compute next with
            | None -> select [] deferred
            | Some c -> select [ c ] deferred))
        | _ -> (
          let best = min_by cand_order computed in
          let ready, still =
            List.partition (fun p -> p.p_bound <= slack best.cand_score) deferred
          in
          if ready <> [] then begin
            List.iter (fun _ -> Obs.Counter.incr c_pruned_late) ready;
            let newly = List.filter_map compute ready in
            select (newly @ computed) still
          end
          else
            match try_alloc best with
            | Some outcome ->
              Obs.Counter.add c_pruned (List.length deferred);
              outcome
            | None ->
              select
                (List.filter (fun c -> c.cand_pos <> best.cand_pos) computed)
                deferred)
      in
      match !computed with
      | [] ->
        (* nothing priced ⟹ nothing deferred (no incumbent, no pruning),
           so the attribution below sees the complete picture *)
        if !saw_threshold_violation then Rejected Over_threshold
        else if screened = [] && !saw_server_unreachable then
          Rejected Server_unreachable
        else Rejected Unreachable
      | cands -> select cands !deferred
    end
  end

let admit ?(mode = `Exponential) ?params ?window ?(prune = true) ?avail net
    request =
  Obs.Span.run "online_cp.admit" @@ fun () ->
  let runs0 = Obs.Counter.value c_dijkstra_runs in
  let relax0 = Obs.Counter.value c_dijkstra_relax in
  let outcome = admit_impl ~mode ~params ~window ~prune ~avail net request in
  Obs.Counter.add c_dijkstras (Obs.Counter.value c_dijkstra_runs - runs0);
  Obs.Counter.add c_relaxations (Obs.Counter.value c_dijkstra_relax - relax0);
  (match outcome with
  | Admitted _ -> Obs.Counter.incr c_admitted
  | Rejected No_feasible_server -> Obs.Counter.incr c_rej_no_server
  | Rejected Unreachable -> Obs.Counter.incr c_rej_unreachable
  | Rejected Server_unreachable -> Obs.Counter.incr c_rej_server_unreachable
  | Rejected Over_threshold -> Obs.Counter.incr c_rej_threshold
  | Rejected Unallocatable -> Obs.Counter.incr c_rej_unallocatable);
  outcome
