(** End-to-end latency of pseudo-multicast trees, and delay-bounded
    admission (the extension direction of Kuo et al., INFOCOM'16, which
    the paper cites for delay-constrained NFV routing).

    A destination's latency is the propagation delay along its witness
    route (source → server → destination) plus the service chain's
    processing delay at the server. *)

val route_delay_ms : Sdn.Network.t -> Sdn.Vnf.chain -> Pseudo_tree.route -> float

val destination_delay_ms : Sdn.Network.t -> Pseudo_tree.t -> int -> float
(** Raises [Invalid_argument] when the destination has no witness. *)

val worst_delay_ms : Sdn.Network.t -> Pseudo_tree.t -> float
(** Maximum over all destinations. *)

val meets_deadline : Sdn.Network.t -> Pseudo_tree.t -> bool
(** [true] when the request carries no deadline or every destination's
    latency is within it. *)

val admit :
  Sdn.Network.t -> Admission.algorithm -> Sdn.Request.t ->
  (Pseudo_tree.t, string) result
(** Delay-bounded admission: run the online algorithm; if the admitted
    tree violates the request's deadline, roll the allocation back and
    reject. (The underlying algorithms are delay-oblivious — this is the
    standard check-and-reject wrapper, and the measured cost of ignoring
    latency during routing.) *)
