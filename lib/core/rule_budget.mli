(** Per-switch forwarding-table budgets.

    SDN switches hold flow rules in limited TCAM; Huang et al.
    (INFOCOM'16, cited in the paper's related work) treat the
    forwarding-table size as a first-class node capacity. This layer
    compiles every admitted pseudo-multicast tree to rules
    ({!Flow_rules}), charges each switch's table, and rejects (rolling
    back bandwidth and computing) when a switch would overflow —
    without touching the underlying algorithms. *)

type t

val create : Sdn.Network.t -> capacity:int -> t
(** A fresh budget tracker giving every switch the same [capacity]
    (rules). Raises [Invalid_argument] when [capacity < 0]. *)

val capacity : t -> int
val used : t -> int -> int
(** Rules currently installed at a switch. *)

val residual : t -> int -> int
val total_used : t -> int

val fits : t -> Flow_rules.t -> bool

val install : t -> Flow_rules.t -> (unit, string) result
(** Atomically charge every switch the rule set touches. *)

val uninstall : t -> Flow_rules.t -> unit
(** Return the rules (e.g. when the session departs). Raises
    [Invalid_argument] on over-release. *)

val reset : t -> unit

val admit :
  t ->
  Sdn.Network.t ->
  Admission.algorithm ->
  Sdn.Request.t ->
  (Pseudo_tree.t * Flow_rules.t, string) result
(** Run the online algorithm; compile the admitted tree to rules; if
    some switch's table cannot hold them, roll back the bandwidth and
    computing allocation and reject. *)
