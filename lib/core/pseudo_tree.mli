(** Pseudo-multicast trees (§III-B).

    The routing structure implementing an NFV-enabled multicast request:
    traffic flows from the source through one or more servers hosting the
    service chain and on to every destination. Because a processed packet
    may backtrack (e.g. from a server up to an ancestor before fanning
    out), tree edges can be traversed more than once; we therefore store
    an explicit {e edge-use multiset}. Each destination carries a
    {e witness route} — the concrete source → server → destination walk —
    which makes the service-chain property checkable. *)

type route = {
  to_server : int list;  (** edge ids, source → serving server *)
  server : int;          (** the server whose VM processes this copy *)
  onward : int list;     (** edge ids, server → destination *)
}

type t = {
  request : Sdn.Request.t;
  servers : int list;            (** chosen servers, each hosting [SC_k] *)
  edge_uses : (int * int) list;  (** (edge id, multiplicity ≥ 1), ids distinct *)
  routes : (int * route) list;   (** one witness per destination *)
}

val make :
  request:Sdn.Request.t ->
  servers:int list ->
  edge_uses:(int * int) list ->
  routes:(int * route) list ->
  t
(** Normalises [edge_uses] (merges repeats). Raises [Invalid_argument]
    on an empty server list or a non-positive multiplicity. *)

val edge_uses_of_list : int list -> (int * int) list
(** Count multiplicities in a raw edge-id list (traversal multiset). *)

val cost : Sdn.Network.t -> t -> float
(** Implementation cost under the offline linear objective:
    Σ uses·b_k·c_e + Σ_{servers} c_v(SC_k). *)

val bandwidth_cost : Sdn.Network.t -> t -> float
val computing_cost : Sdn.Network.t -> t -> float

val server_count : t -> int

val total_edge_traversals : t -> int

val allocation : t -> Sdn.Network.allocation
(** Resources the structure consumes: [uses·b_k] per link, the chain
    demand per chosen server. *)

val validate : Sdn.Network.t -> t -> (unit, string) result
(** Structural soundness: each destination has a witness whose
    [to_server] walks from the source to a chosen server and whose
    [onward] walks from that server to the destination; every witness
    edge is in the edge-use support; chosen servers are actual servers
    of the network; every edge id is valid. *)

val pp : Format.formatter -> t -> unit
