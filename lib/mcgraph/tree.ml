type t = {
  graph : Graph.t;
  root_node : int;
  parent_node : int array;     (* -1 for root and non-tree nodes *)
  parent_edge_id : int array;
  depth_of : int array;        (* -1 for non-tree nodes *)
  order : int list;            (* BFS order *)
  edge_ids : int list;
}

let of_edges g ~root edges =
  let nn = Graph.n g in
  if root < 0 || root >= nn then invalid_arg "Tree.of_edges: root out of range";
  let in_set = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if Hashtbl.mem in_set e then invalid_arg "Tree.of_edges: repeated edge";
      Hashtbl.add in_set e ())
    edges;
  let parent_node = Array.make nn (-1) in
  let parent_edge_id = Array.make nn (-1) in
  let depth_of = Array.make nn (-1) in
  let order = ref [] in
  let used = ref 0 in
  let q = Queue.create () in
  depth_of.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    Graph.iter_neighbors g u (fun v e ->
        if Hashtbl.mem in_set e then begin
          if depth_of.(v) < 0 then begin
            depth_of.(v) <- depth_of.(u) + 1;
            parent_node.(v) <- u;
            parent_edge_id.(v) <- e;
            incr used;
            Queue.add v q
          end
          else if parent_edge_id.(u) <> e then
            (* [v] already reached and [e] is not the edge that discovered
               [u]: the edge set contains a cycle through [u, v]. Each such
               cycle edge is seen from both sides, so guard idempotently. *)
            if parent_edge_id.(v) <> e then
              invalid_arg "Tree.of_edges: cycle in edge set"
        end)
  done;
  if !used <> List.length edges then
    invalid_arg "Tree.of_edges: edge set not connected to root";
  {
    graph = g;
    root_node = root;
    parent_node;
    parent_edge_id;
    depth_of;
    order = List.rev !order;
    edge_ids = edges;
  }

let root t = t.root_node
let mem t v = v >= 0 && v < Array.length t.depth_of && t.depth_of.(v) >= 0
let nodes t = t.order
let size t = List.length t.order
let edges t = t.edge_ids

let check_mem t v name =
  if not (mem t v) then invalid_arg (name ^ ": node not in tree")

let parent t v =
  check_mem t v "Tree.parent";
  t.parent_node.(v)

let parent_edge t v =
  check_mem t v "Tree.parent_edge";
  t.parent_edge_id.(v)

let depth t v =
  check_mem t v "Tree.depth";
  t.depth_of.(v)

let children t v =
  check_mem t v "Tree.children";
  List.filter (fun u -> u <> t.root_node && t.parent_node.(u) = v) t.order

let leaves t =
  List.filter (fun u -> children t u = [] ) t.order

let lca t a b =
  check_mem t a "Tree.lca";
  check_mem t b "Tree.lca";
  let rec lift v target_depth =
    if t.depth_of.(v) > target_depth then lift t.parent_node.(v) target_depth
    else v
  in
  let da = t.depth_of.(a) and db = t.depth_of.(b) in
  let a = lift a (min da db) and b = lift b (min da db) in
  let rec meet a b = if a = b then a else meet t.parent_node.(a) t.parent_node.(b) in
  meet a b

let lca_many t = function
  | [] -> invalid_arg "Tree.lca_many: empty list"
  | v :: rest -> List.fold_left (lca t) v rest

let is_ancestor t a ~descendant =
  check_mem t a "Tree.is_ancestor";
  check_mem t descendant "Tree.is_ancestor";
  lca t a descendant = a

let in_subtree t ~root_of_subtree v =
  mem t v && mem t root_of_subtree && is_ancestor t root_of_subtree ~descendant:v

let path_up t v ~ancestor =
  check_mem t v "Tree.path_up";
  check_mem t ancestor "Tree.path_up";
  let rec walk v acc =
    if v = ancestor then List.rev acc
    else if v = t.root_node then invalid_arg "Tree.path_up: not an ancestor"
    else walk t.parent_node.(v) (t.parent_edge_id.(v) :: acc)
  in
  walk v []

let path_between t a b =
  let anc = lca t a b in
  path_up t a ~ancestor:anc @ List.rev (path_up t b ~ancestor:anc)
