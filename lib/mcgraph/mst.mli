(** Minimum spanning trees and forests. *)

val kruskal : Graph.t -> weight:(int -> float) -> int list
(** Edge ids of a minimum spanning forest (a tree when the graph is
    connected). Edges with [infinity] weight are ignored. *)

val kruskal_subset : Graph.t -> weight:(int -> float) -> edges:int list -> int list
(** Minimum spanning forest of the subgraph induced by the given edge
    ids; used for the second MST pass of the KMB Steiner heuristic. *)

val prim : Graph.t -> weight:(int -> float) -> root:int -> int list
(** Edge ids of an MST of the component containing [root]. *)

val prim_metric : points:int array -> dist:(int -> int -> float) -> (int * int) list option
(** MST of the complete graph whose vertices are [points] and whose edge
    weights are given by the metric [dist] (applied to point values, not
    indices). Returns node pairs [(a, b)] with [a], [b] drawn from
    [points]; [None] when some point is at infinite distance from the
    rest (disconnected metric). O(|points|²). *)

val weight_of : weight:(int -> float) -> int list -> float
(** Total weight of an edge-id list. *)
