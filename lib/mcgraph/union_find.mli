(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] is a partition of [{0, ..., n-1}] into singletons. *)

val find : t -> int -> int
(** Canonical representative of an element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]. Returns [false] when
    they were already in the same set (no change), [true] otherwise. *)

val same : t -> int -> int -> bool
(** Whether two elements are currently in the same set. *)

val count : t -> int
(** Number of disjoint sets. *)

val size : t -> int -> int
(** Number of elements in the set containing the argument. *)
