(** Rooted trees over a subset of a graph's nodes.

    Built from an acyclic, connected set of graph edge ids by orienting
    them away from a chosen root. Provides the lowest-common-ancestor and
    tree-path queries that pseudo-multicast-tree construction needs
    (Algorithm 2, step 10 of the paper). *)

type t

val of_edges : Graph.t -> root:int -> int list -> t
(** [of_edges g ~root edges] orients [edges] away from [root]. Raises
    [Invalid_argument] if the edge set contains a cycle, a repeated edge,
    or an edge not connected to [root]. *)

val root : t -> int

val mem : t -> int -> bool
(** Whether a node belongs to the tree. *)

val nodes : t -> int list
(** Tree nodes in BFS order from the root. *)

val size : t -> int
(** Number of tree nodes. *)

val edges : t -> int list
(** The tree's edge ids. *)

val parent : t -> int -> int
(** Parent node; [-1] for the root. Raises [Invalid_argument] for
    non-tree nodes. *)

val parent_edge : t -> int -> int
(** Edge to the parent; [-1] for the root. *)

val depth : t -> int -> int

val children : t -> int -> int list

val leaves : t -> int list

val lca : t -> int -> int -> int
(** Lowest common ancestor of two tree nodes. *)

val lca_many : t -> int list -> int
(** Aggregate LCA, [lca (lca (… ) ) ]; raises [Invalid_argument] on an
    empty list. *)

val path_up : t -> int -> ancestor:int -> int list
(** Edge ids from a node up to one of its ancestors, in travel order.
    Raises [Invalid_argument] if [ancestor] is not an ancestor. *)

val path_between : t -> int -> int -> int list
(** Edge ids of the unique tree path between two nodes (via their LCA),
    in travel order from the first node. *)

val is_ancestor : t -> int -> descendant:int -> bool

val in_subtree : t -> root_of_subtree:int -> int -> bool
(** Whether a node lies in the subtree rooted at the given node. *)
