(** Polymorphic min-priority queue with [float] priorities (pairing
    heap). Unlike {!Heap}, elements are arbitrary and need no key space;
    used for event-driven simulation. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val insert : 'a t -> float -> 'a -> 'a t
(** Persistent insert. *)

val pop : 'a t -> (float * 'a * 'a t) option
(** Minimum-priority element and the remaining queue. Ties pop in an
    unspecified order. *)

val peek : 'a t -> (float * 'a) option

val size : 'a t -> int
(** O(n). *)

val of_list : (float * 'a) list -> 'a t

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain into priority order. *)
