(* pairing heap *)
type 'a t =
  | Empty
  | Node of float * 'a * 'a t list

let empty = Empty

let is_empty = function Empty -> true | Node _ -> false

let meld a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Node (pa, _, _), Node (pb, _, _) -> (
    match (a, b) with
    | Node (_, va, ca), Node (_, vb, cb) ->
      if pa <= pb then Node (pa, va, b :: ca) else Node (pb, vb, a :: cb)
    | _ -> assert false)

let insert t p v = meld t (Node (p, v, []))

let rec meld_pairs = function
  | [] -> Empty
  | [ x ] -> x
  | a :: b :: rest -> meld (meld a b) (meld_pairs rest)

let pop = function
  | Empty -> None
  | Node (p, v, children) -> Some (p, v, meld_pairs children)

let peek = function Empty -> None | Node (p, v, _) -> Some (p, v)

let rec size = function
  | Empty -> 0
  | Node (_, _, children) -> 1 + List.fold_left (fun acc c -> acc + size c) 0 children

let of_list l = List.fold_left (fun t (p, v) -> insert t p v) empty l

let to_sorted_list t =
  let rec drain t acc =
    match pop t with
    | None -> List.rev acc
    | Some (p, v, rest) -> drain rest ((p, v) :: acc)
  in
  drain t []
