(** Steiner trees in graphs.

    [kmb] is the 2(1 − 1/|S|)-approximation of Kou, Markowsky and Berman
    (Acta Informatica 1981) used throughout the paper; [exact] is the
    Dreyfus–Wagner dynamic program, exponential in the number of
    terminals, used on small instances and as a test oracle. *)

val kmb : Graph.t -> weight:(int -> float) -> terminals:int list -> int list option
(** Edge ids of an approximate Steiner tree spanning [terminals];
    [None] when the terminals are not mutually reachable (under finite
    weights). A single terminal yields [Some []]. Runs one Dijkstra per
    terminal. *)

val kmb_with_metric :
  Graph.t ->
  weight:(int -> float) ->
  terminals:int list ->
  dist:(int -> int -> float) ->
  path:(int -> int -> int list option) ->
  int list option
(** KMB where the metric closure is supplied by the caller: [dist u v]
    is the shortest-path cost between nodes and [path u v] its edge ids.
    Used with precomputed all-pairs data to avoid re-running Dijkstra for
    every server combination of [Appro_Multi]. [weight] must agree with
    the metric (it prices the edges returned by [path]). *)

val exact : Graph.t -> weight:(int -> float) -> terminals:int list -> int list option
(** Optimal Steiner tree by Dreyfus–Wagner: O(3^t·n + 2^t·n²) for [t]
    terminals. Raises [Invalid_argument] when [t > 15]. *)

val prune : Graph.t -> terminals:int list -> int list -> int list
(** Repeatedly remove edges whose endpoint of degree one is not a
    terminal; the standard final step of KMB. *)

val tree_cost : weight:(int -> float) -> int list -> float
(** Total weight of an edge-id list. *)

val is_steiner_tree : Graph.t -> terminals:int list -> int list -> bool
(** Structural check: the edge set is a tree (acyclic, connected) whose
    node set contains every terminal. *)
