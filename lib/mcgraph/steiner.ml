let tree_cost ~weight edges =
  List.fold_left (fun acc e -> acc +. weight e) 0.0 edges

let dedup_edges edges =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.add seen e ();
        true
      end)
    edges

let prune g ~terminals edges =
  let is_terminal = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace is_terminal t ()) terminals;
  let degree = Hashtbl.create 16 in
  let bump v d =
    let cur = Option.value (Hashtbl.find_opt degree v) ~default:0 in
    Hashtbl.replace degree v (cur + d)
  in
  let live = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace live e ();
      let u, v = Graph.endpoints g e in
      bump u 1;
      bump v 1)
    edges;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun e () ->
        let u, v = Graph.endpoints g e in
        let removable x =
          Hashtbl.find degree x = 1 && not (Hashtbl.mem is_terminal x)
        in
        if removable u || removable v then begin
          Hashtbl.remove live e;
          bump u (-1);
          bump v (-1);
          changed := true
        end)
      (Hashtbl.copy live)
  done;
  List.filter (Hashtbl.mem live) edges

(* Shared core of both KMB variants: given a sorted unique terminal list
   and a metric closure with path extraction, build an MST over the
   closure, expand its edges into shortest paths, re-run an MST on the
   expanded subgraph and prune non-terminal leaves. *)
let kmb_core g ~weight ~terminals ~dist ~path =
  let points = Array.of_list terminals in
  match Mst.prim_metric ~points ~dist with
  | None -> None
  | Some closure_mst ->
    let expanded =
      List.concat_map
        (fun (a, b) ->
          match path a b with
          | Some edges -> edges
          | None -> invalid_arg "Steiner.kmb: metric/path disagree")
        closure_mst
    in
    let subgraph = dedup_edges expanded in
    let mst2 = Mst.kruskal_subset g ~weight ~edges:subgraph in
    Some (prune g ~terminals mst2)

let kmb g ~weight ~terminals =
  match List.sort_uniq compare terminals with
  | [] | [ _ ] -> Some []
  | uniq ->
    let spts = List.map (fun t -> (t, Paths.dijkstra g ~weight ~source:t)) uniq in
    let spt_of = Hashtbl.create 16 in
    List.iter (fun (t, spt) -> Hashtbl.replace spt_of t spt) spts;
    let dist u v =
      match Hashtbl.find_opt spt_of u with
      | Some spt -> spt.Paths.dist.(v)
      | None -> invalid_arg "Steiner.kmb: dist outside terminal set"
    in
    let path u v =
      let spt = Hashtbl.find spt_of u in
      Paths.path_edges g spt v
    in
    kmb_core g ~weight ~terminals:uniq ~dist ~path

let kmb_with_metric g ~weight ~terminals ~dist ~path =
  match List.sort_uniq compare terminals with
  | [] | [ _ ] -> Some []
  | uniq -> kmb_core g ~weight ~terminals:uniq ~dist ~path

let is_steiner_tree g ~terminals edges =
  match List.sort_uniq compare terminals with
  | [] -> edges = []
  | root :: _ as uniq -> (
    match Tree.of_edges g ~root edges with
    | tree -> List.for_all (Tree.mem tree) uniq
    | exception Invalid_argument _ -> false)

(* Dreyfus–Wagner dynamic program. [dp.(mask).(v)] is the minimum cost of
   a tree spanning the terminals selected by [mask] plus node [v]. Masks
   are processed in increasing popcount order: first merge two sub-trees
   at [v], then propagate along shortest paths (a Dijkstra over the dp
   row, here done with the dense metric since test instances are small).
   Choices are recorded for tree reconstruction. *)
type dw_choice =
  | Dw_leaf
  | Dw_merge of int                  (* submask kept at the same node *)
  | Dw_move of int                   (* predecessor node, same mask *)

let exact g ~weight ~terminals =
  let uniq = List.sort_uniq compare terminals in
  let t = List.length uniq in
  if t > 15 then invalid_arg "Steiner.exact: too many terminals";
  if t <= 1 then Some []
  else begin
    let nn = Graph.n g in
    let terms = Array.of_list uniq in
    (* only distances/paths from the ≤15 terminals are consulted, so run
       one Dijkstra per terminal rather than eager all-pairs *)
    let term_spt =
      Array.map (fun t -> Paths.dijkstra g ~weight ~source:t) terms
    in
    let full = (1 lsl t) - 1 in
    let dp = Array.make_matrix (full + 1) nn infinity in
    let choice = Array.make_matrix (full + 1) nn Dw_leaf in
    for i = 0 to t - 1 do
      for v = 0 to nn - 1 do
        dp.(1 lsl i).(v) <- term_spt.(i).Paths.dist.(v);
        choice.(1 lsl i).(v) <- Dw_leaf
      done
    done;
    let masks = List.init full (fun i -> i + 1) in
    let by_popcount =
      List.sort
        (fun a b ->
          let pc x =
            let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
            go x 0
          in
          compare (pc a) (pc b))
        masks
    in
    List.iter
      (fun mask ->
        if mask land (mask - 1) <> 0 then begin
          (* merge step: combine two disjoint submasks at a common node *)
          for v = 0 to nn - 1 do
            let sub = ref ((mask - 1) land mask) in
            while !sub > 0 do
              if !sub < mask - !sub then begin
                let c = dp.(!sub).(v) +. dp.(mask - !sub).(v) in
                if c < dp.(mask).(v) then begin
                  dp.(mask).(v) <- c;
                  choice.(mask).(v) <- Dw_merge !sub
                end
              end;
              sub := (!sub - 1) land mask
            done
          done;
          (* move step: Bellman–Ford-style relaxation over the metric *)
          let changed = ref true in
          while !changed do
            changed := false;
            Graph.iter_edges g (fun e a b ->
                let w = weight e in
                if w < infinity then begin
                  if dp.(mask).(a) +. w < dp.(mask).(b) then begin
                    dp.(mask).(b) <- dp.(mask).(a) +. w;
                    choice.(mask).(b) <- Dw_move a;
                    changed := true
                  end;
                  if dp.(mask).(b) +. w < dp.(mask).(a) then begin
                    dp.(mask).(a) <- dp.(mask).(b) +. w;
                    choice.(mask).(a) <- Dw_move b;
                    changed := true
                  end
                end)
          done
        end)
      by_popcount;
    (* best attachment node for the full terminal set *)
    let best = ref (-1) in
    for v = 0 to nn - 1 do
      if !best < 0 || dp.(full).(v) < dp.(full).(!best) then best := v
    done;
    if dp.(full).(!best) = infinity then None
    else begin
      (* reconstruct the edge multiset; shortest-path legs come from APSP *)
      let edges = ref [] in
      let rec rebuild mask v =
        match choice.(mask).(v) with
        | Dw_leaf ->
          let i =
            let rec find i = if mask = 1 lsl i then i else find (i + 1) in
            find 0
          in
          (match Paths.path_edges g term_spt.(i) v with
          | Some path -> edges := path @ !edges
          | None -> assert false)
        | Dw_merge sub ->
          rebuild sub v;
          rebuild (mask - sub) v
        | Dw_move u ->
          (match Graph.find_edge g u v with
          | Some e ->
            (* several parallel edges may join u and v; pick the cheapest *)
            let e =
              List.fold_left
                (fun acc (w', e') -> if w' = v && weight e' < weight acc then e' else acc)
                e
                (Graph.neighbors g u)
            in
            edges := e :: !edges
          | None -> assert false);
          rebuild mask u
      in
      rebuild full !best;
      (* Distinct shortest-path legs may overlap and close cycles; an MST
         of the collected subgraph restores a tree without raising the
         cost above the (optimal) dp value. *)
      let uniq_edges = dedup_edges !edges in
      let tree = Mst.kruskal_subset g ~weight ~edges:uniq_edges in
      Some (prune g ~terminals:uniq tree)
    end
  end
