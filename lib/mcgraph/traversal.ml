let always _ = true

let bfs ?(keep = always) g ~source =
  let dist = Array.make (Graph.n g) (-1) in
  let q = Queue.create () in
  dist.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v e ->
        if keep e && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

let dfs_preorder ?(keep = always) g ~source =
  let seen = Array.make (Graph.n g) false in
  let order = ref [] in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      order := u :: !order;
      Graph.iter_neighbors g u (fun v e -> if keep e then visit v)
    end
  in
  visit source;
  List.rev !order

let reachable ?(keep = always) g ~source =
  let dist = bfs ~keep g ~source in
  Array.map (fun d -> d >= 0) dist

let components ?(keep = always) g =
  let nn = Graph.n g in
  let label = Array.make nn (-1) in
  let count = ref 0 in
  for s = 0 to nn - 1 do
    if label.(s) < 0 then begin
      let c = !count in
      incr count;
      let q = Queue.create () in
      label.(s) <- c;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Graph.iter_neighbors g u (fun v e ->
            if keep e && label.(v) < 0 then begin
              label.(v) <- c;
              Queue.add v q
            end)
      done
    end
  done;
  (label, !count)

let is_connected ?(keep = always) g =
  Graph.n g <= 1 || snd (components ~keep g) = 1

let in_same_component ?(keep = always) g u others =
  let r = reachable ~keep g ~source:u in
  List.for_all (fun v -> r.(v)) others
