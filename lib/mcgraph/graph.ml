type csr = {
  off : int array;                  (* node -> first slot; length n+1 *)
  nbr : int array;                  (* flat neighbor array, length 2m *)
  eid : int array;                  (* flat edge-id array, length 2m *)
}

type t = {
  n : int;
  mutable m : int;
  mutable eu : int array;           (* endpoint arrays, grown geometrically *)
  mutable ev : int array;
  adj : (int * int) list array;     (* node -> (neighbor, edge id) list *)
  mutable csr_cache : csr option;   (* frozen view, dropped on add_edge *)
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  {
    n;
    m = 0;
    eu = Array.make 8 0;
    ev = Array.make 8 0;
    adj = Array.make (max n 1) [];
    csr_cache = None;
  }

let n g = g.n
let m g = g.m

let check_node g u name =
  if u < 0 || u >= g.n then invalid_arg (name ^ ": node out of range")

let grow g =
  let cap = Array.length g.eu in
  if g.m >= cap then begin
    let eu' = Array.make (2 * cap) 0 and ev' = Array.make (2 * cap) 0 in
    Array.blit g.eu 0 eu' 0 g.m;
    Array.blit g.ev 0 ev' 0 g.m;
    g.eu <- eu';
    g.ev <- ev'
  end

let add_edge g u v =
  check_node g u "Graph.add_edge";
  check_node g v "Graph.add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  grow g;
  let e = g.m in
  g.eu.(e) <- u;
  g.ev.(e) <- v;
  g.adj.(u) <- (v, e) :: g.adj.(u);
  g.adj.(v) <- (u, e) :: g.adj.(v);
  g.m <- e + 1;
  g.csr_cache <- None;
  e

let of_edges ~n:nodes edges =
  let g = create nodes in
  List.iter (fun (u, v) -> ignore (add_edge g u v)) edges;
  g

let check_edge g e name =
  if e < 0 || e >= g.m then invalid_arg (name ^ ": edge out of range")

let endpoints g e =
  check_edge g e "Graph.endpoints";
  (g.eu.(e), g.ev.(e))

let other_endpoint g e u =
  check_edge g e "Graph.other_endpoint";
  if g.eu.(e) = u then g.ev.(e)
  else if g.ev.(e) = u then g.eu.(e)
  else invalid_arg "Graph.other_endpoint: not an endpoint"

let neighbors g u =
  check_node g u "Graph.neighbors";
  g.adj.(u)

let iter_neighbors g u f =
  check_node g u "Graph.iter_neighbors";
  List.iter (fun (v, e) -> f v e) g.adj.(u)

let degree g u =
  check_node g u "Graph.degree";
  List.length g.adj.(u)

let find_edge g u v =
  check_node g u "Graph.find_edge";
  check_node g v "Graph.find_edge";
  let best = ref None in
  List.iter
    (fun (w, e) ->
      if w = v then
        match !best with Some e' when e' <= e -> () | _ -> best := Some e)
    g.adj.(u);
  !best

let mem_edge g u v = find_edge g u v <> None

let iter_edges g f =
  for e = 0 to g.m - 1 do
    f e g.eu.(e) g.ev.(e)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun e u v -> acc := f !acc e u v);
  !acc

let edge_list g =
  List.rev (fold_edges g ~init:[] ~f:(fun acc e u v -> (e, u, v) :: acc))

let c_csr_rebuilds = Nfv_obs.Obs.Counter.make "graph.csr_rebuilds"

let build_csr g =
  Nfv_obs.Obs.Counter.incr c_csr_rebuilds;
  let off = Array.make (g.n + 1) 0 in
  for u = 0 to g.n - 1 do
    off.(u + 1) <- off.(u) + List.length g.adj.(u)
  done;
  let slots = off.(g.n) in
  let nbr = Array.make (max slots 1) (-1) in
  let eid = Array.make (max slots 1) (-1) in
  for u = 0 to g.n - 1 do
    (* keep the adjacency-list order so CSR traversal is observationally
       identical to [iter_neighbors] (same tie-breaking in Dijkstra &c.) *)
    let i = ref off.(u) in
    List.iter
      (fun (v, e) ->
        nbr.(!i) <- v;
        eid.(!i) <- e;
        incr i)
      g.adj.(u)
  done;
  { off; nbr; eid }

let csr g =
  match g.csr_cache with
  | Some c -> c
  | None ->
    let c = build_csr g in
    g.csr_cache <- Some c;
    c

let copy g =
  {
    n = g.n;
    m = g.m;
    eu = Array.copy g.eu;
    ev = Array.copy g.ev;
    adj = Array.copy g.adj;
    csr_cache = g.csr_cache;   (* immutable once built; safe to share *)
  }

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m
