(** Shortest paths under non-negative edge weights.

    Weights are supplied as a function over edge ids; an [infinity]
    weight removes the edge (used for residual-capacity pruning).
    [dijkstra] is the production algorithm; [bellman_ford] is a simple
    reference implementation kept as a test oracle. *)

type spt = {
  source : int;
  dist : float array;          (** [dist.(v)] = cost, [infinity] if unreachable *)
  parent_edge : int array;     (** edge into [v] on a shortest path, [-1] at source/unreachable *)
  parent : int array;          (** predecessor node, [-1] at source/unreachable *)
}
(** A single-source shortest-path tree. *)

val dijkstra : Graph.t -> weight:(int -> float) -> source:int -> spt
(** Raises [Invalid_argument] if a traversed edge has negative weight. *)

val bellman_ford : Graph.t -> weight:(int -> float) -> source:int -> spt
(** Reference oracle; O(n·m). Requires non-negative weights (undirected
    graphs cannot carry negative edges without negative cycles). *)

val path_edges : Graph.t -> spt -> int -> int list option
(** Edge ids of the tree path from the source to a node, in travel
    order; [None] if unreachable, [Some []] for the source itself. *)

val path_nodes : Graph.t -> spt -> int -> int list option
(** Nodes of the same path, starting with the source. *)

val path_cost : weight:(int -> float) -> int list -> float
(** Total weight of an edge-id list. *)

type apsp = {
  d : float array array;        (** [d.(u).(v)] = shortest-path cost *)
  pe : int array array;         (** [pe.(u).(v)] = edge into [v] on a shortest [u → v] path, [-1] if none *)
  pn : int array array;         (** [pn.(u).(v)] = predecessor of [v] on that path *)
}
(** All-pairs shortest paths with path reconstruction, computed by one
    Dijkstra per node: O(n·m·log n) time, O(n²) space. *)

val all_pairs : Graph.t -> weight:(int -> float) -> apsp

val apsp_dist : apsp -> int -> int -> float

val apsp_path : apsp -> int -> int -> int list option
(** Edge ids of a shortest [u → v] path in travel order. *)
