let weight_of ~weight edges =
  List.fold_left (fun acc e -> acc +. weight e) 0.0 edges

let kruskal_edges g ~weight edge_ids =
  let weighted =
    List.filter_map
      (fun e ->
        let w = weight e in
        if w = infinity then None else Some (w, e))
      edge_ids
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) weighted in
  let uf = Union_find.create (Graph.n g) in
  let picked =
    List.filter
      (fun (_, e) ->
        let u, v = Graph.endpoints g e in
        Union_find.union uf u v)
      sorted
  in
  List.map snd picked

let kruskal g ~weight =
  let ids = List.init (Graph.m g) Fun.id in
  kruskal_edges g ~weight ids

let kruskal_subset g ~weight ~edges = kruskal_edges g ~weight edges

let prim g ~weight ~root =
  let nn = Graph.n g in
  let in_tree = Array.make nn false in
  let best_edge = Array.make nn (-1) in
  let heap = Heap.create nn in
  let picked = ref [] in
  in_tree.(root) <- true;
  let relax u =
    Graph.iter_neighbors g u (fun v e ->
        let w = weight e in
        if (not in_tree.(v)) && w < infinity then
          match Heap.priority heap v with
          | Some p when p <= w -> ()
          | _ ->
            Heap.insert_or_decrease heap ~key:v w;
            best_edge.(v) <- e)
  in
  relax root;
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (v, _) ->
      if not in_tree.(v) then begin
        in_tree.(v) <- true;
        picked := best_edge.(v) :: !picked;
        relax v
      end;
      drain ()
  in
  drain ();
  List.rev !picked

let prim_metric ~points ~dist =
  let t = Array.length points in
  if t = 0 then Some []
  else begin
    let in_tree = Array.make t false in
    let best = Array.make t infinity in
    let best_from = Array.make t (-1) in
    in_tree.(0) <- true;
    for j = 1 to t - 1 do
      best.(j) <- dist points.(0) points.(j);
      best_from.(j) <- 0
    done;
    let edges = ref [] in
    let ok = ref true in
    for _ = 1 to t - 1 do
      if !ok then begin
        let pick = ref (-1) in
        for j = 0 to t - 1 do
          if (not in_tree.(j)) && (!pick < 0 || best.(j) < best.(!pick)) then
            pick := j
        done;
        if !pick < 0 || best.(!pick) = infinity then ok := false
        else begin
          let j = !pick in
          in_tree.(j) <- true;
          edges := (points.(best_from.(j)), points.(j)) :: !edges;
          for k = 0 to t - 1 do
            if not in_tree.(k) then begin
              let w = dist points.(j) points.(k) in
              if w < best.(k) then begin
                best.(k) <- w;
                best_from.(k) <- j
              end
            end
          done
        end
      end
    done;
    if !ok then Some (List.rev !edges) else None
  end
