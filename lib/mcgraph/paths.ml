type spt = {
  source : int;
  dist : float array;
  parent_edge : int array;
  parent : int array;
}

module Obs = Nfv_obs.Obs

(* process-wide Dijkstra work counters; algorithm layers attribute them
   to themselves by diffing [Obs.Counter.value] around a solve *)
let c_runs = Obs.Counter.make "dijkstra.runs"
let c_pops = Obs.Counter.make "dijkstra.heap_pops"
let c_scans = Obs.Counter.make "dijkstra.edges_scanned"
let c_relax = Obs.Counter.make "dijkstra.relaxations"

let dijkstra g ~weight ~source =
  let nn = Graph.n g in
  let c = Graph.csr g in
  let off = c.Graph.off and nbr = c.Graph.nbr and eid = c.Graph.eid in
  let dist = Array.make nn infinity in
  let parent_edge = Array.make nn (-1) in
  let parent = Array.make nn (-1) in
  let heap = Heap.create nn in
  let settled = Array.make nn false in
  (* read the switch once: with stats off the hot loop carries a single
     predictable branch per event, with stats on we count locally and
     publish once at the end *)
  let track = !Obs.enabled in
  let pops = ref 0 and scans = ref 0 and relax = ref 0 in
  dist.(source) <- 0.0;
  Heap.insert heap ~key:source 0.0;
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      if track then incr pops;
      settled.(u) <- true;
      for i = off.(u) to off.(u + 1) - 1 do
        let v = nbr.(i) in
        if track then incr scans;
        if not settled.(v) then begin
          let e = eid.(i) in
          let w = weight e in
          if w < 0.0 then invalid_arg "Paths.dijkstra: negative weight";
          if w < infinity then begin
            let d' = du +. w in
            if d' < dist.(v) then begin
              if track then incr relax;
              dist.(v) <- d';
              parent_edge.(v) <- e;
              parent.(v) <- u;
              Heap.insert_or_decrease heap ~key:v d'
            end
          end
        end
      done;
      drain ()
  in
  drain ();
  if track then begin
    Obs.Counter.incr c_runs;
    Obs.Counter.add c_pops !pops;
    Obs.Counter.add c_scans !scans;
    Obs.Counter.add c_relax !relax
  end;
  { source; dist; parent_edge; parent }

let bellman_ford g ~weight ~source =
  let nn = Graph.n g in
  let dist = Array.make nn infinity in
  let parent_edge = Array.make nn (-1) in
  let parent = Array.make nn (-1) in
  dist.(source) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < nn do
    changed := false;
    incr rounds;
    Graph.iter_edges g (fun e u v ->
        let w = weight e in
        if w < 0.0 then invalid_arg "Paths.bellman_ford: negative weight";
        if w < infinity then begin
          if dist.(u) +. w < dist.(v) then begin
            dist.(v) <- dist.(u) +. w;
            parent_edge.(v) <- e;
            parent.(v) <- u;
            changed := true
          end;
          if dist.(v) +. w < dist.(u) then begin
            dist.(u) <- dist.(v) +. w;
            parent_edge.(u) <- e;
            parent.(u) <- v;
            changed := true
          end
        end)
  done;
  { source; dist; parent_edge; parent }

let path_edges _g spt target =
  if spt.dist.(target) = infinity then None
  else begin
    let rec walk v acc =
      if v = spt.source then acc
      else walk spt.parent.(v) (spt.parent_edge.(v) :: acc)
    in
    Some (walk target [])
  end

let path_nodes _g spt target =
  if spt.dist.(target) = infinity then None
  else begin
    let rec walk v acc =
      if v = spt.source then v :: acc else walk spt.parent.(v) (v :: acc)
    in
    Some (walk target [])
  end

let path_cost ~weight edges =
  List.fold_left (fun acc e -> acc +. weight e) 0.0 edges

type apsp = {
  d : float array array;
  pe : int array array;
  pn : int array array;
}

let all_pairs g ~weight =
  let nn = Graph.n g in
  let d = Array.make nn [||] in
  let pe = Array.make nn [||] in
  let pn = Array.make nn [||] in
  for s = 0 to nn - 1 do
    let spt = dijkstra g ~weight ~source:s in
    d.(s) <- spt.dist;
    pe.(s) <- spt.parent_edge;
    pn.(s) <- spt.parent
  done;
  { d; pe; pn }

let apsp_dist a u v = a.d.(u).(v)

let apsp_path a u v =
  if a.d.(u).(v) = infinity then None
  else begin
    let rec walk x acc =
      if x = u then acc else walk a.pn.(u).(x) (a.pe.(u).(x) :: acc)
    in
    Some (walk v [])
  end
