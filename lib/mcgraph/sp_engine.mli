(** Lazy, demand-driven single-source shortest-path engine.

    The auxiliary-graph construction and the baselines only ever query
    distances from a handful of sources (the request source, the ≤K
    candidate servers, the destinations), so computing all-pairs shortest
    paths eagerly — |V| Dijkstras and O(V²) arrays per request — is
    wasted work. This engine computes one Dijkstra tree per {e queried}
    source, over the graph's frozen CSR view, and caches it in an O(V)
    array slot.

    {2 Epoch-invalidation contract}

    The weight epoch is a version counter supplied at creation (e.g.
    [Sdn.Network.weight_epoch], bumped on every allocate/release/reset).
    When weights are load-dependent — the online algorithms' exponential
    prices read residual capacities — a bumped epoch makes every cached
    tree stale. The engine re-reads the epoch on {e every} lookup
    ({!spt}, {!peek}, {!dist}, {!path}, {!path_nodes}); the first lookup
    that observes a new epoch drops {e all} cached trees at once, so
    stale O(V) trees are never retained across an epoch change, and
    subsequent queries recompute against the new prices instead of
    serving wrong distances. With the default constant epoch the cache
    never expires, which is correct for weights that are pure functions
    of the edge id. The [weight] function must be pure between two equal
    readings of [epoch]; nothing else is assumed of it.

    {2 Determinism and tie-breaks}

    [dist t u v] and [path t u v] always answer from [u]'s tree (never
    the symmetric [v] tree), and Dijkstra relaxes neighbours in the CSR
    slot order, which equals [Graph.iter_neighbors] order (insertion
    order). Results are therefore bit-identical to the eager
    [Paths.all_pairs] rows they replace, including equal-cost
    tie-breaks. Callers wanting the undirected-symmetry discount use
    {!peek} explicitly.

    {2 Telemetry}

    Besides the per-engine {!stats}, every engine feeds the process-wide
    [Nfv_obs] counters [sp_engine.cache_hits], [sp_engine.cache_misses]
    and [sp_engine.evictions] (gated on [Obs.enabled]); the Dijkstras it
    triggers count under the [dijkstra.*] counters of {!Paths}. *)

type t
(** A per-(graph, weight function) engine with its tree cache. *)

type stats = {
  trees_computed : int;   (** Dijkstra runs performed by this engine. *)
  cache_hits : int;       (** [spt] calls answered from cache. *)
  invalidations : int;
      (** Cached trees dropped as stale — by an epoch change observed at
          lookup time, or by an explicit {!invalidate}. *)
}
(** Per-engine cache behaviour, counted unconditionally (not gated on
    [Nfv_obs.Obs.enabled]) — the unit tests of the caching contract rely
    on these being always live. *)

val create : ?epoch:(unit -> int) -> Graph.t -> weight:(int -> float) -> t
(** [create ?epoch g ~weight] prepares an engine; no Dijkstra runs until
    the first query. [weight] is read at tree-computation time, so it may
    consult mutable state as long as [epoch] changes whenever that state
    does (the epoch-invalidation contract above). Default [epoch] is
    constant [0] (immutable weights). [epoch] is called once at creation
    to pin the initial cache validity. *)

val graph : t -> Graph.t
(** The graph the engine was created over. *)

val spt : t -> int -> Paths.spt
(** [spt t s] is the shortest-path tree rooted at source [s], computed
    on first use and cached while the epoch is unchanged. *)

val peek : t -> int -> Paths.spt option
(** [peek t s] is [s]'s cached, current-epoch tree if one exists; never
    computes. Lets callers exploit distance symmetry
    ([d(u,v) = d(v,u)] on undirected graphs) without triggering extra
    Dijkstras — [Online_CP] answers server↔terminal distances from the
    terminal's tree this way. *)

val dist : t -> int -> int -> float
(** [dist t u v] from [u]'s tree; [infinity] when unreachable. *)

val path : t -> int -> int -> int list option
(** Edge ids of a shortest [u → v] path in travel order, from [u]'s
    tree; [None] if unreachable, [Some []] when [u = v]. *)

val path_nodes : t -> int -> int -> int list option
(** Nodes of the same path, starting with [u]. *)

val renew : t -> weight:(int -> float) -> unit
(** [renew t ~weight] re-arms a long-lived engine for a new weight
    closure: if the epoch moved since the cached trees were built they
    are all swept first (counting as invalidations/evictions, exactly as
    a lookup-time sweep would), then [weight] replaces the engine's
    closure. {b Contract:} when the epoch has {e not} moved, the caller
    must guarantee the new closure is extensionally equal to the one it
    replaces — surviving cached trees are served unchanged. This is what
    lets an admission window keep one engine per weight class across
    requests: closures capture per-request state (e.g. the request's
    bandwidth), but as long as the window keys engines so that equal key
    + equal epoch ⇒ equal weights, [renew] is exact. Used by
    [Nfv_multicast.Sp_window]. *)

val invalidate : t -> unit
(** Drop every cached tree regardless of epoch; each dropped tree counts
    as an invalidation in {!stats}. *)

val stats : t -> stats
(** This engine's lifetime cache counters. *)

val global_trees_computed : unit -> int
(** Process-wide count of Dijkstra trees computed by all engines — an
    observability hook for benchmarks and admission statistics that
    works even with [Nfv_obs.Obs.enabled] off. Atomic, so it aggregates
    across the parallel harness's worker domains too. *)
