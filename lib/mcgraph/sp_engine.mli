(** Lazy, demand-driven single-source shortest-path engine.

    The auxiliary-graph construction and the baselines only ever query
    distances from a handful of sources (the request source, the ≤K
    candidate servers, the destinations), so computing all-pairs shortest
    paths eagerly — |V| Dijkstras and O(V²) arrays per request — is
    wasted work. This engine computes one Dijkstra tree per {e queried}
    source, over the graph's frozen CSR view, and caches it keyed by
    [(source, weight-epoch)].

    The weight epoch is a version counter supplied at creation (e.g.
    {!Sdn.Network.weight_epoch}, bumped on every allocate/release).
    When weights are load-dependent — the online algorithms' exponential
    prices read residual capacities — a bumped epoch makes every cached
    tree stale, and the next query recomputes instead of serving wrong
    distances. With the default constant epoch the cache never expires,
    which is correct for pure functions of the edge id.

    Determinism: [dist t u v] and [path t u v] always answer from [u]'s
    tree (never the symmetric [v] tree), so results are bit-identical to
    the eager {!Paths.all_pairs} rows they replace, including tie-breaks. *)

type t

type stats = {
  trees_computed : int;   (** Dijkstra runs performed by this engine *)
  cache_hits : int;       (** [spt] calls answered from cache *)
  invalidations : int;    (** cached trees dropped as stale (epoch bump
                              or explicit {!invalidate}) *)
}

val create : ?epoch:(unit -> int) -> Graph.t -> weight:(int -> float) -> t
(** [create ?epoch g ~weight] prepares an engine; no Dijkstra runs until
    the first query. [weight] is read at tree-computation time, so it may
    consult mutable state as long as [epoch] changes whenever that state
    does. Default [epoch] is constant [0] (immutable weights). *)

val graph : t -> Graph.t

val spt : t -> int -> Paths.spt
(** The shortest-path tree rooted at a source, computed on first use and
    cached while the epoch is unchanged. *)

val peek : t -> int -> Paths.spt option
(** A cached, current-epoch tree if one exists; never computes. Lets
    callers exploit distance symmetry ([d(u,v) = d(v,u)] on undirected
    graphs) without triggering extra Dijkstras. *)

val dist : t -> int -> int -> float
(** [dist t u v] from [u]'s tree; [infinity] when unreachable. *)

val path : t -> int -> int -> int list option
(** Edge ids of a shortest [u → v] path in travel order, from [u]'s
    tree; [None] if unreachable, [Some []] when [u = v]. *)

val path_nodes : t -> int -> int -> int list option
(** Nodes of the same path, starting with [u]. *)

val invalidate : t -> unit
(** Drop every cached tree regardless of epoch. *)

val stats : t -> stats

val global_trees_computed : unit -> int
(** Process-wide count of Dijkstra trees computed by all engines — an
    observability hook for benchmarks and admission statistics. *)
