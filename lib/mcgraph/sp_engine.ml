(* Lazy per-source shortest-path engine: Dijkstra trees computed on
   demand and cached by source, all entries pinned to one weight epoch.
   See sp_engine.mli.

   Storage is an O(V) option array rather than a hash table: [spt] sits
   on the hot path of the auxiliary-graph metric (hundreds of thousands
   of queries per request), and an array read keeps a cache hit as cheap
   as the eager all-pairs row access it replaces.

   Epoch handling: every lookup first compares the current epoch against
   [valid_epoch], the epoch all cached trees were built at. On a
   mismatch the whole cache is swept immediately — stale trees are O(V)
   arrays each, and before this sweep existed a request burst could pin
   one obsolete tree per source for the engine's lifetime. After the
   sweep the invariant "every [Some] entry is current" holds, so the
   per-query fast path is a single array read. *)

module Obs = Nfv_obs.Obs

type stats = {
  trees_computed : int;
  cache_hits : int;
  invalidations : int;
}

type t = {
  graph : Graph.t;
  mutable weight : int -> float;   (* swappable via [renew] *)
  epoch : unit -> int;
  cache : Paths.spt option array;   (* per-source tree, or None *)
  mutable valid_epoch : int;        (* epoch every cached tree was built at *)
  mutable computed : int;
  mutable hits : int;
  mutable stale_drops : int;
}

(* atomic: engines run concurrently in parallel figure workers *)
let total_computed = Atomic.make 0

let global_trees_computed () = Atomic.get total_computed

(* process-wide cache behaviour, aggregated over every engine *)
let c_hits = Obs.Counter.make "sp_engine.cache_hits"
let c_misses = Obs.Counter.make "sp_engine.cache_misses"
let c_evictions = Obs.Counter.make "sp_engine.evictions"

let create ?(epoch = fun () -> 0) graph ~weight =
  let n = max (Graph.n graph) 1 in
  {
    graph;
    weight;
    epoch;
    cache = Array.make n None;
    valid_epoch = epoch ();
    computed = 0;
    hits = 0;
    stale_drops = 0;
  }

let graph t = t.graph

let drop_all t =
  Array.iteri
    (fun i tree ->
      if tree <> None then begin
        t.stale_drops <- t.stale_drops + 1;
        Obs.Counter.incr c_evictions;
        t.cache.(i) <- None
      end)
    t.cache

(* re-establish the invariant that cached trees match the current epoch;
   O(V) but only on epoch changes, which already force recomputation *)
let refresh t =
  let now = t.epoch () in
  if now <> t.valid_epoch then begin
    drop_all t;
    t.valid_epoch <- now
  end

let spt t source =
  refresh t;
  match t.cache.(source) with
  | Some tree ->
    t.hits <- t.hits + 1;
    Obs.Counter.incr c_hits;
    tree
  | None ->
    Obs.Counter.incr c_misses;
    let tree = Paths.dijkstra t.graph ~weight:t.weight ~source in
    t.computed <- t.computed + 1;
    Atomic.incr total_computed;
    t.cache.(source) <- Some tree;
    tree

let peek t source =
  refresh t;
  t.cache.(source)

(* Re-arm a long-lived engine for a new caller-supplied weight closure.
   Sweeping first (via [refresh]) means cached trees survive only when
   the epoch is unchanged — exactly the case where the caller guarantees
   the new closure is extensionally equal to the old one, so the
   surviving trees are still correct. *)
let renew t ~weight =
  refresh t;
  t.weight <- weight

let dist t u v = (spt t u).Paths.dist.(v)

let path t u v = Paths.path_edges t.graph (spt t u) v

let path_nodes t u v = Paths.path_nodes t.graph (spt t u) v

let invalidate t = drop_all t

let stats t =
  { trees_computed = t.computed; cache_hits = t.hits; invalidations = t.stale_drops }
