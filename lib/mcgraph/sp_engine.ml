(* Lazy per-source shortest-path engine: Dijkstra trees computed on
   demand and cached by (source, weight-epoch). See sp_engine.mli.

   Storage is two O(V) arrays rather than a hash table: [spt] sits on
   the hot path of the auxiliary-graph metric (hundreds of thousands of
   queries per request), and an array read keeps a cache hit as cheap as
   the eager all-pairs row access it replaces. *)

type stats = {
  trees_computed : int;
  cache_hits : int;
  invalidations : int;
}

type t = {
  graph : Graph.t;
  weight : int -> float;
  epoch : unit -> int;
  cache : Paths.spt option array;   (* per-source tree, or None *)
  cache_epoch : int array;          (* epoch the cached tree was built at *)
  mutable computed : int;
  mutable hits : int;
  mutable stale_drops : int;
}

let total_computed = ref 0

let global_trees_computed () = !total_computed

let create ?(epoch = fun () -> 0) graph ~weight =
  let n = max (Graph.n graph) 1 in
  {
    graph;
    weight;
    epoch;
    cache = Array.make n None;
    cache_epoch = Array.make n min_int;
    computed = 0;
    hits = 0;
    stale_drops = 0;
  }

let graph t = t.graph

let spt t source =
  let now = t.epoch () in
  match t.cache.(source) with
  | Some tree when t.cache_epoch.(source) = now ->
    t.hits <- t.hits + 1;
    tree
  | prev ->
    if prev <> None then t.stale_drops <- t.stale_drops + 1;
    let tree = Paths.dijkstra t.graph ~weight:t.weight ~source in
    t.computed <- t.computed + 1;
    incr total_computed;
    t.cache.(source) <- Some tree;
    t.cache_epoch.(source) <- now;
    tree

let peek t source =
  match t.cache.(source) with
  | Some tree when t.cache_epoch.(source) = t.epoch () -> Some tree
  | _ -> None

let dist t u v = (spt t u).Paths.dist.(v)

let path t u v = Paths.path_edges t.graph (spt t u) v

let path_nodes t u v = Paths.path_nodes t.graph (spt t u) v

let invalidate t =
  Array.iteri
    (fun i tree -> if tree <> None then begin
        t.stale_drops <- t.stale_drops + 1;
        t.cache.(i) <- None;
        t.cache_epoch.(i) <- min_int
      end)
    t.cache

let stats t =
  { trees_computed = t.computed; cache_hits = t.hits; invalidations = t.stale_drops }
