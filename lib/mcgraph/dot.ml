let default_label v = string_of_int v

let graph ?(name = "G") ?(node_label = default_label) ?edge_label
    ?(highlight_edges = []) ?(highlight_nodes = []) g =
  let buf = Buffer.create 1024 in
  let he = Hashtbl.create 16 and hn = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace he e ()) highlight_edges;
  List.iter (fun v -> Hashtbl.replace hn v ()) highlight_nodes;
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  for v = 0 to Graph.n g - 1 do
    let extra = if Hashtbl.mem hn v then ", shape=doublecircle, color=red" else "" in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (node_label v) extra)
  done;
  Graph.iter_edges g (fun e u v ->
      let label =
        match edge_label with
        | Some f -> Printf.sprintf " label=\"%s\"," (f e)
        | None -> ""
      in
      let extra =
        if Hashtbl.mem he e then
          Printf.sprintf " [%s color=red, penwidth=2.0]" label
        else if label = "" then ""
        else Printf.sprintf " [%s]" label
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v extra));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let tree ?(name = "T") ?(node_label = default_label) g t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  List.iter
    (fun v ->
      let extra = if v = Tree.root t then ", shape=doublecircle" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (node_label v) extra))
    (Tree.nodes t);
  List.iter
    (fun v ->
      if v <> Tree.root t then
        Buffer.add_string buf
          (Printf.sprintf "  %d -> %d;\n" (Tree.parent t v) v))
    (Tree.nodes t);
  Buffer.add_string buf "}\n";
  ignore g;
  Buffer.contents buf
