(** Undirected multigraphs with integer node and edge identifiers.

    Nodes are [0 .. n-1], fixed at creation. Edges are appended and get
    consecutive identifiers [0 .. m-1]; parallel edges are allowed,
    self-loops are not. The structure stores no weights: algorithms take
    a [weight : int -> float] function over edge ids, so one topology can
    be reused under many cost models (base costs, per-request costs,
    online exponential weights, pruned graphs via [infinity]). *)

type t

val create : int -> t
(** [create n] is an edgeless graph on nodes [0 .. n-1]. Raises
    [Invalid_argument] if [n < 0]. *)

val add_edge : t -> int -> int -> int
(** [add_edge g u v] appends an undirected edge and returns its id.
    Raises [Invalid_argument] on out-of-range endpoints or [u = v]. *)

val of_edges : n:int -> (int * int) list -> t
(** Build a graph from an edge list; edge ids follow list order. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val endpoints : t -> int -> int * int
(** Endpoints of an edge, in insertion order. *)

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e u] is the endpoint of [e] that is not [u].
    Raises [Invalid_argument] if [u] is not an endpoint of [e]. *)

val neighbors : t -> int -> (int * int) list
(** [(neighbor, edge id)] pairs incident to a node. *)

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f neighbor edge_id] for each incident
    edge; allocation-free hot path for graph algorithms. *)

type csr = {
  off : int array;   (** [off.(u) .. off.(u+1)-1] index node [u]'s slots; length [n+1] *)
  nbr : int array;   (** neighbor per slot; length [2m] *)
  eid : int array;   (** edge id per slot; length [2m] *)
}
(** Frozen compressed-sparse-row adjacency: three flat unboxed arrays,
    so inner relaxation loops avoid chasing [(int * int) list] cells.
    Slot order per node matches {!iter_neighbors}, keeping tie-breaking
    in shortest-path algorithms identical across both views. *)

val csr : t -> csr
(** The CSR view of the current edge set. Built once and cached;
    [add_edge] invalidates the cache, so hold the returned value only
    while the graph is not mutated. Rebuilds count under the [Nfv_obs]
    counter [graph.csr_rebuilds], so a hot loop that accidentally
    alternates mutation and traversal shows up in [--stats] output. *)

val degree : t -> int -> int
(** Number of incident edge slots of a node (each parallel edge counts
    once). *)

val find_edge : t -> int -> int -> int option
(** Some edge id joining the two nodes, if any (first inserted wins). *)

val mem_edge : t -> int -> int -> bool
(** Whether at least one edge joins the two nodes. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f edge_id u v] for each edge, in increasing
    edge-id order. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a
(** [fold_edges g ~init ~f] folds [f acc edge_id u v] over all edges in
    increasing edge-id order. *)

val edge_list : t -> (int * int * int) list
(** All edges as [(id, u, v)], in id order. *)

val copy : t -> t
(** Independent copy (sharing no mutable state). *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary ["graph(n=…, m=…)"] . *)
