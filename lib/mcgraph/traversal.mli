(** Unweighted traversals: BFS, DFS, connected components.

    All functions accept an optional [keep] predicate over edge ids;
    edges for which [keep] is [false] are treated as absent. This is how
    capacity-pruned residual graphs are traversed without copying. *)

val bfs : ?keep:(int -> bool) -> Graph.t -> source:int -> int array
(** Hop distances from [source]; [-1] for unreachable nodes. *)

val dfs_preorder : ?keep:(int -> bool) -> Graph.t -> source:int -> int list
(** Nodes of the component of [source] in DFS preorder. *)

val components : ?keep:(int -> bool) -> Graph.t -> int array * int
(** [(label, count)]: [label.(v)] is the component index of [v], in
    [0 .. count-1]. *)

val is_connected : ?keep:(int -> bool) -> Graph.t -> bool

val reachable : ?keep:(int -> bool) -> Graph.t -> source:int -> bool array

val in_same_component : ?keep:(int -> bool) -> Graph.t -> int -> int list -> bool
(** Whether every node of the list lies in the component of the first
    argument. *)
