type t = {
  keys : int array;        (* heap array of keys, [0 .. size-1] live *)
  prio : float array;      (* prio.(i) is the priority of keys.(i) *)
  pos : int array;         (* pos.(key) = index in [keys], or -1 *)
  mutable size : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Heap.create: negative capacity";
  {
    keys = Array.make (max capacity 1) (-1);
    prio = Array.make (max capacity 1) 0.0;
    pos = Array.make (max capacity 1) (-1);
    size = 0;
  }

let capacity h = Array.length h.pos
let size h = h.size
let is_empty h = h.size = 0

let in_range h key = key >= 0 && key < Array.length h.pos
let mem h key = in_range h key && h.pos.(key) >= 0

let priority h key = if mem h key then Some h.prio.(h.pos.(key)) else None

let swap h i j =
  let ki = h.keys.(i) and kj = h.keys.(j) in
  let pi = h.prio.(i) and pj = h.prio.(j) in
  h.keys.(i) <- kj;
  h.keys.(j) <- ki;
  h.prio.(i) <- pj;
  h.prio.(j) <- pi;
  h.pos.(kj) <- i;
  h.pos.(ki) <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
  if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let insert h ~key p =
  if not (in_range h key) then invalid_arg "Heap.insert: key out of range";
  if h.pos.(key) >= 0 then invalid_arg "Heap.insert: key already present";
  let i = h.size in
  h.keys.(i) <- key;
  h.prio.(i) <- p;
  h.pos.(key) <- i;
  h.size <- i + 1;
  sift_up h i

let decrease h ~key p =
  if not (mem h key) then invalid_arg "Heap.decrease: key absent";
  let i = h.pos.(key) in
  if p > h.prio.(i) then invalid_arg "Heap.decrease: priority increase";
  h.prio.(i) <- p;
  sift_up h i

let insert_or_decrease h ~key p =
  if not (in_range h key) then
    invalid_arg "Heap.insert_or_decrease: key out of range";
  let i = h.pos.(key) in
  if i < 0 then insert h ~key p else if p < h.prio.(i) then decrease h ~key p

let pop_min h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and p = h.prio.(0) in
    let last = h.size - 1 in
    swap h 0 last;
    h.size <- last;
    h.pos.(key) <- -1;
    if last > 0 then sift_down h 0;
    Some (key, p)
  end

let clear h =
  for i = 0 to h.size - 1 do
    h.pos.(h.keys.(i)) <- -1
  done;
  h.size <- 0
