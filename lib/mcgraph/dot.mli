(** Graphviz DOT rendering of graphs and highlighted subgraphs. *)

val graph :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?edge_label:(int -> string) ->
  ?highlight_edges:int list ->
  ?highlight_nodes:int list ->
  Graph.t ->
  string
(** DOT source for an undirected graph. Highlighted edges are drawn bold
    red (e.g. a multicast tree), highlighted nodes as doubled circles
    (e.g. chosen servers). *)

val tree :
  ?name:string ->
  ?node_label:(int -> string) ->
  Graph.t ->
  Tree.t ->
  string
(** DOT source for a rooted tree, drawn as a digraph away from the root. *)
