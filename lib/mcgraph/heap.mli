(** Indexed binary min-heap with [float] priorities.

    Keys are small non-negative integers (typically graph node ids); each
    key may appear at most once. The heap supports the decrease-key
    operation required by Dijkstra's algorithm in O(log n). *)

type t

val create : int -> t
(** [create capacity] is an empty heap accepting keys in
    [0 .. capacity - 1]. Raises [Invalid_argument] if [capacity < 0]. *)

val capacity : t -> int
(** Number of distinct keys the heap accepts. *)

val size : t -> int
(** Number of keys currently stored. *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** [mem h key] is [true] iff [key] is currently stored in [h]. *)

val priority : t -> int -> float option
(** Current priority of a key, if present. *)

val insert : t -> key:int -> float -> unit
(** [insert h ~key p] adds [key] with priority [p]. Raises
    [Invalid_argument] if [key] is out of range or already present. *)

val decrease : t -> key:int -> float -> unit
(** [decrease h ~key p] lowers the priority of a present [key] to [p].
    Raises [Invalid_argument] if [key] is absent or [p] is larger than
    the current priority. *)

val insert_or_decrease : t -> key:int -> float -> unit
(** Insert the key, or decrease its priority if the new priority is
    smaller; a no-op when the key is present with a smaller or equal
    priority. This is the Dijkstra relaxation primitive. *)

val pop_min : t -> (int * float) option
(** Remove and return the key with the smallest priority, or [None] when
    the heap is empty. Ties are broken arbitrarily. *)

val clear : t -> unit
(** Remove every key, retaining the capacity. *)
