module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

(* per-kind injection telemetry, aggregated over every controller *)
let c_link_down = Obs.Counter.make "fault.injected.link_down"
let c_link_up = Obs.Counter.make "fault.injected.link_up"
let c_server_down = Obs.Counter.make "fault.injected.server_down"
let c_server_up = Obs.Counter.make "fault.injected.server_up"
let c_degrade_link = Obs.Counter.make "fault.injected.degrade_link"
let c_degrade_server = Obs.Counter.make "fault.injected.degrade_server"
let c_victims = Obs.Counter.make "fault.victims"

type event =
  | Link_down of int
  | Link_up of int
  | Server_down of int
  | Server_up of int
  | Degrade_link of int * float
  | Degrade_server of int * float

type timed = { after : int; event : event }
type schedule = timed list

type stamped = { at : float; event : event }
type timeline = stamped list

type t = {
  net : Network.t;
  link_down : bool array;       (* edge id -> fully out? *)
  srv_down : bool array;        (* node id -> fully out? (servers only) *)
  link_conf : float array;      (* Mbps confiscated per edge *)
  srv_conf : float array;       (* MHz confiscated per server node *)
}

let create net =
  {
    net;
    link_down = Array.make (Network.m net) false;
    srv_down = Array.make (Network.n net) false;
    link_conf = Array.make (Network.m net) 0.0;
    srv_conf = Array.make (Network.n net) 0.0;
  }

let network t = t.net

let link_is_down t e = e >= 0 && e < Array.length t.link_down && t.link_down.(e)
let server_is_down t v = v >= 0 && v < Array.length t.srv_down && t.srv_down.(v)

let check_link t e name =
  if e < 0 || e >= Network.m t.net then invalid_arg (name ^ ": bad edge")

let check_server t v name =
  if not (Network.is_server t.net v) then invalid_arg (name ^ ": not a server")

let check_fraction f name =
  if not (f >= 0.0 && f <= 1.0) then invalid_arg (name ^ ": fraction outside [0, 1]")

let confiscated_link t e =
  check_link t e "Fault.confiscated_link";
  t.link_conf.(e)

let confiscated_server t v =
  check_server t v "Fault.confiscated_server";
  t.srv_conf.(v)

let holds_link alloc e =
  List.exists (fun (e', amt) -> e' = e && amt > 0.0) alloc.Network.links

let holds_server alloc v =
  List.exists (fun (v', amt) -> v' = v && amt > 0.0) alloc.Network.nodes

let affected event alloc =
  match event with
  | Link_down e | Degrade_link (e, _) -> holds_link alloc e
  | Server_down v | Degrade_server (v, _) -> holds_server alloc v
  | Link_up _ | Server_up _ -> false

(* release the allocations of every live session matching [pred], in
   increasing id order; returns the evicted ids (already ascending) *)
let evict_all ~live pred =
  let victims =
    List.filter (fun (_, alloc) -> pred alloc) live
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.map fst victims, victims

(* confiscate [amount] (clamped to the current residual) from one
   resource via an ordinary allocation, so the epoch bumps and every
   cached shortest-path tree is invalidated the normal way *)
let confiscate_link t e amount =
  let amount = Float.min amount (Network.link_residual t.net e) in
  if amount > 0.0 then begin
    (match Network.allocate t.net { Network.links = [ (e, amount) ]; nodes = [] } with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Fault: link confiscation failed: " ^ msg));
    t.link_conf.(e) <- t.link_conf.(e) +. amount
  end

let confiscate_server t v amount =
  let amount = Float.min amount (Network.server_residual t.net v) in
  if amount > 0.0 then begin
    (match Network.allocate t.net { Network.links = []; nodes = [ (v, amount) ] } with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Fault: server confiscation failed: " ^ msg));
    t.srv_conf.(v) <- t.srv_conf.(v) +. amount
  end

let restore_link t e =
  if t.link_conf.(e) > 0.0 then begin
    Network.release t.net { Network.links = [ (e, t.link_conf.(e)) ]; nodes = [] };
    t.link_conf.(e) <- 0.0
  end

let restore_server t v =
  if t.srv_conf.(v) > 0.0 then begin
    Network.release t.net { Network.links = []; nodes = [ (v, t.srv_conf.(v)) ] };
    t.srv_conf.(v) <- 0.0
  end

let incr_kind = function
  | Link_down _ -> Obs.Counter.incr c_link_down
  | Link_up _ -> Obs.Counter.incr c_link_up
  | Server_down _ -> Obs.Counter.incr c_server_down
  | Server_up _ -> Obs.Counter.incr c_server_up
  | Degrade_link _ -> Obs.Counter.incr c_degrade_link
  | Degrade_server _ -> Obs.Counter.incr c_degrade_server

let inject t ~live event =
  incr_kind event;
  let victims =
    match event with
    | Link_down e ->
      check_link t e "Fault.inject";
      if t.link_down.(e) then []
      else begin
        let ids, victims = evict_all ~live (fun a -> holds_link a e) in
        List.iter (fun (_, alloc) -> Network.release t.net alloc) victims;
        confiscate_link t e infinity;
        t.link_down.(e) <- true;
        ids
      end
    | Server_down v ->
      check_server t v "Fault.inject";
      if t.srv_down.(v) then []
      else begin
        let ids, victims = evict_all ~live (fun a -> holds_server a v) in
        List.iter (fun (_, alloc) -> Network.release t.net alloc) victims;
        confiscate_server t v infinity;
        t.srv_down.(v) <- true;
        ids
      end
    | Link_up e ->
      check_link t e "Fault.inject";
      if not t.link_down.(e) then []
      else begin
        restore_link t e;
        t.link_down.(e) <- false;
        []
      end
    | Server_up v ->
      check_server t v "Fault.inject";
      if not t.srv_down.(v) then []
      else begin
        restore_server t v;
        t.srv_down.(v) <- false;
        []
      end
    | Degrade_link (e, frac) ->
      check_link t e "Fault.inject";
      check_fraction frac "Fault.inject";
      if t.link_down.(e) then []
      else begin
        let target = frac *. Network.link_capacity t.net e in
        let victims = ref [] in
        let ordered = List.sort (fun (a, _) (b, _) -> compare a b) live in
        List.iter
          (fun (id, alloc) ->
            let missing = target -. t.link_conf.(e) in
            if
              Network.link_residual t.net e < missing -. 1e-9
              && holds_link alloc e
            then begin
              Network.release t.net alloc;
              victims := id :: !victims
            end)
          ordered;
        confiscate_link t e (target -. t.link_conf.(e));
        List.rev !victims
      end
    | Degrade_server (v, frac) ->
      check_server t v "Fault.inject";
      check_fraction frac "Fault.inject";
      if t.srv_down.(v) then []
      else begin
        let target = frac *. Network.server_capacity t.net v in
        let victims = ref [] in
        let ordered = List.sort (fun (a, _) (b, _) -> compare a b) live in
        List.iter
          (fun (id, alloc) ->
            let missing = target -. t.srv_conf.(v) in
            if
              Network.server_residual t.net v < missing -. 1e-9
              && holds_server alloc v
            then begin
              Network.release t.net alloc;
              victims := id :: !victims
            end)
          ordered;
        confiscate_server t v (target -. t.srv_conf.(v));
        List.rev !victims
      end
  in
  Obs.Counter.add c_victims (List.length victims);
  victims

let heal_all t =
  Array.iteri (fun e _ -> restore_link t e) t.link_conf;
  List.iter (fun v -> restore_server t v) (Network.servers t.net);
  Array.fill t.link_down 0 (Array.length t.link_down) false;
  Array.fill t.srv_down 0 (Array.length t.srv_down) false

(* the failure-kind mix shared by the arrival-indexed and time-stamped
   generators: 35 % link outage, 20 % server outage, 25 % link
   degradation, 20 % server degradation, all over uniform targets *)
let draw_failure rng ~m ~servers ~degrade_fraction =
  let u = Rng.float rng 1.0 in
  if u < 0.35 && m > 0 then Link_down (Rng.int rng m)
  else if u < 0.55 then Server_down (Rng.choose rng servers)
  else if u < 0.8 && m > 0 then Degrade_link (Rng.int rng m, degrade_fraction)
  else Degrade_server (Rng.choose rng servers, degrade_fraction)

let heal_of = function
  | Link_down e -> Some (Link_up e)
  | Server_down v -> Some (Server_up v)
  | Degrade_link _ | Degrade_server _ | Link_up _ | Server_up _ -> None

let random_schedule ?heal_after ?(degrade_fraction = 0.5) ~rng ~horizon ~events
    net =
  if horizon <= 0 then invalid_arg "Fault.random_schedule: horizon <= 0";
  if events < 0 then invalid_arg "Fault.random_schedule: events < 0";
  let m = Network.m net in
  let servers = Array.of_list (Network.servers net) in
  let failures =
    List.init events (fun _ ->
        let after = Rng.int rng horizon in
        let event = draw_failure rng ~m ~servers ~degrade_fraction in
        { after; event })
  in
  let heals =
    match heal_after with
    | None -> []
    | Some k ->
      List.filter_map
        (fun f ->
          Option.map (fun ev -> { after = f.after + k; event = ev })
            (heal_of f.event))
        failures
  in
  List.stable_sort (fun a b -> compare a.after b.after) (failures @ heals)

let random_timeline ?heal_after ?(degrade_fraction = 0.5) ~rng ~horizon ~events
    net =
  if not (horizon > 0.0) then
    invalid_arg "Fault.random_timeline: horizon <= 0";
  if events < 0 then invalid_arg "Fault.random_timeline: events < 0";
  (match heal_after with
  | Some h when not (h > 0.0) ->
    invalid_arg "Fault.random_timeline: heal_after <= 0"
  | _ -> ());
  let m = Network.m net in
  let servers = Array.of_list (Network.servers net) in
  let failures =
    List.init events (fun _ ->
        let at = Rng.float rng horizon in
        let event = draw_failure rng ~m ~servers ~degrade_fraction in
        { at; event })
  in
  let heals =
    match heal_after with
    | None -> []
    | Some h ->
      List.filter_map
        (fun f ->
          Option.map (fun ev -> { at = f.at +. h; event = ev }) (heal_of f.event))
        failures
  in
  List.stable_sort (fun a b -> compare a.at b.at) (failures @ heals)

(* ---- shared-risk link groups ------------------------------------------ *)

let srlg_partition ?(groups = 8) ~rng net =
  if groups <= 0 then invalid_arg "Fault.srlg_partition: groups <= 0";
  let m = Network.m net in
  if m = 0 then [||]
  else begin
    let k = min groups m in
    let assigned =
      match (Network.topology net).Topology.Topo.coords with
      | Some c ->
        (* geometric risk: seed [k] distinct links, then put every link
           in the group of the seed whose midpoint is closest (ties to
           the lowest group index) — proximate links fail together *)
        let g = Network.graph net in
        let mid e =
          let u, v = Mcgraph.Graph.endpoints g e in
          let xu, yu = c.(u) and xv, yv = c.(v) in
          ((xu +. xv) /. 2.0, (yu +. yv) /. 2.0)
        in
        let centers =
          Array.of_list (Rng.sample_without_replacement rng k m)
        in
        let center_mid = Array.map mid centers in
        Array.init m (fun e ->
            let xe, ye = mid e in
            let best = ref 0 and bd = ref infinity in
            Array.iteri
              (fun i (xc, yc) ->
                let d = ((xe -. xc) ** 2.0) +. ((ye -. yc) ** 2.0) in
                if d < !bd then begin
                  bd := d;
                  best := i
                end)
              center_mid;
            !best)
      | None ->
        (* no embedding (e.g. Rocketfuel): a seeded partition — shuffle
           the links and deal them round-robin into [k] groups *)
        let order = Array.init m Fun.id in
        Rng.shuffle rng order;
        let group_of = Array.make m 0 in
        Array.iteri (fun i e -> group_of.(e) <- i mod k) order;
        group_of
    in
    let buckets = Array.make k [] in
    for e = m - 1 downto 0 do
      buckets.(assigned.(e)) <- e :: buckets.(assigned.(e))
    done;
    Array.of_list (List.filter (fun l -> l <> []) (Array.to_list buckets))
  end

let srlg_timeline ?heal_after ~rng ~horizon ~events groups =
  if not (horizon > 0.0) then invalid_arg "Fault.srlg_timeline: horizon <= 0";
  if events < 0 then invalid_arg "Fault.srlg_timeline: events < 0";
  (match heal_after with
  | Some h when not (h > 0.0) ->
    invalid_arg "Fault.srlg_timeline: heal_after <= 0"
  | _ -> ());
  if Array.length groups = 0 then
    invalid_arg "Fault.srlg_timeline: no groups";
  let cuts =
    List.init events (fun _ ->
        let at = Rng.float rng horizon in
        let grp = Rng.int rng (Array.length groups) in
        (at, groups.(grp)))
  in
  let failures =
    List.concat_map
      (fun (at, links) -> List.map (fun e -> { at; event = Link_down e }) links)
      cuts
  in
  let heals =
    match heal_after with
    | None -> []
    | Some h ->
      List.concat_map
        (fun (at, links) ->
          List.map (fun e -> { at = at +. h; event = Link_up e }) links)
        cuts
  in
  List.stable_sort (fun a b -> compare a.at b.at) (failures @ heals)
