module G = Mcgraph.Graph

let fl x = Printf.sprintf "%h" x

(* ---------- writing ---------- *)

let network_to_buffer buf net =
  let topo = Network.topology net in
  let g = Network.graph net in
  Buffer.add_string buf "nfvm-snapshot 1\n";
  Buffer.add_string buf
    (Printf.sprintf "topology %S %d %d\n" topo.Topology.Topo.name (G.n g) (G.m g));
  G.iter_edges g (fun _ u v -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v));
  (match topo.Topology.Topo.coords with
  | None -> ()
  | Some coords ->
    Array.iter
      (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "coord %s %s\n" (fl x) (fl y)))
      coords);
  (match topo.Topology.Topo.node_names with
  | None -> ()
  | Some names ->
    Array.iter
      (fun name -> Buffer.add_string buf (Printf.sprintf "nodename %S\n" name))
      names);
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "server %d %s %s %s\n" v
           (fl (Network.server_capacity net v))
           (fl (Network.server_unit_cost net v))
           (fl (Network.server_residual net v))))
    (Network.servers net);
  for e = 0 to G.m g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "link %d %s %s %s %s\n" e
         (fl (Network.link_capacity net e))
         (fl (Network.link_unit_cost net e))
         (fl (Network.link_residual net e))
         (fl (Network.link_delay net e)))
  done

let network_to_string net =
  let buf = Buffer.create 4096 in
  network_to_buffer buf net;
  Buffer.contents buf

let request_line buf (r : Request.t) =
  let deadline =
    match r.Request.deadline with
    | None -> ""
    | Some d -> Printf.sprintf " deadline %s" (fl d)
  in
  Buffer.add_string buf
    (Printf.sprintf "request %d %d %s chain %s dests %s%s\n" r.Request.id
       r.Request.source
       (fl r.Request.bandwidth)
       (String.concat ","
          (List.map Vnf.kind_to_string r.Request.chain))
       (String.concat "," (List.map string_of_int r.Request.destinations))
       deadline)

let requests_to_string reqs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "nfvm-snapshot 1\n";
  List.iter (request_line buf) reqs;
  Buffer.contents buf

let scenario_to_string net reqs =
  let buf = Buffer.create 4096 in
  network_to_buffer buf net;
  List.iter (request_line buf) reqs;
  Buffer.contents buf

(* ---------- reading ---------- *)

type parse_state = {
  mutable name : string;
  mutable n : int;
  mutable edges_rev : (int * int) list;
  mutable coords_rev : (float * float) list;
  mutable names_rev : string list;
  mutable servers_rev : (int * float * float * float) list;
  mutable links_rev : (int * float * float * float * float) list;
  mutable requests_rev : Request.t list;
}

let parse_chain s =
  let parts = String.split_on_char ',' s in
  let kinds = List.map Vnf.kind_of_string parts in
  if List.exists Option.is_none kinds then None
  else Some (List.map Option.get kinds)

let parse_line st line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.trim line = "" then Ok ()
  else
    match String.split_on_char ' ' line with
    | "nfvm-snapshot" :: [ "1" ] -> Ok ()
    | "nfvm-snapshot" :: v -> fail "unsupported version %s" (String.concat " " v)
    | [ "edge"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v ->
        st.edges_rev <- (u, v) :: st.edges_rev;
        Ok ()
      | _ -> fail "bad edge line: %s" line)
    | [ "coord"; x; y ] -> (
      match (float_of_string_opt x, float_of_string_opt y) with
      | Some x, Some y ->
        st.coords_rev <- (x, y) :: st.coords_rev;
        Ok ()
      | _ -> fail "bad coord line: %s" line)
    | [ "server"; v; cap; cost; res ] -> (
      match
        ( int_of_string_opt v,
          float_of_string_opt cap,
          float_of_string_opt cost,
          float_of_string_opt res )
      with
      | Some v, Some cap, Some cost, Some res ->
        st.servers_rev <- (v, cap, cost, res) :: st.servers_rev;
        Ok ()
      | _ -> fail "bad server line: %s" line)
    | [ "link"; e; cap; cost; res ] | [ "link"; e; cap; cost; res; _ ] -> (
      let delay =
        match String.split_on_char ' ' line with
        | [ _; _; _; _; _; d ] -> float_of_string_opt d
        | _ -> Some 1.0 (* version-1 snapshots without delays *)
      in
      match
        ( int_of_string_opt e,
          float_of_string_opt cap,
          float_of_string_opt cost,
          float_of_string_opt res,
          delay )
      with
      | Some e, Some cap, Some cost, Some res, Some delay ->
        st.links_rev <- (e, cap, cost, res, delay) :: st.links_rev;
        Ok ()
      | _ -> fail "bad link line: %s" line)
    | "request" :: id :: source :: b :: "chain" :: chain :: "dests" :: dests
      :: deadline_part -> (
      let deadline =
        match deadline_part with
        | [] -> Ok None
        | [ "deadline"; d ] -> (
          match float_of_string_opt d with
          | Some d -> Ok (Some d)
          | None -> Error ())
        | _ -> Error ()
      in
      match
        ( int_of_string_opt id,
          int_of_string_opt source,
          float_of_string_opt b,
          parse_chain chain,
          List.map int_of_string_opt (String.split_on_char ',' dests),
          deadline )
      with
      | Some id, Some source, Some b, Some chain, dest_opts, Ok deadline
        when List.for_all Option.is_some dest_opts -> (
        match
          Request.make ~id ~source
            ~destinations:(List.map Option.get dest_opts)
            ~bandwidth:b ~chain
        with
        | r ->
          let r =
            match deadline with
            | None -> r
            | Some d -> Request.with_deadline r d
          in
          st.requests_rev <- r :: st.requests_rev;
          Ok ()
        | exception Invalid_argument m -> fail "invalid request: %s" m)
      | _ -> fail "bad request line: %s" line)
    | "topology" :: rest -> (
      (* the name is %S-quoted and may contain spaces: re-split on the
         closing quote *)
      let raw = String.concat " " rest in
      try
        Scanf.sscanf raw "%S %d %d" (fun name n _m ->
            st.name <- name;
            st.n <- n);
        Ok ()
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        fail "bad topology line: %s" line)
    | "nodename" :: rest -> (
      let raw = String.concat " " rest in
      try
        Scanf.sscanf raw "%S" (fun name ->
            st.names_rev <- name :: st.names_rev);
        Ok ()
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        fail "bad nodename line: %s" line)
    | _ -> fail "unrecognised line: %s" line

let parse text =
  let st =
    {
      name = "";
      n = -1;
      edges_rev = [];
      coords_rev = [];
      names_rev = [];
      servers_rev = [];
      links_rev = [];
      requests_rev = [];
    }
  in
  let lines = String.split_on_char '\n' text in
  let rec go = function
    | [] -> Ok st
    | l :: rest -> (
      match parse_line st l with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go lines

let build_network st =
  if st.n < 0 then Error "missing topology line"
  else begin
    match
      let g = G.create st.n in
      List.iter
        (fun (u, v) -> ignore (G.add_edge g u v))
        (List.rev st.edges_rev);
      g
    with
    | exception Invalid_argument m -> Error m
    | g ->
    let coords =
      match List.rev st.coords_rev with
      | [] -> None
      | l -> Some (Array.of_list l)
    in
    let node_names =
      match List.rev st.names_rev with
      | [] -> None
      | l -> Some (Array.of_list l)
    in
    match Topology.Topo.make ?coords ?node_names ~name:st.name g with
    | exception Invalid_argument m -> Error m
    | topo ->
      let mm = G.m g in
      let link_capacities = Array.make mm 0.0 in
      let link_unit_costs = Array.make mm 0.0 in
      let link_residuals = Array.make mm 0.0 in
      let link_delays = Array.make mm 1.0 in
      let seen = Array.make mm false in
      let link_err = ref None in
      List.iter
        (fun (e, cap, cost, res, delay) ->
          if e < 0 || e >= mm then link_err := Some "link id out of range"
          else begin
            seen.(e) <- true;
            link_capacities.(e) <- cap;
            link_unit_costs.(e) <- cost;
            link_residuals.(e) <- res;
            link_delays.(e) <- delay
          end)
        st.links_rev;
      if !link_err <> None then Error (Option.get !link_err)
      else if not (Array.for_all Fun.id seen) then Error "missing link line"
      else begin
        let servers =
          List.rev_map (fun (v, cap, cost, _) -> (v, cap, cost)) st.servers_rev
        in
        let server_residuals =
          List.rev_map (fun (v, _, _, res) -> (v, res)) st.servers_rev
        in
        match
          Network.make_explicit ~link_residuals ~server_residuals ~link_delays
            ~topology:topo ~servers ~link_capacities ~link_unit_costs ()
        with
        | net -> Ok net
        | exception Invalid_argument m -> Error m
      end
  end

let network_of_string text =
  Result.bind (parse text) build_network

let requests_of_string text =
  Result.map (fun st -> List.rev st.requests_rev) (parse text)

let scenario_of_string text =
  Result.bind (parse text) (fun st ->
      Result.map
        (fun net -> (net, List.rev st.requests_rev))
        (build_network st))

let save path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Ok s
