(** Deterministic failure injection against a live {!Network}.

    Admitted multicast trees live in an SDN whose links and NFV servers
    fail; this module is the substrate's failure model. A failure is an
    ordinary {!event} value applied to a {!t} controller wrapping one
    network. Injection is built {e entirely} on the network's own atomic
    allocation primitives: taking a resource down {e confiscates} its
    remaining residual through {!Network.allocate} (so every weight
    function, feasibility check and shortest-path cache in the system
    sees the failure through the normal
    {!Network.weight_epoch} machinery — no algorithm needs a special
    "is it down?" hook), and healing releases exactly the confiscated
    amount back.

    {2 Resource-exactness contract}

    Every injected failure releases {e exactly} what the affected trees
    held: {!inject} first releases each victim's full
    {!Network.allocation} (the multiset the admission algorithm
    reserved), then confiscates the failed resource's remaining
    residual. Consequently, at every instant,

    {v capacity(r) = residual(r) + confiscated(r) + Σ live allocations on r v}

    holds for every link and server — the invariant the repair property
    tests pin. Dropped sessions therefore leak nothing, and healing a
    resource restores precisely the capacity the fault removed.

    {2 Determinism contract}

    Nothing in this module reads a clock or an ambient RNG. Schedules
    are plain values; {!random_schedule} draws every choice from the
    supplied [Topology.Rng.t], so a (seed, network, horizon) triple
    always produces the same schedule, and {!inject} selects degradation
    victims in increasing session-id order. Replaying the same events
    against the same network and live set is reproducible bit for bit,
    which is what lets the churn experiment run under the parallel
    harness with byte-identical outputs across [--jobs] settings. *)

type event =
  | Link_down of int  (** take a link out: confiscate its whole residual *)
  | Link_up of int  (** heal a link: release everything confiscated from it *)
  | Server_down of int  (** take an NFV server out (node must be a server) *)
  | Server_up of int  (** heal a server *)
  | Degrade_link of int * float
      (** [Degrade_link (e, f)] with [0 ≤ f ≤ 1]: ensure at least
          [f · capacity] of link [e] is confiscated, evicting live
          sessions (smallest id first) only as far as needed *)
  | Degrade_server of int * float  (** same, for a server's computing capacity *)

type timed = {
  after : int;  (** fire once the request with this arrival index was decided *)
  event : event;
}
(** One scheduled event. The churn driver processes arrivals in order
    and fires every event whose [after] equals the arrival index just
    decided; events scheduled past the horizon simply never fire (a
    resource that fails late stays failed). *)

type schedule = timed list
(** In firing order: ascending [after], ties in construction order. *)

type t
(** A fault controller over one network: which links/servers are
    currently down and how much capacity each fault confiscated. *)

val create : Network.t -> t
(** A controller with no active faults. The network may already carry
    allocations; they are untouched. *)

val network : t -> Network.t

val link_is_down : t -> int -> bool
(** Whether a link is fully down ([Link_down] without a matching
    [Link_up]); degraded links are {e not} down. [false] for
    out-of-range ids. *)

val server_is_down : t -> int -> bool
(** Same for servers ([false] for non-servers). *)

val confiscated_link : t -> int -> float
(** Mbps currently confiscated from a link (down or degraded); part of
    the resource-exactness invariant above. Raises [Invalid_argument]
    on a bad edge id. *)

val confiscated_server : t -> int -> float
(** MHz currently confiscated from a server. Raises [Invalid_argument]
    when the node is not a server. *)

val affected : event -> Network.allocation -> bool
(** Whether a live session holding this allocation is {e potentially} a
    victim of the event: it holds a positive amount on the failed link
    or server. [Down] events evict every affected session;
    [Degrade] events evict only as many as the confiscation target
    requires (so [affected] over-approximates their victim set);
    [Up] events never have victims. *)

val inject : t -> live:(int * Network.allocation) list -> event -> int list
(** [inject t ~live event] applies the event and returns the ids of the
    evicted victims, in increasing id order. [live] maps session ids
    (which must be distinct) to the allocations they hold; each victim's
    allocation is released {e in full} through {!Network.release} before
    any capacity is confiscated, so the exactness invariant holds at
    every step. Down/degrade events on an already-down resource are
    no-ops with no victims; up events on a healthy resource likewise.
    Raises [Invalid_argument] on a bad link id, a non-server node, or a
    degradation fraction outside [0, 1]. Telemetry: one
    [fault.injected.<kind>] counter per event kind, victims under
    [fault.victims]. *)

val heal_all : t -> unit
(** Release every confiscation and clear all down flags — the network
    regains exactly the capacity the faults removed. *)

val random_schedule :
  ?heal_after:int ->
  ?degrade_fraction:float ->
  rng:Topology.Rng.t ->
  horizon:int ->
  events:int ->
  Network.t ->
  schedule
(** A seeded schedule of [events] failures with arrival indices uniform
    in [0, horizon): a mix of link-down (35 %), server-down (20 %),
    link-degradation (25 %) and server-degradation (20 %) events over
    uniformly drawn targets, each degradation confiscating
    [degrade_fraction] (default [0.5]) of the target's capacity. With
    [heal_after:k], every full outage ([Link_down]/[Server_down]) is
    followed by the matching up event [k] indices later (possibly past
    the horizon, where it never fires); degradations are permanent.
    All randomness comes from [rng]; the result is sorted by
    [after] with construction order breaking ties. Raises
    [Invalid_argument] when [horizon ≤ 0] or [events < 0]. *)
