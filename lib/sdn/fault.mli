(** Deterministic failure injection against a live {!Network}.

    Admitted multicast trees live in an SDN whose links and NFV servers
    fail; this module is the substrate's failure model. A failure is an
    ordinary {!event} value applied to a {!t} controller wrapping one
    network. Injection is built {e entirely} on the network's own atomic
    allocation primitives: taking a resource down {e confiscates} its
    remaining residual through {!Network.allocate} (so every weight
    function, feasibility check and shortest-path cache in the system
    sees the failure through the normal
    {!Network.weight_epoch} machinery — no algorithm needs a special
    "is it down?" hook), and healing releases exactly the confiscated
    amount back.

    {2 Resource-exactness contract}

    Every injected failure releases {e exactly} what the affected trees
    held: {!inject} first releases each victim's full
    {!Network.allocation} (the multiset the admission algorithm
    reserved), then confiscates the failed resource's remaining
    residual. Consequently, at every instant,

    {v capacity(r) = residual(r) + confiscated(r) + Σ live allocations on r v}

    holds for every link and server — the invariant the repair property
    tests pin. Dropped sessions therefore leak nothing, and healing a
    resource restores precisely the capacity the fault removed.

    {2 Determinism contract}

    Nothing in this module reads a clock or an ambient RNG. Schedules
    are plain values; {!random_schedule} draws every choice from the
    supplied [Topology.Rng.t], so a (seed, network, horizon) triple
    always produces the same schedule, and {!inject} selects degradation
    victims in increasing session-id order. Replaying the same events
    against the same network and live set is reproducible bit for bit,
    which is what lets the churn experiment run under the parallel
    harness with byte-identical outputs across [--jobs] settings. *)

type event =
  | Link_down of int  (** take a link out: confiscate its whole residual *)
  | Link_up of int  (** heal a link: release everything confiscated from it *)
  | Server_down of int  (** take an NFV server out (node must be a server) *)
  | Server_up of int  (** heal a server *)
  | Degrade_link of int * float
      (** [Degrade_link (e, f)] with [0 ≤ f ≤ 1]: ensure at least
          [f · capacity] of link [e] is confiscated, evicting live
          sessions (smallest id first) only as far as needed *)
  | Degrade_server of int * float  (** same, for a server's computing capacity *)

type timed = {
  after : int;  (** fire once the request with this arrival index was decided *)
  event : event;
}
(** One scheduled event. The churn driver processes arrivals in order
    and fires every event whose [after] equals the arrival index just
    decided; events scheduled past the horizon simply never fire (a
    resource that fails late stays failed). *)

type schedule = timed list
(** In firing order: ascending [after], ties in construction order. *)

type stamped = {
  at : float;  (** fire at this simulation time *)
  event : event;
}
(** One event on a continuous clock — the form the failure-aware
    dynamic simulator ([Nfv_multicast.Dynamic]) merges into its
    Poisson arrival/departure queue. Applied through the same
    {!inject} path as arrival-indexed {!timed} events. *)

type timeline = stamped list
(** In firing order: ascending [at], ties in construction order. *)

type t
(** A fault controller over one network: which links/servers are
    currently down and how much capacity each fault confiscated. *)

val create : Network.t -> t
(** A controller with no active faults. The network may already carry
    allocations; they are untouched. *)

val network : t -> Network.t

val link_is_down : t -> int -> bool
(** Whether a link is fully down ([Link_down] without a matching
    [Link_up]); degraded links are {e not} down. [false] for
    out-of-range ids. *)

val server_is_down : t -> int -> bool
(** Same for servers ([false] for non-servers). *)

val confiscated_link : t -> int -> float
(** Mbps currently confiscated from a link (down or degraded); part of
    the resource-exactness invariant above. Raises [Invalid_argument]
    on a bad edge id. *)

val confiscated_server : t -> int -> float
(** MHz currently confiscated from a server. Raises [Invalid_argument]
    when the node is not a server. *)

val affected : event -> Network.allocation -> bool
(** Whether a live session holding this allocation is {e potentially} a
    victim of the event: it holds a positive amount on the failed link
    or server. [Down] events evict every affected session;
    [Degrade] events evict only as many as the confiscation target
    requires (so [affected] over-approximates their victim set);
    [Up] events never have victims. *)

val inject : t -> live:(int * Network.allocation) list -> event -> int list
(** [inject t ~live event] applies the event and returns the ids of the
    evicted victims, in increasing id order. [live] maps session ids
    (which must be distinct) to the allocations they hold; each victim's
    allocation is released {e in full} through {!Network.release} before
    any capacity is confiscated, so the exactness invariant holds at
    every step. Down/degrade events on an already-down resource are
    no-ops with no victims; up events on a healthy resource likewise.
    Raises [Invalid_argument] on a bad link id, a non-server node, or a
    degradation fraction outside [0, 1]. Telemetry: one
    [fault.injected.<kind>] counter per event kind, victims under
    [fault.victims]. *)

val heal_all : t -> unit
(** Release every confiscation and clear all down flags — the network
    regains exactly the capacity the faults removed. *)

val random_schedule :
  ?heal_after:int ->
  ?degrade_fraction:float ->
  rng:Topology.Rng.t ->
  horizon:int ->
  events:int ->
  Network.t ->
  schedule
(** A seeded schedule of [events] failures with arrival indices uniform
    in [0, horizon): a mix of link-down (35 %), server-down (20 %),
    link-degradation (25 %) and server-degradation (20 %) events over
    uniformly drawn targets, each degradation confiscating
    [degrade_fraction] (default [0.5]) of the target's capacity. With
    [heal_after:k], every full outage ([Link_down]/[Server_down]) is
    followed by the matching up event [k] indices later (possibly past
    the horizon, where it never fires); degradations are permanent.
    All randomness comes from [rng]; the result is sorted by
    [after] with construction order breaking ties. Raises
    [Invalid_argument] when [horizon ≤ 0] or [events < 0]. *)

val random_timeline :
  ?heal_after:float ->
  ?degrade_fraction:float ->
  rng:Topology.Rng.t ->
  horizon:float ->
  events:int ->
  Network.t ->
  timeline
(** Time-stamped analogue of {!random_schedule}: the same failure mix
    (35 % link-down, 20 % server-down, 25 % / 20 % degradations at
    [degrade_fraction], default [0.5]) with firing times uniform in
    [0, horizon). With [heal_after:h] (which must be positive), every
    full outage heals exactly [h] time units later; degradations are
    permanent. Sorted by [at], construction order breaking ties.
    Raises [Invalid_argument] when [horizon ≤ 0], [events < 0] or
    [heal_after ≤ 0]. *)

(** {2 Shared-risk link groups (SRLG)}

    Independent uniform failures miss the regime where repair is
    weakest: several links cut {e at once} because they share a risk —
    a conduit, a city, a sea cable. A partition of the links into risk
    groups turns one drawn failure into a simultaneous multi-edge
    cut. *)

val srlg_partition :
  ?groups:int -> rng:Topology.Rng.t -> Network.t -> int list array
(** Partition the network's links into at most [groups] (default [8])
    non-empty shared-risk groups, each listing edge ids in increasing
    order. On a topology with embedded coordinates (e.g. GÉANT), [k]
    seed links are drawn without replacement and every link joins the
    seed whose midpoint is nearest (squared Euclidean distance, ties
    to the lowest group index) — geographically close links share a
    group. Without coordinates (e.g. Rocketfuel), the links are
    shuffled and dealt round-robin: a seeded abstract shared-risk
    partition. Deterministic given [rng]; returns [[||]] on an
    edgeless network. Raises [Invalid_argument] when [groups ≤ 0]. *)

val srlg_timeline :
  ?heal_after:float ->
  rng:Topology.Rng.t ->
  horizon:float ->
  events:int ->
  int list array ->
  timeline
(** [srlg_timeline ~rng ~horizon ~events groups] draws [events]
    correlated cuts: each picks a firing time uniform in [0, horizon)
    and a group uniform in [groups], and takes {e every} link of that
    group down at that instant ([Link_down] per member, in group
    order). With [heal_after:h] each cut's links heal together [h]
    later. A member already down when a cut fires is a no-op under
    {!inject}, and an early heal of an overlapping cut revives it —
    the model trades that edge case for exact confiscation accounting.
    With singleton groups ([[|[0]; [1]; …|]]) this is exactly the
    matched independent-failure baseline: the same draw sequence, one
    link per cut. Sorted by [at], construction order breaking ties.
    Raises [Invalid_argument] when [horizon ≤ 0], [events < 0],
    [heal_after ≤ 0] or [groups] is empty. *)
