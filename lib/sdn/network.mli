(** The SDN substrate: a topology whose switches may carry servers
    ([V_S]), with bandwidth capacities on links, computing capacities on
    servers, unit usage costs, and mutable residual state (§III-A).

    Residual state supports atomic multi-resource allocation with
    rollback — the primitive online admission needs. All amounts are
    Mbps (links) and MHz (servers). *)

type t
(** A capacitated network with mutable residual state. *)

(** Parameter ranges used when attaching resources to a topology. The
    defaults follow §VI-A of the paper: link capacity 1 000–10 000 Mbps,
    server capacity 4 000–12 000 MHz; unit costs are drawn once per
    resource (see DESIGN.md §4). *)
type profile = {
  link_capacity : float * float;
  server_capacity : float * float;
  link_unit_cost : float * float;
  server_unit_cost : float * float;
  link_delay : float * float;  (** propagation delay per link, ms *)
}

val default_profile : profile
(** The §VI-A ranges quoted on {!type-profile}. *)

val uniform_profile : link_capacity:float -> server_capacity:float -> profile
(** Degenerate ranges, for deterministic tests. Unit costs are 1. *)

val make :
  ?profile:profile ->
  rng:Topology.Rng.t ->
  servers:int list ->
  Topology.Topo.t ->
  t
(** Attach resources to a topology. Raises [Invalid_argument] when the
    server list is empty, out of range, or contains duplicates. *)

val make_random_servers :
  ?profile:profile ->
  ?fraction:float ->
  rng:Topology.Rng.t ->
  Topology.Topo.t ->
  t
(** Place [fraction] (default 0.1, as in the paper) of the switches as
    servers, uniformly at random (at least one). *)

val make_explicit :
  ?link_residuals:float array ->
  ?server_residuals:(int * float) list ->
  ?link_delays:float array ->
  topology:Topology.Topo.t ->
  servers:(int * float * float) list ->
  link_capacities:float array ->
  link_unit_costs:float array ->
  unit ->
  t
(** Fully explicit construction (no randomness): [servers] lists
    [(node, computing capacity, unit cost)]; link arrays are indexed by
    edge id. Residuals default to the capacities. Used by
    {!Snapshot} when reloading a dumped scenario. Raises
    [Invalid_argument] on size mismatches or residuals outside
    [0, capacity]. *)

(** {1 Structure} *)

val topology : t -> Topology.Topo.t
(** The underlying named topology this network decorates. *)

val graph : t -> Mcgraph.Graph.t
(** The topology's graph; edge ids index every link array below. *)

val n : t -> int
(** Number of switches. *)

val m : t -> int
(** Number of links. *)

val servers : t -> int list
(** The server-attached switches [V_S], sorted increasing, without
    duplicates. Algorithms iterate this list in order, so candidate
    enumeration is deterministic. *)

val is_server : t -> int -> bool
(** Whether a node carries a server ([false] for out-of-range ids). *)

val server_count : t -> int
(** [List.length (servers t)]. *)

(** {1 Capacities, residuals and unit costs}

    All per-link accessors raise [Invalid_argument] on an out-of-range
    edge id; all per-server accessors raise [Invalid_argument] when the
    node is not in {!servers}. *)

val link_capacity : t -> int -> float
(** Total bandwidth of a link, Mbps. *)

val link_residual : t -> int -> float
(** Currently unallocated bandwidth of a link, Mbps. *)

val server_capacity : t -> int -> float
(** Total computing capacity of a server, MHz. *)

val server_residual : t -> int -> float
(** Currently unallocated computing capacity of a server, MHz. *)

val link_unit_cost : t -> int -> float
(** Cost of sending one Mbps across a link (the paper's [c_e]). *)

val server_unit_cost : t -> int -> float
(** Cost of one MHz of processing at a server (the paper's [c_v]). *)

val link_delay : t -> int -> float
(** Propagation delay of a link, in milliseconds. *)

val chain_cost : t -> int -> Vnf.chain -> float
(** [c_v(SC_k)]: unit cost at server [v] × consolidated chain demand. *)

val link_admits : t -> int -> float -> bool
(** Whether a link's residual bandwidth covers an amount (with a small
    tolerance for float drift). *)

val server_admits : t -> int -> float -> bool
(** Whether a server's residual computing capacity covers an amount
    (same tolerance). *)

(** {1 Atomic allocation} *)

type allocation = {
  links : (int * float) list;     (** (edge id, Mbps); repeats accumulate *)
  nodes : (int * float) list;     (** (server node, MHz); repeats accumulate *)
}
(** A multi-resource demand. Repeated ids are summed before feasibility
    is checked, so a pseudo-multicast tree that traverses a link twice
    is charged twice. *)

val empty_allocation : allocation
(** [{ links = []; nodes = [] }] — always allocatable. *)

val can_allocate : t -> allocation -> bool
(** Whether {!allocate} would succeed, without committing anything. *)

val allocate : t -> allocation -> (unit, string) result
(** Atomically commit, or change nothing and explain the failure.
    Success bumps {!weight_epoch} and counts under the [Nfv_obs] counter
    [network.allocations]; failure counts under
    [network.alloc_rejections] and leaves the epoch unchanged. *)

val release : t -> allocation -> unit
(** Return previously allocated resources; bumps {!weight_epoch}.
    Raises [Invalid_argument] if a release would exceed a capacity
    (double free). *)

val reset : t -> unit
(** Restore all residuals to full capacity; bumps {!weight_epoch}. *)

val weight_epoch : t -> int
(** Version counter of the residual state: bumped by every successful
    {!allocate}, every {!release} and every {!reset} (telemetry:
    [network.epoch_bumps]). Weight functions that read residuals
    (capacity pruning, the online algorithms' exponential prices) are
    pure between two equal readings of this counter, which is exactly
    the invariant [Mcgraph.Sp_engine] needs to cache shortest-path trees
    across queries and drop them when load changes. *)

(** {1 Metrics} *)

val link_utilization : t -> int -> float
(** Allocated fraction of one link's bandwidth, in [0, 1]. *)

val mean_link_utilization : t -> float
(** Mean of {!link_utilization} over all links ([0.] on edgeless
    networks). *)

val max_link_utilization : t -> float
(** Maximum of {!link_utilization} over all links. *)

val jain_fairness : t -> float
(** Jain index of link utilisations; 1 = perfectly balanced. Returns 1
    when the network is idle. *)

val pp : Format.formatter -> t -> unit
(** One-line summary ["network(<name>: n=…, m=…, servers=…)"]. *)
