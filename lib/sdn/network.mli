(** The SDN substrate: a topology whose switches may carry servers
    ([V_S]), with bandwidth capacities on links, computing capacities on
    servers, unit usage costs, and mutable residual state (§III-A).

    Residual state supports atomic multi-resource allocation with
    rollback — the primitive online admission needs. All amounts are
    Mbps (links) and MHz (servers). *)

type t

(** Parameter ranges used when attaching resources to a topology. The
    defaults follow §VI-A of the paper: link capacity 1 000–10 000 Mbps,
    server capacity 4 000–12 000 MHz; unit costs are drawn once per
    resource (see DESIGN.md §4). *)
type profile = {
  link_capacity : float * float;
  server_capacity : float * float;
  link_unit_cost : float * float;
  server_unit_cost : float * float;
  link_delay : float * float;  (** propagation delay per link, ms *)
}

val default_profile : profile

val uniform_profile : link_capacity:float -> server_capacity:float -> profile
(** Degenerate ranges, for deterministic tests. Unit costs are 1. *)

val make :
  ?profile:profile ->
  rng:Topology.Rng.t ->
  servers:int list ->
  Topology.Topo.t ->
  t
(** Attach resources to a topology. Raises [Invalid_argument] when the
    server list is empty, out of range, or contains duplicates. *)

val make_random_servers :
  ?profile:profile ->
  ?fraction:float ->
  rng:Topology.Rng.t ->
  Topology.Topo.t ->
  t
(** Place [fraction] (default 0.1, as in the paper) of the switches as
    servers, uniformly at random (at least one). *)

val make_explicit :
  ?link_residuals:float array ->
  ?server_residuals:(int * float) list ->
  ?link_delays:float array ->
  topology:Topology.Topo.t ->
  servers:(int * float * float) list ->
  link_capacities:float array ->
  link_unit_costs:float array ->
  unit ->
  t
(** Fully explicit construction (no randomness): [servers] lists
    [(node, computing capacity, unit cost)]; link arrays are indexed by
    edge id. Residuals default to the capacities. Used by
    {!Snapshot} when reloading a dumped scenario. Raises
    [Invalid_argument] on size mismatches or residuals outside
    [0, capacity]. *)

(** {1 Structure} *)

val topology : t -> Topology.Topo.t
val graph : t -> Mcgraph.Graph.t
val n : t -> int
val m : t -> int
val servers : t -> int list
val is_server : t -> int -> bool
val server_count : t -> int

(** {1 Capacities, residuals and unit costs} *)

val link_capacity : t -> int -> float
val link_residual : t -> int -> float
val server_capacity : t -> int -> float
(** Raises [Invalid_argument] for a non-server node; likewise below. *)

val server_residual : t -> int -> float
val link_unit_cost : t -> int -> float
val server_unit_cost : t -> int -> float

val link_delay : t -> int -> float
(** Propagation delay of a link, in milliseconds. *)

val chain_cost : t -> int -> Vnf.chain -> float
(** [c_v(SC_k)]: unit cost at server [v] × consolidated chain demand. *)

val link_admits : t -> int -> float -> bool
(** Whether a link's residual bandwidth covers an amount. *)

val server_admits : t -> int -> float -> bool

(** {1 Atomic allocation} *)

type allocation = {
  links : (int * float) list;     (** (edge id, Mbps); repeats accumulate *)
  nodes : (int * float) list;     (** (server node, MHz); repeats accumulate *)
}

val empty_allocation : allocation

val can_allocate : t -> allocation -> bool

val allocate : t -> allocation -> (unit, string) result
(** Atomically commit, or change nothing and explain the failure. *)

val release : t -> allocation -> unit
(** Return previously allocated resources. Raises [Invalid_argument] if
    a release would exceed a capacity (double free). *)

val reset : t -> unit
(** Restore all residuals to full capacity. *)

val weight_epoch : t -> int
(** Version counter of the residual state: bumped by every successful
    {!allocate}, every {!release} and every {!reset}. Weight functions
    that read residuals (capacity pruning, the online algorithms'
    exponential prices) are pure between two equal readings of this
    counter, which is exactly the invariant {!Mcgraph.Sp_engine} needs
    to cache shortest-path trees across queries and invalidate them
    when load changes. *)

(** {1 Metrics} *)

val link_utilization : t -> int -> float
(** In [0, 1]. *)

val mean_link_utilization : t -> float
val max_link_utilization : t -> float

val jain_fairness : t -> float
(** Jain index of link utilisations; 1 = perfectly balanced. Returns 1
    when the network is idle. *)

val pp : Format.formatter -> t -> unit
