type t = {
  id : int;
  source : int;
  destinations : int list;
  bandwidth : float;
  chain : Vnf.chain;
  deadline : float option;
}

let make ~id ~source ~destinations ~bandwidth ~chain =
  let deadline = None in
  if destinations = [] then invalid_arg "Request.make: no destinations";
  let uniq = List.sort_uniq compare destinations in
  if List.length uniq <> List.length destinations then
    invalid_arg "Request.make: duplicate destinations";
  if List.mem source destinations then
    invalid_arg "Request.make: source among destinations";
  if bandwidth <= 0.0 then invalid_arg "Request.make: non-positive bandwidth";
  if chain = [] then invalid_arg "Request.make: empty service chain";
  { id; source; destinations; bandwidth; chain; deadline }

let with_deadline t deadline =
  if deadline <= 0.0 then invalid_arg "Request.with_deadline: non-positive deadline";
  { t with deadline = Some deadline }

let demand_mhz t = Vnf.chain_demand_mhz t.chain
let terminal_count t = List.length t.destinations

let pp ppf t =
  Format.fprintf ppf "r%d: %d -> {%s} b=%.0fMbps %s" t.id t.source
    (String.concat ", " (List.map string_of_int t.destinations))
    t.bandwidth
    (Vnf.chain_to_string t.chain)
