(** Virtualised network functions and service chains.

    The paper evaluates five middlebox types (§VI-A): Firewall, Proxy,
    NAT, IDS and Load Balancer, with computing demands adopted from
    ClickOS-scale measurements. A service chain is an ordered sequence
    of functions that every packet of a request must traverse; as in the
    paper, a chain is consolidated into a single VM, so its demand is the
    sum of its functions' demands. *)

type kind = Firewall | Proxy | Nat | Ids | Load_balancer

val all_kinds : kind array

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val demand_mhz : kind -> float
(** Computing demand of one instance, in MHz (see DESIGN.md §4 for the
    sourcing of these constants). *)

val processing_delay_ms : kind -> float
(** Per-packet processing latency of one instance, in milliseconds
    (ClickOS-scale; used by the delay-bounded extension). *)

type chain = kind list
(** A service chain, e.g. [[Nat; Firewall; Ids]] (Fig. 2 of the paper). *)

val chain_demand_mhz : chain -> float
(** [C(SC_k)]: total computing demand of the chain's consolidated VM.
    Raises [Invalid_argument] on an empty chain. *)

val chain_delay_ms : chain -> float
(** Total processing latency of a consolidated chain. Raises
    [Invalid_argument] on an empty chain. *)

val chain_to_string : chain -> string
(** ["⟨NAT, Firewall, IDS⟩"]-style rendering. *)

val random_chain : Topology.Rng.t -> chain
(** A uniformly random chain: length 1–3, distinct functions, random
    order. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_chain : Format.formatter -> chain -> unit
