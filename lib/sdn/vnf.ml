type kind = Firewall | Proxy | Nat | Ids | Load_balancer

let all_kinds = [| Firewall; Proxy; Nat; Ids; Load_balancer |]

let kind_to_string = function
  | Firewall -> "Firewall"
  | Proxy -> "Proxy"
  | Nat -> "NAT"
  | Ids -> "IDS"
  | Load_balancer -> "LoadBalancer"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "firewall" -> Some Firewall
  | "proxy" -> Some Proxy
  | "nat" -> Some Nat
  | "ids" -> Some Ids
  | "loadbalancer" | "load_balancer" | "lb" -> Some Load_balancer
  | _ -> None

(* MHz per instance; ClickOS-scale lightweight VMs, sized so that a
   sequence of a few hundred requests is bandwidth-bound rather than
   compute-bound, matching the paper's admission regime (DESIGN.md §4) *)
let demand_mhz = function
  | Firewall -> 40.0
  | Proxy -> 60.0
  | Nat -> 25.0
  | Ids -> 80.0
  | Load_balancer -> 50.0

(* per-packet latency in ms; IDS deep inspection dominates *)
let processing_delay_ms = function
  | Firewall -> 0.2
  | Proxy -> 0.5
  | Nat -> 0.1
  | Ids -> 1.0
  | Load_balancer -> 0.3

type chain = kind list

let chain_delay_ms = function
  | [] -> invalid_arg "Vnf.chain_delay_ms: empty chain"
  | chain -> List.fold_left (fun acc k -> acc +. processing_delay_ms k) 0.0 chain

let chain_demand_mhz = function
  | [] -> invalid_arg "Vnf.chain_demand_mhz: empty chain"
  | chain -> List.fold_left (fun acc k -> acc +. demand_mhz k) 0.0 chain

let chain_to_string chain =
  "<" ^ String.concat ", " (List.map kind_to_string chain) ^ ">"

let random_chain rng =
  let len = 1 + Topology.Rng.int rng 3 in
  let idx =
    Topology.Rng.sample_without_replacement rng len (Array.length all_kinds)
  in
  List.map (fun i -> all_kinds.(i)) idx

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)
let pp_chain ppf c = Format.pp_print_string ppf (chain_to_string c)
