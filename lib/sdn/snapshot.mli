(** Plain-text snapshots of scenarios — network state and request
    sequences — for reproducible exchange and regression fixtures.

    The format is line-oriented and versioned ([nfvm-snapshot 1]); floats
    round-trip exactly (hex float literals). No external serialisation
    library is used. *)

val network_to_string : Network.t -> string

val network_of_string : string -> (Network.t, string) result
(** Rebuilds the topology (name, coordinates and node names included)
    and the exact capacities, unit costs and current residuals. *)

val requests_to_string : Request.t list -> string

val requests_of_string : string -> (Request.t list, string) result

val scenario_to_string : Network.t -> Request.t list -> string
(** Network followed by its request sequence, one self-contained
    document. *)

val scenario_of_string : string -> (Network.t * Request.t list, string) result

val save : string -> string -> unit
(** [save path contents] — write a snapshot file. *)

val load : string -> (string, string) result
(** Read a file's contents ([Error] on I/O failure). *)
