(** NFV-enabled multicast requests:
    [r_k = (s_k, D_k; b_k, SC_k)] (§III-B of the paper). *)

type t = {
  id : int;
  source : int;                (** [s_k]: source switch *)
  destinations : int list;     (** [D_k]: distinct, never containing the source *)
  bandwidth : float;           (** [b_k] in Mbps *)
  chain : Vnf.chain;           (** [SC_k] *)
  deadline : float option;     (** optional end-to-end latency bound, ms
                                   (delay-bounded extension) *)
}

val make :
  id:int -> source:int -> destinations:int list -> bandwidth:float ->
  chain:Vnf.chain -> t
(** Validates: non-empty destination set without duplicates or the
    source, positive bandwidth, non-empty chain. The deadline starts
    unset ([None]). *)

val with_deadline : t -> float -> t
(** Attach a latency bound (ms). Raises [Invalid_argument] unless
    positive. *)

val demand_mhz : t -> float
(** Computing demand of the request's consolidated service chain. *)

val terminal_count : t -> int
(** [|D_k|]. *)

val pp : Format.formatter -> t -> unit
