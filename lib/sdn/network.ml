module G = Mcgraph.Graph
module Rng = Topology.Rng
module Obs = Nfv_obs.Obs

(* residual-state telemetry, aggregated over every network instance *)
let c_allocations = Obs.Counter.make "network.allocations"
let c_alloc_rejections = Obs.Counter.make "network.alloc_rejections"
let c_releases = Obs.Counter.make "network.releases"
let c_resets = Obs.Counter.make "network.resets"
let c_epoch_bumps = Obs.Counter.make "network.epoch_bumps"

type t = {
  topo : Topology.Topo.t;
  server_list : int list;
  server_flag : bool array;
  link_cap : float array;
  link_res : float array;
  srv_cap : float array;
  srv_res : float array;
  link_cost : float array;
  srv_cost : float array;
  link_del : float array;
  mutable epoch : int;   (* bumped whenever residual state changes *)
}

type profile = {
  link_capacity : float * float;
  server_capacity : float * float;
  link_unit_cost : float * float;
  server_unit_cost : float * float;
  link_delay : float * float;
}

let default_profile =
  {
    link_capacity = (1_000.0, 10_000.0);
    server_capacity = (4_000.0, 12_000.0);
    link_unit_cost = (0.02, 0.2);
    server_unit_cost = (0.005, 0.02);
    link_delay = (0.5, 2.0);
  }

let uniform_profile ~link_capacity ~server_capacity =
  {
    link_capacity = (link_capacity, link_capacity);
    server_capacity = (server_capacity, server_capacity);
    link_unit_cost = (1.0, 1.0);
    server_unit_cost = (1.0, 1.0);
    link_delay = (1.0, 1.0);
  }

let draw rng (lo, hi) = if lo = hi then lo else Rng.float_range rng lo hi

let make ?(profile = default_profile) ~rng ~servers topo =
  let g = topo.Topology.Topo.graph in
  let nn = G.n g and mm = G.m g in
  if servers = [] then invalid_arg "Network.make: no servers";
  let uniq = List.sort_uniq compare servers in
  if List.length uniq <> List.length servers then
    invalid_arg "Network.make: duplicate servers";
  List.iter
    (fun v -> if v < 0 || v >= nn then invalid_arg "Network.make: server out of range")
    servers;
  let server_flag = Array.make nn false in
  List.iter (fun v -> server_flag.(v) <- true) servers;
  let link_cap = Array.init mm (fun _ -> draw rng profile.link_capacity) in
  let link_cost = Array.init mm (fun _ -> draw rng profile.link_unit_cost) in
  let link_del = Array.init mm (fun _ -> draw rng profile.link_delay) in
  let srv_cap = Array.make nn 0.0 and srv_cost = Array.make nn 0.0 in
  List.iter
    (fun v ->
      srv_cap.(v) <- draw rng profile.server_capacity;
      srv_cost.(v) <- draw rng profile.server_unit_cost)
    servers;
  {
    topo;
    server_list = uniq;
    server_flag;
    link_cap;
    link_res = Array.copy link_cap;
    srv_cap;
    srv_res = Array.copy srv_cap;
    link_cost;
    srv_cost;
    link_del;
    epoch = 0;
  }

let make_explicit ?link_residuals ?server_residuals ?link_delays ~topology:topo
    ~servers ~link_capacities ~link_unit_costs () =
  let g = topo.Topology.Topo.graph in
  let nn = G.n g and mm = G.m g in
  if servers = [] then invalid_arg "Network.make_explicit: no servers";
  if Array.length link_capacities <> mm || Array.length link_unit_costs <> mm
  then invalid_arg "Network.make_explicit: link array size mismatch";
  let server_flag = Array.make nn false in
  let srv_cap = Array.make nn 0.0 and srv_cost = Array.make nn 0.0 in
  List.iter
    (fun (v, cap, cost) ->
      if v < 0 || v >= nn then invalid_arg "Network.make_explicit: server range";
      if server_flag.(v) then invalid_arg "Network.make_explicit: duplicate server";
      if cap <= 0.0 then invalid_arg "Network.make_explicit: non-positive capacity";
      server_flag.(v) <- true;
      srv_cap.(v) <- cap;
      srv_cost.(v) <- cost)
    servers;
  let link_res =
    match link_residuals with
    | None -> Array.copy link_capacities
    | Some r ->
      if Array.length r <> mm then
        invalid_arg "Network.make_explicit: residual size mismatch";
      Array.iteri
        (fun e x ->
          if x < -1e-9 || x > link_capacities.(e) +. 1e-9 then
            invalid_arg "Network.make_explicit: residual out of range")
        r;
      Array.copy r
  in
  let srv_res = Array.copy srv_cap in
  (match server_residuals with
  | None -> ()
  | Some rs ->
    List.iter
      (fun (v, x) ->
        if v < 0 || v >= nn || not server_flag.(v) then
          invalid_arg "Network.make_explicit: residual for non-server";
        if x < -1e-9 || x > srv_cap.(v) +. 1e-9 then
          invalid_arg "Network.make_explicit: residual out of range";
        srv_res.(v) <- x)
      rs);
  {
    topo;
    server_list = List.sort compare (List.map (fun (v, _, _) -> v) servers);
    server_flag;
    link_cap = Array.copy link_capacities;
    link_res;
    srv_cap;
    srv_res;
    link_cost = Array.copy link_unit_costs;
    srv_cost;
    link_del =
      (match link_delays with
      | None -> Array.make mm 1.0
      | Some d ->
        if Array.length d <> mm then
          invalid_arg "Network.make_explicit: delay size mismatch";
        Array.copy d);
    epoch = 0;
  }

let make_random_servers ?profile ?(fraction = 0.1) ~rng topo =
  let nn = Mcgraph.Graph.n topo.Topology.Topo.graph in
  let count = max 1 (int_of_float (Float.round (fraction *. float_of_int nn))) in
  let servers = Rng.sample_without_replacement rng count nn in
  make ?profile ~rng ~servers topo

let topology t = t.topo
let graph t = t.topo.Topology.Topo.graph
let n t = G.n (graph t)
let m t = G.m (graph t)
let servers t = t.server_list
let is_server t v = v >= 0 && v < Array.length t.server_flag && t.server_flag.(v)
let server_count t = List.length t.server_list

let check_link t e name =
  if e < 0 || e >= Array.length t.link_cap then invalid_arg (name ^ ": bad edge")

let check_server t v name =
  if not (is_server t v) then invalid_arg (name ^ ": not a server")

let link_capacity t e = check_link t e "Network.link_capacity"; t.link_cap.(e)
let link_residual t e = check_link t e "Network.link_residual"; t.link_res.(e)
let server_capacity t v = check_server t v "Network.server_capacity"; t.srv_cap.(v)
let server_residual t v = check_server t v "Network.server_residual"; t.srv_res.(v)
let link_unit_cost t e = check_link t e "Network.link_unit_cost"; t.link_cost.(e)
let link_delay t e = check_link t e "Network.link_delay"; t.link_del.(e)
let server_unit_cost t v = check_server t v "Network.server_unit_cost"; t.srv_cost.(v)

let chain_cost t v chain = server_unit_cost t v *. Vnf.chain_demand_mhz chain

let link_admits t e amount = link_residual t e >= amount -. 1e-9
let server_admits t v amount = server_residual t v >= amount -. 1e-9

type allocation = {
  links : (int * float) list;
  nodes : (int * float) list;
}

let empty_allocation = { links = []; nodes = [] }

(* sum repeated resources so atomicity checks see aggregate demand *)
let aggregate pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      if v < 0.0 then invalid_arg "Network: negative allocation amount";
      let cur = Option.value (Hashtbl.find_opt tbl k) ~default:0.0 in
      Hashtbl.replace tbl k (cur +. v))
    pairs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let alloc_failure t alloc =
  let link_issue =
    List.find_opt (fun (e, amt) -> not (link_admits t e amt)) (aggregate alloc.links)
  in
  match link_issue with
  | Some (e, amt) ->
    Some (Printf.sprintf "link %d: need %.1f, residual %.1f" e amt t.link_res.(e))
  | None -> (
    let node_issue =
      List.find_opt
        (fun (v, amt) ->
          check_server t v "Network.allocate";
          not (server_admits t v amt))
        (aggregate alloc.nodes)
    in
    match node_issue with
    | Some (v, amt) ->
      Some (Printf.sprintf "server %d: need %.1f, residual %.1f" v amt t.srv_res.(v))
    | None -> None)

let can_allocate t alloc = alloc_failure t alloc = None

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  Obs.Counter.incr c_epoch_bumps

let allocate t alloc =
  match alloc_failure t alloc with
  | Some msg ->
    Obs.Counter.incr c_alloc_rejections;
    Error msg
  | None ->
    List.iter (fun (e, amt) -> t.link_res.(e) <- t.link_res.(e) -. amt) alloc.links;
    List.iter (fun (v, amt) -> t.srv_res.(v) <- t.srv_res.(v) -. amt) alloc.nodes;
    Obs.Counter.incr c_allocations;
    bump_epoch t;
    Ok ()

let release t alloc =
  let links = aggregate alloc.links and nodes = aggregate alloc.nodes in
  List.iter
    (fun (e, amt) ->
      check_link t e "Network.release";
      if t.link_res.(e) +. amt > t.link_cap.(e) +. 1e-6 then
        invalid_arg "Network.release: link over-release")
    links;
  List.iter
    (fun (v, amt) ->
      check_server t v "Network.release";
      if t.srv_res.(v) +. amt > t.srv_cap.(v) +. 1e-6 then
        invalid_arg "Network.release: server over-release")
    nodes;
  List.iter (fun (e, amt) -> t.link_res.(e) <- min t.link_cap.(e) (t.link_res.(e) +. amt)) links;
  List.iter (fun (v, amt) -> t.srv_res.(v) <- min t.srv_cap.(v) (t.srv_res.(v) +. amt)) nodes;
  Obs.Counter.incr c_releases;
  bump_epoch t

let reset t =
  Array.blit t.link_cap 0 t.link_res 0 (Array.length t.link_cap);
  Array.blit t.srv_cap 0 t.srv_res 0 (Array.length t.srv_cap);
  Obs.Counter.incr c_resets;
  bump_epoch t

let weight_epoch t = t.epoch

let link_utilization t e =
  check_link t e "Network.link_utilization";
  1.0 -. (t.link_res.(e) /. t.link_cap.(e))

let mean_link_utilization t =
  let mm = Array.length t.link_cap in
  if mm = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for e = 0 to mm - 1 do
      sum := !sum +. link_utilization t e
    done;
    !sum /. float_of_int mm
  end

let max_link_utilization t =
  let best = ref 0.0 in
  for e = 0 to Array.length t.link_cap - 1 do
    if link_utilization t e > !best then best := link_utilization t e
  done;
  !best

let jain_fairness t =
  let mm = Array.length t.link_cap in
  let sum = ref 0.0 and sq = ref 0.0 in
  for e = 0 to mm - 1 do
    let u = link_utilization t e in
    sum := !sum +. u;
    sq := !sq +. (u *. u)
  done;
  if !sq = 0.0 then 1.0 else !sum *. !sum /. (float_of_int mm *. !sq)

let pp ppf t =
  Format.fprintf ppf "network(%s: n=%d, m=%d, servers=%d)"
    t.topo.Topology.Topo.name (n t) (m t) (server_count t)
